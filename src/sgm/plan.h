// Reusable query plans: the preprocessing product of one (query, data,
// options) triple, split off from the per-run enumeration so it can be
// built once and executed many times.
//
// MatchQuery = BuildMatchPlan + ExecutePlan. The split exists for the
// serving workload (service/service.h): on a data graph that answers many
// queries, the filtering, auxiliary-structure and ordering phases — the
// dominant cost on small-to-medium queries — repeat verbatim whenever the
// same query text comes back, so the service's plan cache retains MatchPlan
// objects and replays only the enumeration. The parallel matcher reuses the
// same build path (one preprocessing implementation instead of two).
//
// A built plan is immutable and thread-compatible: concurrent ExecutePlan
// calls on one plan are safe because enumeration only reads it.
#ifndef SGM_PLAN_H_
#define SGM_PLAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "sgm/core/order/dpiso_order.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/matcher.h"

namespace sgm {

/// Everything the enumeration phase needs, prebuilt: candidate sets, the
/// auxiliary candidate-edge index (with bitmap sidecars when the options
/// request them), the matching order, and DP-iso's adaptive weights.
/// Produced by BuildMatchPlan; executed (any number of times, concurrently)
/// by ExecutePlan.
struct MatchPlan {
  MatchPlan() = default;
  /// Not copyable or movable: `aux` holds a pointer to `candidates`, so the
  /// object must stay at one address for its whole life. BuildMatchPlan
  /// returns plans behind unique_ptr for this reason.
  MatchPlan(const MatchPlan&) = delete;
  MatchPlan& operator=(const MatchPlan&) = delete;

  /// The options the plan was built for. Structural fields (filter, order,
  /// lc_method, aux_scope, intersection, adaptive_order, ...) are baked
  /// into the plan; execution knobs (max_matches, time_limit_ms, collector,
  /// cancel_flag) may differ per ExecutePlan call.
  MatchOptions options;

  CandidateSets candidates;
  std::optional<BfsTree> bfs_tree;
  AuxStructure aux;
  /// True when aux was built (options.aux_scope != kNone).
  bool has_aux = false;
  std::vector<Vertex> matching_order;
  /// Valid iff options.adaptive_order.
  DpisoWeights weights;
  /// Some query vertex has an empty candidate set: zero matches, and
  /// aux/order/weights were never built.
  bool empty_candidates = false;

  // ---- Build metrics (the "preprocessing" phases of the paper). ----
  double filter_ms = 0.0;
  double aux_build_ms = 0.0;
  double order_ms = 0.0;
  double average_candidates = 0.0;
  size_t candidate_memory_bytes = 0;
  size_t aux_memory_bytes = 0;
  std::vector<FilterRound> filter_rounds;

  /// Build time of the whole plan (what a plan-cache hit saves).
  double build_ms() const { return filter_ms + aux_build_ms + order_ms; }

  /// Approximate heap footprint of the retained structures — what a plan
  /// cache accounts against its memory budget.
  size_t MemoryBytes() const;
};

/// Runs the preprocessing phases (filtering, auxiliary structure, ordering,
/// adaptive weights) and returns the reusable plan. The query must be
/// connected, with 1 <= |V(q)| <= 64. Honors options.collector for phase
/// trace spans, exactly like MatchQuery.
std::unique_ptr<MatchPlan> BuildMatchPlan(const Graph& query,
                                          const Graph& data,
                                          const MatchOptions& options);

/// Runs the enumeration phase of a prebuilt plan. `query` and `data` must
/// be the graphs the plan was built from; `run_options` must agree with
/// plan.options on the structural fields and supplies the per-run knobs
/// (max_matches, time_limit_ms, collector, cancel_flag, use_lc_cache).
///
/// With `include_build_metrics` (the default) the returned MatchResult
/// carries the plan's preprocessing times, so MatchQuery semantics are
/// preserved; a plan-cache hit passes false and reports zero preprocessing
/// time — the run did none.
MatchResult ExecutePlan(const Graph& query, const Graph& data,
                        const MatchPlan& plan, const MatchOptions& run_options,
                        const MatchCallback& callback = {},
                        bool include_build_metrics = true);

}  // namespace sgm

#endif  // SGM_PLAN_H_
