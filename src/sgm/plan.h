// Reusable query plans: the preprocessing product of one (query, data,
// options) triple, split off from the per-run enumeration so it can be
// built once and executed many times.
//
// MatchQuery = BuildMatchPlan + ExecutePlan. The split exists for the
// serving workload (service/service.h): on a data graph that answers many
// queries, the filtering, auxiliary-structure and ordering phases — the
// dominant cost on small-to-medium queries — repeat verbatim whenever the
// same query text comes back, so the service's plan cache retains MatchPlan
// objects and replays only the enumeration. The parallel matcher reuses the
// same build path (one preprocessing implementation instead of two).
//
// A built plan is immutable and thread-compatible: concurrent ExecutePlan
// calls on one plan are safe because enumeration only reads it.
#ifndef SGM_PLAN_H_
#define SGM_PLAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "sgm/core/order/dpiso_order.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/matcher.h"
#include "sgm/shard/sharded_graph.h"

namespace sgm {

/// Everything the enumeration phase needs, prebuilt: candidate sets, the
/// auxiliary candidate-edge index (with bitmap sidecars when the options
/// request them), the matching order, and DP-iso's adaptive weights.
/// Produced by BuildMatchPlan; executed (any number of times, concurrently)
/// by ExecutePlan.
struct MatchPlan {
  MatchPlan() = default;
  /// Not copyable or movable: `aux` holds a pointer to `candidates`, so the
  /// object must stay at one address for its whole life. BuildMatchPlan
  /// returns plans behind unique_ptr for this reason.
  MatchPlan(const MatchPlan&) = delete;
  MatchPlan& operator=(const MatchPlan&) = delete;

  /// The options the plan was built for. Structural fields (filter, order,
  /// lc_method, aux_scope, intersection, adaptive_order, ...) are baked
  /// into the plan; execution knobs (max_matches, time_limit_ms, collector,
  /// cancel_flag) may differ per ExecutePlan call.
  MatchOptions options;

  CandidateSets candidates;
  std::optional<BfsTree> bfs_tree;
  AuxStructure aux;
  /// True when aux was built (options.aux_scope != kNone).
  bool has_aux = false;
  std::vector<Vertex> matching_order;
  /// Valid iff options.adaptive_order.
  DpisoWeights weights;
  /// Some query vertex has an empty candidate set: zero matches, and
  /// aux/order/weights were never built.
  bool empty_candidates = false;

  // ---- Build metrics (the "preprocessing" phases of the paper). ----
  double filter_ms = 0.0;
  double aux_build_ms = 0.0;
  double order_ms = 0.0;
  double average_candidates = 0.0;
  size_t candidate_memory_bytes = 0;
  size_t aux_memory_bytes = 0;
  std::vector<FilterRound> filter_rounds;

  /// Build time of the whole plan (what a plan-cache hit saves).
  double build_ms() const { return filter_ms + aux_build_ms + order_ms; }

  /// Approximate heap footprint of the retained structures — what a plan
  /// cache accounts against its memory budget.
  size_t MemoryBytes() const;
};

/// Runs the preprocessing phases (filtering, auxiliary structure, ordering,
/// adaptive weights) and returns the reusable plan. The query must be
/// connected, with 1 <= |V(q)| <= 64. Honors options.collector for phase
/// trace spans, exactly like MatchQuery.
std::unique_ptr<MatchPlan> BuildMatchPlan(const Graph& query,
                                          const Graph& data,
                                          const MatchOptions& options);

/// Runs the enumeration phase of a prebuilt plan. `query` and `data` must
/// be the graphs the plan was built from; `run_options` must agree with
/// plan.options on the structural fields and supplies the per-run knobs
/// (max_matches, time_limit_ms, collector, cancel_flag, use_lc_cache).
///
/// With `include_build_metrics` (the default) the returned MatchResult
/// carries the plan's preprocessing times, so MatchQuery semantics are
/// preserved; a plan-cache hit passes false and reports zero preprocessing
/// time — the run did none.
MatchResult ExecutePlan(const Graph& query, const Graph& data,
                        const MatchPlan& plan, const MatchOptions& run_options,
                        const MatchCallback& callback = {},
                        bool include_build_metrics = true);

// ---------------------------------------------------------------------------
// Sharded execution (DESIGN.md §13): the data graph is split into K vertex
// shards (shard/sharded_graph.h); one pass per shard enumerates the
// embeddings owned entirely by that shard, and one boundary pass over the
// cut region picks up exactly the embeddings spanning two or more shards.
// The union equals the monolithic result bit for bit — counts, limit
// status, and the embedding set — which the differential fuzz oracle
// checks continuously.
// ---------------------------------------------------------------------------

/// Statistics of one sharded pass (a shard-local pass or the boundary
/// pass). `match_count` uses attributed-delivery semantics: the global
/// match budget is shared, so per-pass counts sum to the merged count.
struct ShardPassStats {
  /// Shard index; the boundary pass reports the shard count here.
  uint32_t shard = 0;
  bool boundary = false;
  uint64_t match_count = 0;
  /// Vertices of the pass's graph (owned + halo, or the cut region).
  uint32_t graph_vertices = 0;
  /// Owned vertices of the shard (the region size for the boundary pass).
  uint32_t owned_vertices = 0;
  size_t candidate_memory_bytes = 0;
  size_t aux_memory_bytes = 0;
  double build_ms = 0.0;
  double enumerate_ms = 0.0;
  /// Wall time the pass occupied its worker (build excluded — plans are
  /// prebuilt in BuildShardPlan).
  double busy_ms = 0.0;
};

/// Shape and per-pass breakdown of one sharded run, reported alongside the
/// merged MatchResult (RunReport's "sharding" section).
struct ShardedRunInfo {
  /// 0 means the run was monolithic (no sharding section applies).
  uint32_t shard_count = 0;
  shard::Partitioner partitioner = shard::Partitioner::kGreedy;
  uint64_t cut_edges = 0;
  uint32_t boundary_vertex_count = 0;
  /// Radius of the cut region (the query's worst edge eccentricity, at
  /// most its diameter); 0 when the boundary pass was skipped
  /// (single-vertex query, K=1, or an empty cut).
  uint32_t boundary_radius = 0;
  uint32_t region_vertices = 0;
  std::vector<ShardPassStats> passes;
};

/// Merged result of a sharded run: `result` carries exactly the monolithic
/// semantics (count, limit status, aggregate search counters); `sharding`
/// breaks it down per pass.
struct ShardedMatchResult {
  MatchResult result;
  ShardedRunInfo sharding;
};

/// The sharded counterpart of MatchPlan: one restricted plan per shard plus
/// the boundary plan over the cut region. Build once per (query, options)
/// against a long-lived ShardedGraph; execute any number of times.
struct ShardPlan {
  ShardPlan() = default;
  ShardPlan(const ShardPlan&) = delete;
  ShardPlan& operator=(const ShardPlan&) = delete;

  /// The options the plan was built for (same contract as
  /// MatchPlan::options).
  MatchOptions options;
  /// One plan per shard, restricted to owned candidates; null for shards
  /// that own no vertices.
  std::vector<std::unique_ptr<MatchPlan>> shard_plans;
  /// The cut region the boundary plan runs on (shared with the
  /// ShardedGraph's cache); null when the boundary pass is skipped.
  std::shared_ptr<const shard::CutRegion> region;
  std::unique_ptr<MatchPlan> boundary_plan;
  uint32_t boundary_radius = 0;
  /// Wall time of the whole (shard-parallel) build.
  double build_wall_ms = 0.0;

  size_t MemoryBytes() const;
};

/// Builds the per-shard plans (in parallel across shards) and the boundary
/// plan. Same query contract as BuildMatchPlan. The collector, if any, is
/// not threaded through the per-pass builds.
std::unique_ptr<ShardPlan> BuildShardPlan(const Graph& query,
                                          const shard::ShardedGraph& sharded,
                                          const MatchOptions& options);

/// Executes a prebuilt shard plan: all passes run concurrently under one
/// shared match budget, deadline, and cancellation gate; `callback`
/// receives global data-vertex ids (serialized across passes, delivered at
/// most max_matches times). Pass ordering of deliveries is nondeterministic;
/// the delivered set and all result semantics are not.
ShardedMatchResult ExecuteShardPlan(const Graph& query,
                                    const shard::ShardedGraph& sharded,
                                    const ShardPlan& plan,
                                    const MatchOptions& run_options,
                                    const MatchCallback& callback = {},
                                    bool include_build_metrics = true);

/// BuildShardPlan + ExecuteShardPlan, the sharded analogue of MatchQuery.
ShardedMatchResult ShardedMatchQuery(const Graph& query,
                                     const shard::ShardedGraph& sharded,
                                     const MatchOptions& options,
                                     const MatchCallback& callback = {});

}  // namespace sgm

#endif  // SGM_PLAN_H_
