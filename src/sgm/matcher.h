// Public facade of the library: one call that composes a filtering method,
// an ordering method, an auxiliary structure, a local-candidate computation
// method and the optional optimizations into a full subgraph matching run —
// exactly the decomposition of Algorithm 1 in the paper.
//
// Presets reconstruct the eight algorithms under study:
//   MatchOptions::Classic(Algorithm::kCFL)     — the original algorithm
//   MatchOptions::Optimized(Algorithm::kRI)    — the §5.2/§5.3 optimized
//       variant (all-edges auxiliary structure + set-intersection local
//       candidates, GraphQL candidates for the direct-enumeration methods)
//   MatchOptions::Recommended(query_size)      — the paper's final
//       recommendation (§6): GraphQL filter and ordering, set-intersection
//       enumeration, failing sets on large queries.
// The Glasgow constraint-programming solver has its own entry point in
// sgm/glasgow/glasgow.h (it does not fit the common framework, §3.5).
#ifndef SGM_MATCHER_H_
#define SGM_MATCHER_H_

#include <atomic>
#include <vector>

#include "sgm/core/enumerate/enumerator.h"
#include "sgm/core/filter/filter.h"
#include "sgm/core/order/order.h"
#include "sgm/shard/partition.h"

namespace sgm {

namespace obs {
class Collector;
}  // namespace obs

/// The seven framework algorithms of the paper (Glasgow is separate).
enum class Algorithm : uint8_t {
  kQuickSI = 0,
  kGraphQL = 1,
  kCFL = 2,
  kCECI = 3,
  kDPiso = 4,
  kRI = 5,
  kVF2pp = 6,
};

/// Returns the paper's abbreviation ("QSI", "GQL", ...).
const char* AlgorithmName(Algorithm algorithm);

/// All seven framework algorithms, for iteration in benches and tests.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kQuickSI, Algorithm::kGraphQL, Algorithm::kCFL,
    Algorithm::kCECI,    Algorithm::kDPiso,   Algorithm::kRI,
    Algorithm::kVF2pp,
};

/// Full configuration of a matching run: which component fills each slot
/// of Algorithm 1 (filter × order × local candidates × aux scope), the
/// optional optimizations, and the per-run limits. Prefer the Classic /
/// Optimized / Recommended factories below; field-level tweaking is for
/// ablations.
struct MatchOptions {
  /// Candidate filtering method (stage 1).
  FilterMethod filter = FilterMethod::kGraphQL;
  /// Matching-order selection method (stage 3).
  OrderMethod order = OrderMethod::kGraphQL;
  /// How local candidates are computed during enumeration (Algorithms 2-5).
  LocalCandidateMethod lc_method = LocalCandidateMethod::kIntersect;
  /// Which query edges the auxiliary structure materializes (tree edges
  /// only, as the classic algorithms build it, or all edges — the §5.2
  /// optimization).
  AuxEdgeScope aux_scope = AuxEdgeScope::kAllEdges;
  /// Failing-set pruning (DP-iso's optimization, applicable everywhere).
  bool use_failing_sets = false;
  /// DP-iso's run-time adaptive ordering (weight-array selection).
  bool adaptive_order = false;
  /// VF2++'s extra look-ahead feasibility rules.
  bool vf2pp_lookahead = false;
  /// Move degree-one query vertices to the end of the matching order —
  /// DP-iso's leaf decomposition (its ordering "prioritizes the remaining
  /// vertices", Section 3.2 of the paper).
  bool postpone_degree_one = false;
  uint64_t max_matches = 100000;
  double time_limit_ms = 300000.0;
  /// kBitmap/kAuto additionally build the bitmap sidecar of the auxiliary
  /// structure (all-edges scope with intersect local candidates only) and
  /// intersect it word-wise in the enumerator; see DESIGN.md §10.
  IntersectionMethod intersection = IntersectionMethod::kHybrid;
  /// Density threshold forwarded to AuxBuildOptions::bitmap_max_candidates
  /// when the intersection method requests sidecars.
  uint32_t bitmap_max_candidates = 4096;
  /// Per-depth local-candidate reuse cache (EnumerateOptions::use_lc_cache).
  bool use_lc_cache = true;
  FilterOptions filter_options;
  /// Optional observability collector (sgm/obs/collector.h). Null — the
  /// default — keeps the run on the uninstrumented path: no spans, no depth
  /// profile, only the cheap aggregate counters MatchResult always carries.
  /// The collector must outlive the call; it is not owned.
  obs::Collector* collector = nullptr;
  /// Optional cooperative cancellation: a set flag aborts the search like a
  /// timeout without marking the run timed out. The serial engine checks it
  /// every 1024 recursion calls; the parallel engine checks it between work
  /// items and on every delivered match. Must outlive the call; may be null.
  /// This is how MatchService (service/service.h) cancels in-flight
  /// requests.
  const std::atomic<bool>* cancel_flag = nullptr;
  /// Number of data-graph shards (DESIGN.md §13). 0 or 1 keeps the
  /// monolithic path. Values above 1 make MatchQuery partition the data
  /// graph on the fly and run the shard-local passes plus the boundary
  /// pass; the delivered matches are exactly those of the monolithic run.
  /// Long-lived callers (MatchService, benches) amortize the partitioning
  /// by building one shard::ShardedGraph and calling ShardedMatchQuery
  /// (plan.h) instead.
  uint32_t shards = 0;
  /// Vertex partitioner used when `shards` > 1.
  shard::Partitioner shard_partitioner = shard::Partitioner::kGreedy;
  /// Internal hook of the sharded executor: when nonzero, candidate sets
  /// are truncated to data vertices with id < this bound right after the
  /// filtering phase, before the auxiliary structure is built. Shard graphs
  /// lay out owned vertices below this threshold, so one comparison
  /// restricts a pass to shard-owned embeddings — and shrinks its aux
  /// structure to the owned slice. Leave 0 everywhere else.
  uint32_t restrict_candidates_below = 0;
  /// Testing hook: silently drop the last root candidate before
  /// enumeration — an emulated off-by-one loop bound in the enumerator.
  /// Exists so the differential fuzzer's detection and minimization paths
  /// can be exercised end to end (`sgm_fuzz --inject-fault` and the
  /// FuzzInjectedFault test); never set it in production code.
  bool debug_skip_last_root_candidate = false;

  /// The original algorithm, as published.
  static MatchOptions Classic(Algorithm algorithm);

  /// The optimized variant of Sections 5.2/5.3: edges between candidates
  /// maintained for all query edges, set-intersection local candidates,
  /// GraphQL candidates for the direct-enumeration algorithms, VF2++ extra
  /// rules removed.
  static MatchOptions Optimized(Algorithm algorithm);

  /// The paper's recommended combination (§6), with failing sets enabled
  /// for queries of more than 8 vertices.
  static MatchOptions Recommended(uint32_t query_vertex_count);
};

/// Result of one matching run, with the per-phase breakdown the paper's
/// metrics need (preprocessing vs enumeration time, candidate counts,
/// memory of the candidate sets and the auxiliary structure).
struct MatchResult {
  uint64_t match_count = 0;
  /// Filtering + aux-structure + ordering time (the paper's "preprocessing
  /// time").
  double preprocessing_ms = 0.0;
  double filter_ms = 0.0;
  double aux_build_ms = 0.0;
  double order_ms = 0.0;
  double enumeration_ms = 0.0;
  double total_ms = 0.0;
  /// (1/|V(q)|) * sum |C(u)|.
  double average_candidates = 0.0;
  size_t candidate_memory_bytes = 0;
  size_t aux_memory_bytes = 0;
  std::vector<Vertex> matching_order;
  EnumerateStats enumerate;
  /// Per-round pruning trajectory of the filtering phase (always recorded;
  /// a round is a handful of bytes and filters run once per query).
  std::vector<FilterRound> filter_rounds;
  /// Per-depth search profile; empty unless options.collector had depth
  /// profiling enabled (see obs/depth_profile.h).
  obs::DepthProfile depth_profile;

  /// True when the query was killed by the per-query time limit — an
  /// "unsolved query" in the paper's terminology.
  bool unsolved() const { return enumerate.timed_out; }
};

/// Runs one subgraph matching query. The query must be connected, with
/// 1 <= |V(q)| <= 64. `callback`, when provided, receives every match.
MatchResult MatchQuery(const Graph& query, const Graph& data,
                       const MatchOptions& options,
                       const MatchCallback& callback = {});

/// Subgraph containment: true iff the data graph contains at least one
/// embedding of the query. Implemented by stopping the matching engine at
/// the first match — the index-free approach of Sun and Luo (ICDE 2019)
/// that the paper's related-work section describes.
bool ContainsSubgraph(const Graph& query, const Graph& data,
                      const MatchOptions& options = MatchOptions{});

/// Convenience wrapper materializing the embeddings: element i of a match
/// is the data vertex mapped to query vertex i. Respects
/// options.max_matches; be mindful of memory when raising the cap.
std::vector<std::vector<Vertex>> CollectMatches(
    const Graph& query, const Graph& data,
    const MatchOptions& options = MatchOptions{});

}  // namespace sgm

#endif  // SGM_MATCHER_H_
