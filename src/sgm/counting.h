// Subgraph counting on top of the matching engine: automorphism counting of
// query graphs and distinct (unordered) occurrence counts.
//
// Subgraph matching enumerates *embeddings* (injective mappings), so a data
// subgraph isomorphic to q is reported once per automorphism of q — e.g.,
// every triangle occurrence shows up 6 times with an unlabeled triangle
// query. Motif-counting applications usually want occurrences, which is
// match_count / |Aut(q)|.
#ifndef SGM_COUNTING_H_
#define SGM_COUNTING_H_

#include <cstdint>

#include "sgm/matcher.h"

namespace sgm {

/// Number of label-preserving automorphisms of the query graph (>= 1: the
/// identity always counts). Computed by matching the query against itself;
/// queries are small (<= 64 vertices), so this is fast in practice.
uint64_t CountAutomorphisms(const Graph& query);

/// Result of a distinct-occurrence count.
struct OccurrenceCount {
  /// Number of embeddings found (possibly capped by options.max_matches).
  uint64_t embeddings = 0;
  /// |Aut(q)|.
  uint64_t automorphisms = 1;
  /// embeddings / automorphisms — exact when the enumeration completed
  /// (no cap, no timeout), a lower bound otherwise.
  uint64_t occurrences = 0;
  /// True when the count is exact.
  bool exact = false;
};

/// Counts distinct occurrences of the query in the data graph: enumerates
/// embeddings with the given options and divides by |Aut(q)|.
OccurrenceCount CountOccurrences(const Graph& query, const Graph& data,
                                 MatchOptions options = MatchOptions{});

}  // namespace sgm

#endif  // SGM_COUNTING_H_
