#include "sgm/counting.h"

namespace sgm {

uint64_t CountAutomorphisms(const Graph& query) {
  MatchOptions options;
  // Self-matching is tiny; run the recommended configuration uncapped.
  options = MatchOptions::Recommended(query.vertex_count());
  options.max_matches = 0;
  options.time_limit_ms = 0;
  const MatchResult result = MatchQuery(query, query, options);
  SGM_CHECK_MSG(result.match_count >= 1, "identity automorphism must exist");
  return result.match_count;
}

OccurrenceCount CountOccurrences(const Graph& query, const Graph& data,
                                 MatchOptions options) {
  OccurrenceCount count;
  count.automorphisms = CountAutomorphisms(query);
  const MatchResult result = MatchQuery(query, data, options);
  count.embeddings = result.match_count;
  count.exact = !result.unsolved() && !result.enumerate.reached_match_limit;
  // Embedding counts of completed enumerations are divisible by |Aut(q)|
  // (the automorphism group acts freely on embeddings); integer division is
  // exact then, and a floor (lower bound) under caps or timeouts.
  count.occurrences = count.embeddings / count.automorphisms;
  return count;
}

}  // namespace sgm
