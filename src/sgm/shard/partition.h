// Vertex partitioners for sharded data-graph execution (DESIGN.md §13).
//
// A Partition splits the data-graph vertex set into K disjoint shards. Two
// partitioners are provided:
//  * kHash — stateless multiplicative hash of the vertex id. Cut-oblivious
//    but instantaneous and stable under any vertex order; the baseline.
//  * kGreedy — community-aware greedy edge-cut: deterministic label
//    propagation (nearest-id tie-break, so seed labels cannot leak across
//    bridge edges) finds fine clusters, multi-level weighted propagation on
//    the contracted cluster graph fuses fragments of one community without
//    merging bridged communities, whole clusters are then packed into
//    shards in attachment order (Prim-style, under a 5% balance slack),
//    clusters too big for any shard are split by a FENNEL-style greedy
//    stream, and a few rounds of local refinement clean up the remainder.
//    On community-structured graphs this recovers the communities and keeps
//    the cut (and hence the boundary pass of the sharded executor) small.
//
// Both are deterministic: the same graph and K produce the same assignment
// on every platform, which the differential fuzz oracle and the reproducer
// format rely on.
#ifndef SGM_SHARD_PARTITION_H_
#define SGM_SHARD_PARTITION_H_

#include <optional>
#include <string_view>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm::shard {

/// Vertex-partitioning strategy for ShardedGraph.
enum class Partitioner : uint8_t {
  kHash = 0,
  kGreedy = 1,
};

/// Stable lowercase name ("hash", "greedy") — used by CLI flags, run
/// reports and fuzz reproducers.
const char* PartitionerName(Partitioner partitioner);

/// Inverse of PartitionerName; nullopt on unknown names.
std::optional<Partitioner> ParsePartitioner(std::string_view name);

/// A disjoint assignment of every data vertex to one of `shard_count`
/// shards, plus the cut summary the sharded executor plans around.
struct Partition {
  uint32_t shard_count = 1;
  Partitioner method = Partitioner::kHash;
  /// assignment[v] = shard owning data vertex v; size vertex_count.
  std::vector<uint32_t> assignment;
  /// Owned-vertex count per shard; sums to vertex_count.
  std::vector<uint32_t> shard_sizes;
  /// Undirected edges whose endpoints live in different shards.
  uint64_t cut_edges = 0;

  /// Partitions `data` into `shard_count` >= 1 shards. A shard count above
  /// the vertex count simply leaves the excess shards empty.
  static Partition Build(const Graph& data, uint32_t shard_count,
                         Partitioner method);

  size_t MemoryBytes() const {
    return sizeof(Partition) + assignment.capacity() * sizeof(uint32_t) +
           shard_sizes.capacity() * sizeof(uint32_t);
  }
};

}  // namespace sgm::shard

#endif  // SGM_SHARD_PARTITION_H_
