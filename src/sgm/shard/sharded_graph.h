// Sharded view of a data graph: K self-contained shard graphs plus the cut
// region the boundary pass enumerates (DESIGN.md §13).
//
// Each shard packages the vertices it owns together with a one-hop halo of
// ghost vertices, so every edge incident to an owned vertex is present and
// the shard is a fully valid `Graph` — filters, auxiliary structures and
// the enumeration engine run on it unmodified. Local vertex ids are laid
// out owned-first (owned globals ascending, then halo globals ascending),
// which lets the sharded executor restrict a pass to owned vertices with a
// single id threshold (MatchOptions::restrict_candidates_below).
//
// The cut region is the vertex-induced subgraph on the ball of radius r
// around the cut-edge endpoints. For r >= the query's worst edge
// eccentricity (max over query edges of the distance from any query vertex
// to the nearer endpoint — at most the diameter) it provably contains
// every embedding that spans two shards (the exactness argument in
// DESIGN.md §13), so one pass over it completes the shard-local counts.
// Regions are built lazily per radius and cached; a ShardedGraph is safe to
// share across concurrent requests.
#ifndef SGM_SHARD_SHARDED_GRAPH_H_
#define SGM_SHARD_SHARDED_GRAPH_H_

#include <memory>
#include <mutex>
#include <map>
#include <vector>

#include "sgm/graph/graph.h"
#include "sgm/shard/partition.h"

namespace sgm::shard {

/// One shard: the owned vertices plus their one-hop halo, as a standalone
/// graph. Halo-halo edges are intentionally absent — every shard edge has
/// at least one owned endpoint, and embeddings confined to owned vertices
/// see exactly their full neighborhoods.
struct Shard {
  Graph graph;
  /// Local ids [0, owned_count) are owned; [owned_count, n) are halo.
  uint32_t owned_count = 0;
  /// local id -> global data vertex; ascending within each segment.
  std::vector<Vertex> local_to_global;

  uint32_t halo_count() const {
    return graph.vertex_count() - owned_count;
  }
  size_t MemoryBytes() const {
    return sizeof(Shard) + graph.MemoryBytes() +
           local_to_global.capacity() * sizeof(Vertex);
  }
};

/// Vertex-induced subgraph on the ball of `radius` around the cut-edge
/// endpoints, with the local->global mapping needed to report matches in
/// data-graph ids.
struct CutRegion {
  Graph graph;
  /// local id -> global data vertex, ascending.
  std::vector<Vertex> local_to_global;
  uint32_t radius = 0;

  size_t MemoryBytes() const {
    return sizeof(CutRegion) + graph.MemoryBytes() +
           local_to_global.capacity() * sizeof(Vertex);
  }
};

/// The partitioned data graph: partition + shard graphs + lazily cached cut
/// regions. Immutable after construction except for the region cache, which
/// is internally synchronized; sharing one instance across threads (the
/// serving path) is safe. The referenced data graph must outlive this
/// object.
class ShardedGraph {
 public:
  ShardedGraph(const Graph& data, uint32_t shard_count, Partitioner method);

  const Graph& data() const { return *data_; }
  const Partition& partition() const { return partition_; }
  uint32_t shard_count() const { return partition_.shard_count; }
  const Shard& shard(uint32_t s) const { return shards_[s]; }

  /// Sorted global ids of cut-edge endpoints. Empty when nothing is cut —
  /// the boundary pass is skipped then.
  const std::vector<Vertex>& boundary_vertices() const { return boundary_; }

  /// The cut region for the given radius (lazily built, cached, shared).
  /// Returns nullptr when there are no cut edges.
  std::shared_ptr<const CutRegion> Region(uint32_t radius) const;

  /// Footprint of the sharded structures (the data graph is not owned and
  /// not counted).
  size_t MemoryBytes() const;

 private:
  const Graph* data_;
  Partition partition_;
  std::vector<Shard> shards_;
  std::vector<Vertex> boundary_;
  mutable std::mutex region_mutex_;
  mutable std::map<uint32_t, std::shared_ptr<const CutRegion>> regions_;
};

}  // namespace sgm::shard

#endif  // SGM_SHARD_SHARDED_GRAPH_H_
