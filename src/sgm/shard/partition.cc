#include "sgm/shard/partition.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <tuple>

namespace sgm::shard {

namespace {

// splitmix64 finalizer: a fast, well-mixed permutation of the vertex id.
// Fixed constants, no process state — hash shards are reproducible across
// runs and platforms.
uint64_t MixVertex(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void AssignByHash(const Graph& data, uint32_t shard_count,
                  std::vector<uint32_t>& assignment) {
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    assignment[v] = static_cast<uint32_t>(MixVertex(v) % shard_count);
  }
}

// BFS traversal order over the subgraph induced by `within` (roots in id
// order; `within` is sorted ascending). Used as the stream order when a
// cluster must be split: after each root, every streamed vertex has an
// already-placed neighbor, so the placed-neighbor signal is never empty
// and the cut through the cluster stays local instead of scattering.
std::vector<Vertex> BfsOrderWithin(const Graph& data,
                                   const std::vector<Vertex>& within) {
  std::vector<Vertex> order;
  order.reserve(within.size());
  // Membership marker; kInvalidVertex = not in the set, 0 = unvisited
  // member, 1 = visited member.
  std::vector<uint32_t> state(data.vertex_count(), kInvalidVertex);
  for (const Vertex v : within) state[v] = 0;
  for (const Vertex root : within) {
    if (state[root] != 0) continue;
    state[root] = 1;
    order.push_back(root);
    for (size_t head = order.size() - 1; head < order.size(); ++head) {
      for (const Vertex w : data.neighbors(order[head])) {
        if (state[w] == 0) {
          state[w] = 1;
          order.push_back(w);
        }
      }
    }
  }
  return order;
}

// Deterministic asynchronous label propagation: every vertex starts as its
// own cluster and repeatedly adopts the most frequent cluster among its
// neighbors, swept in vertex order. Frequency ties — universal in the
// first sweep, when every neighbor still names a distinct cluster — are
// broken toward the cluster id nearest to v (then the smaller id). The
// nearest-id rule is what keeps the sweep local: breaking toward the
// globally smallest id lets one low-id cluster leak across a single bridge
// edge during the all-singleton phase and then cascade through the far
// community, merging both sides into one oversized cluster. Converges in a
// handful of rounds on community-structured graphs; on graphs without
// community structure it still tends toward few giant clusters, which the
// packer below splits by streaming.
std::vector<uint32_t> PropagateClusters(const Graph& data, int rounds) {
  const uint32_t n = data.vertex_count();
  std::vector<uint32_t> cluster(n);
  for (uint32_t v = 0; v < n; ++v) cluster[v] = v;
  std::vector<uint32_t> local;
  for (int round = 0; round < rounds; ++round) {
    bool changed = false;
    for (Vertex v = 0; v < n; ++v) {
      const auto neighbors = data.neighbors(v);
      if (neighbors.empty()) continue;
      local.clear();
      for (const Vertex w : neighbors) local.push_back(cluster[w]);
      std::sort(local.begin(), local.end());
      uint32_t mode = local[0];
      uint32_t mode_count = 0;
      uint32_t mode_dist = 0;
      for (size_t i = 0; i < local.size();) {
        size_t j = i;
        while (j < local.size() && local[j] == local[i]) ++j;
        const auto count = static_cast<uint32_t>(j - i);
        const uint32_t dist = local[i] > v ? local[i] - v : v - local[i];
        if (count > mode_count ||
            (count == mode_count && dist < mode_dist)) {
          mode = local[i];
          mode_count = count;
          mode_dist = dist;
        }
        i = j;
      }
      if (mode != cluster[v]) {
        cluster[v] = mode;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return cluster;
}

// The contracted cluster graph: one supernode per cluster, edges weighted
// by the number of data edges between the clusters, plus each cluster's
// internal edge count (its cohesion).
struct ClusterGraph {
  uint32_t count = 0;
  std::vector<uint32_t> size;     // vertices per cluster
  std::vector<uint64_t> internal;  // data edges inside the cluster
  std::vector<size_t> offset;     // CSR offsets into `edges`, count + 1
  std::vector<std::pair<uint32_t, uint64_t>> edges;  // (cluster, weight)
};

// Compacts `cluster` to dense ids 0..count-1 (in order of first
// appearance by vertex id — deterministic) and builds the contracted
// graph.
ClusterGraph ContractClusters(const Graph& data,
                              std::vector<uint32_t>& cluster) {
  const uint32_t n = data.vertex_count();
  ClusterGraph cg;
  std::vector<uint32_t> compact(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) {
    if (compact[cluster[v]] == kInvalidVertex) {
      compact[cluster[v]] = cg.count++;
    }
  }
  for (Vertex v = 0; v < n; ++v) cluster[v] = compact[cluster[v]];
  cg.size.assign(cg.count, 0);
  cg.internal.assign(cg.count, 0);
  std::vector<uint64_t> keys;  // packed (cu << 32 | cw), both directions
  for (Vertex v = 0; v < n; ++v) {
    ++cg.size[cluster[v]];
    for (const Vertex w : data.neighbors(v)) {
      if (cluster[w] == cluster[v]) {
        if (w > v) ++cg.internal[cluster[v]];
      } else {
        keys.push_back((static_cast<uint64_t>(cluster[v]) << 32) |
                       cluster[w]);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  cg.offset.assign(cg.count + 1, 0);
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    cg.edges.emplace_back(static_cast<uint32_t>(keys[i] & 0xffffffffu),
                          j - i);
    ++cg.offset[(keys[i] >> 32) + 1];
    i = j;
  }
  for (uint32_t c = 0; c < cg.count; ++c) cg.offset[c + 1] += cg.offset[c];
  return cg;
}

// One level of weighted label propagation on the contracted graph: a
// supernode adopts the label with the largest summed edge weight among its
// neighbors, but only when that connection is at least half its own
// internal cohesion — so two fragments of one community (connection
// comparable to cohesion) merge, while two communities joined by a few
// bridge edges (connection ≪ cohesion) never do. Ties toward the smaller
// label. Returns true if anything merged.
bool PropagateWeighted(const ClusterGraph& cg, std::vector<uint32_t>& label,
                       int rounds) {
  label.resize(cg.count);
  for (uint32_t c = 0; c < cg.count; ++c) label[c] = c;
  bool any = false;
  std::vector<std::pair<uint32_t, uint64_t>> local;  // (label, weight)
  for (int round = 0; round < rounds; ++round) {
    bool changed = false;
    for (uint32_t c = 0; c < cg.count; ++c) {
      local.clear();
      for (size_t e = cg.offset[c]; e < cg.offset[c + 1]; ++e) {
        local.emplace_back(label[cg.edges[e].first], cg.edges[e].second);
      }
      if (local.empty()) continue;
      std::sort(local.begin(), local.end());
      uint32_t best = label[c];
      uint64_t best_sum = 0;
      for (size_t i = 0; i < local.size();) {
        size_t j = i;
        uint64_t sum = 0;
        while (j < local.size() && local[j].first == local[i].first) {
          sum += local[j].second;
          ++j;
        }
        if (sum > best_sum || (sum == best_sum && local[i].first < best)) {
          best = local[i].first;
          best_sum = sum;
        }
        i = j;
      }
      if (best != label[c] && 2 * best_sum >= cg.internal[c]) {
        label[c] = best;
        changed = true;
        any = true;
      }
    }
    if (!changed) break;
  }
  return any;
}

// Community-aware greedy edge-cut. Four phases, all deterministic:
//  1. Label propagation finds fine-grained clusters (communities or
//     fragments thereof).
//  2. Multi-level coarsening: contract the clusters and run weighted label
//     propagation on the supergraph, repeating while fragments keep
//     merging. Fragments of one community fuse (connection ~ cohesion);
//     bridged communities stay separate (connection ≪ cohesion).
//  3. Clusters are packed whole into shards in affinity order, Prim-style:
//     starting from the largest, repeatedly place the cluster with the
//     heaviest edge weight to any already-populated shard, onto the shard
//     it is most attached to among those with room under the 5% balance
//     slack (ties toward the emptier shard, then the lower index). Placing
//     by attachment rather than by size keeps each community's clusters
//     chaining onto the same shard. A cluster that fits nowhere is split
//     by a FENNEL-style greedy stream over its vertices in BFS order:
//     highest placed-neighbor count minus the marginal balance cost
//     α·γ·√size (Tsourakakis et al., WSDM'14, γ = 1.5, α = √k·m/n^1.5).
//  4. A few rounds of local refinement move stragglers to the shard
//     holding most of their neighbors while respecting the slack.
// Packing whole clusters is what keeps communities intact: a pure stream
// tears whichever community happens to straddle a shard's capacity fill.
void AssignGreedy(const Graph& data, uint32_t shard_count,
                  std::vector<uint32_t>& assignment) {
  const uint32_t n = data.vertex_count();
  const double capacity =
      std::max(1.0, (static_cast<double>(n) / shard_count) * 1.05);
  const double m = static_cast<double>(data.edge_count());
  const double alpha_gamma =
      n > 0 ? 1.5 * std::sqrt(static_cast<double>(shard_count)) *
                  std::max(m, static_cast<double>(n)) /
                  (static_cast<double>(n) * std::sqrt(static_cast<double>(n)))
            : 1.0;

  // ---- Phases 1–2: fine clusters, then multi-level coarsening. ----
  std::vector<uint32_t> cluster = PropagateClusters(data, /*rounds=*/5);
  ClusterGraph cg = ContractClusters(data, cluster);
  std::vector<uint32_t> label;
  for (int level = 0; level < 4 && cg.count > 1; ++level) {
    if (!PropagateWeighted(cg, label, /*rounds=*/5)) break;
    for (Vertex v = 0; v < n; ++v) cluster[v] = label[cluster[v]];
    cg = ContractClusters(data, cluster);
  }
  std::vector<std::vector<Vertex>> members(cg.count);
  for (Vertex v = 0; v < n; ++v) members[cluster[v]].push_back(v);

  // ---- Phase 3: pack in affinity order (Prim-style). ----
  std::vector<uint32_t> sizes(shard_count, 0);
  std::vector<uint32_t> neighbor_hits(shard_count, 0);
  std::vector<bool> placed(n, false);
  std::vector<bool> cluster_placed(cg.count, false);
  // affinity[c * shard_count + s] = summed edge weight from cluster c to
  // the clusters already placed on shard s; best_affinity[c] = its max.
  std::vector<uint64_t> affinity(
      static_cast<size_t>(cg.count) * shard_count, 0);
  std::vector<uint64_t> best_affinity(cg.count, 0);
  // Max-heap of (affinity snapshot, cluster size, ~cluster id): heaviest
  // attachment first, then the larger cluster, then the smaller id. Stale
  // snapshots are skipped on pop (a fresher entry is always present).
  using HeapEntry = std::tuple<uint64_t, uint32_t, uint32_t>;
  std::priority_queue<HeapEntry> heap;
  for (uint32_t c = 0; c < cg.count; ++c) {
    heap.emplace(0, cg.size[c], ~c);
  }
  while (!heap.empty()) {
    const auto [snapshot, unused_size, inverted] = heap.top();
    heap.pop();
    const uint32_t c = ~inverted;
    if (cluster_placed[c] || snapshot != best_affinity[c]) continue;
    const std::vector<Vertex>& cluster_members = members[c];
    uint32_t best = shard_count;
    for (uint32_t s = 0; s < shard_count; ++s) {
      if (static_cast<double>(sizes[s]) + cluster_members.size() > capacity) {
        continue;
      }
      const uint64_t a = affinity[static_cast<size_t>(c) * shard_count + s];
      const uint64_t b =
          best == shard_count
              ? 0
              : affinity[static_cast<size_t>(c) * shard_count + best];
      if (best == shard_count || a > b || (a == b && sizes[s] < sizes[best])) {
        best = s;
      }
    }
    if (best != shard_count) {
      for (const Vertex v : cluster_members) {
        assignment[v] = best;
        placed[v] = true;
      }
      sizes[best] += static_cast<uint32_t>(cluster_members.size());
    } else {
      // No shard can hold the whole cluster: FENNEL-stream its vertices in
      // BFS order (every streamed vertex after the first has placed
      // neighbors, so the cut through the cluster stays local).
      for (const Vertex v : BfsOrderWithin(data, cluster_members)) {
        std::memset(neighbor_hits.data(), 0,
                    neighbor_hits.size() * sizeof(uint32_t));
        for (const Vertex w : data.neighbors(v)) {
          if (placed[w]) ++neighbor_hits[assignment[w]];
        }
        uint32_t target = shard_count;
        double best_score = 0.0;
        for (uint32_t s = 0; s < shard_count; ++s) {
          if (static_cast<double>(sizes[s]) >= capacity) continue;
          const double score =
              static_cast<double>(neighbor_hits[s]) -
              alpha_gamma * std::sqrt(static_cast<double>(sizes[s]));
          if (target == shard_count || score > best_score ||
              (score == best_score && sizes[s] < sizes[target])) {
            target = s;
            best_score = score;
          }
        }
        if (target == shard_count) target = 0;  // all full; slack absorbs it
        assignment[v] = target;
        placed[v] = true;
        ++sizes[target];
      }
    }
    cluster_placed[c] = true;
    // The placement strengthens every unplaced neighbor's pull; refresh
    // their heap entries. After a stream split the cluster may span
    // several shards, so recount per member shard.
    std::fill(neighbor_hits.begin(), neighbor_hits.end(), 0);
    if (best != shard_count) {
      for (size_t e = cg.offset[c]; e < cg.offset[c + 1]; ++e) {
        const uint32_t d = cg.edges[e].first;
        if (cluster_placed[d]) continue;
        const size_t slot = static_cast<size_t>(d) * shard_count + best;
        affinity[slot] += cg.edges[e].second;
        if (affinity[slot] > best_affinity[d]) {
          best_affinity[d] = affinity[slot];
          heap.emplace(best_affinity[d], cg.size[d], ~d);
        }
      }
    } else {
      // Stream-split cluster: attribute each member's edges to its shard.
      for (const Vertex v : cluster_members) {
        for (const Vertex w : data.neighbors(v)) {
          const uint32_t d = cluster[w];
          if (cluster_placed[d]) continue;
          const size_t slot =
              static_cast<size_t>(d) * shard_count + assignment[v];
          affinity[slot] += 1;
          if (affinity[slot] > best_affinity[d]) {
            best_affinity[d] = affinity[slot];
            heap.emplace(best_affinity[d], cg.size[d], ~d);
          }
        }
      }
    }
  }
  // METIS-style local refinement: a few deterministic rounds moving each
  // vertex to the shard holding most of its neighbors when that strictly
  // reduces the cut and respects the soft capacity. Cleans up the vertices
  // the stream placed before their community arrived.
  const auto size_cap = static_cast<uint32_t>(capacity);
  for (int round = 0; round < 5; ++round) {
    bool moved = false;
    for (Vertex v = 0; v < n; ++v) {
      std::memset(neighbor_hits.data(), 0,
                  neighbor_hits.size() * sizeof(uint32_t));
      for (const Vertex w : data.neighbors(v)) ++neighbor_hits[assignment[w]];
      const uint32_t current = assignment[v];
      uint32_t best = current;
      for (uint32_t s = 0; s < shard_count; ++s) {
        if (s == current || sizes[s] >= size_cap) continue;
        if (neighbor_hits[s] > neighbor_hits[best]) best = s;
      }
      if (best != current) {
        --sizes[current];
        ++sizes[best];
        assignment[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

const char* PartitionerName(Partitioner partitioner) {
  switch (partitioner) {
    case Partitioner::kHash:
      return "hash";
    case Partitioner::kGreedy:
      return "greedy";
  }
  return "unknown";
}

std::optional<Partitioner> ParsePartitioner(std::string_view name) {
  if (name == "hash") return Partitioner::kHash;
  if (name == "greedy") return Partitioner::kGreedy;
  return std::nullopt;
}

Partition Partition::Build(const Graph& data, uint32_t shard_count,
                           Partitioner method) {
  Partition partition;
  partition.shard_count = std::max(shard_count, 1u);
  partition.method = method;
  partition.assignment.assign(data.vertex_count(), 0);
  partition.shard_sizes.assign(partition.shard_count, 0);
  if (partition.shard_count > 1) {
    switch (method) {
      case Partitioner::kHash:
        AssignByHash(data, partition.shard_count, partition.assignment);
        break;
      case Partitioner::kGreedy:
        AssignGreedy(data, partition.shard_count, partition.assignment);
        break;
    }
  }
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    ++partition.shard_sizes[partition.assignment[v]];
    for (const Vertex w : data.neighbors(v)) {
      if (w > v && partition.assignment[w] != partition.assignment[v]) {
        ++partition.cut_edges;
      }
    }
  }
  return partition;
}

}  // namespace sgm::shard
