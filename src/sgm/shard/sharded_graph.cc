#include "sgm/shard/sharded_graph.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <utility>

#include "sgm/graph/graph_utils.h"

namespace sgm::shard {

namespace {

Shard BuildShard(const Graph& data, const Partition& partition, uint32_t s) {
  Shard shard;
  const std::vector<uint32_t>& assignment = partition.assignment;
  // Owned globals ascending, then halo globals ascending: the owned-first
  // local id layout the executor's id-threshold restriction relies on.
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    if (assignment[v] == s) shard.local_to_global.push_back(v);
  }
  shard.owned_count = static_cast<uint32_t>(shard.local_to_global.size());
  std::vector<Vertex> halo;
  for (uint32_t i = 0; i < shard.owned_count; ++i) {
    for (const Vertex w : data.neighbors(shard.local_to_global[i])) {
      if (assignment[w] != s) halo.push_back(w);
    }
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  shard.local_to_global.insert(shard.local_to_global.end(), halo.begin(),
                               halo.end());

  std::vector<Vertex> global_to_local(data.vertex_count(), kInvalidVertex);
  for (uint32_t i = 0; i < shard.local_to_global.size(); ++i) {
    global_to_local[shard.local_to_global[i]] = i;
  }
  std::vector<Label> labels(shard.local_to_global.size());
  for (uint32_t i = 0; i < shard.local_to_global.size(); ++i) {
    labels[i] = data.label(shard.local_to_global[i]);
  }
  // Every edge with an owned endpoint, each exactly once: owned-owned edges
  // from the lower endpoint, owned-halo edges from the owned side. Halo-halo
  // edges are dropped — no all-owned embedding can use them.
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (uint32_t i = 0; i < shard.owned_count; ++i) {
    const Vertex v = shard.local_to_global[i];
    for (const Vertex w : data.neighbors(v)) {
      if (assignment[w] != s || w > v) {
        edges.emplace_back(i, global_to_local[w]);
      }
    }
  }
  shard.graph = Graph(std::move(labels), edges);
  return shard;
}

}  // namespace

ShardedGraph::ShardedGraph(const Graph& data, uint32_t shard_count,
                           Partitioner method)
    : data_(&data),
      partition_(Partition::Build(data, shard_count, method)) {
  shards_.resize(partition_.shard_count);
  const uint32_t workers = std::min<uint32_t>(
      partition_.shard_count,
      std::max(2u, std::thread::hardware_concurrency()));
  if (workers <= 1 || partition_.shard_count <= 1) {
    for (uint32_t s = 0; s < partition_.shard_count; ++s) {
      shards_[s] = BuildShard(data, partition_, s);
    }
  } else {
    std::atomic<uint32_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (uint32_t t = 0; t < workers; ++t) {
      threads.emplace_back([&] {
        for (uint32_t s = next.fetch_add(1); s < partition_.shard_count;
             s = next.fetch_add(1)) {
          shards_[s] = BuildShard(data, partition_, s);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    for (const Vertex w : data.neighbors(v)) {
      if (w > v && partition_.assignment[w] != partition_.assignment[v]) {
        boundary_.push_back(v);
        boundary_.push_back(w);
      }
    }
  }
  std::sort(boundary_.begin(), boundary_.end());
  boundary_.erase(std::unique(boundary_.begin(), boundary_.end()),
                  boundary_.end());
}

std::shared_ptr<const CutRegion> ShardedGraph::Region(uint32_t radius) const {
  if (boundary_.empty()) return nullptr;
  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    auto it = regions_.find(radius);
    if (it != regions_.end()) return it->second;
  }
  // Multi-source BFS from every cut-edge endpoint, `radius` hops deep.
  std::vector<uint32_t> dist(data_->vertex_count(), kInvalidVertex);
  std::deque<Vertex> queue;
  for (const Vertex b : boundary_) {
    dist[b] = 0;
    queue.push_back(b);
  }
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    if (dist[v] >= radius) continue;
    for (const Vertex w : data_->neighbors(v)) {
      if (dist[w] == kInvalidVertex) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  auto region = std::make_shared<CutRegion>();
  region->radius = radius;
  for (Vertex v = 0; v < data_->vertex_count(); ++v) {
    if (dist[v] != kInvalidVertex) region->local_to_global.push_back(v);
  }
  region->graph = InducedSubgraph(*data_, region->local_to_global);
  std::lock_guard<std::mutex> lock(region_mutex_);
  auto [it, inserted] = regions_.emplace(radius, std::move(region));
  return it->second;
}

size_t ShardedGraph::MemoryBytes() const {
  size_t bytes = sizeof(ShardedGraph) + partition_.MemoryBytes() +
                 boundary_.capacity() * sizeof(Vertex);
  for (const Shard& shard : shards_) bytes += shard.MemoryBytes();
  std::lock_guard<std::mutex> lock(region_mutex_);
  for (const auto& [radius, region] : regions_) {
    bytes += region->MemoryBytes();
  }
  return bytes;
}

}  // namespace sgm::shard
