// Sharded plan build and execution (the sharded half of plan.h).
//
// Exactness scheme (DESIGN.md §13): every embedding of a connected query
// maps to a connected subgraph of the data graph, so an embedding either
// stays entirely inside one shard's owned vertices — found by exactly one
// shard-local pass, whose candidates are truncated to owned ids — or maps
// some query edge onto a cut edge. In the latter case both endpoints of
// that edge land on cut-edge endpoints, and every other matched vertex
// lies within min(dist(w,u), dist(w,v)) hops of one of them (a data-graph
// path between matched vertices is never longer than the query path
// between their query vertices). Maximizing over which edge straddles
// gives the boundary radius — the query's worst edge eccentricity, at most
// its diameter and often smaller (1 for stars) — and the whole embedding,
// edges included, survives inside the vertex-induced cut region of that
// radius. The boundary pass
// enumerates the region and keeps exactly the embeddings whose vertices
// span two or more shards: found there once, and by no local pass.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sgm/plan.h"
#include "sgm/util/timer.h"

namespace sgm {

namespace {

// Boundary radius of the (connected, <= 64 vertex) query graph: the
// largest, over query edges (u, v), distance from any query vertex to the
// nearer of u and v. A straddling embedding maps some edge onto a cut
// edge, so every matched vertex is within this many hops of a cut-edge
// endpoint. At most the diameter, and strictly smaller for edge-central
// shapes — 1 for a star of any size, where the diameter bound would be 2.
uint32_t QueryBoundaryRadius(const Graph& query) {
  const Vertex n = query.vertex_count();
  // All-pairs distances: BFS per vertex (n <= 64 keeps this trivial).
  std::vector<std::vector<uint32_t>> dist(n);
  std::vector<Vertex> queue;
  for (Vertex root = 0; root < n; ++root) {
    auto& d = dist[root];
    d.assign(n, kInvalidVertex);
    queue.assign(1, root);
    d[root] = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (const Vertex w : query.neighbors(v)) {
        if (d[w] == kInvalidVertex) {
          d[w] = d[v] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  uint32_t radius = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : query.neighbors(u)) {
      if (v < u) continue;  // each undirected edge once
      uint32_t ecc = 0;
      for (Vertex w = 0; w < n; ++w) {
        ecc = std::max(ecc, std::min(dist[u][w], dist[v][w]));
      }
      radius = std::max(radius, ecc);
    }
  }
  return radius;
}

// The shared delivery gate of one sharded run: passes run concurrently, but
// the match budget, the user callback, and the stop decision are global.
// Attribution keeps the merged count exact: a pass's delivery either lands
// inside the budget (attributed to that pass) or trips the global stop.
struct DeliveryGate {
  uint64_t budget = 0;  // 0 = unlimited
  const MatchCallback* user = nullptr;
  std::atomic<uint64_t> delivered{0};
  std::atomic<bool> stop{false};
  std::mutex user_mutex;

  // Returns false when the pass must stop. On true (and on the delivery
  // that exactly exhausts the budget) the match was attributed.
  bool Deliver(std::span<const Vertex> global_mapping, uint64_t& pass_count) {
    if (user == nullptr) {
      const uint64_t prev = delivered.fetch_add(1, std::memory_order_relaxed);
      if (budget != 0 && prev >= budget) {
        delivered.fetch_sub(1, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      ++pass_count;
      if (budget != 0 && prev + 1 >= budget) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    }
    // Delivered-match semantics of the serial engine, serialized across
    // passes: a veto still counts the match that provoked it.
    std::lock_guard<std::mutex> lock(user_mutex);
    if (stop.load(std::memory_order_relaxed)) return false;
    if (budget != 0 && delivered.load(std::memory_order_relaxed) >= budget) {
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    const bool keep = (*user)(global_mapping);
    delivered.fetch_add(1, std::memory_order_relaxed);
    ++pass_count;
    if (!keep ||
        (budget != 0 && delivered.load(std::memory_order_relaxed) >= budget)) {
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

// One unit of sharded work: a shard-local pass or the boundary pass.
struct PassTask {
  const MatchPlan* plan = nullptr;
  const Graph* graph = nullptr;
  const std::vector<Vertex>* local_to_global = nullptr;
  uint32_t shard = 0;
  bool boundary = false;
  uint32_t owned_vertices = 0;
};

// Fans `count` tasks out over up to min(count, max(2, hardware)) threads.
// At least two threads whenever there are two tasks, so the shared-gate
// interleavings stay exercised (and TSan-visible) on small machines.
void RunTasks(uint32_t count, const std::function<void(uint32_t)>& body) {
  if (count == 0) return;
  const uint32_t workers = std::min(
      count, std::max(2u, std::thread::hardware_concurrency()));
  if (count == 1 || workers <= 1) {
    for (uint32_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<uint32_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (uint32_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        body(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace

size_t ShardPlan::MemoryBytes() const {
  size_t bytes = sizeof(ShardPlan);
  for (const std::unique_ptr<MatchPlan>& plan : shard_plans) {
    if (plan != nullptr) bytes += plan->MemoryBytes();
  }
  if (boundary_plan != nullptr) bytes += boundary_plan->MemoryBytes();
  if (region != nullptr) bytes += region->MemoryBytes();
  return bytes;
}

std::unique_ptr<ShardPlan> BuildShardPlan(const Graph& query,
                                          const shard::ShardedGraph& sharded,
                                          const MatchOptions& options) {
  SGM_CHECK_MSG(query.vertex_count() >= 1 &&
                    query.vertex_count() <= kMaxQueryVertices,
                "query size out of supported range");
  Timer build_timer;
  auto plan = std::make_unique<ShardPlan>();
  plan->options = options;
  const uint32_t shard_count = sharded.shard_count();
  plan->shard_plans.resize(shard_count);

  // The boundary pass exists only when an embedding can actually span a
  // cut: several shards, a nonempty cut, and a query with at least two
  // vertices.
  const bool want_boundary = shard_count > 1 &&
                             !sharded.boundary_vertices().empty() &&
                             query.vertex_count() > 1;
  if (want_boundary) {
    plan->boundary_radius = QueryBoundaryRadius(query);
    plan->region = sharded.Region(plan->boundary_radius);
  }

  // Per-pass builds are independent; run them shard-parallel. Collectors
  // and cancellation are per-run concerns, not plan concerns.
  MatchOptions base = options;
  base.collector = nullptr;
  base.cancel_flag = nullptr;
  RunTasks(shard_count + (plan->region != nullptr ? 1 : 0), [&](uint32_t i) {
    if (i < shard_count) {
      const shard::Shard& shard = sharded.shard(i);
      if (shard.owned_count == 0) return;  // nothing owned, nothing to plan
      MatchOptions pass_options = base;
      pass_options.restrict_candidates_below = shard.owned_count;
      plan->shard_plans[i] = BuildMatchPlan(query, shard.graph, pass_options);
    } else {
      MatchOptions pass_options = base;
      pass_options.restrict_candidates_below = 0;
      plan->boundary_plan =
          BuildMatchPlan(query, plan->region->graph, pass_options);
    }
  });
  plan->build_wall_ms = build_timer.ElapsedMillis();
  return plan;
}

ShardedMatchResult ExecuteShardPlan(const Graph& query,
                                    const shard::ShardedGraph& sharded,
                                    const ShardPlan& plan,
                                    const MatchOptions& run_options,
                                    const MatchCallback& callback,
                                    bool include_build_metrics) {
  ShardedMatchResult sharded_result;
  MatchResult& merged = sharded_result.result;
  ShardedRunInfo& info = sharded_result.sharding;
  const shard::Partition& partition = sharded.partition();

  info.shard_count = sharded.shard_count();
  info.partitioner = partition.method;
  info.cut_edges = partition.cut_edges;
  info.boundary_vertex_count =
      static_cast<uint32_t>(sharded.boundary_vertices().size());
  info.boundary_radius = plan.boundary_radius;
  info.region_vertices =
      plan.region != nullptr ? plan.region->graph.vertex_count() : 0;

  std::vector<PassTask> tasks;
  for (uint32_t s = 0; s < sharded.shard_count(); ++s) {
    if (plan.shard_plans[s] == nullptr) continue;
    const shard::Shard& shard = sharded.shard(s);
    tasks.push_back({plan.shard_plans[s].get(), &shard.graph,
                     &shard.local_to_global, s, false, shard.owned_count});
  }
  if (plan.boundary_plan != nullptr) {
    tasks.push_back({plan.boundary_plan.get(), &plan.region->graph,
                     &plan.region->local_to_global, sharded.shard_count(),
                     true, plan.region->graph.vertex_count()});
  }

  DeliveryGate gate;
  gate.budget = run_options.max_matches;
  gate.user = callback ? &callback : nullptr;

  // The engine takes a single cancel flag, and the passes need the shared
  // gate's; honor an external flag by polling it into the gate.
  std::atomic<bool> poller_done{false};
  std::thread poller;
  if (run_options.cancel_flag != nullptr &&
      run_options.cancel_flag->load(std::memory_order_relaxed)) {
    // Already cancelled: stop deterministically before any pass delivers.
    gate.stop.store(true, std::memory_order_relaxed);
  } else if (run_options.cancel_flag != nullptr) {
    poller = std::thread([&] {
      while (!poller_done.load(std::memory_order_relaxed)) {
        if (run_options.cancel_flag->load(std::memory_order_relaxed)) {
          gate.stop.store(true, std::memory_order_relaxed);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  info.passes.resize(tasks.size());
  std::mutex merge_mutex;
  Timer enumerate_timer;
  RunTasks(static_cast<uint32_t>(tasks.size()), [&](uint32_t i) {
    const PassTask& task = tasks[i];
    Timer busy_timer;
    MatchOptions pass_run = run_options;
    pass_run.collector = nullptr;
    pass_run.cancel_flag = &gate.stop;
    // The boundary pass rejects non-spanning matches after the engine has
    // counted them, so it must not self-limit on the raw engine count.
    pass_run.max_matches = task.boundary ? 0 : run_options.max_matches;
    if (run_options.time_limit_ms > 0.0) {
      // All passes share the run's single wall-clock deadline.
      pass_run.time_limit_ms = std::max(
          0.01, run_options.time_limit_ms - enumerate_timer.ElapsedMillis());
    }

    uint64_t pass_matches = 0;
    std::vector<Vertex> global_mapping(query.vertex_count());
    const std::vector<Vertex>& local_to_global = *task.local_to_global;
    MatchCallback pass_callback = [&](std::span<const Vertex> mapping) {
      if (gate.stop.load(std::memory_order_relaxed)) return false;
      for (size_t q = 0; q < mapping.size(); ++q) {
        global_mapping[q] = local_to_global[mapping[q]];
      }
      if (task.boundary) {
        // Local passes own the single-shard embeddings; keep only those
        // spanning at least two shards.
        const uint32_t first = partition.assignment[global_mapping[0]];
        bool spans = false;
        for (size_t q = 1; q < global_mapping.size(); ++q) {
          if (partition.assignment[global_mapping[q]] != first) {
            spans = true;
            break;
          }
        }
        if (!spans) return true;
      }
      return gate.Deliver(global_mapping, pass_matches);
    };

    MatchResult pass_result = ExecutePlan(query, *task.graph, *task.plan,
                                          pass_run, pass_callback,
                                          /*include_build_metrics=*/false);

    ShardPassStats& stats = info.passes[i];
    stats.shard = task.shard;
    stats.boundary = task.boundary;
    stats.match_count = pass_matches;
    stats.graph_vertices = task.graph->vertex_count();
    stats.owned_vertices = task.owned_vertices;
    stats.candidate_memory_bytes = task.plan->candidate_memory_bytes;
    stats.aux_memory_bytes = task.plan->aux_memory_bytes;
    stats.build_ms = task.plan->build_ms();
    stats.enumerate_ms = pass_result.enumeration_ms;
    stats.busy_ms = busy_timer.ElapsedMillis();

    std::lock_guard<std::mutex> lock(merge_mutex);
    merged.enumerate.recursion_calls += pass_result.enumerate.recursion_calls;
    merged.enumerate.local_candidates_scanned +=
        pass_result.enumerate.local_candidates_scanned;
    merged.enumerate.failing_set_prunes +=
        pass_result.enumerate.failing_set_prunes;
    merged.enumerate.bitmap_intersections +=
        pass_result.enumerate.bitmap_intersections;
    merged.enumerate.lc_cache_hits += pass_result.enumerate.lc_cache_hits;
    merged.enumerate.lc_cache_misses += pass_result.enumerate.lc_cache_misses;
    merged.enumerate.timed_out |= pass_result.enumerate.timed_out;
  });
  merged.enumeration_ms = enumerate_timer.ElapsedMillis();

  if (poller.joinable()) {
    poller_done.store(true, std::memory_order_relaxed);
    poller.join();
  }

  // Merged semantics, aligned with the monolithic engine and the fuzz
  // oracle: the delivered count never exceeds the budget, and the limit
  // flag means the budget is what stopped the run.
  const uint64_t delivered = gate.delivered.load(std::memory_order_relaxed);
  merged.match_count = gate.budget != 0 ? std::min(delivered, gate.budget)
                                        : delivered;
  merged.enumerate.match_count = merged.match_count;
  merged.enumerate.reached_match_limit =
      gate.budget != 0 && delivered >= gate.budget;

  // Aggregate build metrics: per-phase sums are total work; the
  // preprocessing wall time is what the (parallel) build actually took.
  const MatchPlan* representative = plan.boundary_plan.get();
  for (const std::unique_ptr<MatchPlan>& shard_plan : plan.shard_plans) {
    if (shard_plan == nullptr) continue;
    if (representative == nullptr) representative = shard_plan.get();
    merged.average_candidates += shard_plan->average_candidates;
    merged.candidate_memory_bytes += shard_plan->candidate_memory_bytes;
    merged.aux_memory_bytes += shard_plan->aux_memory_bytes;
    if (include_build_metrics) {
      merged.filter_ms += shard_plan->filter_ms;
      merged.aux_build_ms += shard_plan->aux_build_ms;
      merged.order_ms += shard_plan->order_ms;
    }
  }
  if (plan.boundary_plan != nullptr) {
    merged.average_candidates += plan.boundary_plan->average_candidates;
    merged.candidate_memory_bytes += plan.boundary_plan->candidate_memory_bytes;
    merged.aux_memory_bytes += plan.boundary_plan->aux_memory_bytes;
    if (include_build_metrics) {
      merged.filter_ms += plan.boundary_plan->filter_ms;
      merged.aux_build_ms += plan.boundary_plan->aux_build_ms;
      merged.order_ms += plan.boundary_plan->order_ms;
    }
  }
  if (representative != nullptr) {
    merged.matching_order = representative->matching_order;
    merged.filter_rounds = representative->filter_rounds;
  }
  merged.preprocessing_ms =
      include_build_metrics ? plan.build_wall_ms : 0.0;
  merged.total_ms = merged.preprocessing_ms + merged.enumeration_ms;
  return sharded_result;
}

ShardedMatchResult ShardedMatchQuery(const Graph& query,
                                     const shard::ShardedGraph& sharded,
                                     const MatchOptions& options,
                                     const MatchCallback& callback) {
  const std::unique_ptr<ShardPlan> plan =
      BuildShardPlan(query, sharded, options);
  return ExecuteShardPlan(query, sharded, *plan, options, callback,
                          /*include_build_metrics=*/true);
}

}  // namespace sgm
