#include "sgm/explain.h"

#include <cmath>
#include <sstream>

#include "sgm/core/order/dpiso_order.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/phase_timer.h"

namespace sgm {

QueryPlan ExplainQuery(const Graph& query, const Graph& data,
                       const MatchOptions& options) {
  QueryPlan plan;
  plan.filter = options.filter;
  plan.order = options.order;
  plan.lc_method = options.lc_method;
  plan.use_failing_sets = options.use_failing_sets;
  plan.adaptive_order = options.adaptive_order;

  obs::PhaseTimer phase_timer(
      options.collector != nullptr ? options.collector->trace() : nullptr);
  phase_timer.Begin(obs::kPhaseFilter);
  FilterResult filtered =
      RunFilter(options.filter, query, data, options.filter_options);
  plan.filter_ms = phase_timer.End();
  plan.candidate_memory_bytes = filtered.candidates.MemoryBytes();
  plan.candidate_counts.resize(query.vertex_count());
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    plan.candidate_counts[u] = filtered.candidates.Count(u);
    plan.log10_cartesian_bound +=
        std::log10(std::max<uint32_t>(1, plan.candidate_counts[u]));
  }
  if (filtered.candidates.AnyEmpty()) {
    plan.no_match_possible = true;
    return plan;
  }

  // The explanation always builds the all-edges structure: it is what the
  // tree-embedding estimate needs, and a superset of every scope.
  phase_timer.Begin(obs::kPhaseAuxBuild);
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query, data, filtered.candidates);
  plan.aux_memory_bytes = aux.MemoryBytes();

  plan.aux_build_ms = phase_timer.Begin(obs::kPhaseOrder);
  OrderInputs order_inputs;
  order_inputs.candidates = &filtered.candidates;
  order_inputs.tree =
      filtered.bfs_tree.has_value() ? &*filtered.bfs_tree : nullptr;
  order_inputs.aux = &aux;
  plan.matching_order = ComputeOrder(options.order, query, data, order_inputs);
  if (options.postpone_degree_one) {
    plan.matching_order =
        PostponeDegreeOneVertices(query, plan.matching_order);
  }
  plan.order_ms = phase_timer.End();

  // Tree-embedding estimate: DP-iso's weight array over the chosen order;
  // summing the root weights over its candidates estimates the number of
  // embeddings of the order's tree-like skeleton.
  const DpisoWeights weights = DpisoWeights::Build(
      query, filtered.candidates, aux, plan.matching_order);
  const Vertex root = plan.matching_order.front();
  double total = 0.0;
  for (uint32_t ci = 0; ci < filtered.candidates.Count(root); ++ci) {
    total += weights.WeightByIndex(root, ci);
  }
  plan.estimated_tree_embeddings = total;
  return plan;
}

std::string QueryPlan::ToString(const Graph& query) const {
  std::ostringstream out;
  out << "plan: filter=" << FilterMethodName(filter)
      << " order=" << OrderMethodName(order)
      << " lc=" << LocalCandidateMethodName(lc_method)
      << (adaptive_order ? " adaptive" : "")
      << (use_failing_sets ? " failing-sets" : "") << "\n";
  if (no_match_possible) {
    out << "  no match possible: some candidate set is empty\n";
  }
  out << "  candidates:";
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    out << " C(u" << u << ")=" << candidate_counts[u];
  }
  out << "\n  order:";
  for (const Vertex u : matching_order) out << " u" << u;
  out << "\n  log10 cartesian bound = " << log10_cartesian_bound
      << ", est. tree embeddings = " << estimated_tree_embeddings << "\n";
  out << "  memory: candidates " << candidate_memory_bytes << " B, aux "
      << aux_memory_bytes << " B\n";
  out << "  preprocessing: filter " << filter_ms << " ms, aux "
      << aux_build_ms << " ms, order " << order_ms << " ms\n";
  return out.str();
}

}  // namespace sgm
