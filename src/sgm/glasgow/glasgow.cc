#include "sgm/glasgow/glasgow.h"

#include <algorithm>
#include <limits>

#include "sgm/util/bitset.h"
#include "sgm/util/timer.h"

namespace sgm {

const char* GlasgowStatusName(GlasgowStatus status) {
  switch (status) {
    case GlasgowStatus::kComplete:
      return "complete";
    case GlasgowStatus::kMatchLimit:
      return "match-limit";
    case GlasgowStatus::kTimedOut:
      return "timeout";
    case GlasgowStatus::kOutOfMemory:
      return "oom";
  }
  return "unknown";
}

namespace {

// Bit-parallel relation over the data graph: one bitset row per data vertex.
using RelationRows = std::vector<Bitset>;

// Builds rows for "shares at least `threshold` common neighbours" (the
// supplemental path-of-length-2 relation). threshold == 0 builds plain
// adjacency.
RelationRows BuildRelation(const Graph& graph, uint32_t threshold) {
  const uint32_t n = graph.vertex_count();
  RelationRows rows(n, Bitset(n));
  if (threshold == 0) {
    for (Vertex v = 0; v < n; ++v) {
      for (const Vertex w : graph.neighbors(v)) rows[v].Set(w);
    }
    return rows;
  }
  std::vector<uint32_t> count(n, 0);
  std::vector<Vertex> touched;
  for (Vertex v = 0; v < n; ++v) {
    touched.clear();
    for (const Vertex w : graph.neighbors(v)) {
      for (const Vertex x : graph.neighbors(w)) {
        if (x == v) continue;
        if (count[x]++ == 0) touched.push_back(x);
      }
    }
    for (const Vertex x : touched) {
      if (count[x] >= threshold) rows[v].Set(x);
      count[x] = 0;
    }
  }
  return rows;
}

// Adjacency under a relation on the query side, as a dense boolean matrix
// (queries are tiny).
std::vector<uint8_t> QueryRelationMatrix(const RelationRows& rows) {
  const auto n = static_cast<uint32_t>(rows.size());
  std::vector<uint8_t> matrix(static_cast<size_t>(n) * n, 0);
  for (Vertex u = 0; u < n; ++u) {
    rows[u].ForEach([&](uint32_t w) { matrix[u * n + w] = 1; });
  }
  return matrix;
}

// Descending neighbour-degree sequence of a vertex.
std::vector<uint32_t> NeighborDegreeSequence(const Graph& graph, Vertex v) {
  std::vector<uint32_t> degrees;
  degrees.reserve(graph.degree(v));
  for (const Vertex w : graph.neighbors(v)) degrees.push_back(graph.degree(w));
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  return degrees;
}

class GlasgowSolver {
 public:
  GlasgowSolver(const Graph& query, const Graph& data,
                const GlasgowOptions& options, const GlasgowCallback& callback)
      : query_(query),
        data_(data),
        options_(options),
        callback_(callback),
        n_(query.vertex_count()) {}

  GlasgowResult Run() {
    GlasgowResult result;
    Timer timer;

    // Memory accounting: one adjacency relation plus two supplemental
    // relations, each |V(G)|^2 bits.
    const uint32_t dn = data_.vertex_count();
    const size_t row_bytes = static_cast<size_t>((dn + 63) / 64) * 8;
    const size_t relation_count = options_.use_supplemental_graphs ? 3 : 1;
    result.estimated_relation_bytes = relation_count * row_bytes * dn;
    if (options_.memory_limit_bytes != 0 &&
        result.estimated_relation_bytes > options_.memory_limit_bytes) {
      result.status = GlasgowStatus::kOutOfMemory;
      result.total_ms = timer.ElapsedMillis();
      return result;
    }

    // Relations over the data and query graphs.
    data_relations_.push_back(BuildRelation(data_, 0));
    query_relations_.push_back(QueryRelationMatrix(BuildRelation(query_, 0)));
    if (options_.use_supplemental_graphs) {
      for (const uint32_t threshold : {1u, 2u}) {
        data_relations_.push_back(BuildRelation(data_, threshold));
        query_relations_.push_back(
            QueryRelationMatrix(BuildRelation(query_, threshold)));
      }
    }

    // Initial domains: label, degree, neighbourhood degree sequence.
    std::vector<std::vector<uint32_t>> data_nds(dn);
    for (Vertex v = 0; v < dn; ++v) {
      data_nds[v] = NeighborDegreeSequence(data_, v);
    }
    std::vector<Bitset> domains(n_, Bitset(dn));
    for (Vertex u = 0; u < n_; ++u) {
      const auto query_nds = NeighborDegreeSequence(query_, u);
      for (Vertex v = 0; v < dn; ++v) {
        if (data_.label(v) != query_.label(u) ||
            data_.degree(v) < query_.degree(u)) {
          continue;
        }
        bool dominated = true;
        for (size_t i = 0; i < query_nds.size(); ++i) {
          if (data_nds[v][i] < query_nds[i]) {
            dominated = false;
            break;
          }
        }
        if (dominated) domains[u].Set(v);
      }
      if (domains[u].Empty()) {
        result.status = GlasgowStatus::kComplete;
        result.total_ms = timer.ElapsedMillis();
        return result;
      }
    }

    assigned_.assign(n_, kInvalidVertex);
    timer_ = &timer;
    Search(domains, 0);

    result.match_count = match_count_;
    result.search_nodes = search_nodes_;
    result.propagations = propagations_;
    if (timed_out_) {
      result.status = GlasgowStatus::kTimedOut;
    } else if (match_limit_hit_) {
      result.status = GlasgowStatus::kMatchLimit;
    } else {
      result.status = GlasgowStatus::kComplete;
    }
    result.total_ms = timer.ElapsedMillis();
    return result;
  }

 private:
  bool Aborted() { return timed_out_ || match_limit_hit_ || stopped_; }

  // Propagates the assignment u := v into `domains`: removes v everywhere
  // (all-different) and intersects the domains of u's relation neighbours
  // with v's relation rows. Unit domains cascade. Returns false on wipeout.
  bool Propagate(std::vector<Bitset>* domains, Vertex u, Vertex v) {
    std::vector<std::pair<Vertex, Vertex>> queue{{u, v}};
    while (!queue.empty()) {
      const auto [qu, qv] = queue.back();
      queue.pop_back();
      ++propagations_;
      for (Vertex other = 0; other < n_; ++other) {
        if (other == qu || assigned_[other] != kInvalidVertex) continue;
        Bitset& domain = (*domains)[other];
        const uint32_t before = domain.Count();
        if (domain.Test(qv)) domain.Clear(qv);
        for (size_t r = 0; r < query_relations_.size(); ++r) {
          if (query_relations_[r][qu * n_ + other]) {
            domain.AndWith(data_relations_[r][qv]);
          }
        }
        const uint32_t after = domain.Count();
        if (after == 0) return false;
        if (after == 1 && before != 1) {
          // Unit propagation: `other` is now forced. Propagation entries
          // only reach *unassigned* variables, so a variable forced in this
          // pass must be validated directly against every assignment made so
          // far — both for all-different and for the relation constraints.
          const Vertex forced = domain.FindFirst();
          for (Vertex w = 0; w < n_; ++w) {
            if (w == other || assigned_[w] == kInvalidVertex) continue;
            if (assigned_[w] == forced) return false;
            for (size_t r = 0; r < query_relations_.size(); ++r) {
              if (query_relations_[r][other * n_ + w] &&
                  !data_relations_[r][assigned_[w]].Test(forced)) {
                return false;
              }
            }
          }
          assigned_[other] = forced;
          forced_stack_.push_back(other);
          queue.emplace_back(other, forced);
        }
      }
    }
    return true;
  }

  void Search(const std::vector<Bitset>& domains, uint32_t assigned_count) {
    if (Aborted()) return;
    ++search_nodes_;
    if ((search_nodes_ & 255) == 0 && options_.time_limit_ms > 0 &&
        timer_->ElapsedMillis() > options_.time_limit_ms) {
      timed_out_ = true;
      return;
    }
    if (assigned_count == n_) {
      RecordMatch();
      return;
    }

    // Smallest-domain-first variable selection, ties by larger query degree.
    Vertex u = kInvalidVertex;
    uint32_t best_size = std::numeric_limits<uint32_t>::max();
    for (Vertex cand = 0; cand < n_; ++cand) {
      if (assigned_[cand] != kInvalidVertex) continue;
      const uint32_t size = domains[cand].Count();
      if (size < best_size ||
          (size == best_size && u != kInvalidVertex &&
           query_.degree(cand) > query_.degree(u))) {
        best_size = size;
        u = cand;
      }
    }
    SGM_CHECK(u != kInvalidVertex);

    // Values in degree-descending order.
    std::vector<Vertex> values;
    values.reserve(best_size);
    domains[u].ForEach([&](uint32_t v) { values.push_back(v); });
    std::sort(values.begin(), values.end(), [&](Vertex a, Vertex b) {
      return data_.degree(a) > data_.degree(b);
    });

    for (const Vertex v : values) {
      if (Aborted()) return;
      std::vector<Bitset> child = domains;
      child[u].Reset();
      child[u].Set(v);
      assigned_[u] = v;
      const size_t forced_mark = forced_stack_.size();
      const bool consistent = Propagate(&child, u, v);
      if (consistent) {
        uint32_t count = 0;
        for (Vertex w = 0; w < n_; ++w) {
          if (assigned_[w] != kInvalidVertex) ++count;
        }
        Search(child, count);
      }
      // Undo the assignment and everything unit propagation forced.
      while (forced_stack_.size() > forced_mark) {
        assigned_[forced_stack_.back()] = kInvalidVertex;
        forced_stack_.pop_back();
      }
      assigned_[u] = kInvalidVertex;
    }
  }

  void RecordMatch() {
    ++match_count_;
    if (callback_ && !callback_(assigned_)) stopped_ = true;
    if (options_.max_matches > 0 && match_count_ >= options_.max_matches) {
      match_limit_hit_ = true;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const GlasgowOptions& options_;
  const GlasgowCallback& callback_;
  const uint32_t n_;

  std::vector<RelationRows> data_relations_;
  std::vector<std::vector<uint8_t>> query_relations_;

  std::vector<Vertex> assigned_;
  std::vector<Vertex> forced_stack_;
  uint64_t match_count_ = 0;
  uint64_t search_nodes_ = 0;
  uint64_t propagations_ = 0;
  bool timed_out_ = false;
  bool match_limit_hit_ = false;
  bool stopped_ = false;
  Timer* timer_ = nullptr;
};

}  // namespace

GlasgowResult GlasgowMatch(const Graph& query, const Graph& data,
                           const GlasgowOptions& options,
                           const GlasgowCallback& callback) {
  SGM_CHECK(query.vertex_count() >= 1);
  GlasgowSolver solver(query, data, options, callback);
  return solver.Run();
}

}  // namespace sgm
