// Glasgow-style constraint-programming subgraph matcher (Section 3.5 of the
// paper; Archibald et al., "Sequential and parallel solution-biased search
// for subgraph algorithms", CPAIOR 2019).
//
// The model: one variable per query vertex whose domain is a bitset over the
// data vertices; adjacency constraints per query edge; an all-different
// constraint over all variables. The solver
//   * seeds domains with label, degree and neighbourhood-degree-sequence
//     filtering,
//   * adds supplemental constraints from paths of length two (at least one
//     and at least two common neighbours), the bit-parallel "supplemental
//     graphs" of the original solver,
//   * searches with smallest-domain-first variable selection and
//     largest-degree-first value selection, propagating adjacency and
//     all-different on every assignment.
//
// Bit-parallel adjacency rows cost |V(G)|^2 bits per relation, which is why
// Glasgow completes only on small data graphs and runs out of memory on the
// larger ones (Figure 16). The solver accounts for that memory up front and
// refuses to run past its configurable budget instead of thrashing.
#ifndef SGM_GLASGOW_GLASGOW_H_
#define SGM_GLASGOW_GLASGOW_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// Knobs of a Glasgow run.
struct GlasgowOptions {
  /// Stop after this many matches (0 = unlimited).
  uint64_t max_matches = 100000;
  /// Wall-clock budget in milliseconds (0 = unlimited).
  double time_limit_ms = 300000.0;
  /// Memory budget for the bit-parallel relations, in bytes. The default
  /// (2 GiB) admits the paper's three small datasets and rejects the rest,
  /// matching the behaviour reported in Figure 16.
  size_t memory_limit_bytes = size_t{2} * 1024 * 1024 * 1024;
  /// Build the two path-of-length-2 supplemental relations.
  bool use_supplemental_graphs = true;
};

/// Terminal status of a Glasgow run.
enum class GlasgowStatus : uint8_t {
  kComplete = 0,     ///< search space exhausted
  kMatchLimit = 1,   ///< stopped at max_matches
  kTimedOut = 2,     ///< killed by the time limit (an "unsolved query")
  kOutOfMemory = 3,  ///< bit-parallel relations exceed the memory budget
};

/// Returns "complete" / "match-limit" / "timeout" / "oom".
const char* GlasgowStatusName(GlasgowStatus status);

/// Result of a Glasgow run.
struct GlasgowResult {
  GlasgowStatus status = GlasgowStatus::kComplete;
  uint64_t match_count = 0;
  uint64_t search_nodes = 0;
  uint64_t propagations = 0;
  double total_ms = 0.0;
  /// Bytes the bit-parallel relations would need (reported even on OOM).
  size_t estimated_relation_bytes = 0;
};

/// Called per match; mapping[i] is the data vertex assigned to query vertex
/// i. Return false to stop the search.
using GlasgowCallback = std::function<bool(std::span<const Vertex>)>;

/// Finds all subgraph isomorphisms from query to data with the CP solver.
GlasgowResult GlasgowMatch(const Graph& query, const Graph& data,
                           const GlasgowOptions& options = GlasgowOptions{},
                           const GlasgowCallback& callback = {});

}  // namespace sgm

#endif  // SGM_GLASGOW_GLASGOW_H_
