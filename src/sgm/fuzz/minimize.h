// Greedy reproducer minimization: shrink a failing case while the failure
// persists, so the reproducer that lands on disk is the smallest version of
// the bug the greedy passes can reach. Passes, applied to fixpoint:
//
//   1. drop configurations (usually 8 → the 1 or 2 involved in the bug),
//   2. drop query vertices (induced subgraph; connectivity preserved),
//   3. drop query edges (connectivity preserved),
//   4. drop data vertices, largest chunks first (ddmin-style halving),
//   5. drop data edges, same chunking,
//   6. merge label classes downwards (every label → the smallest that
//      still fails).
//
// "Still fails" means the oracle returns any failing verdict — not
// necessarily the original kind: if shrinking morphs a count mismatch into
// a crash-adjacent embedding mismatch, the smaller case is still the better
// reproducer.
#ifndef SGM_FUZZ_MINIMIZE_H_
#define SGM_FUZZ_MINIMIZE_H_

#include <cstdint>

#include "sgm/fuzz/fuzz_case.h"
#include "sgm/fuzz/oracle.h"

namespace sgm::fuzz {

/// Accounting of one minimization, for the driver's log line.
struct MinimizeStats {
  uint32_t oracle_runs = 0;
  uint32_t rounds = 0;
};

/// Knobs of the minimizer.
struct MinimizeOptions {
  /// Upper bound on oracle invocations; the minimizer returns the best
  /// case found so far when it runs out.
  uint32_t max_oracle_runs = 4000;
  /// Full pass rounds before giving up on reaching a fixpoint.
  uint32_t max_rounds = 6;
};

/// Shrinks `failing` (a case whose oracle verdict has Failed() == true) and
/// returns the smallest still-failing case found. Returns the input
/// unchanged when it does not fail under `oracle_options` in the first
/// place.
FuzzCase MinimizeCase(const FuzzCase& failing,
                      const OracleOptions& oracle_options = {},
                      const MinimizeOptions& options = {},
                      MinimizeStats* stats = nullptr);

}  // namespace sgm::fuzz

#endif  // SGM_FUZZ_MINIMIZE_H_
