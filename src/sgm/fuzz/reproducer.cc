#include "sgm/fuzz/reproducer.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "sgm/graph/graph_io.h"

namespace sgm::fuzz {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string PresetToken(const ConfigSpec& config) {
  if (config.recommended) return "REC";
  std::string token = config.classic ? "classic-" : "";
  token += AlgorithmName(config.algorithm);
  return token;
}

bool ParsePresetToken(const std::string& token, ConfigSpec* config) {
  if (token == "REC") {
    config->recommended = true;
    return true;
  }
  std::string name = token;
  if (name.rfind("classic-", 0) == 0) {
    config->classic = true;
    name = name.substr(8);
  }
  for (const Algorithm algorithm : kAllAlgorithms) {
    if (name == AlgorithmName(algorithm)) {
      config->algorithm = algorithm;
      return true;
    }
  }
  return false;
}

bool ParseIntersection(const std::string& name, IntersectionMethod* out) {
  return IntersectionMethodFromName(name, out);
}

bool ParseUint64Token(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t next = value * 10 + static_cast<uint64_t>(c - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  *out = value;
  return true;
}

// `config <preset> fs=0 ix=hybrid cache=1 threads=1 fault=0 svc=0`
// (`cache=` and `svc=` are optional for corpus back-compat: files written
// before the LC reuse cache / the serving layer existed default to the
// cache being on and the direct engine — their default values).
bool ParseConfigLine(const std::vector<std::string>& fields,
                     ConfigSpec* config) {
  if (fields.size() < 2 || !ParsePresetToken(fields[1], config)) return false;
  for (size_t i = 2; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "fs") {
      if (value != "0" && value != "1") return false;
      config->failing_sets = value == "1";
    } else if (key == "ix") {
      if (!ParseIntersection(value, &config->intersection)) return false;
    } else if (key == "cache") {
      if (value != "0" && value != "1") return false;
      config->lc_cache = value == "1";
    } else if (key == "threads") {
      uint64_t threads = 0;
      if (!ParseUint64Token(value, &threads) || threads == 0 ||
          threads > 256) {
        return false;
      }
      config->threads = static_cast<uint32_t>(threads);
    } else if (key == "fault") {
      if (value != "0" && value != "1") return false;
      config->inject_fault = value == "1";
    } else if (key == "svc") {
      if (value != "0" && value != "1") return false;
      config->service = value == "1";
    } else if (key == "sh") {
      uint64_t shards = 0;
      if (!ParseUint64Token(value, &shards) || shards == 0 || shards > 64) {
        return false;
      }
      config->shards = static_cast<uint32_t>(shards);
    } else if (key == "part") {
      const std::optional<shard::Partitioner> partitioner =
          shard::ParsePartitioner(value);
      if (!partitioner.has_value()) return false;
      config->partitioner = *partitioner;
    } else {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) fields.push_back(std::move(token));
  return fields;
}

}  // namespace

void WriteReproducer(const Reproducer& reproducer, std::ostream& out) {
  const FuzzCase& fuzz_case = reproducer.fuzz_case;
  out << "# sgm_fuzz reproducer v1\n";
  out << "seed " << fuzz_case.seed << '\n';
  out << "verdict " << VerdictKindName(reproducer.expected) << '\n';
  out << "max_matches " << fuzz_case.max_matches << '\n';
  out << "time_limit_ms " << fuzz_case.time_limit_ms << '\n';
  for (const ConfigSpec& config : fuzz_case.configs) {
    out << "config " << PresetToken(config)
        << " fs=" << (config.failing_sets ? 1 : 0)
        << " ix=" << IntersectionMethodName(config.intersection)
        << " cache=" << (config.lc_cache ? 1 : 0)
        << " threads=" << config.threads
        << " fault=" << (config.inject_fault ? 1 : 0)
        << " svc=" << (config.service ? 1 : 0)
        << " sh=" << config.shards
        << " part=" << shard::PartitionerName(config.partitioner) << '\n';
  }
  out << "graph data\n";
  WriteGraph(fuzz_case.data, out);
  out << "graph query\n";
  WriteGraph(fuzz_case.query, out);
  if (!fuzz_case.updates.batches.empty()) {
    out << "updates\n";
    dynamic::WriteUpdateStream(fuzz_case.updates, out);
  }
}

bool SaveReproducerFile(const Reproducer& reproducer, const std::string& path,
                        std::string* error) {
  std::ofstream out(path);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  WriteReproducer(reproducer, out);
  out.flush();
  if (!out) {
    SetError(error, "write failure on " + path);
    return false;
  }
  return true;
}

std::optional<Reproducer> ReadReproducer(std::istream& in,
                                         std::string* error) {
  Reproducer reproducer;
  FuzzCase& fuzz_case = reproducer.fuzz_case;
  std::string line;
  size_t line_number = 0;
  // Sections ("data"/"query" graphs and the "updates" stream) are
  // accumulated as text and parsed through the respective reader once the
  // next section header (or EOF) closes them.
  std::string pending_section;  // empty = not inside a section
  std::string section_text;
  bool saw_data = false, saw_query = false;

  const auto fail = [&](const std::string& what) -> std::optional<Reproducer> {
    SetError(error, what + " at line " + std::to_string(line_number));
    return std::nullopt;
  };
  const auto finish_section = [&](std::string* section_error) -> bool {
    std::istringstream stream(section_text);
    if (pending_section == "updates") {
      auto updates = dynamic::ReadUpdateStream(stream, section_error);
      if (!updates.has_value()) return false;
      fuzz_case.updates = std::move(*updates);
    } else {
      auto graph = ReadGraph(stream, section_error);
      if (!graph.has_value()) return false;
      if (pending_section == "data") {
        fuzz_case.data = std::move(*graph);
        saw_data = true;
      } else {
        fuzz_case.query = std::move(*graph);
        saw_query = true;
      }
    }
    section_text.clear();
    return true;
  };
  const auto close_section = [&]() -> std::optional<std::string> {
    if (pending_section.empty()) return std::nullopt;
    std::string section_error;
    if (!finish_section(&section_error)) {
      return pending_section + " section: " + section_error;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.empty()) continue;
    if (fields[0] == "graph") {
      if (fields.size() != 2 ||
          (fields[1] != "data" && fields[1] != "query")) {
        return fail("malformed graph section header");
      }
      if (const auto section_error = close_section()) {
        return fail(*section_error);
      }
      pending_section = fields[1];
      continue;
    }
    if (fields[0] == "updates" && pending_section != "updates") {
      if (fields.size() != 1) return fail("malformed updates section header");
      if (const auto section_error = close_section()) {
        return fail(*section_error);
      }
      pending_section = "updates";
      continue;
    }
    if (!pending_section.empty()) {
      section_text += line;
      section_text += '\n';
      continue;
    }
    if (fields[0] == "seed") {
      if (fields.size() != 2 ||
          !ParseUint64Token(fields[1], &fuzz_case.seed)) {
        return fail("malformed seed");
      }
    } else if (fields[0] == "verdict") {
      if (fields.size() != 2 ||
          !ParseVerdictKind(fields[1], &reproducer.expected)) {
        return fail("malformed verdict");
      }
    } else if (fields[0] == "max_matches") {
      if (fields.size() != 2 ||
          !ParseUint64Token(fields[1], &fuzz_case.max_matches)) {
        return fail("malformed max_matches");
      }
    } else if (fields[0] == "time_limit_ms") {
      if (fields.size() != 2) return fail("malformed time_limit_ms");
      char* end = nullptr;
      fuzz_case.time_limit_ms = std::strtod(fields[1].c_str(), &end);
      if (end == nullptr || *end != '\0' || fuzz_case.time_limit_ms < 0.0) {
        return fail("malformed time_limit_ms");
      }
    } else if (fields[0] == "config") {
      ConfigSpec config;
      if (!ParseConfigLine(fields, &config)) return fail("malformed config");
      if (fuzz_case.configs.size() >= 64) return fail("too many configs");
      fuzz_case.configs.push_back(config);
    } else {
      return fail("unknown record '" + fields[0] + "'");
    }
  }
  if (in.bad()) {
    SetError(error, "read failure");
    return std::nullopt;
  }
  if (const auto section_error = close_section()) {
    SetError(error, *section_error);
    return std::nullopt;
  }
  if (!saw_data || !saw_query) {
    SetError(error, "missing graph section(s)");
    return std::nullopt;
  }
  if (fuzz_case.configs.empty()) {
    SetError(error, "no config lines");
    return std::nullopt;
  }
  return reproducer;
}

std::optional<Reproducer> LoadReproducerFile(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadReproducer(in, error);
}

}  // namespace sgm::fuzz
