#include "sgm/fuzz/oracle.h"

#include <algorithm>
#include <set>
#include <string>

#include "sgm/core/brute_force.h"
#include "sgm/dynamic/continuous.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/service/service.h"

namespace sgm::fuzz {

const char* VerdictKindName(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kAgree:
      return "agree";
    case VerdictKind::kRejected:
      return "rejected";
    case VerdictKind::kCountMismatch:
      return "count-mismatch";
    case VerdictKind::kEmbeddingMismatch:
      return "embedding-mismatch";
    case VerdictKind::kLimitStatusMismatch:
      return "limit-status-mismatch";
    case VerdictKind::kDynamicMismatch:
      return "dynamic-mismatch";
  }
  return "unknown";
}

bool ParseVerdictKind(const std::string& name, VerdictKind* out) {
  for (const VerdictKind kind :
       {VerdictKind::kAgree, VerdictKind::kRejected,
        VerdictKind::kCountMismatch, VerdictKind::kEmbeddingMismatch,
        VerdictKind::kLimitStatusMismatch, VerdictKind::kDynamicMismatch}) {
    if (name == VerdictKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

// Runs one configuration, optionally collecting the embeddings. The
// parallel path serializes the callback internally, so collection is safe
// in both modes.
ConfigOutcome RunConfig(const FuzzCase& fuzz_case, const ConfigSpec& config,
                        uint64_t budget, bool collect,
                        std::vector<std::vector<Vertex>>* embeddings) {
  const MatchOptions options = config.ToMatchOptions(
      fuzz_case.query.vertex_count(), budget, fuzz_case.time_limit_ms);
  MatchCallback callback;
  if (collect) {
    callback = [embeddings](std::span<const Vertex> mapping) {
      embeddings->emplace_back(mapping.begin(), mapping.end());
      return true;
    };
  }
  MatchResult result;
  if (config.service) {
    // Served path: submit the same query twice against one MatchService so
    // the checked run executes a plan-cache hit — the differential oracle
    // covers the cached-plan code path, not just a fresh build.
    service::ServiceOptions service_options;
    service_options.worker_count = 1;
    service::MatchService service(fuzz_case.data, service_options);
    service::MatchRequest warm;
    warm.query = fuzz_case.query;
    warm.options = options;
    service.Match(std::move(warm));
    service::MatchRequest request;
    request.query = fuzz_case.query;
    request.options = options;
    request.collect_embeddings = collect;
    service::MatchResponse response = service.Match(std::move(request));
    result = std::move(response.engine);
    if (collect) *embeddings = std::move(response.embeddings);
  } else if (config.threads > 1) {
    result = ParallelMatchQuery(fuzz_case.query, fuzz_case.data, options,
                                config.threads, callback)
                 .result;
  } else {
    result = MatchQuery(fuzz_case.query, fuzz_case.data, options, callback);
  }
  ConfigOutcome outcome;
  outcome.name = config.Name();
  outcome.match_count = result.match_count;
  outcome.timed_out = result.enumerate.timed_out;
  outcome.reached_limit = result.enumerate.reached_match_limit;
  outcome.total_ms = result.total_ms;
  return outcome;
}

// Property 4 (see file comment of oracle.h): replays the case's update
// stream through the continuous matcher, folding every delta record into
// the embedding set seeded by brute force on the initial graph, then
// compares against a cold brute-force rematch of the final graph. Writes
// the verdict into `oracle` only when it still reads kAgree.
void RunDynamicCheck(const FuzzCase& fuzz_case, const OracleOptions& options,
                     OracleResult* oracle) {
  // Seed the exact initial embedding set; oversized cases skip the check
  // (the maintained set must be exact for the diff to mean anything).
  std::vector<std::vector<Vertex>> initial = BruteForceMatches(
      fuzz_case.query, fuzz_case.data, options.dynamic_cap + 1);
  if (initial.size() > options.dynamic_cap) return;
  std::set<std::vector<Vertex>> matches(initial.begin(), initial.end());

  dynamic::DynamicGraph graph(fuzz_case.data);
  dynamic::ContinuousMatcher matcher(&graph);
  std::string error;
  const uint64_t query_id = matcher.Register(fuzz_case.query, &error);
  const auto report = [oracle](VerdictKind kind, const std::string& detail) {
    if (oracle->kind == VerdictKind::kAgree) {
      oracle->kind = kind;
      oracle->detail = detail;
    }
  };
  if (query_id == 0) {
    // E.g. a hand-written case whose query uses labels outside the data
    // graph's vocabulary: outside the dynamic layer's contract.
    report(VerdictKind::kRejected, "continuous query rejected: " + error);
    return;
  }

  for (size_t b = 0; b < fuzz_case.updates.batches.size(); ++b) {
    const auto result = matcher.ApplyBatch(fuzz_case.updates.batches[b], &error);
    if (!result.has_value()) {
      // The stream does not replay against this graph (minimization can
      // shrink the graph out from under it): outside the contract.
      report(VerdictKind::kRejected,
             "update batch " + std::to_string(b) + " invalid: " + error);
      return;
    }
    ++oracle->dynamic_batches;
    for (const dynamic::MatchDelta& delta : result->deltas) {
      oracle->dynamic_additions += delta.additions;
      oracle->dynamic_retractions += delta.retractions;
      for (const dynamic::DeltaRecord& record : delta.records) {
        if (record.addition) {
          if (!matches.insert(record.embedding).second) {
            report(VerdictKind::kDynamicMismatch,
                   "batch " + std::to_string(b) +
                       " re-added an embedding already present");
            return;
          }
        } else if (matches.erase(record.embedding) == 0) {
          report(VerdictKind::kDynamicMismatch,
                 "batch " + std::to_string(b) +
                     " retracted an embedding never reported");
          return;
        }
      }
    }
  }

  // Cold full rematch of the final graph must reproduce the maintained set.
  const Graph final_graph = graph.Snapshot();
  std::vector<std::vector<Vertex>> rematch = BruteForceMatches(
      fuzz_case.query, final_graph, matches.size() + 2);
  if (rematch.size() != matches.size() ||
      !std::equal(rematch.begin(), rematch.end(), matches.begin())) {
    report(VerdictKind::kDynamicMismatch,
           "incremental set holds " + std::to_string(matches.size()) +
               " embeddings after " +
               std::to_string(fuzz_case.updates.batches.size()) +
               " batches, cold rematch finds " +
               std::to_string(rematch.size()));
  }
}

}  // namespace

OracleResult RunOracle(const FuzzCase& fuzz_case,
                       const OracleOptions& options) {
  OracleResult oracle;

  // ---- Contract validation: reject cleanly instead of tripping the
  // engine's internal invariant checks. ----
  if (fuzz_case.query.vertex_count() == 0) {
    oracle.kind = VerdictKind::kRejected;
    oracle.detail = "query has no vertices";
    return oracle;
  }
  if (fuzz_case.query.vertex_count() > kMaxQueryVertices) {
    oracle.kind = VerdictKind::kRejected;
    oracle.detail = "query exceeds " + std::to_string(kMaxQueryVertices) +
                    " vertices";
    return oracle;
  }
  if (!IsConnected(fuzz_case.query)) {
    oracle.kind = VerdictKind::kRejected;
    oracle.detail = "query is disconnected";
    return oracle;
  }
  if (fuzz_case.configs.empty()) {
    oracle.kind = VerdictKind::kRejected;
    oracle.detail = "no configurations to check";
    return oracle;
  }

  // ---- Brute-force reference. ----
  const uint64_t budget = fuzz_case.max_matches > 0 ? fuzz_case.max_matches
                                                    : options.count_cap;
  const uint64_t reference = BruteForceCount(fuzz_case.query, fuzz_case.data,
                                             budget);
  oracle.reference_count = reference;
  const bool budget_hit = reference >= budget;

  // Embedding sets are only comparable when the budget never interferes:
  // every engine then delivers the complete set.
  const bool compare_embeddings =
      !budget_hit && reference <= options.embedding_cap;
  std::vector<std::vector<Vertex>> reference_embeddings;
  if (compare_embeddings) {
    reference_embeddings =
        BruteForceMatches(fuzz_case.query, fuzz_case.data, budget);
    std::sort(reference_embeddings.begin(), reference_embeddings.end());
  }

  // ---- Run and compare every configuration. ----
  for (const ConfigSpec& config : fuzz_case.configs) {
    std::vector<std::vector<Vertex>> embeddings;
    const ConfigOutcome outcome =
        RunConfig(fuzz_case, config, budget, compare_embeddings, &embeddings);
    oracle.outcomes.push_back(outcome);
    if (oracle.kind != VerdictKind::kAgree) continue;  // Keep running all.

    if (outcome.match_count != reference) {
      oracle.kind = VerdictKind::kCountMismatch;
      oracle.detail = outcome.name + " found " +
                      std::to_string(outcome.match_count) +
                      " matches, reference found " + std::to_string(reference);
      continue;
    }
    if (outcome.timed_out && fuzz_case.time_limit_ms <= 0.0) {
      oracle.kind = VerdictKind::kLimitStatusMismatch;
      oracle.detail = outcome.name + " reported a timeout with no time limit";
      continue;
    }
    // When the true count is strictly below the budget, no engine may
    // claim it was cut off by it. (At reference == budget the flag depends
    // on whether the engine attempted a further extension, so it is not
    // comparable across engines.)
    if (!budget_hit && outcome.reached_limit) {
      oracle.kind = VerdictKind::kLimitStatusMismatch;
      oracle.detail = outcome.name + " claimed the match budget (" +
                      std::to_string(budget) + ") was hit at " +
                      std::to_string(outcome.match_count) + " matches";
      continue;
    }
    if (compare_embeddings) {
      std::sort(embeddings.begin(), embeddings.end());
      if (embeddings != reference_embeddings) {
        oracle.kind = VerdictKind::kEmbeddingMismatch;
        oracle.detail = outcome.name +
                        " delivered a different embedding set than the"
                        " reference (equal counts: " +
                        std::to_string(outcome.match_count) + ")";
        continue;
      }
    }
  }

  // ---- Dynamic dimension: incremental replay vs cold rematch. Skipped
  // when a static disagreement was already found (first verdict wins). ----
  if (!fuzz_case.updates.batches.empty() &&
      oracle.kind == VerdictKind::kAgree) {
    RunDynamicCheck(fuzz_case, options, &oracle);
  }
  return oracle;
}

}  // namespace sgm::fuzz
