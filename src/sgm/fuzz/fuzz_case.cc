#include "sgm/fuzz/fuzz_case.h"

#include <algorithm>
#include <iterator>

#include "sgm/graph/generators.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/graph/query_generator.h"
#include "sgm/util/prng.h"

namespace sgm::fuzz {

std::string ConfigSpec::Name() const {
  std::string name;
  if (recommended) {
    name = "REC";
  } else {
    name = classic ? "classic-" : "";
    name += AlgorithmName(algorithm);
  }
  name += failing_sets ? "/fs" : "/nofs";
  name += "/";
  name += IntersectionMethodName(intersection);
  if (!lc_cache) name += "/nocache";
  name += "/t" + std::to_string(threads);
  if (service) name += "/svc";
  if (shards > 1) {
    name += "/sh" + std::to_string(shards) + "-" +
            shard::PartitionerName(partitioner);
  }
  if (inject_fault) name += "/FAULT";
  return name;
}

MatchOptions ConfigSpec::ToMatchOptions(uint32_t query_vertex_count,
                                        uint64_t max_matches,
                                        double time_limit_ms) const {
  MatchOptions options =
      recommended ? MatchOptions::Recommended(query_vertex_count)
      : classic   ? MatchOptions::Classic(algorithm)
                  : MatchOptions::Optimized(algorithm);
  // Failing sets are a pure optimization, so turning them on over any
  // preset is legal; never turn them off where the preset requires them
  // (classic DP-iso ships with them).
  options.use_failing_sets = options.use_failing_sets || failing_sets;
  options.intersection = intersection;
  options.use_lc_cache = lc_cache;
  options.max_matches = max_matches;
  options.time_limit_ms = time_limit_ms;
  options.debug_skip_last_root_candidate = inject_fault;
  if (shards > 1) {
    options.shards = shards;
    options.shard_partitioner = partitioner;
  }
  return options;
}

namespace {

// Fallback query when random-walk extraction fails (e.g. an edgeless data
// graph): a single vertex carrying a label that exists in the data graph
// when possible, so the case still exercises the candidate pipeline.
Graph SingleVertexQuery(const Graph& data, Prng* prng) {
  GraphBuilder builder;
  const Label label =
      data.vertex_count() == 0
          ? 0
          : data.label(static_cast<Vertex>(
                prng->NextBounded(data.vertex_count())));
  builder.AddVertex(label);
  return builder.Build();
}

// Two-vertex single-edge query sampled from a data edge, so labels always
// have at least one candidate pair. ExtractQuery insists on >= 3 vertices,
// so this degenerate shape is built by hand.
std::optional<Graph> SingleEdgeQuery(const Graph& data, Prng* prng) {
  if (data.edge_count() == 0) return std::nullopt;
  // Pick a random vertex with neighbors, then a random neighbor.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const Vertex u =
        static_cast<Vertex>(prng->NextBounded(data.vertex_count()));
    const auto neighbors = data.neighbors(u);
    if (neighbors.empty()) continue;
    const Vertex v = neighbors[prng->NextBounded(neighbors.size())];
    GraphBuilder builder;
    builder.AddVertex(data.label(u));
    builder.AddVertex(data.label(v));
    builder.AddEdge(0, 1);
    return builder.Build();
  }
  return std::nullopt;
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const CaseGenOptions& options) {
  Prng prng(seed);
  FuzzCase fuzz_case;
  fuzz_case.seed = seed;

  // ---- Data graph: RMAT or Erdős–Rényi, sized for a fast brute force. ----
  const uint32_t span =
      options.max_data_vertices - options.min_data_vertices + 1;
  const uint32_t n = options.min_data_vertices +
                     static_cast<uint32_t>(prng.NextBounded(span));
  const uint64_t pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  const uint64_t max_m = std::min<uint64_t>(3 * static_cast<uint64_t>(n), pairs);
  const uint64_t min_m = std::min<uint64_t>(n, max_m);
  const uint32_t m = static_cast<uint32_t>(
      min_m + (max_m > min_m ? prng.NextBounded(max_m - min_m + 1) : 0));
  const uint32_t labels =
      1 + static_cast<uint32_t>(prng.NextBounded(options.max_labels));
  fuzz_case.data = prng.NextBernoulli(0.5)
                       ? GenerateRmat(n, m, labels, &prng)
                       : GenerateErdosRenyi(n, m, labels, &prng);
  if (labels > 1 && prng.NextBernoulli(options.skewed_label_fraction)) {
    fuzz_case.data = RelabelSkewed(fuzz_case.data, labels, 0.85, &prng);
  }

  // ---- Query: random walk + induced subgraph, shrinking on failure.
  // A small slice of cases get degenerate 1- and 2-vertex queries, which
  // ExtractQuery refuses to build (it requires >= 3 vertices). ----
  const uint32_t query_cap = std::min(options.max_query_vertices, n);
  uint32_t query_size =
      1 + static_cast<uint32_t>(prng.NextBounded(query_cap));
  std::optional<Graph> query;
  if (query_size == 2) query = SingleEdgeQuery(fuzz_case.data, &prng);
  for (; !query.has_value() && query_size >= 3; --query_size) {
    query = ExtractQuery(fuzz_case.data, query_size, QueryDensity::kAny,
                         &prng, /*max_attempts=*/50);
  }
  fuzz_case.query =
      query.has_value() ? std::move(*query)
                        : SingleVertexQuery(fuzz_case.data, &prng);

  // ---- Match budget: mostly unlimited, sometimes a small cap so the
  // limit-status agreement path gets exercised. ----
  if (prng.NextBernoulli(options.limited_budget_fraction)) {
    fuzz_case.max_matches = 1 + prng.NextBounded(50);
  }
  fuzz_case.time_limit_ms = 0.0;  // Verdicts must not depend on the host.

  // ---- Configuration matrix: all 8 presets, kernels cycled, one
  // parallel promotion. ----
  static constexpr IntersectionMethod kKernels[] = {
      IntersectionMethod::kMerge,   IntersectionMethod::kGalloping,
      IntersectionMethod::kHybrid,  IntersectionMethod::kQFilter,
      IntersectionMethod::kBitmap,  IntersectionMethod::kAuto,
  };
  constexpr size_t kKernelCount = std::size(kKernels);
  const size_t kernel_offset = prng.NextBounded(kKernelCount);
  size_t slot = 0;
  for (const Algorithm algorithm : kAllAlgorithms) {
    ConfigSpec config;
    config.algorithm = algorithm;
    config.classic = prng.NextBernoulli(0.4);
    config.failing_sets = prng.NextBernoulli(0.5);
    config.intersection = kKernels[(kernel_offset + slot++) % kKernelCount];
    config.lc_cache = prng.NextBernoulli(0.75);
    fuzz_case.configs.push_back(config);
  }
  ConfigSpec recommended;
  recommended.recommended = true;
  recommended.failing_sets = prng.NextBernoulli(0.5);
  recommended.intersection = kKernels[(kernel_offset + slot++) % kKernelCount];
  recommended.lc_cache = prng.NextBernoulli(0.75);
  fuzz_case.configs.push_back(recommended);

  // Promote one optimized config to the parallel work-stealing scheduler so
  // every case also cross-checks serial against parallel execution.
  const size_t start = prng.NextBounded(fuzz_case.configs.size());
  for (size_t i = 0; i < fuzz_case.configs.size(); ++i) {
    ConfigSpec& config =
        fuzz_case.configs[(start + i) % fuzz_case.configs.size()];
    if (!config.classic) {
      config.threads = 4;
      break;
    }
  }

  // Promote one remaining serial config to the serving layer, so every
  // case also cross-checks the plan-cache execution path (the oracle runs
  // a served config twice through one MatchService; the second run is a
  // cache hit).
  const size_t service_start = prng.NextBounded(fuzz_case.configs.size());
  for (size_t i = 0; i < fuzz_case.configs.size(); ++i) {
    ConfigSpec& config =
        fuzz_case.configs[(service_start + i) % fuzz_case.configs.size()];
    if (config.threads == 1) {
      config.service = true;
      break;
    }
  }

  // Promote one remaining plain serial config to sharded execution, so
  // cases also cross-check the partition / boundary-merge path
  // (shard/shard_exec.cc) against the monolithic engines. K is drawn from
  // {1, 2, 4}; 1 leaves the case entirely monolithic.
  static constexpr uint32_t kShardChoices[] = {1, 2, 4};
  const uint32_t shard_count =
      kShardChoices[prng.NextBounded(std::size(kShardChoices))];
  if (shard_count > 1) {
    const shard::Partitioner partitioner = prng.NextBernoulli(0.5)
                                               ? shard::Partitioner::kGreedy
                                               : shard::Partitioner::kHash;
    const size_t shard_start = prng.NextBounded(fuzz_case.configs.size());
    for (size_t i = 0; i < fuzz_case.configs.size(); ++i) {
      ConfigSpec& config =
          fuzz_case.configs[(shard_start + i) % fuzz_case.configs.size()];
      if (config.threads == 1 && !config.service) {
        config.shards = shard_count;
        config.partitioner = partitioner;
        break;
      }
    }
  }

  // ---- Dynamic dimension: a slice of cases carries a small update stream
  // (valid against the data graph by construction); the oracle replays it
  // incrementally and diffs against a cold rematch of the final graph. ----
  if (prng.NextBernoulli(options.update_fraction)) {
    dynamic::StreamGenOptions stream_options;
    stream_options.batches = 1 + static_cast<uint32_t>(prng.NextBounded(6));
    stream_options.max_ops_per_batch =
        1 + static_cast<uint32_t>(prng.NextBounded(6));
    fuzz_case.updates =
        dynamic::GenerateUpdateStream(fuzz_case.data, stream_options, &prng);
  }
  return fuzz_case;
}

}  // namespace sgm::fuzz
