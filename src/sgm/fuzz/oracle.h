// Differential oracle: runs every configuration of a FuzzCase and
// cross-checks the results against the brute-force reference and against
// each other. Three properties are enforced:
//
//   1. Match count: every configuration must report exactly
//      min(true count, budget), where the true count comes from the
//      brute-force enumerator (core/brute_force.h).
//   2. Embedding set: on small cases (true count under the embedding cap,
//      no budget interference) the canonicalized set of embeddings of every
//      configuration must equal the reference set — counts can collide by
//      accident, sets cannot.
//   3. Limit status: when the true count is strictly under the budget, no
//      configuration may claim it hit the budget, and with an unlimited
//      time budget none may claim a timeout.
//   4. Dynamic replay (cases carrying an update stream, the `upd=`
//      dimension): the query's embedding set, maintained incrementally by
//      the continuous matcher across every batch, must equal a cold
//      brute-force rematch of the final graph — and every delta record
//      must be coherent (additions new, retractions present).
//
// The oracle never crashes on malformed cases: a disconnected or oversized
// query yields a clean kRejected verdict, which replaying a reproducer
// treats as a pass (the engine's contract excludes such queries; rejecting
// them cleanly is the correct behaviour the regression suite pins down).
#ifndef SGM_FUZZ_ORACLE_H_
#define SGM_FUZZ_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sgm/fuzz/fuzz_case.h"

namespace sgm::fuzz {

/// Outcome category of one oracle run.
enum class VerdictKind : uint8_t {
  /// Every configuration agreed with the reference.
  kAgree = 0,
  /// The case is outside the engine's contract (disconnected query, more
  /// than 64 query vertices, empty query) and was rejected cleanly.
  kRejected,
  /// A configuration's match count differed from the reference.
  kCountMismatch,
  /// Counts agreed but the embedding sets differed.
  kEmbeddingMismatch,
  /// A configuration misreported its budget/timeout status.
  kLimitStatusMismatch,
  /// The incrementally maintained embedding set diverged from a cold
  /// full rematch after replaying the case's update stream.
  kDynamicMismatch,
};

/// Returns "agree" / "rejected" / "count-mismatch" / ...
const char* VerdictKindName(VerdictKind kind);

/// Parses the serialized name back; returns false on unknown input.
bool ParseVerdictKind(const std::string& name, VerdictKind* out);

/// Per-configuration outcome, kept for reporting.
struct ConfigOutcome {
  std::string name;
  uint64_t match_count = 0;
  bool timed_out = false;
  bool reached_limit = false;
  double total_ms = 0.0;
};

/// Result of one differential check.
struct OracleResult {
  VerdictKind kind = VerdictKind::kAgree;
  /// Human-readable description of the first disagreement.
  std::string detail;
  /// Brute-force reference count, capped at the effective budget.
  uint64_t reference_count = 0;
  std::vector<ConfigOutcome> outcomes;
  /// Dynamic-dimension accounting (zero when the case carries no updates
  /// or the dynamic check was skipped — see OracleOptions::dynamic_cap).
  uint64_t dynamic_batches = 0;
  uint64_t dynamic_additions = 0;
  uint64_t dynamic_retractions = 0;

  /// True when the verdict is a disagreement (not agree/rejected).
  bool Failed() const {
    return kind != VerdictKind::kAgree && kind != VerdictKind::kRejected;
  }
};

/// Oracle knobs.
struct OracleOptions {
  /// Safety cap applied when the case declares max_matches = 0, so a
  /// low-label case with millions of embeddings stays cheap. The capped
  /// count is still a valid differential check (every engine must reach
  /// the cap).
  uint64_t count_cap = 200000;
  /// Embedding sets are compared only when the true count is at most this.
  uint64_t embedding_cap = 5000;
  /// The dynamic differential (incremental replay vs cold rematch) runs
  /// only when the initial embedding set fits this cap; generated cases
  /// stay far below it.
  uint64_t dynamic_cap = 20000;
};

/// Runs the full differential check for one case.
OracleResult RunOracle(const FuzzCase& fuzz_case,
                       const OracleOptions& options = {});

}  // namespace sgm::fuzz

#endif  // SGM_FUZZ_ORACLE_H_
