// Structured case generation for the differential fuzzer.
//
// A FuzzCase bundles everything one differential check needs: a data graph,
// a query graph, and a set of engine configurations to cross-check against
// the brute-force reference and each other. Cases are generated
// deterministically from a single 64-bit seed (seeded RMAT/Erdős–Rényi data
// graph × random-walk query × sampled configuration matrix), so any failure
// is reproducible from the seed alone — and still self-contained once
// serialized, because reproducer files embed the graphs verbatim
// (see reproducer.h).
#ifndef SGM_FUZZ_FUZZ_CASE_H_
#define SGM_FUZZ_FUZZ_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/graph.h"
#include "sgm/matcher.h"

namespace sgm::fuzz {

/// One engine configuration under differential test. `preset` selects the
/// MatchOptions factory: a Classic/Optimized framework algorithm, or the
/// paper's Recommended combination (the 8th preset).
struct ConfigSpec {
  /// Ignored when `recommended` is set.
  Algorithm algorithm = Algorithm::kGraphQL;
  /// Classic(algorithm) instead of Optimized(algorithm).
  bool classic = false;
  /// MatchOptions::Recommended(query size) — the paper's §6 pick.
  bool recommended = false;
  bool failing_sets = false;
  IntersectionMethod intersection = IntersectionMethod::kHybrid;
  /// Per-depth local-candidate reuse cache (MatchOptions::use_lc_cache).
  bool lc_cache = true;
  /// 1 = serial engine; >1 = work-stealing parallel enumeration.
  uint32_t threads = 1;
  /// Route the query through a MatchService (service/service.h): submitted
  /// twice against one service, so the second run executes a plan-cache
  /// hit — the differential check covers the cached-plan path. Serial
  /// engine only (threads is ignored when set).
  bool service = false;
  /// >1 = sharded execution (shard/shard_exec.cc): partition the data
  /// graph, run the shard-local passes plus the boundary merge pass, and
  /// cross-check the merged result. Serial engine only.
  uint32_t shards = 1;
  /// Vertex partitioner when `shards` > 1.
  shard::Partitioner partitioner = shard::Partitioner::kGreedy;
  /// Enables MatchOptions::debug_skip_last_root_candidate — the emulated
  /// off-by-one used to exercise the oracle and minimizer end to end.
  bool inject_fault = false;

  /// Short identifier, e.g. "GQL/fs/hybrid/t1" (suffix "/svc" when routed
  /// through a MatchService, "/sh<K>-<partitioner>" when sharded).
  std::string Name() const;

  /// Materializes the MatchOptions for this configuration. The caller's
  /// match budget and time limit (from the FuzzCase) are applied on top of
  /// the preset.
  MatchOptions ToMatchOptions(uint32_t query_vertex_count,
                              uint64_t max_matches,
                              double time_limit_ms) const;
};

/// One self-contained differential test case.
struct FuzzCase {
  uint64_t seed = 0;
  Graph data;
  Graph query;
  std::vector<ConfigSpec> configs;
  /// Per-config match budget. 0 = unlimited (the oracle still applies its
  /// own safety cap, see OracleOptions::count_cap).
  uint64_t max_matches = 0;
  /// Per-config wall-clock limit. Generated cases always use 0 (unlimited)
  /// so verdicts never depend on machine speed.
  double time_limit_ms = 0.0;
  /// Dynamic dimension (`upd=`): when non-empty, the oracle additionally
  /// replays these update batches through the continuous matcher and
  /// cross-checks the incrementally maintained embedding set against a
  /// cold brute-force rematch of the final graph (see oracle.h).
  dynamic::UpdateStream updates;
};

/// Knobs of the case generator. Defaults keep cases small enough that the
/// brute-force reference finishes in milliseconds.
struct CaseGenOptions {
  uint32_t min_data_vertices = 8;
  uint32_t max_data_vertices = 96;
  uint32_t max_query_vertices = 10;
  uint32_t max_labels = 6;
  /// Fraction of cases generated with a small max_matches budget, to
  /// exercise the limit-status agreement checks.
  double limited_budget_fraction = 0.25;
  /// Fraction of cases whose data graph is relabeled with one dominant
  /// label (the WordNet-style skew that stresses candidate filtering).
  double skewed_label_fraction = 0.2;
  /// Fraction of cases that carry an update stream (the `upd=` dimension):
  /// the oracle replays it incrementally and compares against a cold full
  /// rematch of the final graph.
  double update_fraction = 0.35;
};

/// Generates the case for `seed`, deterministically: equal seeds produce
/// byte-identical cases on every platform. The sampled configuration list
/// always contains all 8 presets (7 framework algorithms, classic or
/// optimized at random, plus Recommended), cycles the 6 intersection
/// kernels across them (including bitmap and auto), randomizes failing
/// sets and the LC reuse cache, and promotes one intersect-capable config
/// to parallel execution.
FuzzCase GenerateCase(uint64_t seed, const CaseGenOptions& options = {});

}  // namespace sgm::fuzz

#endif  // SGM_FUZZ_FUZZ_CASE_H_
