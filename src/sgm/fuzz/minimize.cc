#include "sgm/fuzz/minimize.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "sgm/graph/graph_builder.h"

namespace sgm::fuzz {

namespace {

// Mutable mirror of a Graph, cheap to edit and rebuild at fuzz-case sizes.
struct EditableGraph {
  std::vector<Label> labels;
  std::vector<std::pair<Vertex, Vertex>> edges;
};

EditableGraph ToEditable(const Graph& graph) {
  EditableGraph editable;
  editable.labels.reserve(graph.vertex_count());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    editable.labels.push_back(graph.label(v));
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) editable.edges.emplace_back(v, w);
    }
  }
  return editable;
}

Graph BuildGraph(const EditableGraph& editable) {
  GraphBuilder builder;
  for (const Label label : editable.labels) builder.AddVertex(label);
  for (const auto& [u, v] : editable.edges) builder.AddEdge(u, v);
  return builder.Build();
}

// Removes `count` vertices starting at index `begin`, dropping incident
// edges and renumbering the survivors.
EditableGraph WithoutVertices(const EditableGraph& graph, uint32_t begin,
                              uint32_t count) {
  EditableGraph out;
  const uint32_t end = begin + count;
  for (uint32_t v = 0; v < graph.labels.size(); ++v) {
    if (v < begin || v >= end) out.labels.push_back(graph.labels[v]);
  }
  const auto remap = [&](Vertex v) -> Vertex {
    return v < begin ? v : v - count;
  };
  for (const auto& [u, v] : graph.edges) {
    const bool u_gone = u >= begin && u < end;
    const bool v_gone = v >= begin && v < end;
    if (!u_gone && !v_gone) out.edges.emplace_back(remap(u), remap(v));
  }
  return out;
}

EditableGraph WithoutEdges(const EditableGraph& graph, size_t begin,
                           size_t count) {
  EditableGraph out;
  out.labels = graph.labels;
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    if (i < begin || i >= begin + count) out.edges.push_back(graph.edges[i]);
  }
  return out;
}

class Minimizer {
 public:
  Minimizer(const FuzzCase& failing, const OracleOptions& oracle_options,
            const MinimizeOptions& options, MinimizeStats* stats)
      : best_(failing),
        oracle_options_(oracle_options),
        options_(options),
        stats_(stats) {}

  FuzzCase Run() {
    if (!Fails(best_)) return best_;  // Not failing: nothing to minimize.
    for (uint32_t round = 0; round < options_.max_rounds; ++round) {
      if (stats_ != nullptr) stats_->rounds = round + 1;
      bool changed = false;
      changed |= ShrinkConfigs();
      changed |= ShrinkUpdates();
      changed |= ShrinkQueryVertices();
      changed |= ShrinkQueryEdges();
      changed |= ShrinkDataVertices();
      changed |= ShrinkDataEdges();
      changed |= MergeLabels();
      if (!changed || OutOfBudget()) break;
    }
    return best_;
  }

 private:
  bool OutOfBudget() const { return runs_ >= options_.max_oracle_runs; }

  bool Fails(const FuzzCase& candidate) {
    if (OutOfBudget()) return false;
    ++runs_;
    if (stats_ != nullptr) stats_->oracle_runs = runs_;
    // The oracle validates the candidate itself: a shrink that disconnects
    // the query comes back kRejected, which is not Failed(), so the
    // attempt is simply not adopted.
    return RunOracle(candidate, oracle_options_).Failed();
  }

  bool Adopt(FuzzCase candidate) {
    if (!Fails(candidate)) return false;
    best_ = std::move(candidate);
    return true;
  }

  bool ShrinkConfigs() {
    bool changed = false;
    for (size_t i = best_.configs.size(); i-- > 0 && !OutOfBudget();) {
      if (best_.configs.size() <= 1) break;
      FuzzCase candidate = best_;
      candidate.configs.erase(candidate.configs.begin() +
                              static_cast<ptrdiff_t>(i));
      changed |= Adopt(std::move(candidate));
    }
    return changed;
  }

  // Shrinks the dynamic dimension before the graphs: update ops pin data
  // vertex ids, so a graph shrink under a live stream replays invalid and
  // comes back kRejected (not adopted) — dropping the stream first lets
  // the graph stages make progress on static disagreements. Whole stream,
  // then ddmin halving over batches, then individual ops.
  bool ShrinkUpdates() {
    if (best_.updates.batches.empty()) return false;
    bool changed = false;
    {
      FuzzCase candidate = best_;
      candidate.updates.batches.clear();
      changed |= Adopt(std::move(candidate));
    }
    for (size_t chunk = std::max<size_t>(1, best_.updates.batches.size() / 2);
         chunk >= 1 && !OutOfBudget(); chunk /= 2) {
      size_t pos = 0;
      while (!OutOfBudget()) {
        const size_t n = best_.updates.batches.size();
        if (pos >= n) break;
        const size_t count = std::min(chunk, n - pos);
        FuzzCase candidate = best_;
        const auto begin = candidate.updates.batches.begin() +
                           static_cast<ptrdiff_t>(pos);
        candidate.updates.batches.erase(
            begin, begin + static_cast<ptrdiff_t>(count));
        if (Adopt(std::move(candidate))) {
          changed = true;
        } else {
          pos += count;
        }
      }
      if (chunk == 1) break;
    }
    for (size_t b = best_.updates.batches.size(); b-- > 0 && !OutOfBudget();) {
      if (b >= best_.updates.batches.size()) continue;
      for (size_t o = best_.updates.batches[b].ops.size();
           o-- > 0 && !OutOfBudget();) {
        if (b >= best_.updates.batches.size() ||
            o >= best_.updates.batches[b].ops.size()) {
          continue;
        }
        FuzzCase candidate = best_;
        candidate.updates.batches[b].ops.erase(
            candidate.updates.batches[b].ops.begin() +
            static_cast<ptrdiff_t>(o));
        changed |= Adopt(std::move(candidate));
      }
    }
    return changed;
  }

  bool ShrinkQueryVertices() {
    bool changed = false;
    const EditableGraph query = ToEditable(best_.query);
    for (uint32_t v = static_cast<uint32_t>(query.labels.size());
         v-- > 0 && !OutOfBudget();) {
      const EditableGraph current = ToEditable(best_.query);
      if (v >= current.labels.size() || current.labels.size() <= 1) continue;
      FuzzCase candidate = best_;
      candidate.query = BuildGraph(WithoutVertices(current, v, 1));
      changed |= Adopt(std::move(candidate));
    }
    return changed;
  }

  bool ShrinkQueryEdges() {
    bool changed = false;
    for (size_t i = ToEditable(best_.query).edges.size();
         i-- > 0 && !OutOfBudget();) {
      const EditableGraph current = ToEditable(best_.query);
      if (i >= current.edges.size()) continue;
      FuzzCase candidate = best_;
      candidate.query = BuildGraph(WithoutEdges(current, i, 1));
      changed |= Adopt(std::move(candidate));
    }
    return changed;
  }

  // ddmin-style halving over the data graph: try big chunks first so the
  // typical 100-vertex case collapses in tens of oracle runs, then polish
  // vertex by vertex.
  bool ShrinkDataVertices() {
    bool changed = false;
    for (uint32_t chunk =
             std::max<uint32_t>(1, best_.data.vertex_count() / 2);
         chunk >= 1 && !OutOfBudget(); chunk /= 2) {
      uint32_t pos = 0;
      while (!OutOfBudget()) {
        const EditableGraph current = ToEditable(best_.data);
        const uint32_t n = static_cast<uint32_t>(current.labels.size());
        if (pos >= n) break;
        const uint32_t count = std::min(chunk, n - pos);
        FuzzCase candidate = best_;
        candidate.data = BuildGraph(WithoutVertices(current, pos, count));
        if (Adopt(std::move(candidate))) {
          changed = true;  // List shrank; retry the same position.
        } else {
          pos += count;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  bool ShrinkDataEdges() {
    bool changed = false;
    for (size_t chunk = std::max<size_t>(1, best_.data.edge_count() / 2);
         chunk >= 1 && !OutOfBudget(); chunk /= 2) {
      size_t pos = 0;
      while (!OutOfBudget()) {
        const EditableGraph current = ToEditable(best_.data);
        if (pos >= current.edges.size()) break;
        const size_t count = std::min(chunk, current.edges.size() - pos);
        FuzzCase candidate = best_;
        candidate.data = BuildGraph(WithoutEdges(current, pos, count));
        if (Adopt(std::move(candidate))) {
          changed = true;
        } else {
          pos += count;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  // Try lowering every label class to 0, largest label first, shrinking
  // the alphabet of the reproducer.
  bool MergeLabels() {
    bool changed = false;
    std::set<Label> labels;
    const auto collect = [&labels](const Graph& graph) {
      for (Vertex v = 0; v < graph.vertex_count(); ++v) {
        labels.insert(graph.label(v));
      }
    };
    collect(best_.data);
    collect(best_.query);
    for (auto it = labels.rbegin(); it != labels.rend() && !OutOfBudget();
         ++it) {
      const Label from = *it;
      if (from == 0) continue;
      const auto relabel = [from](const Graph& graph) {
        EditableGraph editable = ToEditable(graph);
        for (Label& label : editable.labels) {
          if (label == from) label = 0;
        }
        return BuildGraph(editable);
      };
      FuzzCase candidate = best_;
      candidate.data = relabel(best_.data);
      candidate.query = relabel(best_.query);
      changed |= Adopt(std::move(candidate));
    }
    return changed;
  }

  FuzzCase best_;
  OracleOptions oracle_options_;
  MinimizeOptions options_;
  MinimizeStats* stats_;
  uint32_t runs_ = 0;
};

}  // namespace

FuzzCase MinimizeCase(const FuzzCase& failing,
                      const OracleOptions& oracle_options,
                      const MinimizeOptions& options, MinimizeStats* stats) {
  return Minimizer(failing, oracle_options, options, stats).Run();
}

}  // namespace sgm::fuzz
