// Self-contained reproducer files for the differential fuzzer.
//
// A reproducer carries everything needed to re-run one failing case on any
// machine — both graphs verbatim (not the generator seed, which would break
// the moment generation changes), the configuration matrix, the budgets and
// the verdict observed when the file was written. The format is plain text:
//
//   # sgm_fuzz reproducer v1
//   seed 42
//   verdict count-mismatch
//   max_matches 0
//   time_limit_ms 0
//   config GQL opt fs=0 ix=hybrid threads=1 fault=0
//   config classic-CFL classic fs=1 ix=merge threads=1 fault=0
//   graph data
//   t 5 4
//   ...
//   graph query
//   t 3 2
//   ...
//
// `config` lines use the algorithm abbreviation or "REC" for the
// Recommended preset. Graph sections reuse the .graph text format
// (graph/graph_io.h) and run to the next section keyword or EOF. Cases
// carrying the dynamic dimension append an `updates` section holding the
// update stream verbatim (dynamic/update_batch.h text format):
//
//   updates
//   batch
//   ae 0 5
//   end
// Files replay through `sgm_fuzz --replay FILE` and, for everything under
// tests/corpus/reproducers/, through the fuzz_regression ctest.
#ifndef SGM_FUZZ_REPRODUCER_H_
#define SGM_FUZZ_REPRODUCER_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "sgm/fuzz/fuzz_case.h"
#include "sgm/fuzz/oracle.h"

namespace sgm::fuzz {

/// A reproducer file: the case plus the verdict it was written with.
struct Reproducer {
  FuzzCase fuzz_case;
  /// Verdict observed when the file was produced. Replays re-derive their
  /// own verdict; this records what the writer saw (kAgree for fresh
  /// hand-written corpus entries).
  VerdictKind expected = VerdictKind::kAgree;
};

/// Serializes the reproducer.
void WriteReproducer(const Reproducer& reproducer, std::ostream& out);

/// Saves to a file path. Returns false (and sets *error) on IO failure.
bool SaveReproducerFile(const Reproducer& reproducer, const std::string& path,
                        std::string* error);

/// Parses a reproducer. Returns std::nullopt and fills *error (when
/// non-null) on malformed input. Hardened like the graph reader: a hostile
/// file produces an error, never UB.
std::optional<Reproducer> ReadReproducer(std::istream& in, std::string* error);

/// Loads from a file path.
std::optional<Reproducer> LoadReproducerFile(const std::string& path,
                                             std::string* error);

}  // namespace sgm::fuzz

#endif  // SGM_FUZZ_REPRODUCER_H_
