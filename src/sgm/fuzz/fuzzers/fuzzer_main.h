// Standalone driver for libFuzzer-style entry points, used when the
// toolchain cannot link libFuzzer (gcc, or -DSGM_BUILD_FUZZERS without
// clang). Each corpus file passed on the command line is fed once through
// LLVMFuzzerTestOneInput, turning the fuzz target into a corpus regression
// runner:
//
//   graph_reader_fuzzer tests/corpus/graph_reader/*
//
// Under clang with -fsanitize=fuzzer the real libFuzzer main() takes over
// and this header contributes nothing.
#ifndef SGM_FUZZ_FUZZERS_FUZZER_MAIN_H_
#define SGM_FUZZ_FUZZERS_FUZZER_MAIN_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef SGM_HAVE_LIBFUZZER
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      failures = 1;
      continue;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return failures;
}
#endif  // SGM_HAVE_LIBFUZZER

#endif  // SGM_FUZZ_FUZZERS_FUZZER_MAIN_H_
