// Fuzz target for the `.graph` text reader. The reader must reject or
// accept every byte sequence without crashing, overflowing, or allocating
// unboundedly; tight ReadGraphLimits keep even accepted inputs small so the
// fuzzer spends its budget on parser states, not on building big graphs.
//
// Accepted inputs get a cheap self-consistency shake-down: the graph must
// survive a write → re-read round trip with identical counts.
#include <sstream>
#include <string>

#include "sgm/fuzz/fuzzers/fuzzer_main.h"
#include "sgm/graph/graph_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sgm::ReadGraphLimits limits;
  limits.max_vertices = 1u << 12;
  limits.max_edges = 1u << 14;
  limits.max_label = 1u << 12;

  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream in(text);
  std::string error;
  const auto graph = sgm::ReadGraph(in, &error, limits);
  if (!graph.has_value()) return 0;

  std::ostringstream dumped;
  sgm::WriteGraph(*graph, dumped);
  std::istringstream again(dumped.str());
  const auto reparsed = sgm::ReadGraph(again, &error, limits);
  if (!reparsed.has_value() ||
      reparsed->vertex_count() != graph->vertex_count() ||
      reparsed->edge_count() != graph->edge_count()) {
    __builtin_trap();  // Round-trip broke: surface it as a crash.
  }
  return 0;
}
