// Fuzz target for the observability-layer JSON parser. Any byte sequence
// must either parse or fail with an error — no crashes, no unbounded
// recursion (the parser carries an explicit nesting cap). Parsed documents
// are round-tripped through Dump → Parse, which must succeed: the dumper
// and parser are used as inverse pairs by the run-report tests.
#include <string>
#include <string_view>

#include "sgm/fuzz/fuzzers/fuzzer_main.h"
#include "sgm/obs/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto value = sgm::obs::Json::Parse(text, &error);
  if (!value.has_value()) return 0;

  const std::string dumped = value->Dump();
  const auto reparsed = sgm::obs::Json::Parse(dumped, &error);
  if (!reparsed.has_value() || reparsed->type() != value->type()) {
    __builtin_trap();  // Dump produced something Parse rejects.
  }
  return 0;
}
