#include "sgm/util/bitmap_intersection.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sgm {

#if defined(__AVX2__)

bool BitmapKernelsUseSimd() { return true; }

uint64_t BitmapAnd(const uint64_t* a, const uint64_t* b, size_t words,
                   uint64_t* out) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vand = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vand);
    // AVX2 has no vector popcount; the four scalar popcounts on the stored
    // words keep the loop simple and still dominate a merge on dense rows.
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
    count += static_cast<uint64_t>(__builtin_popcountll(out[i + 1]));
    count += static_cast<uint64_t>(__builtin_popcountll(out[i + 2]));
    count += static_cast<uint64_t>(__builtin_popcountll(out[i + 3]));
  }
  for (; i < words; ++i) {
    out[i] = a[i] & b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return count;
}

uint64_t BitmapAndCount(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(va, vb));
    count += static_cast<uint64_t>(__builtin_popcountll(lanes[0]));
    count += static_cast<uint64_t>(__builtin_popcountll(lanes[1]));
    count += static_cast<uint64_t>(__builtin_popcountll(lanes[2]));
    count += static_cast<uint64_t>(__builtin_popcountll(lanes[3]));
  }
  for (; i < words; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

#else  // !defined(__AVX2__)

bool BitmapKernelsUseSimd() { return false; }

uint64_t BitmapAnd(const uint64_t* a, const uint64_t* b, size_t words,
                   uint64_t* out) {
  uint64_t count = 0;
  for (size_t i = 0; i < words; ++i) {
    out[i] = a[i] & b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return count;
}

uint64_t BitmapAndCount(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t count = 0;
  for (size_t i = 0; i < words; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

#endif  // defined(__AVX2__)

uint64_t BitmapMultiAnd(std::span<const uint64_t* const> rows, size_t words,
                        uint64_t* out) {
  SGM_CHECK(!rows.empty());
  if (rows.size() == 1) {
    uint64_t count = 0;
    for (size_t i = 0; i < words; ++i) {
      out[i] = rows[0][i];
      count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
    }
    return count;
  }
  uint64_t count = BitmapAnd(rows[0], rows[1], words, out);
  for (size_t r = 2; r < rows.size(); ++r) {
    if (count == 0) return 0;
    count = BitmapAnd(out, rows[r], words, out);
  }
  return count;
}

uint64_t BitmapMultiAndCount(std::span<const uint64_t* const> rows,
                             size_t words) {
  SGM_CHECK(!rows.empty());
  if (rows.size() == 2) return BitmapAndCount(rows[0], rows[1], words);
  // Three rows and beyond fuse the AND chain word by word; the per-word
  // reduction never touches memory beyond the input rows.
  uint64_t count = 0;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w = rows[0][i];
    for (size_t r = 1; r < rows.size() && w != 0; ++r) w &= rows[r][i];
    count += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return count;
}

void BitmapDecode(std::span<const uint64_t> words,
                  std::span<const Vertex> values, std::vector<Vertex>* out) {
  for (size_t word = 0; word < words.size(); ++word) {
    uint64_t w = words[word];
    while (w != 0) {
      const uint32_t bit = static_cast<uint32_t>(word << 6) +
                           static_cast<uint32_t>(__builtin_ctzll(w));
      SGM_CHECK(bit < values.size());
      out->push_back(values[bit]);
      w &= w - 1;
    }
  }
}

}  // namespace sgm
