#include "sgm/util/set_intersection.h"

#include <algorithm>

#include "sgm/util/qfilter.h"

namespace sgm {

const char* IntersectionMethodName(IntersectionMethod method) {
  switch (method) {
    case IntersectionMethod::kMerge:
      return "merge";
    case IntersectionMethod::kGalloping:
      return "galloping";
    case IntersectionMethod::kHybrid:
      return "hybrid";
    case IntersectionMethod::kQFilter:
      return "qfilter";
    case IntersectionMethod::kBitmap:
      return "bitmap";
    case IntersectionMethod::kAuto:
      return "auto";
  }
  return "unknown";
}

bool IntersectionMethodFromName(std::string_view name,
                                IntersectionMethod* out) {
  for (const IntersectionMethod method : kAllIntersectionMethods) {
    if (name == IntersectionMethodName(method)) {
      *out = method;
      return true;
    }
  }
  return false;
}

size_t IntersectMerge(std::span<const Vertex> a, std::span<const Vertex> b,
                      std::vector<Vertex>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out->size();
}

namespace internal {

size_t GallopLowerBound(std::span<const Vertex> sorted, size_t begin,
                        Vertex value) {
  // Exponential probe to bracket value, then binary search the bracket.
  size_t lo = begin;
  size_t step = 1;
  size_t hi = begin;
  while (hi < sorted.size() && sorted[hi] < value) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, sorted.size());
  const auto it = std::lower_bound(sorted.begin() + lo, sorted.begin() + hi,
                                   value);
  return static_cast<size_t>(it - sorted.begin());
}

}  // namespace internal

size_t IntersectGalloping(std::span<const Vertex> a, std::span<const Vertex> b,
                          std::vector<Vertex>* out) {
  out->clear();
  // Probe with the smaller set into the larger one.
  std::span<const Vertex> small = a.size() <= b.size() ? a : b;
  std::span<const Vertex> large = a.size() <= b.size() ? b : a;
  size_t pos = 0;
  for (const Vertex v : small) {
    pos = internal::GallopLowerBound(large, pos, v);
    if (pos == large.size()) break;
    if (large[pos] == v) {
      out->push_back(v);
      ++pos;
    }
  }
  return out->size();
}

size_t IntersectHybrid(std::span<const Vertex> a, std::span<const Vertex> b,
                       std::vector<Vertex>* out) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) {
    out->clear();
    return 0;
  }
  if (large / small >= kGallopingRatio) {
    return IntersectGalloping(a, b, out);
  }
  return IntersectMerge(a, b, out);
}

size_t Intersect(IntersectionMethod method, std::span<const Vertex> a,
                 std::span<const Vertex> b, std::vector<Vertex>* out) {
  switch (method) {
    case IntersectionMethod::kMerge:
      return IntersectMerge(a, b, out);
    case IntersectionMethod::kGalloping:
      return IntersectGalloping(a, b, out);
    case IntersectionMethod::kHybrid:
      return IntersectHybrid(a, b, out);
    case IntersectionMethod::kQFilter:
      return IntersectQFilter(a, b, out);
    case IntersectionMethod::kBitmap:
    case IntersectionMethod::kAuto:
      // Bitmap representations live in the aux structure; on raw sorted
      // arrays these methods behave like the hybrid default.
      return IntersectHybrid(a, b, out);
  }
  SGM_CHECK_MSG(false, "unreachable intersection method");
  return 0;
}

size_t IntersectionCount(std::span<const Vertex> a,
                         std::span<const Vertex> b) {
  const size_t small_n = std::min(a.size(), b.size());
  const size_t large_n = std::max(a.size(), b.size());
  if (small_n == 0) return 0;
  if (large_n / small_n >= kGallopingRatio) {
    std::span<const Vertex> small = a.size() <= b.size() ? a : b;
    std::span<const Vertex> large = a.size() <= b.size() ? b : a;
    size_t pos = 0;
    size_t count = 0;
    for (const Vertex v : small) {
      pos = internal::GallopLowerBound(large, pos, v);
      if (pos == large.size()) break;
      if (large[pos] == v) {
        ++count;
        ++pos;
      }
    }
    return count;
  }
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool SortedContains(std::span<const Vertex> sorted, Vertex value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace sgm
