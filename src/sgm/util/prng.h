// Deterministic pseudo-random number generation for workload synthesis.
//
// Every source of randomness in the library flows through Prng so that
// experiments are reproducible from a printed seed. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.
#ifndef SGM_UTIL_PRNG_H_
#define SGM_UTIL_PRNG_H_

#include <cstdint>

#include "sgm/core/types.h"

namespace sgm {

/// Deterministic 64-bit PRNG (xoshiro256**). Copyable; copies continue the
/// sequence independently.
class Prng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Prng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) word = SplitMix64(&x);
  }

  /// Returns the next 64 random bits.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    SGM_CHECK(bound > 0);
    // 128-bit multiply keeps the distribution exactly uniform.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[4];
};

}  // namespace sgm

#endif  // SGM_UTIL_PRNG_H_
