#include "sgm/util/qfilter.h"

#include "sgm/util/set_intersection.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sgm {

#if defined(__AVX2__)

bool QFilterUsesSimd() { return true; }

namespace {

// Shuffle masks replicating the four low bytes of a block for the all-pairs
// byte comparison: left operand [a0 a0 a0 a0 a1 a1 ...], right operand
// [b0 b1 b2 b3 b0 b1 ...].
const __m128i kReplicateEach = _mm_setr_epi8(0, 0, 0, 0, 4, 4, 4, 4, 8, 8, 8,
                                             8, 12, 12, 12, 12);
const __m128i kReplicateAll = _mm_setr_epi8(0, 4, 8, 12, 0, 4, 8, 12, 0, 4, 8,
                                            12, 0, 4, 8, 12);

// Cyclic rotations of a 4x32 vector used for the full all-pairs comparison.
inline __m128i Rotate1(__m128i v) { return _mm_shuffle_epi32(v, 0x39); }
inline __m128i Rotate2(__m128i v) { return _mm_shuffle_epi32(v, 0x4e); }
inline __m128i Rotate3(__m128i v) { return _mm_shuffle_epi32(v, 0x93); }

}  // namespace

size_t IntersectQFilter(std::span<const Vertex> a, std::span<const Vertex> b,
                        std::vector<Vertex>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  const size_t a_blocks = a.size() / 4 * 4;
  const size_t b_blocks = b.size() / 4 * 4;
  while (i < a_blocks && j < b_blocks) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));

    // Byte-check filter: compare every low byte of va against every low byte
    // of vb in a single 16-byte equality test. If no byte pair matches, the
    // blocks cannot share an element and the expensive 32-bit comparison is
    // skipped (the "filter" step of QFilter).
    const __m128i a_bytes = _mm_shuffle_epi8(va, kReplicateEach);
    const __m128i b_bytes = _mm_shuffle_epi8(vb, kReplicateAll);
    const int byte_mask =
        _mm_movemask_epi8(_mm_cmpeq_epi8(a_bytes, b_bytes));
    if (byte_mask != 0) {
      // Full all-pairs 32-bit comparison via three rotations.
      __m128i eq = _mm_cmpeq_epi32(va, vb);
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate1(vb)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate2(vb)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate3(vb)));
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
      if (mask != 0) {
        for (int k = 0; k < 4; ++k) {
          if (mask & (1 << k)) out->push_back(a[i + static_cast<size_t>(k)]);
        }
      }
    }

    // Advance whichever block ends first; both when they end together.
    const Vertex a_max = a[i + 3];
    const Vertex b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }

  // Scalar tail merge for the remaining (<4-element) suffixes.
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out->size();
}

size_t IntersectQFilterCount(std::span<const Vertex> a,
                             std::span<const Vertex> b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  const size_t a_blocks = a.size() / 4 * 4;
  const size_t b_blocks = b.size() / 4 * 4;
  while (i < a_blocks && j < b_blocks) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    const __m128i a_bytes = _mm_shuffle_epi8(va, kReplicateEach);
    const __m128i b_bytes = _mm_shuffle_epi8(vb, kReplicateAll);
    const int byte_mask =
        _mm_movemask_epi8(_mm_cmpeq_epi8(a_bytes, b_bytes));
    if (byte_mask != 0) {
      __m128i eq = _mm_cmpeq_epi32(va, vb);
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate1(vb)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate2(vb)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, Rotate3(vb)));
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
      count += static_cast<size_t>(__builtin_popcount(
          static_cast<unsigned>(mask)));
    }
    const Vertex a_max = a[i + 3];
    const Vertex b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#else  // !defined(__AVX2__)

bool QFilterUsesSimd() { return false; }

size_t IntersectQFilter(std::span<const Vertex> a, std::span<const Vertex> b,
                        std::vector<Vertex>* out) {
  return IntersectMerge(a, b, out);
}

size_t IntersectQFilterCount(std::span<const Vertex> a,
                             std::span<const Vertex> b) {
  return IntersectionCount(a, b);
}

#endif  // defined(__AVX2__)

}  // namespace sgm
