// Wall-clock and thread-CPU timing helpers used by the matcher, the
// observability layer and the bench harness.
#ifndef SGM_UTIL_TIMER_H_
#define SGM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define SGM_HAVE_THREAD_CPUTIME 1
#endif

namespace sgm {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (the unit the paper reports).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Thread-CPU-time stopwatch: counts only the time the calling thread spends
/// executing on a core (CLOCK_THREAD_CPUTIME_ID), so measurements are not
/// inflated while the OS has the thread descheduled — the property that
/// keeps per-worker busy times comparable when workers outnumber cores.
/// Falls back to the wall clock on platforms without a thread CPU clock.
/// One instance per thread; reading another thread's timer is meaningless.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(NowNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = NowNanos(); }

  /// Thread CPU time consumed since construction or the last Reset.
  int64_t ElapsedNanos() const { return NowNanos() - start_; }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Current thread-CPU clock reading in nanoseconds (epoch unspecified;
  /// only differences are meaningful).
  static int64_t NowNanos() {
#ifdef SGM_HAVE_THREAD_CPUTIME
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
    }
#endif
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  int64_t start_;
};

}  // namespace sgm

#endif  // SGM_UTIL_TIMER_H_
