// Wall-clock timing helpers used by the matcher and the bench harness.
#ifndef SGM_UTIL_TIMER_H_
#define SGM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sgm {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (the unit the paper reports).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgm

#endif  // SGM_UTIL_TIMER_H_
