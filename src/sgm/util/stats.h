// Streaming aggregation helpers for experiment metrics (mean, stddev, max).
#ifndef SGM_UTIL_STATS_H_
#define SGM_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace sgm {

/// Accumulates a stream of samples and reports mean / population standard
/// deviation / min / max, matching how the paper aggregates per-query-set
/// metrics (mean plus standard deviation in Figure 12, mean/std/max in
/// Table 6). Uses Welford's algorithm for numerical stability.
class RunningStats {
 public:
  /// Adds one sample.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (the paper reports variability of a fixed query
  /// set, not an estimate over a larger population).
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sgm

#endif  // SGM_UTIL_STATS_H_
