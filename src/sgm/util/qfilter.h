// SIMD set intersection in the spirit of QFilter (Han, Zou and Yu,
// "Speeding Up Set Intersections in Graph Algorithms using SIMD
// Instructions", SIGMOD 2018).
//
// The kernel processes blocks of four 32-bit vertices from each input. A
// byte-level all-pairs pre-filter (one 16-byte shuffle + compare) rejects
// block pairs that cannot intersect before the full 32-bit all-pairs
// comparison runs — that filter step is the core idea of QFilter. When the
// translation unit is compiled without AVX2 support, the functions fall back
// to the scalar merge kernel so the library stays portable.
//
// This is a from-scratch reimplementation, not the authors' code; see
// DESIGN.md for the substitution note.
#ifndef SGM_UTIL_QFILTER_H_
#define SGM_UTIL_QFILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Intersects two strictly ascending vertex arrays with the SIMD kernel.
/// Output replaces *out. Returns the output size.
size_t IntersectQFilter(std::span<const Vertex> a, std::span<const Vertex> b,
                        std::vector<Vertex>* out);

/// |a ∩ b| by the same SIMD kernel, without materializing the result — the
/// path behind the DP-iso adaptive-weight computation, which only needs the
/// intersection cardinality when a vertex's weights are uniform.
size_t IntersectQFilterCount(std::span<const Vertex> a,
                             std::span<const Vertex> b);

/// True when this build actually uses SIMD instructions (false means the
/// scalar fallback is active, e.g., on non-x86 targets).
bool QFilterUsesSimd();

}  // namespace sgm

#endif  // SGM_UTIL_QFILTER_H_
