// Dynamic bitset tuned for the constraint-programming solver: fixed width
// chosen at construction, fast AND/AND-count, iteration over set bits.
#ifndef SGM_UTIL_BITSET_H_
#define SGM_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Fixed-width bitset over [0, size). Width is set at construction and never
/// changes; all binary operations require operands of equal width.
class Bitset {
 public:
  Bitset() = default;

  /// Creates an all-zero bitset of the given width.
  explicit Bitset(uint32_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  uint32_t size() const { return size_; }

  /// Number of 64-bit words backing the set (for memory accounting).
  uint32_t word_count() const { return static_cast<uint32_t>(words_.size()); }

  void Set(uint32_t i) {
    SGM_CHECK(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(uint32_t i) {
    SGM_CHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(uint32_t i) const {
    SGM_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets all bits in [0, size) to one.
  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }

  /// Sets all bits to zero.
  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// In-place intersection with another bitset of equal width.
  void AndWith(const Bitset& other) {
    SGM_CHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// In-place union.
  void OrWith(const Bitset& other) {
    SGM_CHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// In-place difference (this \ other).
  void AndNotWith(const Bitset& other) {
    SGM_CHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// Number of set bits.
  uint32_t Count() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(__builtin_popcountll(w));
    return n;
  }

  /// Popcount of (this AND other) without materializing the intersection.
  uint32_t AndCount(const Bitset& other) const {
    SGM_CHECK(size_ == other.size_);
    uint32_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<uint32_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Index of the lowest set bit, or size() if the set is empty.
  uint32_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= from, or size() if none.
  uint32_t FindNext(uint32_t from) const {
    if (from >= size_) return size_;
    uint32_t word = from >> 6;
    uint64_t w = words_[word] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        const uint32_t bit =
            (word << 6) + static_cast<uint32_t>(__builtin_ctzll(w));
        return bit < size_ ? bit : size_;
      }
      if (++word >= words_.size()) return size_;
      w = words_[word];
    }
  }

  /// Calls fn(index) for every set bit, in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t word = 0; word < words_.size(); ++word) {
      uint64_t w = words_[word];
      while (w != 0) {
        const uint32_t bit = static_cast<uint32_t>((word << 6)) +
                             static_cast<uint32_t>(__builtin_ctzll(w));
        fn(bit);
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  // Clears bits at positions >= size_ in the last word.
  void TrimTail() {
    const uint32_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ULL << tail) - 1;
    }
  }

  uint32_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sgm

#endif  // SGM_UTIL_BITSET_H_
