// Sorted-array set intersection kernels.
//
// The enumeration engines of the paper (Algorithm 5) compute local candidates
// by intersecting sorted candidate adjacency lists. Following Section 3.3.2 we
// provide a merge-based kernel, a galloping (binary-search) kernel for skewed
// cardinalities, and the hybrid dispatcher used by EmptyHeaded that picks
// between them based on the cardinality ratio. A SIMD kernel in the spirit of
// QFilter lives in qfilter.h.
//
// All kernels require strictly ascending inputs and produce ascending outputs.
#ifndef SGM_UTIL_SET_INTERSECTION_H_
#define SGM_UTIL_SET_INTERSECTION_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Which intersection kernel to use. kHybrid is the library default
/// (recommendation 3 of the paper); kQFilter is recommended for very dense
/// data graphs. kBitmap intersects the fixed-stride bitset sidecars of the
/// auxiliary structure (word-wise AND over candidate indexes) and kAuto
/// picks between bitmap and hybrid per local-candidate computation; both
/// take effect inside the enumeration engine where bitmap rows exist — on
/// raw sorted arrays (this dispatcher) they fall back to kHybrid.
enum class IntersectionMethod : uint8_t {
  kMerge = 0,
  kGalloping = 1,
  kHybrid = 2,
  kQFilter = 3,
  kBitmap = 4,
  kAuto = 5,
};

/// All selectable kernels, for iteration in tools, benches and the fuzzer.
inline constexpr IntersectionMethod kAllIntersectionMethods[] = {
    IntersectionMethod::kMerge,   IntersectionMethod::kGalloping,
    IntersectionMethod::kHybrid,  IntersectionMethod::kQFilter,
    IntersectionMethod::kBitmap,  IntersectionMethod::kAuto,
};

/// Returns a short lowercase name ("merge", "galloping", ...).
const char* IntersectionMethodName(IntersectionMethod method);

/// Inverse of IntersectionMethodName. Returns false on an unknown name.
bool IntersectionMethodFromName(std::string_view name,
                                IntersectionMethod* out);

/// Merge-based intersection: linear scan of both inputs. Output is appended
/// to *out (which is cleared first). Returns the output size.
size_t IntersectMerge(std::span<const Vertex> a, std::span<const Vertex> b,
                      std::vector<Vertex>* out);

/// Galloping intersection: for each element of the smaller input, an
/// exponential + binary search in the larger one. Profitable when
/// |larger| >> |smaller|.
size_t IntersectGalloping(std::span<const Vertex> a, std::span<const Vertex> b,
                          std::vector<Vertex>* out);

/// Hybrid dispatcher: galloping when the cardinalities differ by more than
/// kGallopingRatio, merge otherwise (the policy described in Section 3.3.2).
size_t IntersectHybrid(std::span<const Vertex> a, std::span<const Vertex> b,
                       std::vector<Vertex>* out);

/// Dispatches on method. kQFilter forwards to IntersectQFilter; kBitmap and
/// kAuto have no bitmap operand at this level and fall back to kHybrid.
size_t Intersect(IntersectionMethod method, std::span<const Vertex> a,
                 std::span<const Vertex> b, std::vector<Vertex>* out);

/// Cardinality ratio above which the hybrid dispatcher switches from merge to
/// galloping.
inline constexpr size_t kGallopingRatio = 32;

/// Returns |a ∩ b| without materializing the result (hybrid policy).
size_t IntersectionCount(std::span<const Vertex> a, std::span<const Vertex> b);

/// Returns true iff value is contained in the sorted span (binary search).
bool SortedContains(std::span<const Vertex> sorted, Vertex value);

namespace internal {
/// First index i in [begin, sorted.size()) with sorted[i] >= value, found by
/// exponential probing from begin. Exposed for tests.
size_t GallopLowerBound(std::span<const Vertex> sorted, size_t begin,
                        Vertex value);
}  // namespace internal

}  // namespace sgm

#endif  // SGM_UTIL_SET_INTERSECTION_H_
