// Word-wise bitmap intersection kernels for the dual-representation
// candidate index (see aux_structure.h and DESIGN.md §10).
//
// The auxiliary structure can store each candidate-adjacency list
// N(v) ∩ C(u) additionally as a fixed-stride bitset over the candidate
// *indexes* of C(u) (word layout identical to util/bitset.h: 64-bit words,
// bit i = candidate index i). The enumeration engine then computes a
// multi-way local-candidate intersection as a word-wise AND over the rows
// of all backward neighbors — O(words) per row instead of a data-dependent
// merge — and decodes the surviving bits back into sorted data vertices.
//
// All kernels here operate on raw uint64_t word spans so the aux structure
// can keep its rows in one flat allocation. An AVX2 variant is compiled
// when this translation unit gets -mavx2 (see src/CMakeLists.txt); the
// scalar fallback is exact on every platform.
#ifndef SGM_UTIL_BITMAP_INTERSECTION_H_
#define SGM_UTIL_BITMAP_INTERSECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Words needed for a bitset over [0, bit_count) — the fixed stride of a
/// bitmap sidecar over C(u).
constexpr uint32_t BitmapWords(uint32_t bit_count) {
  return (bit_count + 63) / 64;
}

/// out[i] = a[i] & b[i] for i in [0, words). Returns the popcount of the
/// result. `out` may alias `a` or `b`.
uint64_t BitmapAnd(const uint64_t* a, const uint64_t* b, size_t words,
                   uint64_t* out);

/// Popcount of the word-wise AND without materializing it.
uint64_t BitmapAndCount(const uint64_t* a, const uint64_t* b, size_t words);

/// Multi-way AND: out = rows[0] & rows[1] & ... over `words` words each.
/// Requires at least one row. Returns the popcount of the result.
uint64_t BitmapMultiAnd(std::span<const uint64_t* const> rows, size_t words,
                        uint64_t* out);

/// Popcount of the multi-way AND without materializing it.
uint64_t BitmapMultiAndCount(std::span<const uint64_t* const> rows,
                             size_t words);

/// Decodes the set bits of `words` as indexes into `values` (the sorted
/// candidate set C(u)), appending values[index] to *out in ascending order.
/// Bits at positions >= values.size() must be zero.
void BitmapDecode(std::span<const uint64_t> words,
                  std::span<const Vertex> values, std::vector<Vertex>* out);

/// True when this build runs the AVX2 word kernels (false = scalar
/// fallback, e.g. on non-x86 targets).
bool BitmapKernelsUseSimd();

}  // namespace sgm

#endif  // SGM_UTIL_BITMAP_INTERSECTION_H_
