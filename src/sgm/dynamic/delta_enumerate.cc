#include "sgm/dynamic/delta_enumerate.h"

#include <algorithm>

namespace sgm::dynamic {

namespace {

/// One anchored backtracking search. Extension order is a BFS of the query
/// from the two anchor vertices, so every extended vertex has at least one
/// already-mapped query neighbor to seed its candidate list from.
class AnchoredSearch {
 public:
  AnchoredSearch(const Graph& query, const DynamicGraph& data,
                 const DynamicCandidates& cands,
                 const EmbeddingCallback& callback, DeltaEnumerateStats* stats)
      : query_(query),
        data_(data),
        cands_(cands),
        callback_(callback),
        stats_(stats),
        mapping_(query.vertex_count(), 0),
        mapped_(query.vertex_count(), false),
        neighbor_scratch_(query.vertex_count()) {}

  uint64_t RunAnchor(uint32_t qu, uint32_t qw, Vertex a, Vertex b) {
    if (!cands_.IsCandidate(qu, a) || !cands_.IsCandidate(qw, b)) return 0;
    if (stats_ != nullptr) ++stats_->anchors_tried;
    BuildOrder(qu, qw);
    mapping_[qu] = a;
    mapping_[qw] = b;
    mapped_[qu] = mapped_[qw] = true;
    embeddings_ = 0;
    Extend(0);
    mapped_[qu] = mapped_[qw] = false;
    return embeddings_;
  }

 private:
  /// BFS order of the query vertices not in {qu, qw}.
  void BuildOrder(uint32_t qu, uint32_t qw) {
    order_.clear();
    std::vector<bool> visited(query_.vertex_count(), false);
    visited[qu] = visited[qw] = true;
    std::vector<uint32_t> frontier = {qu, qw};
    for (size_t head = 0; head < frontier.size(); ++head) {
      for (const Vertex next : query_.neighbors(frontier[head])) {
        if (visited[next]) continue;
        visited[next] = true;
        frontier.push_back(next);
        order_.push_back(next);
      }
    }
  }

  void Extend(size_t depth) {
    if (depth == order_.size()) {
      ++embeddings_;
      if (stats_ != nullptr) ++stats_->embeddings;
      callback_(std::span<const Vertex>(mapping_));
      return;
    }
    const uint32_t next = order_[depth];
    // Candidates come from the adjacency of one mapped query neighbor (the
    // one with the smallest image neighborhood); the rest are checked with
    // HasEdge.
    uint32_t seed_neighbor = query_.vertex_count();
    uint32_t seed_degree = 0;
    for (const Vertex q : query_.neighbors(next)) {
      if (!mapped_[q]) continue;
      const uint32_t image_degree = data_.degree(mapping_[q]);
      if (seed_neighbor == query_.vertex_count() ||
          image_degree < seed_degree) {
        seed_neighbor = q;
        seed_degree = image_degree;
      }
    }
    SGM_CHECK(seed_neighbor != query_.vertex_count());

    std::vector<Vertex>& candidates = neighbor_scratch_[depth];
    data_.CopyNeighbors(mapping_[seed_neighbor], &candidates);
    for (const Vertex v : candidates) {
      if (stats_ != nullptr) ++stats_->recursion_calls;
      if (!cands_.IsCandidate(next, v)) continue;
      if (IsUsed(v)) continue;
      if (!ConnectsToMapped(next, seed_neighbor, v)) continue;
      mapping_[next] = v;
      mapped_[next] = true;
      Extend(depth + 1);
      mapped_[next] = false;
    }
  }

  bool IsUsed(Vertex v) const {
    for (uint32_t q = 0; q < query_.vertex_count(); ++q) {
      if (mapped_[q] && mapping_[q] == v) return true;
    }
    return false;
  }

  bool ConnectsToMapped(uint32_t next, uint32_t seed_neighbor,
                        Vertex v) const {
    for (const Vertex q : query_.neighbors(next)) {
      if (q == seed_neighbor || !mapped_[q]) continue;
      if (!data_.HasEdge(v, mapping_[q])) return false;
    }
    return true;
  }

  const Graph& query_;
  const DynamicGraph& data_;
  const DynamicCandidates& cands_;
  const EmbeddingCallback& callback_;
  DeltaEnumerateStats* stats_;

  std::vector<uint32_t> order_;
  std::vector<Vertex> mapping_;
  std::vector<bool> mapped_;
  /// Per-depth candidate buffers, reused across anchors.
  std::vector<std::vector<Vertex>> neighbor_scratch_;
  uint64_t embeddings_ = 0;
};

}  // namespace

uint64_t EnumerateEdgeAnchored(const Graph& query, const DynamicGraph& data,
                               const DynamicCandidates& cands, Vertex a,
                               Vertex b, const EmbeddingCallback& callback,
                               DeltaEnumerateStats* stats) {
  if (query.vertex_count() < 2) return 0;
  AnchoredSearch search(query, data, cands, callback, stats);
  uint64_t total = 0;
  for (uint32_t qu = 0; qu < query.vertex_count(); ++qu) {
    for (const Vertex qw : query.neighbors(qu)) {
      // Both orientations: (qu→a, qw→b) here, (qu→b, qw→a) when the outer
      // loop reaches qw.
      total += search.RunAnchor(qu, qw, a, b);
    }
  }
  return total;
}

}  // namespace sgm::dynamic
