// Update batches and replayable update streams for the dynamic-graph
// subsystem (DESIGN.md §14).
//
// An UpdateBatch is an ordered list of primitive graph mutations — edge
// inserts/deletes and vertex inserts/deletes — applied atomically to a
// DynamicGraph: the whole batch is validated against the current graph
// state (including earlier ops of the same batch) before anything mutates.
// Ops inside a batch have sequential semantics: `ae 0 1` followed by
// `re 0 1` is a valid batch that nets to no change.
//
// An UpdateStream is a sequence of batches with a plain-text serialization
// (the replay format of `sgm_serve --updates` and the fuzzer's `upd=`
// dimension):
//
//   # sgm update stream v1
//   batch
//   ae 0 5
//   re 2 3
//   av 1
//   rv 7
//   end
//   batch
//   end
//
// Records: `ae u v` inserts edge (u, v); `re u v` deletes it; `av l`
// appends a vertex with label l (its id is the vertex count at that
// point); `rv v` deletes vertex v, which must already be isolated (delete
// its edges first — ids are never reused, see dynamic_graph.h). `batch` /
// `end` bracket each batch; an empty batch is legal and bumps the epoch
// without changing the graph. Lines starting with '#' are comments.
#ifndef SGM_DYNAMIC_UPDATE_BATCH_H_
#define SGM_DYNAMIC_UPDATE_BATCH_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sgm/graph/graph.h"
#include "sgm/util/prng.h"

namespace sgm::dynamic {

/// The four primitive mutations.
enum class UpdateKind : uint8_t {
  kAddEdge = 0,
  kRemoveEdge,
  kAddVertex,
  kRemoveVertex,
};

/// Short record name: "ae", "re", "av", "rv".
const char* UpdateKindName(UpdateKind kind);

/// One primitive mutation.
struct UpdateOp {
  UpdateKind kind = UpdateKind::kAddEdge;
  /// Edge endpoints for kAddEdge/kRemoveEdge; the victim for kRemoveVertex
  /// (v is unused there).
  Vertex u = 0;
  Vertex v = 0;
  /// New vertex label for kAddVertex (u and v are unused there).
  Label label = 0;

  static UpdateOp AddEdge(Vertex u, Vertex v) {
    return {UpdateKind::kAddEdge, u, v, 0};
  }
  static UpdateOp RemoveEdge(Vertex u, Vertex v) {
    return {UpdateKind::kRemoveEdge, u, v, 0};
  }
  static UpdateOp AddVertex(Label label) {
    return {UpdateKind::kAddVertex, 0, 0, label};
  }
  static UpdateOp RemoveVertex(Vertex victim) {
    return {UpdateKind::kRemoveVertex, victim, 0, 0};
  }

  friend bool operator==(const UpdateOp&, const UpdateOp&) = default;
};

/// One atomic unit of change. Applying a batch bumps the graph epoch by
/// exactly one, even when the batch is empty.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  bool empty() const { return ops.empty(); }
};

/// A replayable sequence of batches.
struct UpdateStream {
  std::vector<UpdateBatch> batches;

  /// Total ops across all batches.
  size_t op_count() const {
    size_t total = 0;
    for (const UpdateBatch& batch : batches) total += batch.ops.size();
    return total;
  }
};

/// Serializes the stream in the format of the file comment.
void WriteUpdateStream(const UpdateStream& stream, std::ostream& out);

/// Saves to a file path. Returns false (and sets *error) on IO failure.
bool SaveUpdateStreamFile(const UpdateStream& stream, const std::string& path,
                          std::string* error);

/// Parses a stream. Returns std::nullopt and fills *error (when non-null)
/// on malformed input; hardened like the graph reader — hostile input
/// produces an error, never UB. Structural validity against a particular
/// graph (edge exists, vertex isolated, ...) is checked at apply time by
/// DynamicGraph, not here.
std::optional<UpdateStream> ReadUpdateStream(std::istream& in,
                                             std::string* error);

/// Loads from a file path.
std::optional<UpdateStream> LoadUpdateStreamFile(const std::string& path,
                                                 std::string* error);

/// Knobs of the seeded stream generator.
struct StreamGenOptions {
  uint32_t batches = 16;
  /// Ops per batch are drawn uniformly from [0, max_ops_per_batch]; a draw
  /// of 0 produces an empty (epoch-only) batch.
  uint32_t max_ops_per_batch = 8;
  /// Relative weights of the op kinds. Edge deletes target existing edges
  /// (including ones the stream itself inserted), vertex deletes target
  /// isolated vertices, so every generated stream replays cleanly.
  double add_edge_weight = 0.55;
  double remove_edge_weight = 0.33;
  double add_vertex_weight = 0.07;
  double remove_vertex_weight = 0.05;
};

/// Generates a stream that is valid against `base`: the generator tracks
/// the live graph state op by op, so every edge delete hits an existing
/// edge, every insert is new, and every vertex delete hits an isolated
/// vertex. Deterministic for a fixed (base, options, PRNG state).
UpdateStream GenerateUpdateStream(const Graph& base,
                                  const StreamGenOptions& options, Prng* prng);

}  // namespace sgm::dynamic

#endif  // SGM_DYNAMIC_UPDATE_BATCH_H_
