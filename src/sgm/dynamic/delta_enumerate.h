// Anchored delta enumeration (DESIGN.md §14).
//
// For one data edge (a, b), EnumerateEdgeAnchored reports exactly the
// embeddings of the query that map some query edge onto {a, b}. Because
// embeddings are injective, an embedding f that uses {a, b} determines a
// unique ordered query pair (f⁻¹(a), f⁻¹(b)) — so iterating all ordered
// adjacent query pairs as anchors finds every such embedding exactly once,
// with no cross-anchor deduplication needed.
//
// This is the primitive behind exact continuous matching: enumerate
// against the post-insert graph for an inserted edge (additions), against
// the pre-delete graph for a deleted edge (retractions), and
// matches(G+Δ) = matches(G) ⊎ Δ⁺ ∖ Δ⁻ holds exactly (continuous.h).
#ifndef SGM_DYNAMIC_DELTA_ENUMERATE_H_
#define SGM_DYNAMIC_DELTA_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sgm/dynamic/candidate_maintenance.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/graph/graph.h"

namespace sgm::dynamic {

/// Receives one embedding: `embedding[qu]` is the data vertex mapped to
/// query vertex qu. The span is only valid during the call.
using EmbeddingCallback = std::function<void(std::span<const Vertex>)>;

struct DeltaEnumerateStats {
  /// Ordered query-edge anchors whose endpoints passed the candidate test.
  uint64_t anchors_tried = 0;
  /// Backtracking calls (extension attempts) past the anchor seed.
  uint64_t recursion_calls = 0;
  uint64_t embeddings = 0;

  DeltaEnumerateStats& operator+=(const DeltaEnumerateStats& other) {
    anchors_tried += other.anchors_tried;
    recursion_calls += other.recursion_calls;
    embeddings += other.embeddings;
    return *this;
  }
};

/// Enumerates every embedding of `query` in the current state of `data`
/// that maps some query edge onto data edge {a, b}, invoking `callback`
/// once per embedding. `cands` must be consistent with `data`'s current
/// state. Queries with fewer than two vertices have no edges and yield
/// nothing. Returns the number of embeddings reported.
uint64_t EnumerateEdgeAnchored(const Graph& query, const DynamicGraph& data,
                               const DynamicCandidates& cands, Vertex a,
                               Vertex b, const EmbeddingCallback& callback,
                               DeltaEnumerateStats* stats);

}  // namespace sgm::dynamic

#endif  // SGM_DYNAMIC_DELTA_ENUMERATE_H_
