// Versioned update layer over the immutable CSR Graph (DESIGN.md §14).
//
// A DynamicGraph wraps one base Graph plus a delta-adjacency overlay:
// per-vertex sorted lists of added and removed neighbors, appended vertex
// labels, and tombstone flags for deleted vertices. Update batches apply
// atomically (the whole batch is validated first) and bump a monotonically
// increasing epoch — the version number the serving layer folds into plan
// cache keys. Compaction merges the overlay back into a fresh base CSR;
// reads see the same graph before and after, so callers compact whenever
// amortization favors it (MatchService compacts lazily on the first
// snapshot request after an epoch change).
//
// Identity rules, chosen so incremental deltas and cold re-matching on a
// snapshot agree *exactly*:
//  * Vertex ids are stable forever and never reused. A deleted vertex must
//    already be isolated (remove its edges first); it stays in snapshots as
//    an isolated vertex relabeled to the tombstone label.
//  * The label vocabulary is fixed at construction: added vertices must
//    carry a label < label_limit(), and the tombstone label IS
//    label_limit() — a label no live vertex can ever carry, so a tombstone
//    can never match a query vertex. (Graph permits empty label classes,
//    so snapshots with no dead vertices don't pay for the extra label.)
#ifndef SGM_DYNAMIC_DYNAMIC_GRAPH_H_
#define SGM_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/graph.h"

namespace sgm::dynamic {

/// See file comment. Not internally synchronized: one writer at a time,
/// and no concurrent reads during a write (MatchService guards it with its
/// graph mutex; snapshots are plain immutable Graphs and need no guard).
class DynamicGraph {
 public:
  explicit DynamicGraph(Graph base);

  /// Number of batches applied since construction.
  uint64_t epoch() const { return epoch_; }
  /// Number of Compact() merges performed.
  uint64_t compactions() const { return compactions_; }
  /// True when the overlay holds changes the base CSR does not.
  bool dirty() const { return dirty_; }

  /// Total ids ever allocated — live and dead vertices alike.
  uint32_t vertex_count() const {
    return base_->vertex_count() + static_cast<uint32_t>(added_labels_.size());
  }
  /// Live (non-deleted) edges.
  uint64_t edge_count() const { return edge_count_; }
  /// Labels live vertices may carry are exactly [0, label_limit()).
  Label label_limit() const { return label_limit_; }
  /// The reserved label dead vertices carry in snapshots (== label_limit()).
  Label tombstone_label() const { return label_limit_; }

  bool alive(Vertex v) const {
    SGM_CHECK(v < vertex_count());
    return !dead_[v];
  }
  /// Tombstone label when v is dead.
  Label label(Vertex v) const;
  uint32_t degree(Vertex v) const;
  bool HasEdge(Vertex u, Vertex v) const;
  /// Replaces *out with the sorted live neighbor list of v (base merged
  /// with the overlay).
  void CopyNeighbors(Vertex v, std::vector<Vertex>* out) const;

  /// Checks that `batch` applies cleanly to the current state, honoring the
  /// sequential in-batch semantics (an op may consume what an earlier op of
  /// the same batch produced). On failure fills *error (when non-null) with
  /// the offending op and leaves the graph untouched.
  bool ValidateBatch(const UpdateBatch& batch, std::string* error) const;

  /// Validates, applies every op in order and bumps the epoch. Returns
  /// false (graph unchanged) when validation fails.
  bool Apply(const UpdateBatch& batch, std::string* error);

  /// Applies one already-validated op WITHOUT bumping the epoch — the
  /// hook ContinuousMatcher uses to interleave delta enumeration with
  /// op application. The op must be valid in the current state (checked).
  void ApplyOp(const UpdateOp& op);
  /// Closes an ApplyOp sequence: bumps the epoch by one.
  void BumpEpoch() { ++epoch_; }

  /// Materializes the current graph as an immutable CSR: live edges, dead
  /// vertices isolated under the tombstone label.
  Graph Snapshot() const;
  /// Snapshot without a copy when the overlay is clean (returns the shared
  /// base); builds a fresh graph otherwise. The returned snapshot is
  /// immutable and safe to read concurrently with later updates.
  std::shared_ptr<const Graph> SnapshotShared() const;
  /// Merges the overlay into a new base CSR. Reads are unchanged;
  /// SnapshotShared() becomes free again until the next update.
  void Compact();

  const Graph& base() const { return *base_; }
  /// Heap footprint of the overlay (not the base CSR).
  size_t OverlayMemoryBytes() const;

 private:
  /// Net adjacency change of one touched vertex. `added` and `removed` are
  /// sorted and disjoint; `removed` only ever holds base edges.
  struct VertexDelta {
    std::vector<Vertex> added;
    std::vector<Vertex> removed;
  };

  const VertexDelta* FindDelta(Vertex v) const;
  /// Records the insertion of edge half (from, to) in from's delta.
  void AddHalfEdge(Vertex from, Vertex to);
  void RemoveHalfEdge(Vertex from, Vertex to);

  std::shared_ptr<const Graph> base_;
  std::unordered_map<Vertex, VertexDelta> overlay_;
  /// Labels of vertices appended after the base (id = base count + index).
  std::vector<Label> added_labels_;
  /// Tombstones, indexed by vertex id; grows with added vertices.
  std::vector<bool> dead_;

  Label label_limit_ = 0;
  uint64_t edge_count_ = 0;
  uint64_t epoch_ = 0;
  uint64_t compactions_ = 0;
  bool dirty_ = false;
};

}  // namespace sgm::dynamic

#endif  // SGM_DYNAMIC_DYNAMIC_GRAPH_H_
