// Continuous subgraph matching over a DynamicGraph (DESIGN.md §14).
//
// Register a pattern once; every applied batch then produces a MatchDelta
// per registered query — the exact additions and retractions to its match
// set, such that replaying the delta records in order over the previous
// match set reproduces a cold re-match of the updated snapshot:
//
//   matches(G + Δ) = matches(G) ⊎ Δ⁺ ∖ Δ⁻    (exactly, no over/under-count)
//
// Ops inside a batch are processed sequentially, so each new embedding is
// reported at the last inserted edge it uses and each dying embedding at
// the first deleted edge it uses — exactly once either way. An embedding
// both created and destroyed inside one batch legitimately appears as an
// addition followed by a retraction; DeltaRecords are therefore ordered,
// and consumers that only need the net effect can fold them into a set.
#ifndef SGM_DYNAMIC_CONTINUOUS_H_
#define SGM_DYNAMIC_CONTINUOUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sgm/dynamic/candidate_maintenance.h"
#include "sgm/dynamic/delta_enumerate.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/graph/graph.h"

namespace sgm::dynamic {

/// One match-set change. `embedding[qu]` is the data vertex mapped to
/// query vertex qu.
struct DeltaRecord {
  bool addition = true;  // false: retraction
  std::vector<Vertex> embedding;

  friend bool operator==(const DeltaRecord&, const DeltaRecord&) = default;
};

/// Per-query result of one batch.
struct MatchDelta {
  uint64_t query_id = 0;
  /// Additions and retractions in op order (see file comment).
  std::vector<DeltaRecord> records;
  uint64_t additions = 0;
  uint64_t retractions = 0;
  /// Candidate-bitset entries flipped while repairing this query's aux.
  uint64_t candidates_repaired = 0;
  DeltaEnumerateStats enumerate;
};

/// Result of one atomically applied batch.
struct BatchResult {
  /// Graph epoch after the batch.
  uint64_t epoch = 0;
  uint32_t ops_applied = 0;
  /// One entry per registered query, ascending query id.
  std::vector<MatchDelta> deltas;
  /// Time spent mutating the overlay and repairing candidate sets.
  double apply_ms = 0.0;
  /// Time spent in anchored delta enumeration.
  double enumerate_ms = 0.0;
};

/// Maintains registered queries and their candidate sets against one
/// DynamicGraph and turns update batches into exact match deltas. The
/// graph is borrowed, not owned, and must not be mutated behind the
/// matcher's back between batches. Not internally synchronized — the
/// serving layer serializes ApplyBatch calls under its graph mutex.
class ContinuousMatcher {
 public:
  explicit ContinuousMatcher(DynamicGraph* graph) : graph_(graph) {}

  /// Registers a pattern; returns its id (> 0), or 0 with *error set when
  /// the query is rejected (empty, > 64 vertices, disconnected, or using a
  /// label outside the graph's fixed vocabulary).
  uint64_t Register(Graph query, std::string* error);
  /// Returns false when no such registration exists.
  bool Unregister(uint64_t query_id);
  size_t registration_count() const { return registrations_.size(); }

  /// Validates and applies `batch` to the graph (bumping its epoch) while
  /// producing the exact match delta of every registered query. Returns
  /// std::nullopt with *error set — and the graph untouched — when the
  /// batch does not validate.
  std::optional<BatchResult> ApplyBatch(const UpdateBatch& batch,
                                        std::string* error);

  const DynamicGraph& graph() const { return *graph_; }

 private:
  struct Registration {
    Graph query;
    std::unique_ptr<DynamicCandidates> candidates;
  };

  /// Repairs data vertex v in every registration, crediting the flips to
  /// the matching MatchDelta entries.
  void RepairAll(Vertex v, std::vector<MatchDelta>* deltas);

  DynamicGraph* graph_;
  std::map<uint64_t, Registration> registrations_;
  uint64_t next_query_id_ = 1;
};

}  // namespace sgm::dynamic

#endif  // SGM_DYNAMIC_CONTINUOUS_H_
