#include "sgm/dynamic/update_batch.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace sgm::dynamic {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Strict unsigned parser (mirrors graph_io's hardening): digits only, no
/// signs, no overflow wrap-around.
bool ParseUint(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t next = value * 10 + static_cast<uint64_t>(c - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  *out = value;
  return true;
}

bool ParseVertex(const std::string& token, Vertex* out) {
  uint64_t value = 0;
  if (!ParseUint(token, &value) || value > 0xffffffffULL) return false;
  *out = static_cast<Vertex>(value);
  return true;
}

uint64_t EdgeKey(Vertex u, Vertex v) {
  const Vertex lo = std::min(u, v);
  const Vertex hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kAddEdge:
      return "ae";
    case UpdateKind::kRemoveEdge:
      return "re";
    case UpdateKind::kAddVertex:
      return "av";
    case UpdateKind::kRemoveVertex:
      return "rv";
  }
  return "??";
}

void WriteUpdateStream(const UpdateStream& stream, std::ostream& out) {
  out << "# sgm update stream v1\n";
  for (const UpdateBatch& batch : stream.batches) {
    out << "batch\n";
    for (const UpdateOp& op : batch.ops) {
      out << UpdateKindName(op.kind);
      switch (op.kind) {
        case UpdateKind::kAddEdge:
        case UpdateKind::kRemoveEdge:
          out << ' ' << op.u << ' ' << op.v;
          break;
        case UpdateKind::kAddVertex:
          out << ' ' << op.label;
          break;
        case UpdateKind::kRemoveVertex:
          out << ' ' << op.u;
          break;
      }
      out << '\n';
    }
    out << "end\n";
  }
}

bool SaveUpdateStreamFile(const UpdateStream& stream, const std::string& path,
                          std::string* error) {
  std::ofstream out(path);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  WriteUpdateStream(stream, out);
  out.flush();
  if (!out) {
    SetError(error, "write failure on " + path);
    return false;
  }
  return true;
}

std::optional<UpdateStream> ReadUpdateStream(std::istream& in,
                                             std::string* error) {
  // A hostile stream must not be able to force unbounded allocation; the
  // legitimate uses (fuzzing, bench replay) stay far below these.
  constexpr size_t kMaxBatches = 1u << 20;
  constexpr size_t kMaxOpsPerBatch = 1u << 20;

  UpdateStream stream;
  std::string line;
  size_t line_number = 0;
  bool in_batch = false;

  const auto fail = [&](const std::string& what) -> std::optional<UpdateStream> {
    SetError(error, what + " at line " + std::to_string(line_number));
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream fields(line);
    std::string record;
    if (!(fields >> record) || record[0] == '#') continue;

    if (record == "batch") {
      if (in_batch) return fail("nested 'batch'");
      if (stream.batches.size() >= kMaxBatches) return fail("too many batches");
      stream.batches.emplace_back();
      in_batch = true;
      continue;
    }
    if (record == "end") {
      if (!in_batch) return fail("'end' outside a batch");
      in_batch = false;
      continue;
    }
    if (!in_batch) return fail("op record outside a batch");
    if (stream.batches.back().ops.size() >= kMaxOpsPerBatch) {
      return fail("too many ops in one batch");
    }

    std::string a, b, extra;
    UpdateOp op;
    if (record == "ae" || record == "re") {
      if (!(fields >> a >> b) || (fields >> extra) ||
          !ParseVertex(a, &op.u) || !ParseVertex(b, &op.v)) {
        return fail("malformed '" + record + "' record");
      }
      op.kind = record == "ae" ? UpdateKind::kAddEdge : UpdateKind::kRemoveEdge;
    } else if (record == "av") {
      uint64_t label = 0;
      if (!(fields >> a) || (fields >> extra) || !ParseUint(a, &label) ||
          label > 0xffffffffULL) {
        return fail("malformed 'av' record");
      }
      op.kind = UpdateKind::kAddVertex;
      op.label = static_cast<Label>(label);
    } else if (record == "rv") {
      if (!(fields >> a) || (fields >> extra) || !ParseVertex(a, &op.u)) {
        return fail("malformed 'rv' record");
      }
      op.kind = UpdateKind::kRemoveVertex;
    } else {
      return fail("unknown record '" + record + "'");
    }
    stream.batches.back().ops.push_back(op);
  }
  if (in.bad()) {
    SetError(error, "read failure");
    return std::nullopt;
  }
  if (in_batch) {
    SetError(error, "unterminated batch at end of input");
    return std::nullopt;
  }
  return stream;
}

std::optional<UpdateStream> LoadUpdateStreamFile(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadUpdateStream(in, error);
}

UpdateStream GenerateUpdateStream(const Graph& base,
                                  const StreamGenOptions& options, Prng* prng) {
  // Live state tracked op by op so every generated op is valid when it is
  // replayed: edge list (for uniform delete sampling), edge-key set (for
  // duplicate-insert rejection), per-vertex degrees, alive flags, labels.
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::unordered_set<uint64_t> edge_keys;
  std::vector<uint32_t> degrees(base.vertex_count(), 0);
  std::vector<bool> alive(base.vertex_count(), true);
  edges.reserve(base.edge_count());
  for (Vertex u = 0; u < base.vertex_count(); ++u) {
    degrees[u] = base.degree(u);
    for (const Vertex v : base.neighbors(u)) {
      if (v <= u) continue;
      edges.emplace_back(u, v);
      edge_keys.insert(EdgeKey(u, v));
    }
  }
  // New vertices reuse labels from the base vocabulary: DynamicGraph fixes
  // the label space at construction (dynamic_graph.h).
  const uint32_t label_limit = std::max(base.label_count(), 1u);

  const double total_weight =
      options.add_edge_weight + options.remove_edge_weight +
      options.add_vertex_weight + options.remove_vertex_weight;

  const auto remove_edge_at = [&](size_t index) {
    edge_keys.erase(EdgeKey(edges[index].first, edges[index].second));
    --degrees[edges[index].first];
    --degrees[edges[index].second];
    edges[index] = edges.back();
    edges.pop_back();
  };

  UpdateStream stream;
  stream.batches.resize(options.batches);
  for (UpdateBatch& batch : stream.batches) {
    const uint32_t ops =
        static_cast<uint32_t>(prng->NextBounded(options.max_ops_per_batch + 1));
    for (uint32_t i = 0; i < ops; ++i) {
      const double roll = prng->NextDouble() * total_weight;
      if (roll < options.add_edge_weight) {
        // Insert a fresh edge between two live vertices; a few rejection
        // rounds, then give up on this op (dense or tiny graphs).
        for (int attempt = 0; attempt < 16; ++attempt) {
          if (degrees.size() < 2) break;
          const Vertex u =
              static_cast<Vertex>(prng->NextBounded(degrees.size()));
          const Vertex v =
              static_cast<Vertex>(prng->NextBounded(degrees.size()));
          if (u == v || !alive[u] || !alive[v] ||
              edge_keys.count(EdgeKey(u, v)) != 0) {
            continue;
          }
          batch.ops.push_back(UpdateOp::AddEdge(u, v));
          edges.emplace_back(u, v);
          edge_keys.insert(EdgeKey(u, v));
          ++degrees[u];
          ++degrees[v];
          break;
        }
      } else if (roll < options.add_edge_weight + options.remove_edge_weight) {
        if (edges.empty()) continue;
        const size_t index = prng->NextBounded(edges.size());
        batch.ops.push_back(
            UpdateOp::RemoveEdge(edges[index].first, edges[index].second));
        remove_edge_at(index);
      } else if (roll < options.add_edge_weight + options.remove_edge_weight +
                            options.add_vertex_weight) {
        const Label label = static_cast<Label>(prng->NextBounded(label_limit));
        batch.ops.push_back(UpdateOp::AddVertex(label));
        degrees.push_back(0);
        alive.push_back(true);
      } else {
        // Delete an isolated live vertex; a bounded scan from a random
        // start keeps this cheap without an isolated-vertex index.
        if (degrees.empty()) continue;
        const size_t start = prng->NextBounded(degrees.size());
        for (size_t probe = 0; probe < 64 && probe < degrees.size(); ++probe) {
          const Vertex candidate =
              static_cast<Vertex>((start + probe) % degrees.size());
          if (!alive[candidate] || degrees[candidate] != 0) continue;
          batch.ops.push_back(UpdateOp::RemoveVertex(candidate));
          alive[candidate] = false;
          break;
        }
      }
    }
  }
  return stream;
}

}  // namespace sgm::dynamic
