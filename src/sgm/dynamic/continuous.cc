#include "sgm/dynamic/continuous.h"

#include <utility>

#include "sgm/graph/graph_utils.h"
#include "sgm/util/timer.h"

namespace sgm::dynamic {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

uint64_t ContinuousMatcher::Register(Graph query, std::string* error) {
  if (query.vertex_count() == 0) {
    SetError(error, "continuous query must have at least one vertex");
    return 0;
  }
  if (query.vertex_count() > 64) {
    SetError(error, "continuous query exceeds 64 vertices");
    return 0;
  }
  if (!IsConnected(query)) {
    SetError(error, "continuous query must be connected");
    return 0;
  }
  // A query label outside the graph's fixed vocabulary can never match a
  // live vertex — and the tombstone label must stay unmatchable — so
  // reject instead of silently returning zero matches forever.
  for (Vertex qu = 0; qu < query.vertex_count(); ++qu) {
    if (query.label(qu) >= graph_->label_limit()) {
      SetError(error, "query label " + std::to_string(query.label(qu)) +
                          " outside the graph's label vocabulary [0, " +
                          std::to_string(graph_->label_limit()) + ")");
      return 0;
    }
  }

  const uint64_t id = next_query_id_++;
  // Move the query into place first: DynamicCandidates keeps a pointer to
  // the graph it was built from.
  Registration& registration = registrations_[id];
  registration.query = std::move(query);
  registration.candidates =
      std::make_unique<DynamicCandidates>(registration.query, *graph_);
  return id;
}

bool ContinuousMatcher::Unregister(uint64_t query_id) {
  return registrations_.erase(query_id) != 0;
}

void ContinuousMatcher::RepairAll(Vertex v, std::vector<MatchDelta>* deltas) {
  size_t index = 0;
  for (auto& [id, registration] : registrations_) {
    (*deltas)[index].candidates_repaired +=
        registration.candidates->RepairVertex(*graph_, v);
    ++index;
  }
}

std::optional<BatchResult> ContinuousMatcher::ApplyBatch(
    const UpdateBatch& batch, std::string* error) {
  if (!graph_->ValidateBatch(batch, error)) return std::nullopt;

  Timer batch_timer;
  double enumerate_ms = 0.0;

  BatchResult result;
  result.deltas.resize(registrations_.size());
  {
    size_t index = 0;
    for (const auto& [id, registration] : registrations_) {
      result.deltas[index++].query_id = id;
    }
  }

  const auto enumerate_edge = [&](Vertex a, Vertex b, bool addition) {
    Timer timer;
    size_t index = 0;
    for (auto& [id, registration] : registrations_) {
      MatchDelta& delta = result.deltas[index++];
      EnumerateEdgeAnchored(
          registration.query, *graph_, *registration.candidates, a, b,
          [&](std::span<const Vertex> embedding) {
            delta.records.push_back(
                {addition, {embedding.begin(), embedding.end()}});
            addition ? ++delta.additions : ++delta.retractions;
          },
          &delta.enumerate);
    }
    enumerate_ms += timer.ElapsedMillis();
  };
  // Single-vertex queries have no edges to anchor on; their match set is
  // exactly their candidate set, so vertex ops drive them directly.
  const auto vertex_delta = [&](Vertex v, bool addition) {
    size_t index = 0;
    for (auto& [id, registration] : registrations_) {
      MatchDelta& delta = result.deltas[index++];
      if (registration.query.vertex_count() != 1) continue;
      if (!registration.candidates->IsCandidate(0, v)) continue;
      delta.records.push_back({addition, {v}});
      addition ? ++delta.additions : ++delta.retractions;
    }
  };

  for (const UpdateOp& op : batch.ops) {
    switch (op.kind) {
      case UpdateKind::kAddEdge:
        // Insert first: new embeddings exist only in the post-insert
        // graph, and repaired candidate sets must reflect it before the
        // anchored search runs.
        graph_->ApplyOp(op);
        RepairAll(op.u, &result.deltas);
        RepairAll(op.v, &result.deltas);
        enumerate_edge(op.u, op.v, /*addition=*/true);
        break;
      case UpdateKind::kRemoveEdge:
        // Mirror image: dying embeddings exist only in the pre-delete
        // graph, so enumerate retractions before touching it.
        enumerate_edge(op.u, op.v, /*addition=*/false);
        graph_->ApplyOp(op);
        RepairAll(op.u, &result.deltas);
        RepairAll(op.v, &result.deltas);
        break;
      case UpdateKind::kAddVertex: {
        const Vertex added = graph_->vertex_count();
        graph_->ApplyOp(op);
        RepairAll(added, &result.deltas);
        vertex_delta(added, /*addition=*/true);
        break;
      }
      case UpdateKind::kRemoveVertex:
        vertex_delta(op.u, /*addition=*/false);
        graph_->ApplyOp(op);
        RepairAll(op.u, &result.deltas);
        break;
    }
    ++result.ops_applied;
  }
  graph_->BumpEpoch();

  result.epoch = graph_->epoch();
  result.enumerate_ms = enumerate_ms;
  result.apply_ms = batch_timer.ElapsedMillis() - enumerate_ms;
  return result;
}

}  // namespace sgm::dynamic
