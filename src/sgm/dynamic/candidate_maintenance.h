// Incremental candidate-set maintenance for continuous queries
// (DESIGN.md §14).
//
// DynamicCandidates keeps, per query vertex, a bitset over data vertices
// passing the LDF+NLF predicate (alive, label equal, degree and
// neighbor-label-frequency no smaller than the query vertex's) against the
// *current* DynamicGraph state. The predicate is the same sound candidate
// superset the static filters start from, so anchored delta enumeration
// seeded from it misses no embedding.
//
// The point of this structure is the repair locality: an edge update
// (a, b) changes the degree and NLF of exactly a and b — no other vertex's
// predicate inputs move — so ContinuousMatcher repairs two vertices per
// edge op instead of rebuilding O(V) candidate sets. Vertex inserts repair
// only the new vertex; vertex deletes (isolated by contract) only the
// victim.
#ifndef SGM_DYNAMIC_CANDIDATE_MAINTENANCE_H_
#define SGM_DYNAMIC_CANDIDATE_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/graph/graph.h"

namespace sgm::dynamic {

/// Per-query-vertex candidate bitsets with O(degree) single-vertex repair.
/// The query graph must outlive this object.
class DynamicCandidates {
 public:
  DynamicCandidates(const Graph& query, const DynamicGraph& data);

  bool IsCandidate(uint32_t query_vertex, Vertex v) const {
    const std::vector<uint64_t>& bits = bits_[query_vertex];
    const size_t word = v >> 6;
    if (word >= bits.size()) return false;
    return (bits[word] >> (v & 63)) & 1;
  }

  /// Recomputes the predicate of data vertex v against every query vertex,
  /// growing the bitsets if v is new. Returns how many (query vertex, v)
  /// entries flipped.
  uint32_t RepairVertex(const DynamicGraph& data, Vertex v);

  uint32_t query_vertex_count() const {
    return static_cast<uint32_t>(bits_.size());
  }
  /// Population of one query vertex's candidate set (test/stat helper).
  uint64_t CandidateCount(uint32_t query_vertex) const;
  size_t MemoryBytes() const;

 private:
  /// True when data vertex v may map to query vertex qu. `label_counts`
  /// holds v's live-neighbor label histogram (indexed by label).
  bool Passes(uint32_t query_vertex, const DynamicGraph& data, Vertex v,
              const std::vector<uint32_t>& label_counts) const;

  const Graph* query_;
  /// bits_[qu] is a bitset over data vertex ids.
  std::vector<std::vector<uint64_t>> bits_;

  // Repair scratch, reused across calls to keep repairs allocation-free in
  // steady state.
  std::vector<Vertex> neighbor_scratch_;
  std::vector<uint32_t> label_count_scratch_;
};

}  // namespace sgm::dynamic

#endif  // SGM_DYNAMIC_CANDIDATE_MAINTENANCE_H_
