#include "sgm/dynamic/candidate_maintenance.h"

namespace sgm::dynamic {

namespace {

constexpr size_t WordsFor(uint32_t vertex_count) {
  return (static_cast<size_t>(vertex_count) + 63) / 64;
}

}  // namespace

DynamicCandidates::DynamicCandidates(const Graph& query,
                                     const DynamicGraph& data)
    : query_(&query),
      bits_(query.vertex_count()),
      label_count_scratch_(data.label_limit() + 1, 0) {
  const size_t words = WordsFor(data.vertex_count());
  for (std::vector<uint64_t>& bits : bits_) bits.assign(words, 0);
  for (Vertex v = 0; v < data.vertex_count(); ++v) RepairVertex(data, v);
}

uint32_t DynamicCandidates::RepairVertex(const DynamicGraph& data, Vertex v) {
  const size_t words = WordsFor(data.vertex_count());
  for (std::vector<uint64_t>& bits : bits_) {
    if (bits.size() < words) bits.resize(words, 0);
  }
  if (label_count_scratch_.size() < data.label_limit() + 1) {
    label_count_scratch_.assign(data.label_limit() + 1, 0);
  }

  // One neighbor-label histogram for v, shared by all query vertices.
  data.CopyNeighbors(v, &neighbor_scratch_);
  for (const Vertex w : neighbor_scratch_) {
    ++label_count_scratch_[data.label(w)];
  }

  uint32_t changed = 0;
  const size_t word = v >> 6;
  const uint64_t mask = 1ull << (v & 63);
  for (uint32_t qu = 0; qu < bits_.size(); ++qu) {
    const bool now = Passes(qu, data, v, label_count_scratch_);
    const bool was = (bits_[qu][word] & mask) != 0;
    if (now == was) continue;
    bits_[qu][word] ^= mask;
    ++changed;
  }

  for (const Vertex w : neighbor_scratch_) {
    label_count_scratch_[data.label(w)] = 0;
  }
  return changed;
}

bool DynamicCandidates::Passes(
    uint32_t query_vertex, const DynamicGraph& data, Vertex v,
    const std::vector<uint32_t>& label_counts) const {
  if (!data.alive(v)) return false;
  if (data.label(v) != query_->label(query_vertex)) return false;
  if (data.degree(v) < query_->degree(query_vertex)) return false;
  for (const auto& need : query_->NeighborLabelFrequency(query_vertex)) {
    if (need.label >= label_counts.size() ||
        label_counts[need.label] < need.count) {
      return false;
    }
  }
  return true;
}

uint64_t DynamicCandidates::CandidateCount(uint32_t query_vertex) const {
  uint64_t count = 0;
  for (const uint64_t word : bits_[query_vertex]) {
    count += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return count;
}

size_t DynamicCandidates::MemoryBytes() const {
  size_t bytes = 0;
  for (const std::vector<uint64_t>& bits : bits_) {
    bytes += bits.capacity() * sizeof(uint64_t);
  }
  bytes += neighbor_scratch_.capacity() * sizeof(Vertex);
  bytes += label_count_scratch_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace sgm::dynamic
