#include "sgm/dynamic/dynamic_graph.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace sgm::dynamic {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

uint64_t EdgeKey(Vertex u, Vertex v) {
  const Vertex lo = std::min(u, v);
  const Vertex hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

bool SortedContains(const std::vector<Vertex>& values, Vertex v) {
  return std::binary_search(values.begin(), values.end(), v);
}

void SortedInsert(std::vector<Vertex>* values, Vertex v) {
  values->insert(std::lower_bound(values->begin(), values->end(), v), v);
}

/// Erases v if present; returns whether it was.
bool SortedErase(std::vector<Vertex>* values, Vertex v) {
  const auto it = std::lower_bound(values->begin(), values->end(), v);
  if (it == values->end() || *it != v) return false;
  values->erase(it);
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base)
    : base_(std::make_shared<const Graph>(std::move(base))),
      dead_(base_->vertex_count(), false),
      label_limit_(std::max(base_->label_count(), 1u)),
      edge_count_(base_->edge_count()) {}

Label DynamicGraph::label(Vertex v) const {
  SGM_CHECK(v < vertex_count());
  if (dead_[v]) return tombstone_label();
  if (v < base_->vertex_count()) return base_->label(v);
  return added_labels_[v - base_->vertex_count()];
}

uint32_t DynamicGraph::degree(Vertex v) const {
  SGM_CHECK(v < vertex_count());
  uint32_t degree = v < base_->vertex_count() ? base_->degree(v) : 0;
  if (const VertexDelta* delta = FindDelta(v)) {
    degree += static_cast<uint32_t>(delta->added.size());
    degree -= static_cast<uint32_t>(delta->removed.size());
  }
  return degree;
}

bool DynamicGraph::HasEdge(Vertex u, Vertex v) const {
  SGM_CHECK(u < vertex_count() && v < vertex_count());
  if (u == v) return false;
  if (const VertexDelta* delta = FindDelta(u)) {
    if (SortedContains(delta->added, v)) return true;
    if (SortedContains(delta->removed, v)) return false;
  }
  if (u < base_->vertex_count() && v < base_->vertex_count()) {
    return base_->HasEdge(u, v);
  }
  return false;
}

void DynamicGraph::CopyNeighbors(Vertex v, std::vector<Vertex>* out) const {
  SGM_CHECK(v < vertex_count());
  out->clear();
  const std::span<const Vertex> base_neighbors =
      v < base_->vertex_count() ? base_->neighbors(v)
                                : std::span<const Vertex>();
  const VertexDelta* delta = FindDelta(v);
  if (delta == nullptr) {
    out->assign(base_neighbors.begin(), base_neighbors.end());
    return;
  }
  out->reserve(base_neighbors.size() + delta->added.size());
  // Merge (base − removed) with added; all three inputs are sorted.
  size_t ai = 0;
  size_t ri = 0;
  for (const Vertex w : base_neighbors) {
    if (ri < delta->removed.size() && delta->removed[ri] == w) {
      ++ri;
      continue;
    }
    while (ai < delta->added.size() && delta->added[ai] < w) {
      out->push_back(delta->added[ai++]);
    }
    out->push_back(w);
  }
  while (ai < delta->added.size()) out->push_back(delta->added[ai++]);
}

bool DynamicGraph::ValidateBatch(const UpdateBatch& batch,
                                 std::string* error) const {
  // Scratch simulation of the batch against the current state — records
  // only what the batch itself changes, so validation is O(batch), not
  // O(graph).
  std::unordered_map<uint64_t, bool> edge_override;  // key -> present after op
  std::unordered_map<Vertex, int64_t> degree_delta;
  std::unordered_set<Vertex> killed;
  std::vector<Label> new_labels;

  const uint32_t existing = vertex_count();
  const auto known = [&](Vertex v) {
    return static_cast<uint64_t>(v) <
           existing + static_cast<uint64_t>(new_labels.size());
  };
  const auto live = [&](Vertex v) {
    if (killed.count(v) != 0) return false;
    return v < existing ? !dead_[v] : true;
  };
  const auto edge_present = [&](Vertex u, Vertex v) {
    const auto it = edge_override.find(EdgeKey(u, v));
    if (it != edge_override.end()) return it->second;
    return u < existing && v < existing && HasEdge(u, v);
  };
  const auto sim_degree = [&](Vertex v) -> int64_t {
    int64_t d = v < existing ? static_cast<int64_t>(degree(v)) : 0;
    const auto it = degree_delta.find(v);
    if (it != degree_delta.end()) d += it->second;
    return d;
  };
  const auto fail = [&](size_t index, const std::string& what) {
    const UpdateOp& op = batch.ops[index];
    SetError(error, "op " + std::to_string(index) + " (" +
                        UpdateKindName(op.kind) + "): " + what);
    return false;
  };

  for (size_t i = 0; i < batch.ops.size(); ++i) {
    const UpdateOp& op = batch.ops[i];
    switch (op.kind) {
      case UpdateKind::kAddEdge:
      case UpdateKind::kRemoveEdge: {
        if (!known(op.u) || !known(op.v)) return fail(i, "unknown endpoint");
        if (op.u == op.v) return fail(i, "self loop");
        if (!live(op.u) || !live(op.v)) return fail(i, "dead endpoint");
        const bool present = edge_present(op.u, op.v);
        if (op.kind == UpdateKind::kAddEdge) {
          if (present) return fail(i, "edge already present");
          edge_override[EdgeKey(op.u, op.v)] = true;
          ++degree_delta[op.u];
          ++degree_delta[op.v];
        } else {
          if (!present) return fail(i, "edge not present");
          edge_override[EdgeKey(op.u, op.v)] = false;
          --degree_delta[op.u];
          --degree_delta[op.v];
        }
        break;
      }
      case UpdateKind::kAddVertex:
        if (op.label >= label_limit_) {
          return fail(i, "label outside the fixed vocabulary [0, " +
                             std::to_string(label_limit_) + ")");
        }
        new_labels.push_back(op.label);
        break;
      case UpdateKind::kRemoveVertex:
        if (!known(op.u)) return fail(i, "unknown vertex");
        if (!live(op.u)) return fail(i, "vertex already dead");
        if (sim_degree(op.u) != 0) {
          return fail(i, "vertex not isolated (delete its edges first)");
        }
        killed.insert(op.u);
        break;
    }
  }
  return true;
}

bool DynamicGraph::Apply(const UpdateBatch& batch, std::string* error) {
  if (!ValidateBatch(batch, error)) return false;
  for (const UpdateOp& op : batch.ops) ApplyOp(op);
  BumpEpoch();
  return true;
}

void DynamicGraph::ApplyOp(const UpdateOp& op) {
  switch (op.kind) {
    case UpdateKind::kAddEdge:
      SGM_CHECK(op.u != op.v && alive(op.u) && alive(op.v));
      SGM_CHECK(!HasEdge(op.u, op.v));
      AddHalfEdge(op.u, op.v);
      AddHalfEdge(op.v, op.u);
      ++edge_count_;
      dirty_ = true;
      break;
    case UpdateKind::kRemoveEdge:
      SGM_CHECK(HasEdge(op.u, op.v));
      RemoveHalfEdge(op.u, op.v);
      RemoveHalfEdge(op.v, op.u);
      --edge_count_;
      dirty_ = true;
      break;
    case UpdateKind::kAddVertex:
      SGM_CHECK(op.label < label_limit_);
      added_labels_.push_back(op.label);
      dead_.push_back(false);
      dirty_ = true;
      break;
    case UpdateKind::kRemoveVertex:
      SGM_CHECK(alive(op.u) && degree(op.u) == 0);
      dead_[op.u] = true;
      dirty_ = true;
      break;
  }
}

void DynamicGraph::AddHalfEdge(Vertex from, Vertex to) {
  VertexDelta& delta = overlay_[from];
  // Re-adding a removed base edge cancels the removal instead of growing
  // `added` — the overlay stays a minimal diff against the base.
  if (SortedErase(&delta.removed, to)) return;
  SortedInsert(&delta.added, to);
}

void DynamicGraph::RemoveHalfEdge(Vertex from, Vertex to) {
  VertexDelta& delta = overlay_[from];
  if (SortedErase(&delta.added, to)) return;
  SGM_CHECK(from < base_->vertex_count());
  SortedInsert(&delta.removed, to);
}

const DynamicGraph::VertexDelta* DynamicGraph::FindDelta(Vertex v) const {
  const auto it = overlay_.find(v);
  return it == overlay_.end() ? nullptr : &it->second;
}

Graph DynamicGraph::Snapshot() const {
  const uint32_t count = vertex_count();
  std::vector<Label> labels(count);
  for (Vertex v = 0; v < count; ++v) labels[v] = label(v);

  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(edge_count_);
  // Base edges minus removals: one overlay lookup per vertex, not per edge.
  for (Vertex u = 0; u < base_->vertex_count(); ++u) {
    const VertexDelta* delta = FindDelta(u);
    for (const Vertex v : base_->neighbors(u)) {
      if (v <= u) continue;
      if (delta != nullptr && SortedContains(delta->removed, v)) continue;
      edges.emplace_back(u, v);
    }
  }
  // Overlay additions appear in both endpoints' lists; emit from the lower
  // endpoint only.
  for (const auto& [u, delta] : overlay_) {
    for (const Vertex v : delta.added) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  SGM_CHECK(edges.size() == edge_count_);
  return Graph(std::move(labels), edges);
}

std::shared_ptr<const Graph> DynamicGraph::SnapshotShared() const {
  if (!dirty_) return base_;
  return std::make_shared<const Graph>(Snapshot());
}

void DynamicGraph::Compact() {
  if (!dirty_) return;
  base_ = std::make_shared<const Graph>(Snapshot());
  overlay_.clear();
  added_labels_.clear();
  dirty_ = false;
  ++compactions_;
  SGM_CHECK(base_->edge_count() == edge_count_);
}

size_t DynamicGraph::OverlayMemoryBytes() const {
  size_t bytes = overlay_.size() *
                 (sizeof(Vertex) + sizeof(VertexDelta) + 2 * sizeof(void*));
  for (const auto& [v, delta] : overlay_) {
    bytes += (delta.added.capacity() + delta.removed.capacity()) *
             sizeof(Vertex);
  }
  bytes += added_labels_.capacity() * sizeof(Label);
  bytes += dead_.capacity() / 8;
  return bytes;
}

}  // namespace sgm::dynamic
