// Search-depth profile: per-depth counters of the backtracking enumeration
// (recursion calls, local-candidate volume, dead-end and conflict counts,
// failing-set prunes, matches, sampled time attribution). Collected by
// EnumerationEngine only when a profile is attached via
// EnumerateOptions::depth_profile — the default hot path never touches it.
//
// The per-depth counters tie out exactly against EnumerateStats: summed over
// depths, recursion_calls, local_candidates, failing_set_prunes and matches
// equal the corresponding run totals (asserted in obs_test.cc).
// sampled_ms is a statistical attribution: wall time between the engine's
// periodic checkpoints (every 1024 recursion calls) is charged to the depth
// active at the checkpoint, so it converges on the true per-depth share for
// searches long enough to matter while costing zero extra clock reads.
#ifndef SGM_OBS_DEPTH_PROFILE_H_
#define SGM_OBS_DEPTH_PROFILE_H_

#include <cstdint>
#include <vector>

namespace sgm::obs {

/// Counters of one recursion depth (depth d extends the d-th order vertex).
struct DepthStats {
  uint64_t recursion_calls = 0;
  /// Total size of the local candidate sets computed at this depth.
  uint64_t local_candidates = 0;
  /// Dead ends: local candidate set came up empty.
  uint64_t empty_local_candidates = 0;
  /// Extensions rejected because the data vertex was already mapped.
  uint64_t conflicts = 0;
  /// Sibling extensions skipped by failing-set pruning at this depth.
  uint64_t failing_set_prunes = 0;
  /// Matches completed by extending at this depth (always depth n-1).
  uint64_t matches = 0;
  /// Sampled wall-time attribution (see file comment).
  double sampled_ms = 0.0;
};

/// Per-depth profile of one enumeration run (or one worker's share of it).
struct DepthProfile {
  std::vector<DepthStats> depths;

  bool empty() const { return depths.empty(); }

  /// Sizes the profile for an n-vertex query, keeping existing counts.
  void Resize(uint32_t query_vertex_count) {
    if (depths.size() < query_vertex_count) depths.resize(query_vertex_count);
  }

  /// Accumulates another profile (per-worker profiles into the run total).
  void Merge(const DepthProfile& other) {
    if (depths.size() < other.depths.size()) depths.resize(other.depths.size());
    for (size_t d = 0; d < other.depths.size(); ++d) {
      depths[d].recursion_calls += other.depths[d].recursion_calls;
      depths[d].local_candidates += other.depths[d].local_candidates;
      depths[d].empty_local_candidates += other.depths[d].empty_local_candidates;
      depths[d].conflicts += other.depths[d].conflicts;
      depths[d].failing_set_prunes += other.depths[d].failing_set_prunes;
      depths[d].matches += other.depths[d].matches;
      depths[d].sampled_ms += other.depths[d].sampled_ms;
    }
  }

  uint64_t TotalRecursionCalls() const {
    uint64_t total = 0;
    for (const DepthStats& d : depths) total += d.recursion_calls;
    return total;
  }
};

}  // namespace sgm::obs

#endif  // SGM_OBS_DEPTH_PROFILE_H_
