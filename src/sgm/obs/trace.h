// Span-based tracing with Chrome trace-event export. A TraceBuffer collects
// complete ("ph": "X") events — name, category, wall timestamp/duration and,
// when available, thread-CPU timestamp/duration — from any number of threads
// and serializes them to the JSON Object Format understood by
// chrome://tracing and Perfetto (ui.perfetto.dev). The matcher emits one
// span per pipeline phase and, in the parallel path, one span per work item
// per worker, so a trace file shows exactly where a query's time went.
//
// Cost model: a span records two clock reads at open and two at close plus
// one mutex-guarded vector push; spans are only created when a Collector
// with tracing enabled is attached, so the untraced hot path pays nothing.
#ifndef SGM_OBS_TRACE_H_
#define SGM_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sgm/obs/json.h"
#include "sgm/util/timer.h"

namespace sgm::obs {

/// One argument attached to a trace event (shown in the Perfetto side
/// panel when the span is selected).
struct TraceArg {
  std::string key;
  bool is_string = false;
  std::string string_value;
  double number_value = 0.0;
};

/// One complete trace event. Timestamps are microseconds relative to the
/// owning buffer's epoch (its construction time).
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  /// Thread-CPU timestamp/duration in microseconds; negative = not sampled.
  double tts_us = -1.0;
  double tdur_us = -1.0;
  /// Logical thread id: 0 = the orchestrating thread, 1+N = worker N.
  uint32_t tid = 0;
  std::vector<TraceArg> args;
};

/// Thread-safe append-only buffer of trace events.
class TraceBuffer {
 public:
  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Wall-clock microseconds since this buffer's construction — the ts
  /// domain of every event it holds.
  double NowUs() const { return static_cast<double>(epoch_.ElapsedNanos()) * 1e-3; }

  /// Appends one event (any thread).
  void Add(TraceEvent event);

  /// Names a logical thread in the trace viewer ("pipeline", "worker-3").
  void SetThreadName(uint32_t tid, std::string name);

  size_t size() const;
  std::vector<TraceEvent> events() const;

  /// Full Chrome trace document: {"displayTimeUnit": "ms", "traceEvents":
  /// [...]} with one "M"-phase thread_name record per named thread and one
  /// "X"-phase record per span.
  Json ToJson() const;

  /// Writes ToJson() to `path`. Returns false and fills *error on failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;

 private:
  Timer epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<uint32_t, std::string>> thread_names_;
};

/// RAII span: opens at construction, records a complete event (wall and
/// thread-CPU duration) into the buffer at destruction or End(). A null
/// buffer makes every operation a no-op, so call sites need no branching.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, std::string name, std::string category,
            uint32_t tid = 0);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  void AddArg(std::string key, double value);
  void AddArg(std::string key, std::string value);

  /// Closes the span early (idempotent).
  void End();

 private:
  TraceBuffer* buffer_;
  TraceEvent event_;
  int64_t cpu_start_nanos_ = 0;
};

}  // namespace sgm::obs

#endif  // SGM_OBS_TRACE_H_
