#include "sgm/obs/slow_query_log.h"

#include <sstream>

#include "sgm/fuzz/fuzz_case.h"
#include "sgm/fuzz/reproducer.h"
#include "sgm/service/plan_cache.h"

namespace sgm::obs {

Json SlowQueryRecord::ToJson() const {
  Json json = Json::Object();
  json.Set("unix_time_s", Json::Number(unix_time_s));
  json.Set("status", Json::String(status));
  json.Set("threshold_ms", Json::Number(threshold_ms));
  json.Set("service_ms", Json::Number(service_ms));
  json.Set("queue_ms", Json::Number(queue_ms));
  json.Set("execute_ms", Json::Number(execute_ms));
  json.Set("plan_cache_hit", Json::Bool(plan_cache_hit));
  Json query = Json::Object();
  query.Set("vertices", Json::Number(uint64_t{query_vertices}));
  query.Set("edges", Json::Number(uint64_t{query_edges}));
  json.Set("query", std::move(query));
  Json enumerate = Json::Object();
  enumerate.Set("match_count", Json::Number(match_count));
  enumerate.Set("recursion_calls", Json::Number(recursion_calls));
  enumerate.Set("local_candidates_scanned",
                Json::Number(local_candidates_scanned));
  enumerate.Set("failing_set_prunes", Json::Number(failing_set_prunes));
  enumerate.Set("bitmap_intersections", Json::Number(bitmap_intersections));
  enumerate.Set("lc_cache_hits", Json::Number(lc_cache_hits));
  enumerate.Set("lc_cache_misses", Json::Number(lc_cache_misses));
  enumerate.Set("timed_out", Json::Bool(timed_out));
  enumerate.Set("reached_match_limit", Json::Bool(reached_match_limit));
  json.Set("enumerate", std::move(enumerate));
  json.Set("reproducer",
           reproducer.empty() ? Json::Null() : Json::String(reproducer));
  return json;
}

std::string BuildSlowQueryReproducer(const Graph& query, const Graph& data,
                                     const MatchOptions& options) {
  // The reproducer format expresses configurations as preset + knobs
  // (fs/ix/cache), not as raw MatchOptions fields. Recover the preset by
  // trying all of them and comparing the plan-shaping fingerprint — the
  // same equality the plan cache keys on.
  fuzz::ConfigSpec spec;
  spec.failing_sets = options.use_failing_sets;
  spec.intersection = options.intersection;
  spec.lc_cache = options.use_lc_cache;
  spec.service = true;
  const std::string want = service::PlanCache::EncodeOptions(options);
  bool found = false;
  const auto try_spec = [&](fuzz::ConfigSpec candidate) {
    if (found) return;
    const MatchOptions rebuilt = candidate.ToMatchOptions(
        query.vertex_count(), options.max_matches, options.time_limit_ms);
    if (service::PlanCache::EncodeOptions(rebuilt) == want) {
      spec = candidate;
      found = true;
    }
  };
  {
    fuzz::ConfigSpec candidate = spec;
    candidate.recommended = true;
    try_spec(candidate);
  }
  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const bool classic : {false, true}) {
      fuzz::ConfigSpec candidate = spec;
      candidate.algorithm = algorithm;
      candidate.classic = classic;
      try_spec(candidate);
    }
  }
  if (!found) return "";

  fuzz::Reproducer reproducer;
  reproducer.fuzz_case.query = query;
  reproducer.fuzz_case.data = data;
  reproducer.fuzz_case.configs.push_back(spec);
  reproducer.fuzz_case.max_matches = options.max_matches;
  // Deliberately no time limit: the replay should finish the search the
  // production deadline cut short, on whatever machine runs it.
  reproducer.fuzz_case.time_limit_ms = 0.0;
  std::ostringstream out;
  fuzz::WriteReproducer(reproducer, out);
  return out.str();
}

SlowQueryLog::SlowQueryLog(const Options& options) : options_(options) {
  out_.open(options_.path, std::ios::app);
  if (!out_) {
    error_ = "cannot open " + options_.path + " for appending";
  }
}

void SlowQueryLog::Append(const SlowQueryRecord& record) {
  const std::string line = record.ToJson().Dump(0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_) return;
  out_ << line << '\n';
  out_.flush();
  ++entries_;
}

uint64_t SlowQueryLog::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

}  // namespace sgm::obs
