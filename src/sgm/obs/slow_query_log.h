// Structured slow-query log for the serving layer: requests whose total
// service time crosses a configured threshold append one JSONL record (one
// compact JSON object per line) carrying the latency breakdown, the
// plan-cache outcome, the enumeration counters and — unless disabled — a
// fuzz-reproducer-compatible dump of the query, the data graph and the
// effective configuration, so any slow query can be replayed offline:
//
//   jq -r '.reproducer' slow_queries.jsonl | head -c -1 > slow.case
//   sgm_fuzz --replay slow.case
//
// The replay re-runs the exact query against the exact data graph through
// the differential oracle (including the served plan-cache-hit path), so a
// tail-latency outlier observed in production can be bisected on a dev
// machine with the full sgm_fuzz/sgm_match toolbox. This is the telemetry
// that "Deep Analysis on Subgraph Isomorphism"-style pathological
// query/data combinations need: the aggregate histograms say *that* the
// tail exists, the slow-query log says *which* queries populate it.
//
// Appends are mutex-serialized and flushed per record, so a crash loses at
// most the record being written and concurrent workers never interleave
// bytes. MatchService drives this automatically via
// ServiceOptions::slow_query_log (see service/service.h); the log object
// itself is service-agnostic and can be fed by any caller.
#ifndef SGM_OBS_SLOW_QUERY_LOG_H_
#define SGM_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "sgm/matcher.h"
#include "sgm/obs/json.h"

namespace sgm::obs {

/// One slow-request record. Built by the serving layer (or any caller) and
/// serialized as a single JSONL line via ToJson().Dump(0).
struct SlowQueryRecord {
  /// Wall-clock time the record was written, seconds since the Unix epoch
  /// (the one wall-clock field in the system: slow-query records are meant
  /// to be correlated with external logs).
  double unix_time_s = 0.0;
  /// Terminal request status ("ok", "timeout", "cancelled", "rejected").
  std::string status = "ok";
  /// Threshold the request crossed, and the latency breakdown.
  double threshold_ms = 0.0;
  double service_ms = 0.0;
  double queue_ms = 0.0;
  double execute_ms = 0.0;
  bool plan_cache_hit = false;
  /// Query shape.
  uint32_t query_vertices = 0;
  uint32_t query_edges = 0;
  /// Enumeration counters of the slow run (EnumerateStats).
  uint64_t match_count = 0;
  uint64_t recursion_calls = 0;
  uint64_t local_candidates_scanned = 0;
  uint64_t failing_set_prunes = 0;
  uint64_t bitmap_intersections = 0;
  uint64_t lc_cache_hits = 0;
  uint64_t lc_cache_misses = 0;
  bool timed_out = false;
  bool reached_match_limit = false;
  /// Full `sgm_fuzz --replay` reproducer text (query + data graph + config),
  /// empty when embedding is disabled or the options match no replayable
  /// preset; serialized as null when empty.
  std::string reproducer;

  Json ToJson() const;
};

/// Builds the reproducer text embedded in a record: the query and data
/// graphs verbatim plus one `svc=1` config line reconstructed from the
/// effective MatchOptions (the replay therefore exercises the served,
/// plan-cache-hit path). Returns an empty string when the options match no
/// preset the reproducer format can express — field-level ablation combos
/// are logged without a replay dump.
std::string BuildSlowQueryReproducer(const Graph& query, const Graph& data,
                                     const MatchOptions& options);

/// Append-only JSONL sink. Thread-safe; one flush per record.
class SlowQueryLog {
 public:
  struct Options {
    /// Output path; records append (the file is created if absent).
    std::string path;
    /// Requests at or above this total service time are logged.
    double threshold_ms = 100.0;
    /// Embed the replay reproducer (including the full data graph) in each
    /// record. Costly per record on big graphs — slow queries should be
    /// rare; disable when serving graphs where the dump is unaffordable.
    bool embed_reproducer = true;
  };

  explicit SlowQueryLog(const Options& options);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// False when the log file could not be opened; error() says why.
  /// Appends to a failed log are dropped silently (telemetry must never
  /// take the serving path down).
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  double threshold_ms() const { return options_.threshold_ms; }
  bool embed_reproducer() const { return options_.embed_reproducer; }
  const std::string& path() const { return options_.path; }

  /// Serializes the record as one line. Thread-safe.
  void Append(const SlowQueryRecord& record);

  /// Records appended so far (this instance, not the file).
  uint64_t entries() const;

 private:
  const Options options_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::string error_;
  uint64_t entries_ = 0;
};

}  // namespace sgm::obs

#endif  // SGM_OBS_SLOW_QUERY_LOG_H_
