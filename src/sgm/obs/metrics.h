// Process-wide service telemetry: counters, gauges and log-bucketed latency
// histograms, collected in a MetricsRegistry and exposed in two formats —
// Prometheus text exposition (MetricsRegistry::RenderPrometheus) and a JSON
// snapshot built on the obs::Json model (MetricsRegistry::ToJson).
//
// Design (DESIGN.md §12):
//  * Counters are sharded: increments land on one of kShards cache-line-
//    padded atomics picked by a per-thread index, so workers hammering the
//    same counter never contend on one cache line. Reads sum the shards.
//  * Gauges are a single atomic (set/add are rare compared to counter
//    increments; sharding would break Set semantics).
//  * Histograms use fixed log2 buckets over integral microseconds: bucket 0
//    holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i) µs. Recording is
//    three relaxed fetch_adds; snapshots are mergeable across threads and
//    across Histogram instances (Merge), and percentiles are estimated by
//    linear interpolation inside the target bucket — the estimate is always
//    inside the bucket that holds the true order statistic, so the error is
//    bounded by that bucket's width.
//  * The registry hands out stable pointers; metric objects live as long as
//    the registry. MetricsRegistry::Default() is the process-wide instance
//    the serving layer instruments by default.
//
// All operations are thread-safe. Recording on the hot path costs a few
// relaxed atomic RMWs and never takes a lock; only registration (GetCounter
// etc.) and snapshotting lock the registry.
#ifndef SGM_OBS_METRICS_H_
#define SGM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sgm/obs/json.h"

namespace sgm::obs {

/// Label set of one metric series, e.g. {{"status", "ok"}}. Order is
/// preserved in the exposition output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter, sharded to keep concurrent increments
/// off each other's cache lines.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum across shards. Monotone between calls (counters never decrease).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread shard pick; one thread always hits the same shard of
  /// every counter, distinct threads spread round-robin.
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// Point-in-time signed value (queue depth, in-flight requests, bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed latency histogram over integral microseconds. Values are
/// recorded in milliseconds (the unit the rest of the system reports) and
/// quantized to µs; everything above the last finite bucket lands in the
/// overflow bucket. See the file comment for the bucket layout.
class Histogram {
 public:
  /// Bucket 0 = {0 µs}; buckets 1..kBuckets-2 = [2^(i-1), 2^i) µs; the last
  /// bucket is the overflow. 2^38 µs ≈ 76 hours — far beyond any latency
  /// this system can produce.
  static constexpr size_t kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Negative values clamp to 0.
  void Record(double value_ms);

  /// Adds every observation of `other` into this histogram (the cross-
  /// thread merge path for per-worker local histograms).
  void Merge(const Histogram& other);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double SumMs() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) * 1e-3;
  }

  /// Estimated q-quantile (q in [0, 1]) in milliseconds, by linear
  /// interpolation inside the bucket holding the order statistic. NaN when
  /// the histogram is empty (serialized as JSON null).
  double Percentile(double q) const;

  /// Count in one bucket.
  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  /// Bucket index a value recorded as `value_ms` lands in.
  static size_t BucketIndex(double value_ms);

  /// Inclusive upper bound of bucket i in milliseconds: (2^i - 1) µs (our
  /// observations are integral µs, so the bound is exact). The overflow
  /// bucket has no finite bound (+Inf in the Prometheus exposition).
  static double BucketUpperMs(size_t bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// Named collection of metrics with exposition. See the file comment.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what MatchService instruments unless its
  /// options name another one).
  static MetricsRegistry& Default();

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. The pointer stays valid for the registry's lifetime.
  /// Re-registering an existing series with a different metric kind is a
  /// programming error (SGM_CHECK).
  Counter* GetCounter(std::string_view name, std::string_view help,
                      MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          MetricLabels labels = {});

  /// Prometheus text exposition format, version 0.0.4: one HELP/TYPE pair
  /// per family, then one line per series ("name{labels} value");
  /// histograms expand to cumulative `_bucket{le="..."}` series plus
  /// `_sum` / `_count`.
  std::string RenderPrometheus() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...], "histograms":
  /// [...]}, each entry carrying name, labels and value(s); histograms add
  /// count, sum_ms, p50/p90/p99/p99.9 estimates and the non-empty buckets.
  /// Percentiles of empty histograms serialize as null.
  Json ToJson() const;

  /// Number of registered series (all kinds).
  size_t size() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::string name;
    std::string help;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* FindOrCreateLocked(Kind kind, std::string_view name,
                             std::string_view help, MetricLabels labels);

  mutable std::mutex mutex_;
  /// Insertion order drives the exposition output, so snapshots are stable
  /// and diffable (same discipline as Json objects).
  std::vector<std::unique_ptr<Metric>> metrics_;
  std::unordered_map<std::string, Metric*> index_;
};

}  // namespace sgm::obs

#endif  // SGM_OBS_METRICS_H_
