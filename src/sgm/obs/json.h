// Minimal JSON document model for the observability layer: enough to build
// run reports and Chrome trace files, dump them deterministically, and parse
// them back for round-trip validation in tests. Not a general-purpose JSON
// library — no streaming, no comments, numbers are doubles (with integer
// values printed without a fractional part and non-finite values serialized
// as null, since JSON has no NaN/Inf tokens), objects preserve insertion
// order so dumps are stable and diffable.
#ifndef SGM_OBS_JSON_H_
#define SGM_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgm::obs {

/// One JSON value (null, bool, number, string, array or object).
class Json {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Number(uint64_t value);
  static Json Number(int64_t value);
  static Json String(std::string value);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; SGM_CHECK on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  uint64_t AsUint64() const;
  const std::string& AsString() const;

  /// Array access.
  size_t size() const;
  const Json& at(size_t index) const;
  void Append(Json value);

  /// Object access. `Get` returns nullptr when the key is absent; `Set`
  /// overwrites an existing key in place (order preserved) or appends.
  const Json* Get(std::string_view key) const;
  void Set(std::string_view key, Json value);
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Convenience typed lookups with defaults, for report parsing.
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  uint64_t GetUint64(std::string_view key, uint64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  std::string GetString(std::string_view key,
                        std::string fallback = {}) const;

  /// Serializes the value. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits a compact single line.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document. Returns std::nullopt and fills
  /// *error (when non-null) on malformed input or trailing garbage.
  static std::optional<Json> Parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Exposed for the few places that stream JSON with fprintf.
std::string JsonEscape(std::string_view text);

}  // namespace sgm::obs

#endif  // SGM_OBS_JSON_H_
