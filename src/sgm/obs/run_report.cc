#include "sgm/obs/run_report.h"

#include <cstdio>
#include <thread>
#include <utility>

// Build-type and sanitizer provenance injected by src/CMakeLists.txt;
// default to unknown/none when built outside CMake.
#ifndef SGM_BUILD_TYPE
#define SGM_BUILD_TYPE "unknown"
#endif
#ifndef SGM_SANITIZE_FLAGS
#define SGM_SANITIZE_FLAGS ""
#endif

namespace sgm::obs {

BuildProvenance BuildProvenance::Current() {
  BuildProvenance provenance;
#if defined(__clang__)
  provenance.compiler = "clang " + std::to_string(__clang_major__) + "." +
                        std::to_string(__clang_minor__) + "." +
                        std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  provenance.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                        std::to_string(__GNUC_MINOR__) + "." +
                        std::to_string(__GNUC_PATCHLEVEL__);
#else
  provenance.compiler = "unknown";
#endif
  provenance.build_type = SGM_BUILD_TYPE;
  provenance.sanitizers = SGM_SANITIZE_FLAGS;
  provenance.hardware_threads = std::thread::hardware_concurrency();
  return provenance;
}

Json BuildProvenance::ToJson() const {
  Json json = Json::Object();
  json.Set("compiler", Json::String(compiler));
  json.Set("build_type", Json::String(build_type));
  json.Set("sanitizers", Json::String(sanitizers));
  json.Set("hardware_threads", Json::Number(uint64_t{hardware_threads}));
  return json;
}

namespace {

// Shared part of both BuildRunReport overloads: everything a MatchResult
// knows. The parallel overload then overrides the parallel section.
RunReport BuildCommon(const Graph& query, const Graph& data,
                      const MatchOptions& options, const MatchResult& result) {
  RunReport report;
  const BuildProvenance provenance = BuildProvenance::Current();
  report.compiler = provenance.compiler;
  report.build_type = provenance.build_type;
  report.sanitizers = provenance.sanitizers;
  report.hardware_threads = provenance.hardware_threads;
  report.query_vertices = query.vertex_count();
  report.query_edges = query.edge_count();
  report.data_vertices = data.vertex_count();
  report.data_edges = data.edge_count();
  report.data_labels = data.label_count();

  report.filter = FilterMethodName(options.filter);
  report.order = OrderMethodName(options.order);
  report.lc_method = LocalCandidateMethodName(options.lc_method);
  report.aux_scope = AuxEdgeScopeName(options.aux_scope);
  report.intersection = IntersectionMethodName(options.intersection);
  report.use_lc_cache = options.use_lc_cache;
  report.use_failing_sets = options.use_failing_sets;
  report.adaptive_order = options.adaptive_order;
  report.vf2pp_lookahead = options.vf2pp_lookahead;
  report.postpone_degree_one = options.postpone_degree_one;
  report.max_matches = options.max_matches;
  report.time_limit_ms = options.time_limit_ms;

  report.filter_ms = result.filter_ms;
  report.aux_build_ms = result.aux_build_ms;
  report.order_ms = result.order_ms;
  report.enumeration_ms = result.enumeration_ms;
  report.preprocessing_ms = result.preprocessing_ms;
  report.total_ms = result.total_ms;

  report.average_candidates = result.average_candidates;
  report.candidate_memory_bytes = result.candidate_memory_bytes;
  report.aux_memory_bytes = result.aux_memory_bytes;
  report.filter_rounds = result.filter_rounds;
  report.matching_order.assign(result.matching_order.begin(),
                               result.matching_order.end());

  report.match_count = result.match_count;
  report.recursion_calls = result.enumerate.recursion_calls;
  report.local_candidates_scanned = result.enumerate.local_candidates_scanned;
  report.failing_set_prunes = result.enumerate.failing_set_prunes;
  report.bitmap_intersections = result.enumerate.bitmap_intersections;
  report.lc_cache_hits = result.enumerate.lc_cache_hits;
  report.lc_cache_misses = result.enumerate.lc_cache_misses;
  report.timed_out = result.enumerate.timed_out;
  report.reached_match_limit = result.enumerate.reached_match_limit;

  report.depth_profile = result.depth_profile;
  return report;
}

}  // namespace

RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const MatchResult& result) {
  return BuildCommon(query, data, options, result);
}

RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const ParallelMatchResult& result) {
  RunReport report = BuildCommon(query, data, options, result.result);
  report.engine = "parallel";
  report.parallel_mode = ParallelModeName(result.mode);
  report.workers_used = result.workers_used;
  report.chunk_size = result.chunk_size;
  report.subtasks_published = result.subtasks_published;
  report.load_imbalance = result.LoadImbalance();
  report.workers.reserve(result.worker_stats.size());
  for (const ParallelWorkerStats& stats : result.worker_stats) {
    RunReportWorker worker;
    worker.root_chunks = stats.root_chunks;
    worker.stolen_subtasks = stats.stolen_subtasks;
    worker.recursion_calls = stats.recursion_calls;
    worker.matches_found = stats.matches_found;
    worker.busy_ms = stats.busy_ms;
    report.workers.push_back(worker);
  }
  return report;
}

RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const ShardedMatchResult& result) {
  RunReport report = BuildCommon(query, data, options, result.result);
  report.engine = "sharded";
  const ShardedRunInfo& info = result.sharding;
  report.shard_count = info.shard_count;
  report.partitioner =
      info.shard_count > 0 ? shard::PartitionerName(info.partitioner) : "none";
  report.cut_edges = info.cut_edges;
  report.boundary_vertices = info.boundary_vertex_count;
  report.boundary_radius = info.boundary_radius;
  report.region_vertices = info.region_vertices;
  report.shard_passes.reserve(info.passes.size());
  for (const ShardPassStats& stats : info.passes) {
    RunReportShardPass pass;
    pass.shard = stats.shard;
    pass.boundary = stats.boundary;
    pass.match_count = stats.match_count;
    pass.graph_vertices = stats.graph_vertices;
    pass.owned_vertices = stats.owned_vertices;
    pass.candidate_memory_bytes = stats.candidate_memory_bytes;
    pass.aux_memory_bytes = stats.aux_memory_bytes;
    pass.build_ms = stats.build_ms;
    pass.enumerate_ms = stats.enumerate_ms;
    pass.busy_ms = stats.busy_ms;
    report.shard_passes.push_back(pass);
  }
  return report;
}

Json RunReport::ToJson() const {
  Json root = Json::Object();
  root.Set("schema_version", Json::Number(kSchemaVersion));
  root.Set("engine", Json::String(engine));

  Json build = Json::Object();
  build.Set("compiler", Json::String(compiler));
  build.Set("build_type", Json::String(build_type));
  build.Set("sanitizers", Json::String(sanitizers));
  build.Set("hardware_threads", Json::Number(uint64_t{hardware_threads}));
  root.Set("build", std::move(build));

  Json query_json = Json::Object();
  query_json.Set("vertices", Json::Number(uint64_t{query_vertices}));
  query_json.Set("edges", Json::Number(uint64_t{query_edges}));
  root.Set("query", std::move(query_json));

  Json data_json = Json::Object();
  data_json.Set("vertices", Json::Number(uint64_t{data_vertices}));
  data_json.Set("edges", Json::Number(uint64_t{data_edges}));
  data_json.Set("labels", Json::Number(uint64_t{data_labels}));
  root.Set("data", std::move(data_json));

  Json config = Json::Object();
  config.Set("filter", Json::String(filter));
  config.Set("order", Json::String(order));
  config.Set("lc_method", Json::String(lc_method));
  config.Set("aux_scope", Json::String(aux_scope));
  config.Set("intersection", Json::String(intersection));
  config.Set("use_lc_cache", Json::Bool(use_lc_cache));
  config.Set("use_failing_sets", Json::Bool(use_failing_sets));
  config.Set("adaptive_order", Json::Bool(adaptive_order));
  config.Set("vf2pp_lookahead", Json::Bool(vf2pp_lookahead));
  config.Set("postpone_degree_one", Json::Bool(postpone_degree_one));
  config.Set("max_matches", Json::Number(max_matches));
  config.Set("time_limit_ms", Json::Number(time_limit_ms));
  root.Set("config", std::move(config));

  Json phases = Json::Object();
  phases.Set("filter_ms", Json::Number(filter_ms));
  phases.Set("aux_build_ms", Json::Number(aux_build_ms));
  phases.Set("order_ms", Json::Number(order_ms));
  phases.Set("enumeration_ms", Json::Number(enumeration_ms));
  phases.Set("preprocessing_ms", Json::Number(preprocessing_ms));
  phases.Set("total_ms", Json::Number(total_ms));
  root.Set("phases", std::move(phases));

  Json candidates = Json::Object();
  candidates.Set("average", Json::Number(average_candidates));
  candidates.Set("memory_bytes", Json::Number(candidate_memory_bytes));
  candidates.Set("aux_memory_bytes", Json::Number(aux_memory_bytes));
  root.Set("candidates", std::move(candidates));

  Json rounds = Json::Array();
  for (const FilterRound& round : filter_rounds) {
    Json entry = Json::Object();
    entry.Set("name", Json::String(round.name));
    entry.Set("total_candidates", Json::Number(round.total_candidates));
    entry.Set("ms", Json::Number(round.ms));
    rounds.Append(std::move(entry));
  }
  root.Set("filter_rounds", std::move(rounds));

  Json order_json = Json::Array();
  for (const uint32_t u : matching_order) {
    order_json.Append(Json::Number(uint64_t{u}));
  }
  root.Set("matching_order", std::move(order_json));

  Json enumerate = Json::Object();
  enumerate.Set("match_count", Json::Number(match_count));
  enumerate.Set("recursion_calls", Json::Number(recursion_calls));
  enumerate.Set("local_candidates_scanned",
                Json::Number(local_candidates_scanned));
  enumerate.Set("failing_set_prunes", Json::Number(failing_set_prunes));
  enumerate.Set("bitmap_intersections", Json::Number(bitmap_intersections));
  enumerate.Set("lc_cache_hits", Json::Number(lc_cache_hits));
  enumerate.Set("lc_cache_misses", Json::Number(lc_cache_misses));
  enumerate.Set("timed_out", Json::Bool(timed_out));
  enumerate.Set("reached_match_limit", Json::Bool(reached_match_limit));
  root.Set("enumerate", std::move(enumerate));

  Json profile = Json::Array();
  for (size_t d = 0; d < depth_profile.depths.size(); ++d) {
    const DepthStats& stats = depth_profile.depths[d];
    Json entry = Json::Object();
    entry.Set("depth", Json::Number(uint64_t{d}));
    entry.Set("recursion_calls", Json::Number(stats.recursion_calls));
    entry.Set("local_candidates", Json::Number(stats.local_candidates));
    entry.Set("empty_local_candidates",
              Json::Number(stats.empty_local_candidates));
    entry.Set("conflicts", Json::Number(stats.conflicts));
    entry.Set("failing_set_prunes", Json::Number(stats.failing_set_prunes));
    entry.Set("matches", Json::Number(stats.matches));
    entry.Set("sampled_ms", Json::Number(stats.sampled_ms));
    profile.Append(std::move(entry));
  }
  root.Set("depth_profile", std::move(profile));

  Json parallel = Json::Object();
  parallel.Set("mode", Json::String(parallel_mode));
  parallel.Set("workers_used", Json::Number(uint64_t{workers_used}));
  parallel.Set("chunk_size", Json::Number(uint64_t{chunk_size}));
  parallel.Set("subtasks_published", Json::Number(subtasks_published));
  parallel.Set("load_imbalance", Json::Number(load_imbalance));
  Json workers_json = Json::Array();
  for (const RunReportWorker& worker : workers) {
    Json entry = Json::Object();
    entry.Set("root_chunks", Json::Number(uint64_t{worker.root_chunks}));
    entry.Set("stolen_subtasks",
              Json::Number(uint64_t{worker.stolen_subtasks}));
    entry.Set("recursion_calls", Json::Number(worker.recursion_calls));
    entry.Set("matches_found", Json::Number(worker.matches_found));
    entry.Set("busy_ms", Json::Number(worker.busy_ms));
    workers_json.Append(std::move(entry));
  }
  parallel.Set("workers", std::move(workers_json));
  root.Set("parallel", std::move(parallel));

  Json sharding = Json::Object();
  sharding.Set("shard_count", Json::Number(uint64_t{shard_count}));
  sharding.Set("partitioner", Json::String(partitioner));
  sharding.Set("cut_edges", Json::Number(cut_edges));
  sharding.Set("boundary_vertices", Json::Number(uint64_t{boundary_vertices}));
  sharding.Set("boundary_radius", Json::Number(uint64_t{boundary_radius}));
  sharding.Set("region_vertices", Json::Number(uint64_t{region_vertices}));
  Json passes_json = Json::Array();
  for (const RunReportShardPass& pass : shard_passes) {
    Json entry = Json::Object();
    entry.Set("shard", Json::Number(uint64_t{pass.shard}));
    entry.Set("boundary", Json::Bool(pass.boundary));
    entry.Set("match_count", Json::Number(pass.match_count));
    entry.Set("graph_vertices", Json::Number(uint64_t{pass.graph_vertices}));
    entry.Set("owned_vertices", Json::Number(uint64_t{pass.owned_vertices}));
    entry.Set("candidate_memory_bytes",
              Json::Number(pass.candidate_memory_bytes));
    entry.Set("aux_memory_bytes", Json::Number(pass.aux_memory_bytes));
    entry.Set("build_ms", Json::Number(pass.build_ms));
    entry.Set("enumerate_ms", Json::Number(pass.enumerate_ms));
    entry.Set("busy_ms", Json::Number(pass.busy_ms));
    passes_json.Append(std::move(entry));
  }
  sharding.Set("passes", std::move(passes_json));
  root.Set("sharding", std::move(sharding));

  Json service = Json::Object();
  service.Set("served", Json::Bool(served));
  service.Set("plan_cache_hit", Json::Bool(plan_cache_hit));
  service.Set("queue_ms", Json::Number(queue_ms));
  service.Set("queue_depth", Json::Number(uint64_t{queue_depth}));
  service.Set("request_status", Json::String(request_status));
  service.Set("metrics", service_metrics);
  root.Set("service", std::move(service));

  Json dynamic = Json::Object();
  dynamic.Set("enabled", Json::Bool(dynamic_enabled));
  dynamic.Set("graph_epoch", Json::Number(graph_epoch));
  dynamic.Set("update_batches", Json::Number(update_batches));
  dynamic.Set("update_ops", Json::Number(update_ops));
  dynamic.Set("delta_additions", Json::Number(delta_additions));
  dynamic.Set("delta_retractions", Json::Number(delta_retractions));
  dynamic.Set("candidates_repaired", Json::Number(candidates_repaired));
  dynamic.Set("compactions", Json::Number(graph_compactions));
  dynamic.Set("overlay_bytes", Json::Number(overlay_bytes));
  dynamic.Set("update_apply_ms", Json::Number(update_apply_ms));
  dynamic.Set("delta_enumerate_ms", Json::Number(delta_enumerate_ms));
  dynamic.Set("continuous_queries", Json::Number(continuous_queries));
  root.Set("dynamic", std::move(dynamic));
  return root;
}

RunReport RunReport::FromJson(const Json& json) {
  RunReport report;
  if (!json.is_object()) return report;
  report.engine = json.GetString("engine", "serial");

  if (const Json* build = json.Get("build"); build != nullptr) {
    report.compiler = build->GetString("compiler");
    report.build_type = build->GetString("build_type");
    report.sanitizers = build->GetString("sanitizers");
    report.hardware_threads =
        static_cast<uint32_t>(build->GetUint64("hardware_threads"));
  }
  if (const Json* query = json.Get("query"); query != nullptr) {
    report.query_vertices =
        static_cast<uint32_t>(query->GetUint64("vertices"));
    report.query_edges = static_cast<uint32_t>(query->GetUint64("edges"));
  }
  if (const Json* data = json.Get("data"); data != nullptr) {
    report.data_vertices = static_cast<uint32_t>(data->GetUint64("vertices"));
    report.data_edges = static_cast<uint32_t>(data->GetUint64("edges"));
    report.data_labels = static_cast<uint32_t>(data->GetUint64("labels"));
  }
  if (const Json* config = json.Get("config"); config != nullptr) {
    report.filter = config->GetString("filter");
    report.order = config->GetString("order");
    report.lc_method = config->GetString("lc_method");
    report.aux_scope = config->GetString("aux_scope");
    report.intersection = config->GetString("intersection");
    report.use_lc_cache = config->GetBool("use_lc_cache");
    report.use_failing_sets = config->GetBool("use_failing_sets");
    report.adaptive_order = config->GetBool("adaptive_order");
    report.vf2pp_lookahead = config->GetBool("vf2pp_lookahead");
    report.postpone_degree_one = config->GetBool("postpone_degree_one");
    report.max_matches = config->GetUint64("max_matches");
    report.time_limit_ms = config->GetDouble("time_limit_ms");
  }
  if (const Json* phases = json.Get("phases"); phases != nullptr) {
    report.filter_ms = phases->GetDouble("filter_ms");
    report.aux_build_ms = phases->GetDouble("aux_build_ms");
    report.order_ms = phases->GetDouble("order_ms");
    report.enumeration_ms = phases->GetDouble("enumeration_ms");
    report.preprocessing_ms = phases->GetDouble("preprocessing_ms");
    report.total_ms = phases->GetDouble("total_ms");
  }
  if (const Json* candidates = json.Get("candidates"); candidates != nullptr) {
    report.average_candidates = candidates->GetDouble("average");
    report.candidate_memory_bytes = candidates->GetUint64("memory_bytes");
    report.aux_memory_bytes = candidates->GetUint64("aux_memory_bytes");
  }
  if (const Json* rounds = json.Get("filter_rounds");
      rounds != nullptr && rounds->is_array()) {
    for (size_t i = 0; i < rounds->size(); ++i) {
      const Json& entry = rounds->at(i);
      FilterRound round;
      round.name = entry.GetString("name");
      round.total_candidates = entry.GetUint64("total_candidates");
      round.ms = entry.GetDouble("ms");
      report.filter_rounds.push_back(std::move(round));
    }
  }
  if (const Json* order = json.Get("matching_order");
      order != nullptr && order->is_array()) {
    for (size_t i = 0; i < order->size(); ++i) {
      report.matching_order.push_back(
          static_cast<uint32_t>(order->at(i).AsUint64()));
    }
  }
  if (const Json* enumerate = json.Get("enumerate"); enumerate != nullptr) {
    report.match_count = enumerate->GetUint64("match_count");
    report.recursion_calls = enumerate->GetUint64("recursion_calls");
    report.local_candidates_scanned =
        enumerate->GetUint64("local_candidates_scanned");
    report.failing_set_prunes = enumerate->GetUint64("failing_set_prunes");
    report.bitmap_intersections = enumerate->GetUint64("bitmap_intersections");
    report.lc_cache_hits = enumerate->GetUint64("lc_cache_hits");
    report.lc_cache_misses = enumerate->GetUint64("lc_cache_misses");
    report.timed_out = enumerate->GetBool("timed_out");
    report.reached_match_limit = enumerate->GetBool("reached_match_limit");
  }
  if (const Json* profile = json.Get("depth_profile");
      profile != nullptr && profile->is_array()) {
    report.depth_profile.depths.resize(profile->size());
    for (size_t i = 0; i < profile->size(); ++i) {
      const Json& entry = profile->at(i);
      const size_t depth =
          static_cast<size_t>(entry.GetUint64("depth", uint64_t{i}));
      if (depth >= report.depth_profile.depths.size()) {
        report.depth_profile.depths.resize(depth + 1);
      }
      DepthStats& stats = report.depth_profile.depths[depth];
      stats.recursion_calls = entry.GetUint64("recursion_calls");
      stats.local_candidates = entry.GetUint64("local_candidates");
      stats.empty_local_candidates =
          entry.GetUint64("empty_local_candidates");
      stats.conflicts = entry.GetUint64("conflicts");
      stats.failing_set_prunes = entry.GetUint64("failing_set_prunes");
      stats.matches = entry.GetUint64("matches");
      stats.sampled_ms = entry.GetDouble("sampled_ms");
    }
  }
  if (const Json* parallel = json.Get("parallel"); parallel != nullptr) {
    report.parallel_mode = parallel->GetString("mode", "none");
    report.workers_used =
        static_cast<uint32_t>(parallel->GetUint64("workers_used", 1));
    report.chunk_size =
        static_cast<uint32_t>(parallel->GetUint64("chunk_size"));
    report.subtasks_published = parallel->GetUint64("subtasks_published");
    report.load_imbalance = parallel->GetDouble("load_imbalance", 1.0);
    if (const Json* workers_json = parallel->Get("workers");
        workers_json != nullptr && workers_json->is_array()) {
      for (size_t i = 0; i < workers_json->size(); ++i) {
        const Json& entry = workers_json->at(i);
        RunReportWorker worker;
        worker.root_chunks =
            static_cast<uint32_t>(entry.GetUint64("root_chunks"));
        worker.stolen_subtasks =
            static_cast<uint32_t>(entry.GetUint64("stolen_subtasks"));
        worker.recursion_calls = entry.GetUint64("recursion_calls");
        worker.matches_found = entry.GetUint64("matches_found");
        worker.busy_ms = entry.GetDouble("busy_ms");
        report.workers.push_back(worker);
      }
    }
  }
  if (const Json* sharding = json.Get("sharding"); sharding != nullptr) {
    report.shard_count =
        static_cast<uint32_t>(sharding->GetUint64("shard_count"));
    report.partitioner = sharding->GetString("partitioner", "none");
    report.cut_edges = sharding->GetUint64("cut_edges");
    report.boundary_vertices =
        static_cast<uint32_t>(sharding->GetUint64("boundary_vertices"));
    report.boundary_radius =
        static_cast<uint32_t>(sharding->GetUint64("boundary_radius"));
    report.region_vertices =
        static_cast<uint32_t>(sharding->GetUint64("region_vertices"));
    if (const Json* passes = sharding->Get("passes");
        passes != nullptr && passes->is_array()) {
      for (size_t i = 0; i < passes->size(); ++i) {
        const Json& entry = passes->at(i);
        RunReportShardPass pass;
        pass.shard = static_cast<uint32_t>(entry.GetUint64("shard"));
        pass.boundary = entry.GetBool("boundary");
        pass.match_count = entry.GetUint64("match_count");
        pass.graph_vertices =
            static_cast<uint32_t>(entry.GetUint64("graph_vertices"));
        pass.owned_vertices =
            static_cast<uint32_t>(entry.GetUint64("owned_vertices"));
        pass.candidate_memory_bytes =
            entry.GetUint64("candidate_memory_bytes");
        pass.aux_memory_bytes = entry.GetUint64("aux_memory_bytes");
        pass.build_ms = entry.GetDouble("build_ms");
        pass.enumerate_ms = entry.GetDouble("enumerate_ms");
        pass.busy_ms = entry.GetDouble("busy_ms");
        report.shard_passes.push_back(pass);
      }
    }
  }
  if (const Json* service = json.Get("service"); service != nullptr) {
    report.served = service->GetBool("served");
    report.plan_cache_hit = service->GetBool("plan_cache_hit");
    report.queue_ms = service->GetDouble("queue_ms");
    report.queue_depth =
        static_cast<uint32_t>(service->GetUint64("queue_depth"));
    report.request_status = service->GetString("request_status", "none");
    if (const Json* metrics = service->Get("metrics"); metrics != nullptr) {
      report.service_metrics = *metrics;
    }
  }
  if (const Json* dynamic = json.Get("dynamic"); dynamic != nullptr) {
    report.dynamic_enabled = dynamic->GetBool("enabled");
    report.graph_epoch = dynamic->GetUint64("graph_epoch");
    report.update_batches = dynamic->GetUint64("update_batches");
    report.update_ops = dynamic->GetUint64("update_ops");
    report.delta_additions = dynamic->GetUint64("delta_additions");
    report.delta_retractions = dynamic->GetUint64("delta_retractions");
    report.candidates_repaired = dynamic->GetUint64("candidates_repaired");
    report.graph_compactions = dynamic->GetUint64("compactions");
    report.overlay_bytes = dynamic->GetUint64("overlay_bytes");
    report.update_apply_ms = dynamic->GetDouble("update_apply_ms");
    report.delta_enumerate_ms = dynamic->GetDouble("delta_enumerate_ms");
    report.continuous_queries = dynamic->GetUint64("continuous_queries");
  }
  return report;
}

bool RunReport::WriteFile(const std::string& path, std::string* error) const {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = ToJson().Dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) ==
                      text.size() &&
                  std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace sgm::obs
