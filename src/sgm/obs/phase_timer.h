// PhaseTimer: one helper for the copy-pasted phase-timing blocks that used
// to live in matcher.cc, parallel_matcher.cc and explain.cc. Begin(name)
// closes the running phase and starts the next; End() closes the last one.
// Every phase is measured with the same wall clock and, when a trace buffer
// is attached, emitted as a span with thread-CPU time alongside — so the
// serial, parallel and explain pipelines report preprocessing breakdowns
// through one code path and cannot drift apart.
#ifndef SGM_OBS_PHASE_TIMER_H_
#define SGM_OBS_PHASE_TIMER_H_

#include <string>

#include "sgm/obs/trace.h"
#include "sgm/util/timer.h"

namespace sgm::obs {

/// Canonical phase names shared by every pipeline (and by RunReport keys).
inline constexpr const char* kPhaseFilter = "filter";
inline constexpr const char* kPhaseAuxBuild = "aux-build";
inline constexpr const char* kPhaseOrder = "order";
inline constexpr const char* kPhaseEnumeration = "enumeration";

/// Measures a sequence of non-overlapping named phases on one thread.
/// `trace` may be null (timing only, no spans).
class PhaseTimer {
 public:
  explicit PhaseTimer(TraceBuffer* trace = nullptr, uint32_t tid = 0)
      : trace_(trace), tid_(tid) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { End(); }

  /// Ends the current phase (if any, returning its wall milliseconds) and
  /// begins `name`.
  double Begin(const char* name) {
    const double ended = End();
    current_ = name;
    timer_.Reset();
    if (trace_ != nullptr) {
      start_us_ = trace_->NowUs();
      cpu_start_nanos_ = ThreadCpuTimer::NowNanos();
    }
    return ended;
  }

  /// Ends the current phase, emits its span, and returns its wall
  /// milliseconds (0 when no phase is running).
  double End() {
    if (current_ == nullptr) return 0.0;
    const double ms = timer_.ElapsedMillis();
    if (trace_ != nullptr) {
      TraceEvent event;
      event.name = current_;
      event.category = "phase";
      event.ts_us = start_us_;
      event.dur_us = ms * 1e3;
      event.tts_us = static_cast<double>(cpu_start_nanos_) * 1e-3;
      event.tdur_us =
          static_cast<double>(ThreadCpuTimer::NowNanos() - cpu_start_nanos_) *
          1e-3;
      event.tid = tid_;
      trace_->Add(std::move(event));
    }
    current_ = nullptr;
    return ms;
  }

 private:
  TraceBuffer* trace_;
  uint32_t tid_;
  const char* current_ = nullptr;
  Timer timer_;
  double start_us_ = 0.0;
  int64_t cpu_start_nanos_ = 0;
};

}  // namespace sgm::obs

#endif  // SGM_OBS_PHASE_TIMER_H_
