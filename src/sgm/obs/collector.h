// The observability collector: the one object a caller attaches to a
// matching run (MatchOptions::collector) to opt into instrumentation. It
// carries the feature toggles and owns the trace buffer; the structured
// RunReport is built separately from the returned result (see
// run_report.h), so the collector holds no per-run mutable state besides
// the appended trace events and can be reused across runs (events
// accumulate, which is exactly what a multi-query trace wants).
//
// Overhead-when-off guarantees:
//  * no collector (the default): the pipeline takes one null-pointer test
//    per phase and none in the enumeration recursion — no allocation, no
//    clock reads, no atomics beyond what the run already does;
//  * collector without trace/profile: same as above (the toggles gate
//    every collection site);
//  * trace on: spans wrap the preprocessing phases and per-worker work
//    items — O(phases + work items) events, never per-recursion;
//  * depth profile on: a handful of counter increments per recursion call
//    plus one clock read per 1024 calls (piggybacking on the existing
//    timeout checkpoint).
#ifndef SGM_OBS_COLLECTOR_H_
#define SGM_OBS_COLLECTOR_H_

#include "sgm/obs/trace.h"

namespace sgm::obs {

/// Instrumentation sink for one or more matching runs. Thread-compatible:
/// toggles are set before the run; the trace buffer itself is thread-safe.
class Collector {
 public:
  Collector() = default;

  /// Collect span traces (Chrome trace-event export via trace()).
  void EnableTrace() { trace_enabled_ = true; }
  bool trace_enabled() const { return trace_enabled_; }

  /// Collect the per-depth search profile into MatchResult::depth_profile.
  void EnableDepthProfile() { depth_profile_enabled_ = true; }
  bool depth_profile_enabled() const { return depth_profile_enabled_; }

  /// The span sink when tracing is enabled, nullptr otherwise — call sites
  /// pass this straight to TraceSpan, which no-ops on null.
  TraceBuffer* trace() { return trace_enabled_ ? &trace_ : nullptr; }

  /// The buffer itself (for export), regardless of the toggle.
  TraceBuffer& trace_buffer() { return trace_; }
  const TraceBuffer& trace_buffer() const { return trace_; }

 private:
  bool trace_enabled_ = false;
  bool depth_profile_enabled_ = false;
  TraceBuffer trace_;
};

}  // namespace sgm::obs

#endif  // SGM_OBS_COLLECTOR_H_
