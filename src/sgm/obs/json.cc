#include "sgm/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sgm/core/types.h"

namespace sgm::obs {

Json Json::Bool(bool value) {
  Json json;
  json.type_ = Type::kBool;
  json.bool_ = value;
  return json;
}

Json Json::Number(double value) {
  Json json;
  json.type_ = Type::kNumber;
  json.number_ = value;
  return json;
}

Json Json::Number(uint64_t value) {
  return Number(static_cast<double>(value));
}

Json Json::Number(int64_t value) { return Number(static_cast<double>(value)); }

Json Json::String(std::string value) {
  Json json;
  json.type_ = Type::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::Array() {
  Json json;
  json.type_ = Type::kArray;
  return json;
}

Json Json::Object() {
  Json json;
  json.type_ = Type::kObject;
  return json;
}

bool Json::AsBool() const {
  SGM_CHECK(is_bool());
  return bool_;
}

double Json::AsDouble() const {
  SGM_CHECK(is_number());
  return number_;
}

uint64_t Json::AsUint64() const {
  SGM_CHECK(is_number());
  SGM_CHECK(number_ >= 0.0);
  return static_cast<uint64_t>(number_);
}

const std::string& Json::AsString() const {
  SGM_CHECK(is_string());
  return string_;
}

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::at(size_t index) const {
  SGM_CHECK(is_array() && index < array_.size());
  return array_[index];
}

void Json::Append(Json value) {
  SGM_CHECK(is_array());
  array_.push_back(std::move(value));
}

const Json* Json::Get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(std::string_view key, Json value) {
  SGM_CHECK(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  SGM_CHECK(is_object());
  return object_;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* value = Get(key);
  return value != nullptr && value->is_number() ? value->number_ : fallback;
}

uint64_t Json::GetUint64(std::string_view key, uint64_t fallback) const {
  const Json* value = Get(key);
  return value != nullptr && value->is_number() ? value->AsUint64() : fallback;
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* value = Get(key);
  return value != nullptr && value->is_bool() ? value->bool_ : fallback;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* value = Get(key);
  return value != nullptr && value->is_string() ? value->string_
                                                : std::move(fallback);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Prints a number the way the reports want it: integers without a decimal
// point (so counters survive a round trip textually), everything else with
// enough digits to reconstruct the double.
void AppendNumber(std::string* out, double value) {
  char buffer[40];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    // JSON has no Inf/NaN tokens; serialize non-finite values as null (an
    // empty histogram's percentile or a zero-division rate is "no value",
    // not zero). Parsers read the key back as Json::Null.
    std::snprintf(buffer, sizeof(buffer), "null");
  }
  *out += buffer;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) AppendIndent(out, indent, depth);
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) *out += ',';
        AppendIndent(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(object_[i].first);
        *out += "\":";
        if (indent > 0) *out += ' ';
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) AppendIndent(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---- Parser: recursive descent over a string_view cursor. ----

namespace {

class Parser {
 public:
  // Nesting cap: the parser is recursive descent, so without it a document
  // of a few hundred KB of '[' characters overflows the stack (found by the
  // json libFuzzer target). Our own reports nest < 10 levels deep.
  static constexpr int kMaxDepth = 192;

  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> ParseDocument() {
    SkipWhitespace();
    Json value;
    if (!ParseValue(&value)) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return value;
  }

 private:
  void Fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer), "%s (at offset %zu)", message,
                    pos_);
      *error_ = buffer;
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  bool ParseValue(Json* out) {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string value;
        if (!ParseString(&value)) return false;
        *out = Json::String(std::move(value));
        return true;
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json::Bool(true);
          return true;
        }
        Fail("invalid literal");
        return false;
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json::Bool(false);
          return true;
        }
        Fail("invalid literal");
        return false;
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json::Null();
          return true;
        }
        Fail("invalid literal");
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("malformed number");
      return false;
    }
    *out = Json::Number(value);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      Fail("expected string");
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          for (const char h : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              Fail("malformed \\u escape");
              return false;
            }
          }
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Only BMP code points below 0x80 are produced by our writer;
          // others are transcoded to UTF-8 without surrogate handling.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("unknown escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  // Tracks the container nesting level across the recursive calls.
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  bool ParseArray(Json* out) {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    Consume('[');
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      Json element;
      SkipWhitespace();
      if (!ParseValue(&element)) return false;
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return false;
      }
    }
  }

  bool ParseObject(Json* out) {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    Consume('{');
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' in object");
        return false;
      }
      SkipWhitespace();
      Json value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return false;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  return parser.ParseDocument();
}

}  // namespace sgm::obs
