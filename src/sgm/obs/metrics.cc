#include "sgm/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sgm/core/types.h"

namespace sgm::obs {

namespace {

/// Serialized (name, labels) key used for registry lookup. '\x1f' cannot
/// appear in metric names or label text we generate, so keys are unique.
std::string SeriesKey(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  for (const auto& [label, value] : labels) {
    key += '\x1f';
    key += label;
    key += '\x1f';
    key += value;
  }
  return key;
}

/// Renders `{a="x",b="y"}` (empty string when there are no labels), with an
/// optional extra label appended — how histogram buckets get their `le`.
std::string RenderLabels(const MetricLabels& labels,
                         const char* extra_key = nullptr,
                         const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += label;
    out += "=\"";
    out += JsonEscape(value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

void AppendDouble(std::string* out, double value) {
  char buffer[40];
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  }
  *out += buffer;
}

Json LabelsToJson(const MetricLabels& labels) {
  Json json = Json::Object();
  for (const auto& [label, value] : labels) {
    json.Set(label, Json::String(value));
  }
  return json;
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t thread_slot =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return thread_slot % kShards;
}

void Histogram::Record(double value_ms) {
  const size_t bucket = BucketIndex(value_ms);
  uint64_t us = 0;
  if (value_ms > 0.0) {
    const double scaled = value_ms * 1000.0;
    us = scaled >= 1.8446744073709552e19
             ? ~0ULL
             : static_cast<uint64_t>(std::llround(scaled));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(double value_ms) {
  if (!(value_ms > 0.0)) return 0;  // negatives and NaN clamp to bucket 0
  const double scaled = value_ms * 1000.0;
  if (scaled >= 1.8446744073709552e19) return kBuckets - 1;
  const uint64_t us = static_cast<uint64_t>(std::llround(scaled));
  if (us == 0) return 0;
  const size_t index = static_cast<size_t>(std::bit_width(us));
  return index < kBuckets - 1 ? index : kBuckets - 1;
}

double Histogram::BucketUpperMs(size_t bucket) {
  SGM_CHECK(bucket < kBuckets);
  if (bucket >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  // Observations are integral µs, so "< 2^bucket µs" equals "<= 2^bucket-1".
  return static_cast<double>((uint64_t{1} << bucket) - 1) * 1e-3;
}

double Histogram::Percentile(double q) const {
  // Snapshot the buckets once; concurrent recording between loads can skew
  // the estimate by at most the in-flight observations, which is the same
  // guarantee any point-in-time read of live telemetry gives.
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // The 1-based rank of the order statistic we estimate.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] < rank) {
      cumulative += counts[i];
      continue;
    }
    // Linear interpolation inside bucket i: [lo, hi) µs.
    const double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
    const double hi =
        i == 0 ? 1.0
        : i >= kBuckets - 1
            ? 2.0 * lo  // overflow bucket: extrapolate one more octave
            : static_cast<double>(uint64_t{1} << i);
    const double position = static_cast<double>(rank - cumulative) /
                            static_cast<double>(counts[i]);
    return (lo + position * (hi - lo)) * 1e-3;
  }
  return std::numeric_limits<double>::quiet_NaN();  // unreachable
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Metric* MetricsRegistry::FindOrCreateLocked(
    Kind kind, std::string_view name, std::string_view help,
    MetricLabels labels) {
  const std::string key = SeriesKey(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    SGM_CHECK(it->second->kind == kind);
    return it->second;
  }
  auto metric = std::make_unique<Metric>();
  metric->kind = kind;
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter:
      metric->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      metric->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      metric->histogram = std::make_unique<Histogram>();
      break;
  }
  Metric* raw = metric.get();
  metrics_.push_back(std::move(metric));
  index_.emplace(key, raw);
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(Kind::kCounter, name, help, std::move(labels))
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(Kind::kGauge, name, help, std::move(labels))
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(Kind::kHistogram, name, help, std::move(labels))
      ->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_family;
  for (const auto& metric : metrics_) {
    // Series of one family are registered consecutively (same call site),
    // so a family header is emitted when the name changes.
    if (metric->name != last_family) {
      last_family = metric->name;
      out += "# HELP " + metric->name + ' ' + metric->help + '\n';
      out += "# TYPE " + metric->name + ' ';
      switch (metric->kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "histogram";
          break;
      }
      out += '\n';
    }
    switch (metric->kind) {
      case Kind::kCounter: {
        out += metric->name + RenderLabels(metric->labels) + ' ';
        AppendDouble(&out, static_cast<double>(metric->counter->Value()));
        out += '\n';
        break;
      }
      case Kind::kGauge: {
        out += metric->name + RenderLabels(metric->labels) + ' ';
        AppendDouble(&out, static_cast<double>(metric->gauge->Value()));
        out += '\n';
        break;
      }
      case Kind::kHistogram: {
        const Histogram& histogram = *metric->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += histogram.BucketCount(i);
          // Skip still-empty prefixes of the bucket array to keep the
          // exposition small; cumulative counts stay correct because an
          // empty prefix contributes nothing.
          if (cumulative == 0 && i + 1 < Histogram::kBuckets) continue;
          std::string le;
          if (i + 1 == Histogram::kBuckets) {
            le = "+Inf";
          } else {
            AppendDouble(&le, Histogram::BucketUpperMs(i));
          }
          out += metric->name + "_bucket" +
                 RenderLabels(metric->labels, "le", le) + ' ';
          AppendDouble(&out, static_cast<double>(cumulative));
          out += '\n';
        }
        out += metric->name + "_sum" + RenderLabels(metric->labels) + ' ';
        AppendDouble(&out, histogram.SumMs());
        out += '\n';
        out += metric->name + "_count" + RenderLabels(metric->labels) + ' ';
        AppendDouble(&out, static_cast<double>(histogram.Count()));
        out += '\n';
        break;
      }
    }
  }
  return out;
}

Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::Array();
  Json gauges = Json::Array();
  Json histograms = Json::Array();
  for (const auto& metric : metrics_) {
    Json entry = Json::Object();
    entry.Set("name", Json::String(metric->name));
    entry.Set("labels", LabelsToJson(metric->labels));
    switch (metric->kind) {
      case Kind::kCounter:
        entry.Set("value", Json::Number(metric->counter->Value()));
        counters.Append(std::move(entry));
        break;
      case Kind::kGauge:
        entry.Set("value", Json::Number(metric->gauge->Value()));
        gauges.Append(std::move(entry));
        break;
      case Kind::kHistogram: {
        const Histogram& histogram = *metric->histogram;
        entry.Set("count", Json::Number(histogram.Count()));
        entry.Set("sum_ms", Json::Number(histogram.SumMs()));
        // NaN percentiles of an empty histogram serialize as null.
        entry.Set("p50_ms", Json::Number(histogram.Percentile(0.50)));
        entry.Set("p90_ms", Json::Number(histogram.Percentile(0.90)));
        entry.Set("p99_ms", Json::Number(histogram.Percentile(0.99)));
        entry.Set("p999_ms", Json::Number(histogram.Percentile(0.999)));
        Json buckets = Json::Array();
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          const uint64_t count = histogram.BucketCount(i);
          if (count == 0) continue;
          Json bucket = Json::Object();
          bucket.Set("le_ms", Json::Number(Histogram::BucketUpperMs(i)));
          bucket.Set("count", Json::Number(count));
          buckets.Append(std::move(bucket));
        }
        entry.Set("buckets", std::move(buckets));
        histograms.Append(std::move(entry));
        break;
      }
    }
  }
  Json root = Json::Object();
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root;
}

}  // namespace sgm::obs
