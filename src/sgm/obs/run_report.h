// RunReport: one structured, JSON-serializable record per query run — the
// single schema shared by the serial matcher, the parallel matcher, the
// sgm_match CLI (--report) and the bench runners' BENCH_*.json files.
//
// Design rules:
//  * Built from the returned results by a pure function (BuildRunReport);
//    the match pipeline itself carries no report plumbing.
//  * Every key is always emitted: a serial run produces the same shape as a
//    parallel one (with a degenerate "parallel" section), so downstream
//    tooling never branches on presence. Asserted in obs_test.cc.
//  * Config fields are stored as the canonical short names ("GQL",
//    "intersect", "all-edges", ...), so a report is self-describing and
//    FromJson needs no enum tables.
#ifndef SGM_OBS_RUN_REPORT_H_
#define SGM_OBS_RUN_REPORT_H_

#include <string>
#include <vector>

#include "sgm/matcher.h"
#include "sgm/obs/depth_profile.h"
#include "sgm/obs/json.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/plan.h"

namespace sgm::obs {

/// Per-worker accounting carried by a report of a parallel run.
struct RunReportWorker {
  uint32_t root_chunks = 0;
  uint32_t stolen_subtasks = 0;
  uint64_t recursion_calls = 0;
  uint64_t matches_found = 0;
  double busy_ms = 0.0;
};

/// Per-pass accounting carried by a report of a sharded run (one entry per
/// shard-local pass plus, when it ran, the boundary pass).
struct RunReportShardPass {
  uint32_t shard = 0;
  bool boundary = false;
  uint64_t match_count = 0;
  uint32_t graph_vertices = 0;
  uint32_t owned_vertices = 0;
  uint64_t candidate_memory_bytes = 0;
  uint64_t aux_memory_bytes = 0;
  double build_ms = 0.0;
  double enumerate_ms = 0.0;
  double busy_ms = 0.0;
};

/// The structured record of one matching run. See file comment.
struct RunReport {
  /// Bumped on any change to the JSON shape.
  /// v2: added the always-emitted "service" section.
  /// v3: added the "build" provenance section and "service.metrics".
  /// v4: added the always-emitted "sharding" section.
  /// v5: added the always-emitted "dynamic" section.
  static constexpr uint64_t kSchemaVersion = 5;

  /// "serial", "parallel" or "sharded".
  std::string engine = "serial";

  // ---- Build/run provenance (BuildProvenance fills these), so a
  // BENCH_*.json file is self-describing across machines. ----
  /// Compiler id and version, e.g. "gcc 13.2.0" or "clang 18.1.3".
  std::string compiler;
  /// CMAKE_BUILD_TYPE the binary was built with, e.g. "Release".
  std::string build_type;
  /// SGM_SANITIZE list the binary was built with ("" = none).
  std::string sanitizers;
  /// std::thread::hardware_concurrency() of the reporting machine.
  uint32_t hardware_threads = 0;

  // ---- Graph shapes. ----
  uint32_t query_vertices = 0;
  uint32_t query_edges = 0;
  uint32_t data_vertices = 0;
  uint32_t data_edges = 0;
  uint32_t data_labels = 0;

  // ---- Configuration (canonical short names). ----
  std::string filter;
  std::string order;
  std::string lc_method;
  std::string aux_scope;
  std::string intersection;
  bool use_lc_cache = false;
  bool use_failing_sets = false;
  bool adaptive_order = false;
  bool vf2pp_lookahead = false;
  bool postpone_degree_one = false;
  uint64_t max_matches = 0;
  double time_limit_ms = 0.0;

  // ---- Per-phase wall times. ----
  double filter_ms = 0.0;
  double aux_build_ms = 0.0;
  double order_ms = 0.0;
  double enumeration_ms = 0.0;
  double preprocessing_ms = 0.0;
  double total_ms = 0.0;

  // ---- Candidate statistics. ----
  double average_candidates = 0.0;
  uint64_t candidate_memory_bytes = 0;
  uint64_t aux_memory_bytes = 0;
  /// Pruning trajectory of the filtering phase, one entry per round.
  std::vector<FilterRound> filter_rounds;

  std::vector<uint32_t> matching_order;

  // ---- Enumeration counters (identical to EnumerateStats). ----
  uint64_t match_count = 0;
  uint64_t recursion_calls = 0;
  uint64_t local_candidates_scanned = 0;
  uint64_t failing_set_prunes = 0;
  uint64_t bitmap_intersections = 0;
  uint64_t lc_cache_hits = 0;
  uint64_t lc_cache_misses = 0;
  bool timed_out = false;
  bool reached_match_limit = false;

  /// Per-depth search profile; empty unless the run collected one.
  DepthProfile depth_profile;

  // ---- Parallel execution (degenerate for serial runs). ----
  /// "none" (serial), "static" or "work-stealing".
  std::string parallel_mode = "none";
  uint32_t workers_used = 1;
  uint32_t chunk_size = 0;
  uint64_t subtasks_published = 0;
  double load_imbalance = 1.0;
  std::vector<RunReportWorker> workers;

  // ---- Sharded execution (degenerate for monolithic runs). ----
  /// Shards the data graph was split into; 0 for monolithic runs (the
  /// fields below are meaningful only when > 0).
  uint32_t shard_count = 0;
  /// "hash", "greedy", or "none" for monolithic runs.
  std::string partitioner = "none";
  uint64_t cut_edges = 0;
  uint32_t boundary_vertices = 0;
  /// Radius of the cut region (the query's worst edge eccentricity, at
  /// most its diameter); 0 when the boundary pass was skipped.
  uint32_t boundary_radius = 0;
  uint32_t region_vertices = 0;
  std::vector<RunReportShardPass> shard_passes;

  // ---- Service execution (degenerate for direct runs). ----
  /// True when the run was answered by a MatchService; the fields below are
  /// meaningful only then (service::BuildServedRunReport fills them).
  bool served = false;
  bool plan_cache_hit = false;
  /// Time the request waited in the admission queue.
  double queue_ms = 0.0;
  /// Queue depth observed when the request was admitted.
  uint32_t queue_depth = 0;
  /// "none" (direct run), else "ok", "timeout", "cancelled" or "rejected".
  std::string request_status = "none";
  /// Point-in-time MetricsRegistry::ToJson() snapshot of the service that
  /// answered the request (serialized under service.metrics); Null for
  /// direct runs and when the caller did not pass a registry.
  Json service_metrics = Json::Null();

  // ---- Dynamic-graph execution (degenerate for immutable graphs). ----
  /// True when the answering service exposes the update layer; the fields
  /// below are its cumulative counters at report time
  /// (service::BuildServedRunReport fills them from ServiceDynamicStats).
  bool dynamic_enabled = false;
  /// Data-graph epoch (applied update batches).
  uint64_t graph_epoch = 0;
  uint64_t update_batches = 0;
  uint64_t update_ops = 0;
  /// Continuous-query match additions/retractions across all batches.
  uint64_t delta_additions = 0;
  uint64_t delta_retractions = 0;
  /// Candidate-bitset entries repaired by incremental maintenance.
  uint64_t candidates_repaired = 0;
  /// Overlay→CSR merges performed (lazy, on first post-update request).
  uint64_t graph_compactions = 0;
  /// Current delta-overlay heap footprint.
  uint64_t overlay_bytes = 0;
  /// Overlay mutation + candidate repair vs anchored enumeration split.
  double update_apply_ms = 0.0;
  double delta_enumerate_ms = 0.0;
  uint64_t continuous_queries = 0;

  /// Serializes to the stable JSON schema (every key always present).
  Json ToJson() const;

  /// Rebuilds a report from ToJson() output. Unknown keys are ignored and
  /// missing keys default, so old readers tolerate newer files.
  static RunReport FromJson(const Json& json);

  /// Writes ToJson() to `path` (pretty-printed). Returns false and fills
  /// *error on failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;
};

/// Build/run provenance of this binary and machine: compiler id + version,
/// CMAKE_BUILD_TYPE, SGM_SANITIZE flags and the hardware thread count.
/// BuildRunReport applies it to every report; exposed for tools that emit
/// bench JSON without a RunReport.
struct BuildProvenance {
  std::string compiler;
  std::string build_type;
  std::string sanitizers;
  uint32_t hardware_threads = 0;

  /// The running binary's provenance.
  static BuildProvenance Current();

  Json ToJson() const;
};

/// Builds the report of a serial MatchQuery run.
RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const MatchResult& result);

/// Builds the report of a ParallelMatchQuery run.
RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const ParallelMatchResult& result);

/// Builds the report of a ShardedMatchQuery / ExecuteShardPlan run.
RunReport BuildRunReport(const Graph& query, const Graph& data,
                         const MatchOptions& options,
                         const ShardedMatchResult& result);

}  // namespace sgm::obs

#endif  // SGM_OBS_RUN_REPORT_H_
