#include "sgm/obs/trace.h"

#include <cstdio>

namespace sgm::obs {

void TraceBuffer::Add(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceBuffer::SetThreadName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, existing] : thread_names_) {
    if (id == tid) {
      existing = std::move(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::move(name));
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

Json TraceBuffer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::Object();
  doc.Set("displayTimeUnit", Json::String("ms"));
  Json trace_events = Json::Array();
  for (const auto& [tid, name] : thread_names_) {
    Json meta = Json::Object();
    meta.Set("name", Json::String("thread_name"));
    meta.Set("ph", Json::String("M"));
    meta.Set("ts", Json::Number(0.0));
    meta.Set("pid", Json::Number(uint64_t{1}));
    meta.Set("tid", Json::Number(uint64_t{tid}));
    Json args = Json::Object();
    args.Set("name", Json::String(name));
    meta.Set("args", std::move(args));
    trace_events.Append(std::move(meta));
  }
  for (const TraceEvent& event : events_) {
    Json record = Json::Object();
    record.Set("name", Json::String(event.name));
    record.Set("cat", Json::String(event.category));
    record.Set("ph", Json::String("X"));
    record.Set("ts", Json::Number(event.ts_us));
    record.Set("dur", Json::Number(event.dur_us));
    record.Set("pid", Json::Number(uint64_t{1}));
    record.Set("tid", Json::Number(uint64_t{event.tid}));
    if (event.tts_us >= 0.0) {
      record.Set("tts", Json::Number(event.tts_us));
      record.Set("tdur", Json::Number(event.tdur_us >= 0.0 ? event.tdur_us
                                                           : 0.0));
    }
    if (!event.args.empty()) {
      Json args = Json::Object();
      for (const TraceArg& arg : event.args) {
        args.Set(arg.key, arg.is_string ? Json::String(arg.string_value)
                                        : Json::Number(arg.number_value));
      }
      record.Set("args", std::move(args));
    }
    trace_events.Append(std::move(record));
  }
  doc.Set("traceEvents", std::move(trace_events));
  return doc;
}

bool TraceBuffer::WriteFile(const std::string& path,
                            std::string* error) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) *error = "could not open " + path + " for writing";
    return false;
  }
  const std::string text = ToJson().Dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) ==
                      text.size() &&
                  std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

TraceSpan::TraceSpan(TraceBuffer* buffer, std::string name,
                     std::string category, uint32_t tid)
    : buffer_(buffer) {
  if (buffer_ == nullptr) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.tid = tid;
  event_.ts_us = buffer_->NowUs();
  cpu_start_nanos_ = ThreadCpuTimer::NowNanos();
  event_.tts_us = static_cast<double>(cpu_start_nanos_) * 1e-3;
}

void TraceSpan::AddArg(std::string key, double value) {
  if (buffer_ == nullptr) return;
  TraceArg arg;
  arg.key = std::move(key);
  arg.number_value = value;
  event_.args.push_back(std::move(arg));
}

void TraceSpan::AddArg(std::string key, std::string value) {
  if (buffer_ == nullptr) return;
  TraceArg arg;
  arg.key = std::move(key);
  arg.is_string = true;
  arg.string_value = std::move(value);
  event_.args.push_back(std::move(arg));
}

void TraceSpan::End() {
  if (buffer_ == nullptr) return;
  event_.dur_us = buffer_->NowUs() - event_.ts_us;
  event_.tdur_us =
      static_cast<double>(ThreadCpuTimer::NowNanos() - cpu_start_nanos_) *
      1e-3;
  buffer_->Add(std::move(event_));
  buffer_ = nullptr;
}

}  // namespace sgm::obs
