#include "sgm/graph/query_generator.h"

#include <unordered_map>
#include <unordered_set>

#include "sgm/graph/graph_utils.h"

namespace sgm {

const char* QueryDensityName(QueryDensity density) {
  switch (density) {
    case QueryDensity::kAny:
      return "any";
    case QueryDensity::kDense:
      return "dense";
    case QueryDensity::kSparse:
      return "sparse";
  }
  return "unknown";
}

bool MatchesDensity(const Graph& query, QueryDensity density) {
  switch (density) {
    case QueryDensity::kAny:
      return true;
    case QueryDensity::kDense:
      return query.average_degree() >= 3.0;
    case QueryDensity::kSparse:
      return query.average_degree() < 3.0;
  }
  return false;
}

namespace {

// One random walk collecting `vertex_count` distinct vertices. With
// restart_prob > 0 the walk teleports back to a random already-collected
// vertex before stepping, which keeps it local and raises the density of
// the induced subgraph (needed to hit the paper's dense query class on
// moderately dense data graphs). Returns the collected vertices, or an
// empty vector when the walk gets stuck.
std::vector<Vertex> RandomWalkVertices(const Graph& data,
                                       uint32_t vertex_count,
                                       double restart_prob, Prng* prng) {
  std::vector<Vertex> collected;
  std::unordered_set<Vertex> seen;
  // Start anywhere with at least one neighbor.
  Vertex current = kInvalidVertex;
  for (int tries = 0; tries < 64; ++tries) {
    const auto v = static_cast<Vertex>(prng->NextBounded(data.vertex_count()));
    if (data.degree(v) > 0) {
      current = v;
      break;
    }
  }
  if (current == kInvalidVertex) return {};
  collected.push_back(current);
  seen.insert(current);

  // A generous step budget: revisits are common on small graphs.
  const uint64_t step_budget = 64ULL * vertex_count + 256;
  for (uint64_t step = 0; step < step_budget && collected.size() < vertex_count;
       ++step) {
    if (restart_prob > 0.0 && prng->NextBernoulli(restart_prob)) {
      current = collected[prng->NextBounded(collected.size())];
    }
    const auto nbrs = data.neighbors(current);
    current = nbrs[prng->NextBounded(nbrs.size())];
    if (seen.insert(current).second) collected.push_back(current);
  }
  if (collected.size() < vertex_count) return {};
  return collected;
}

// Growth strategy for dense queries: start from a random vertex and
// repeatedly add a random frontier vertex, preferring (with the given
// probability) vertices already adjacent to at least two collected vertices.
// Synthetic power-law graphs lack the clustering of the paper's real
// datasets, so an unbiased walk almost never induces a subgraph of average
// degree >= 3 at 16+ vertices; the bias restores feasibility while keeping
// the sample random.
std::vector<Vertex> DenseGrowthVertices(const Graph& data,
                                        uint32_t vertex_count,
                                        double prefer_prob, Prng* prng) {
  Vertex start = kInvalidVertex;
  for (int tries = 0; tries < 64; ++tries) {
    const auto v = static_cast<Vertex>(prng->NextBounded(data.vertex_count()));
    if (data.degree(v) > 0) {
      start = v;
      break;
    }
  }
  if (start == kInvalidVertex) return {};

  std::vector<Vertex> collected = {start};
  std::unordered_set<Vertex> seen = {start};
  std::vector<Vertex> frontier;
  std::vector<Vertex> preferred;
  std::unordered_map<Vertex, uint32_t> links;
  while (collected.size() < vertex_count) {
    links.clear();
    for (const Vertex v : collected) {
      for (const Vertex w : data.neighbors(v)) {
        if (!seen.contains(w)) ++links[w];
      }
    }
    if (links.empty()) return {};
    frontier.clear();
    preferred.clear();
    for (const auto& [w, count] : links) {
      frontier.push_back(w);
      if (count >= 2) preferred.push_back(w);
    }
    const bool use_preferred =
        !preferred.empty() && prng->NextBernoulli(prefer_prob);
    const auto& pool = use_preferred ? preferred : frontier;
    const Vertex next = pool[prng->NextBounded(pool.size())];
    collected.push_back(next);
    seen.insert(next);
  }
  return collected;
}

}  // namespace

std::optional<Graph> ExtractQuery(const Graph& data, uint32_t vertex_count,
                                  QueryDensity density, Prng* prng,
                                  uint32_t max_attempts) {
  SGM_CHECK_MSG(vertex_count >= 3, "queries must have at least 3 vertices");
  SGM_CHECK_MSG(vertex_count <= kMaxQueryVertices, "query too large");
  SGM_CHECK(vertex_count <= data.vertex_count());
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Dense extraction alternates a restart-biased walk with the
    // triangle-preferring growth; sparse and unconstrained extraction use
    // the plain walk.
    std::vector<Vertex> vertices;
    if (density == QueryDensity::kDense) {
      vertices = attempt % 2 == 0
                     ? DenseGrowthVertices(data, vertex_count, 0.85, prng)
                     : RandomWalkVertices(data, vertex_count, 0.3, prng);
    } else {
      vertices = RandomWalkVertices(data, vertex_count, 0.0, prng);
    }
    if (vertices.empty()) continue;
    Graph query = InducedSubgraph(data, vertices);
    // The induced subgraph of a walk contains the walk's edges, hence is
    // connected; keep the check as a defensive invariant.
    SGM_CHECK(IsConnected(query));
    if (MatchesDensity(query, density)) return query;
  }
  return std::nullopt;
}

std::vector<Graph> GenerateQuerySet(const Graph& data, uint32_t vertex_count,
                                    QueryDensity density, uint32_t count,
                                    Prng* prng) {
  std::vector<Graph> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto query = ExtractQuery(data, vertex_count, density, prng);
    if (!query.has_value()) break;
    queries.push_back(*std::move(query));
  }
  return queries;
}

}  // namespace sgm
