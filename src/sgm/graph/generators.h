// Synthetic data-graph generators.
//
// The paper evaluates on RMAT power-law graphs (Chakrabarti et al., SDM 2004)
// with parameters a=0.45, b=0.22, c=0.22, d=0.11 and uniform random vertex
// labels, and labels its unlabeled real-world datasets the same way. These
// generators reproduce that protocol and additionally provide Erdős–Rényi
// graphs used to synthesize analogs of the paper's real-world datasets.
#ifndef SGM_GRAPH_GENERATORS_H_
#define SGM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "sgm/graph/graph.h"
#include "sgm/util/prng.h"

namespace sgm {

/// Parameters of the RMAT recursive edge generator.
struct RmatParams {
  /// Quadrant probabilities; must sum to ~1. Defaults are the paper's.
  double a = 0.45;
  double b = 0.22;
  double c = 0.22;
  double d = 0.11;
};

/// Generates an RMAT graph with vertex_count vertices (rounded up to a power
/// of two internally, then truncated), edge_count distinct undirected edges,
/// and uniform random labels from [0, label_count). Self loops and duplicate
/// edges are re-drawn, matching the "distinct labels to vertices" protocol of
/// Section 4. Isolated vertices may exist (as in real RMAT output).
Graph GenerateRmat(uint32_t vertex_count, uint32_t edge_count,
                   uint32_t label_count, Prng* prng,
                   const RmatParams& params = RmatParams{});

/// Generates a uniform random graph G(n, m) with edge_count distinct edges
/// and uniform random labels from [0, label_count).
Graph GenerateErdosRenyi(uint32_t vertex_count, uint32_t edge_count,
                         uint32_t label_count, Prng* prng);

/// Returns a copy of the graph with labels re-drawn uniformly at random from
/// [0, label_count) — the relabeling protocol the paper applies to its
/// unlabeled datasets when varying |Σ|.
Graph RelabelUniform(const Graph& graph, uint32_t label_count, Prng* prng);

/// Returns a copy of the graph with skewed labels: label 0 with probability
/// `dominant_fraction`, the rest uniform over [1, label_count). Models
/// datasets like WordNet where most vertices share one label (Section 4 of
/// the paper notes more than 80% of wn vertices do).
Graph RelabelSkewed(const Graph& graph, uint32_t label_count,
                    double dominant_fraction, Prng* prng);

/// Returns the subgraph obtained by keeping each edge independently with
/// probability keep_ratio (the edge-sampling protocol of Figure 18). Vertex
/// set and labels are preserved.
Graph SampleEdges(const Graph& graph, double keep_ratio, Prng* prng);

}  // namespace sgm

#endif  // SGM_GRAPH_GENERATORS_H_
