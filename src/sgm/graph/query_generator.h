// Query-graph extraction following the paper's protocol (Section 4):
// perform a random walk on the data graph until the requested number of
// distinct vertices is collected, take the vertex-induced subgraph, and keep
// it if its density matches the requested class (dense: d(q) >= 3, sparse:
// d(q) < 3). Extracted queries are connected by construction and are
// guaranteed to have at least one match in the data graph.
#ifndef SGM_GRAPH_QUERY_GENERATOR_H_
#define SGM_GRAPH_QUERY_GENERATOR_H_

#include <optional>
#include <vector>

#include "sgm/graph/graph.h"
#include "sgm/util/prng.h"

namespace sgm {

/// Density class of a query set. The paper's Q_iD sets are dense
/// (average degree >= 3), Q_iS sparse (< 3); Q_4 is unconstrained.
enum class QueryDensity : uint8_t { kAny = 0, kDense = 1, kSparse = 2 };

/// Returns "any" / "dense" / "sparse".
const char* QueryDensityName(QueryDensity density);

/// True iff the graph's average degree matches the density class.
bool MatchesDensity(const Graph& query, QueryDensity density);

/// Extracts one connected query of exactly `vertex_count` vertices by random
/// walk + induced subgraph. Returns std::nullopt when no walk satisfying the
/// density class is found within `max_attempts` walks (e.g., asking for
/// dense queries on a tree-like data graph).
std::optional<Graph> ExtractQuery(const Graph& data, uint32_t vertex_count,
                                  QueryDensity density, Prng* prng,
                                  uint32_t max_attempts = 1000);

/// Generates a query set of `count` queries with the same configuration.
/// May return fewer than `count` queries when extraction keeps failing.
std::vector<Graph> GenerateQuerySet(const Graph& data, uint32_t vertex_count,
                                    QueryDensity density, uint32_t count,
                                    Prng* prng);

}  // namespace sgm

#endif  // SGM_GRAPH_QUERY_GENERATOR_H_
