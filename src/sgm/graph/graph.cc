#include "sgm/graph/graph.h"

#include <algorithm>

namespace sgm {

Graph::Graph(std::vector<Label> labels,
             std::span<const std::pair<Vertex, Vertex>> edges)
    : vertex_count_(static_cast<uint32_t>(labels.size())),
      edge_count_(static_cast<uint32_t>(edges.size())),
      labels_(std::move(labels)) {
  // Degree counting pass.
  offsets_.assign(vertex_count_ + 1, 0);
  for (const auto& [u, v] : edges) {
    SGM_CHECK(u < vertex_count_ && v < vertex_count_);
    SGM_CHECK_MSG(u != v, "self loops are not allowed");
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (uint32_t v = 0; v < vertex_count_; ++v) offsets_[v + 1] += offsets_[v];

  // Fill pass.
  neighbors_.resize(2ULL * edge_count_);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors_[cursor[u]++] = v;
    neighbors_[cursor[v]++] = u;
  }

  // Sort each adjacency list and validate uniqueness.
  for (uint32_t v = 0; v < vertex_count_; ++v) {
    const auto begin = neighbors_.begin() + offsets_[v];
    const auto end = neighbors_.begin() + offsets_[v + 1];
    std::sort(begin, end);
    SGM_CHECK_MSG(std::adjacent_find(begin, end) == end,
                  "parallel edges are not allowed");
    max_degree_ = std::max(max_degree_, offsets_[v + 1] - offsets_[v]);
  }

  // Label index.
  for (const Label l : labels_) {
    SGM_CHECK_MSG(l != kInvalidLabel, "invalid label");
    label_count_ = std::max(label_count_, l + 1);
  }
  label_offsets_.assign(label_count_ + 1, 0);
  for (const Label l : labels_) ++label_offsets_[l + 1];
  for (uint32_t l = 0; l < label_count_; ++l) {
    max_label_frequency_ = std::max(max_label_frequency_, label_offsets_[l + 1]);
    label_offsets_[l + 1] += label_offsets_[l];
  }
  vertices_by_label_.resize(vertex_count_);
  {
    std::vector<uint32_t> label_cursor(label_offsets_.begin(),
                                       label_offsets_.end() - 1);
    for (Vertex v = 0; v < vertex_count_; ++v) {
      vertices_by_label_[label_cursor[labels_[v]]++] = v;
    }
  }

  // Neighbor-label frequency tables. Neighbor lists are sorted by vertex id,
  // so we collect (label, count) pairs per vertex and sort them by label.
  nlf_offsets_.assign(vertex_count_ + 1, 0);
  std::vector<LabelCount> scratch;
  for (Vertex v = 0; v < vertex_count_; ++v) {
    scratch.clear();
    for (const Vertex w : neighbors(v)) {
      scratch.push_back({labels_[w], 1});
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const LabelCount& a, const LabelCount& b) {
                return a.label < b.label;
              });
    // Run-length compress equal labels.
    size_t out = 0;
    for (size_t i = 0; i < scratch.size();) {
      size_t j = i + 1;
      while (j < scratch.size() && scratch[j].label == scratch[i].label) ++j;
      scratch[out++] = {scratch[i].label, static_cast<uint32_t>(j - i)};
      i = j;
    }
    scratch.resize(out);
    nlf_offsets_[v + 1] = nlf_offsets_[v] + static_cast<uint32_t>(out);
    nlf_data_.insert(nlf_data_.end(), scratch.begin(), scratch.end());
  }
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  SGM_CHECK(u < vertex_count_ && v < vertex_count_);
  // Search the shorter list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::NeighborCountWithLabel(Vertex v, Label l) const {
  const auto nlf = NeighborLabelFrequency(v);
  const auto it = std::lower_bound(
      nlf.begin(), nlf.end(), l,
      [](const LabelCount& entry, Label value) { return entry.label < value; });
  if (it == nlf.end() || it->label != l) return 0;
  return it->count;
}

size_t Graph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(uint32_t) +
         neighbors_.capacity() * sizeof(Vertex) +
         labels_.capacity() * sizeof(Label) +
         label_offsets_.capacity() * sizeof(uint32_t) +
         vertices_by_label_.capacity() * sizeof(Vertex) +
         nlf_offsets_.capacity() * sizeof(uint32_t) +
         nlf_data_.capacity() * sizeof(LabelCount);
}

}  // namespace sgm
