// Structural statistics of labeled graphs: degree distribution summaries,
// label histograms, triangle counts and clustering coefficients. Used by the
// bench harness to audit how closely the synthetic dataset analogs track the
// paper's real graphs (Table 3), and generally useful for workload
// characterization.
#ifndef SGM_GRAPH_GRAPH_STATS_H_
#define SGM_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// Summary statistics of a graph.
struct GraphStats {
  uint32_t vertex_count = 0;
  uint32_t edge_count = 0;
  uint32_t label_count = 0;
  double average_degree = 0.0;
  uint32_t max_degree = 0;
  /// Degree such that at least half the vertices have degree <= median.
  uint32_t median_degree = 0;
  uint64_t triangle_count = 0;
  /// Global clustering coefficient: 3 * triangles / open wedges.
  double global_clustering = 0.0;
  /// Entropy (bits) of the label distribution — 0 when one label dominates,
  /// log2(|Σ|) when uniform.
  double label_entropy_bits = 0.0;
};

/// Computes all statistics in one pass family. Triangle counting is
/// O(sum over edges of min-degree endpoints) via neighborhood merging.
GraphStats ComputeGraphStats(const Graph& graph);

/// Number of triangles in the graph.
uint64_t CountTriangles(const Graph& graph);

/// Histogram of vertex labels (size label_count()).
std::vector<uint32_t> LabelHistogram(const Graph& graph);

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_STATS_H_
