#include "sgm/graph/graph_builder.h"

#include <algorithm>

namespace sgm {

Vertex GraphBuilder::AddVertex(Label label) {
  labels_.push_back(label);
  return static_cast<Vertex>(labels_.size() - 1);
}

void GraphBuilder::SetLabel(Vertex v, Label label) {
  SGM_CHECK(v < labels_.size());
  labels_[v] = label;
}

uint64_t GraphBuilder::EdgeKey(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

bool GraphBuilder::AddEdge(Vertex u, Vertex v) {
  SGM_CHECK(u < labels_.size() && v < labels_.size());
  if (u == v) return false;
  const auto [it, inserted] = edge_keys_.insert(EdgeKey(u, v));
  (void)it;
  if (!inserted) return false;
  edges_.emplace_back(u, v);
  return true;
}

bool GraphBuilder::HasEdge(Vertex u, Vertex v) const {
  if (u == v) return false;
  return edge_keys_.contains(EdgeKey(u, v));
}

Graph GraphBuilder::Build() const { return Graph(labels_, edges_); }

}  // namespace sgm
