#include "sgm/graph/graph_utils.h"

#include <algorithm>
#include <deque>

#include "sgm/graph/graph_builder.h"

namespace sgm {

uint32_t BfsTree::depth() const {
  uint32_t d = 0;
  for (const uint32_t l : level) d = std::max(d, l + 1);
  return d;
}

BfsTree BuildBfsTree(const Graph& graph, Vertex root) {
  SGM_CHECK(root < graph.vertex_count());
  const uint32_t n = graph.vertex_count();
  BfsTree tree;
  tree.root = root;
  tree.parent.assign(n, kInvalidVertex);
  tree.level.assign(n, 0);
  tree.children.assign(n, {});
  tree.order.reserve(n);

  std::vector<bool> visited(n, false);
  std::deque<Vertex> queue;
  queue.push_back(root);
  visited[root] = true;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    tree.order.push_back(u);
    for (const Vertex w : graph.neighbors(u)) {
      if (!visited[w]) {
        visited[w] = true;
        tree.parent[w] = u;
        tree.level[w] = tree.level[u] + 1;
        tree.children[u].push_back(w);
        queue.push_back(w);
      }
    }
  }
  SGM_CHECK_MSG(tree.order.size() == n, "BFS tree requires a connected graph");
  return tree;
}

bool IsConnected(const Graph& graph) {
  const uint32_t n = graph.vertex_count();
  if (n == 0) return true;
  std::vector<bool> visited(n, false);
  std::deque<Vertex> queue;
  queue.push_back(0);
  visited[0] = true;
  uint32_t reached = 1;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Vertex w : graph.neighbors(u)) {
      if (!visited[w]) {
        visited[w] = true;
        ++reached;
        queue.push_back(w);
      }
    }
  }
  return reached == n;
}

std::vector<bool> TwoCoreMembership(const Graph& graph) {
  const uint32_t n = graph.vertex_count();
  std::vector<uint32_t> degree(n);
  std::deque<Vertex> peel;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = graph.degree(v);
    if (degree[v] < 2) peel.push_back(v);
  }
  std::vector<bool> in_core(n, true);
  while (!peel.empty()) {
    const Vertex v = peel.front();
    peel.pop_front();
    if (!in_core[v]) continue;
    in_core[v] = false;
    for (const Vertex w : graph.neighbors(v)) {
      if (in_core[w] && --degree[w] < 2) peel.push_back(w);
    }
  }
  return in_core;
}

uint32_t TwoCoreSize(const Graph& graph) {
  const auto membership = TwoCoreMembership(graph);
  return static_cast<uint32_t>(
      std::count(membership.begin(), membership.end(), true));
}

Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<Vertex>* old_to_new) {
  const uint32_t n = graph.vertex_count();
  std::vector<uint32_t> component(n, 0);
  uint32_t component_count = 0;
  std::vector<uint32_t> sizes;
  std::deque<Vertex> queue;
  std::vector<bool> visited(n, false);
  for (Vertex start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++component_count;
    uint32_t size = 0;
    visited[start] = true;
    queue.push_back(start);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      component[v] = component_count - 1;
      ++size;
      for (const Vertex w : graph.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          queue.push_back(w);
        }
      }
    }
    sizes.push_back(size);
  }
  uint32_t best = 0;
  for (uint32_t c = 1; c < component_count; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  std::vector<Vertex> selection;
  selection.reserve(component_count == 0 ? 0 : sizes[best]);
  for (Vertex v = 0; v < n; ++v) {
    if (component[v] == best) selection.push_back(v);
  }
  return InducedSubgraph(graph, selection, old_to_new);
}

Graph CompactLabels(const Graph& graph, std::vector<Label>* label_mapping) {
  std::vector<Label> mapping(graph.label_count(), kInvalidLabel);
  Label next = 0;
  GraphBuilder builder(graph.vertex_count());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    Label& mapped = mapping[graph.label(v)];
    if (mapped == kInvalidLabel) mapped = next++;
    builder.SetLabel(v, mapped);
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  if (label_mapping != nullptr) *label_mapping = std::move(mapping);
  return builder.Build();
}

Graph InducedSubgraph(const Graph& graph, std::span<const Vertex> vertices,
                      std::vector<Vertex>* old_to_new) {
  std::vector<Vertex> mapping(graph.vertex_count(), kInvalidVertex);
  GraphBuilder builder;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Vertex old = vertices[i];
    SGM_CHECK(old < graph.vertex_count());
    SGM_CHECK_MSG(mapping[old] == kInvalidVertex, "duplicate vertex in selection");
    mapping[old] = builder.AddVertex(graph.label(old));
  }
  for (const Vertex old : vertices) {
    for (const Vertex w : graph.neighbors(old)) {
      if (mapping[w] != kInvalidVertex && old < w) {
        builder.AddEdge(mapping[old], mapping[w]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return builder.Build();
}

}  // namespace sgm
