#include "sgm/graph/graph_stats.h"

#include <algorithm>
#include <cmath>

#include "sgm/util/set_intersection.h"

namespace sgm {

uint64_t CountTriangles(const Graph& graph) {
  // For every edge (u, v) with u < v, count common neighbors w > v — each
  // triangle is counted exactly once at its smallest-id vertex pair... more
  // precisely, counting common neighbors w with w > v over edges u < v
  // counts each triangle {a < b < c} once, at the edge (a, b).
  uint64_t triangles = 0;
  std::vector<Vertex> scratch;
  for (Vertex u = 0; u < graph.vertex_count(); ++u) {
    const auto u_nbrs = graph.neighbors(u);
    for (const Vertex v : u_nbrs) {
      if (v <= u) continue;
      IntersectHybrid(u_nbrs, graph.neighbors(v), &scratch);
      for (const Vertex w : scratch) {
        if (w > v) ++triangles;
      }
    }
  }
  return triangles;
}

std::vector<uint32_t> LabelHistogram(const Graph& graph) {
  std::vector<uint32_t> histogram(graph.label_count(), 0);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    ++histogram[graph.label(v)];
  }
  return histogram;
}

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.vertex_count = graph.vertex_count();
  stats.edge_count = graph.edge_count();
  stats.label_count = graph.label_count();
  stats.average_degree = graph.average_degree();
  stats.max_degree = graph.max_degree();

  if (graph.vertex_count() > 0) {
    std::vector<uint32_t> degrees(graph.vertex_count());
    for (Vertex v = 0; v < graph.vertex_count(); ++v) {
      degrees[v] = graph.degree(v);
    }
    std::nth_element(degrees.begin(),
                     degrees.begin() + degrees.size() / 2, degrees.end());
    stats.median_degree = degrees[degrees.size() / 2];
  }

  stats.triangle_count = CountTriangles(graph);
  // Open wedges: sum over vertices of C(d, 2).
  uint64_t wedges = 0;
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    const uint64_t d = graph.degree(v);
    wedges += d * (d - 1) / 2;
  }
  stats.global_clustering =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(stats.triangle_count) /
                        static_cast<double>(wedges);

  const auto histogram = LabelHistogram(graph);
  double entropy = 0.0;
  for (const uint32_t count : histogram) {
    if (count == 0) continue;
    const double p =
        static_cast<double>(count) / static_cast<double>(graph.vertex_count());
    entropy -= p * std::log2(p);
  }
  stats.label_entropy_bits = entropy;
  return stats;
}

}  // namespace sgm
