// Catalog of named query patterns — the standard motifs used across the
// subgraph matching literature (and this library's examples and tests):
// paths, cycles, cliques, stars, and the classic 4-5 vertex motifs
// (diamond, tailed triangle, house, bi-fan, bi-triangle).
//
// All constructors take a label assignment; pass {} for unlabeled (all
// label 0) patterns.
#ifndef SGM_GRAPH_PATTERN_CATALOG_H_
#define SGM_GRAPH_PATTERN_CATALOG_H_

#include <span>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// A path u0-u1-...-u{k-1}. Requires k >= 2.
Graph PathPattern(uint32_t vertex_count, std::span<const Label> labels = {});

/// A cycle of k vertices. Requires k >= 3.
Graph CyclePattern(uint32_t vertex_count, std::span<const Label> labels = {});

/// A complete graph on k vertices. Requires k >= 2.
Graph CliquePattern(uint32_t vertex_count, std::span<const Label> labels = {});

/// A star: vertex 0 adjacent to `leaves` leaves. Requires leaves >= 1.
Graph StarPattern(uint32_t leaves, std::span<const Label> labels = {});

/// The diamond: a 4-cycle plus one chord (K4 minus one edge).
Graph DiamondPattern(std::span<const Label> labels = {});

/// The tailed triangle: a triangle with a pendant vertex on vertex 0.
Graph TailedTrianglePattern(std::span<const Label> labels = {});

/// The house: a 4-cycle (0-1-2-3) with a roof vertex 4 adjacent to 2 and 3.
Graph HousePattern(std::span<const Label> labels = {});

/// The bi-fan: vertices {0,1} each adjacent to both of {2,3}.
Graph BiFanPattern(std::span<const Label> labels = {});

/// Two triangles sharing one vertex (the bow-tie), 5 vertices.
Graph BowTiePattern(std::span<const Label> labels = {});

}  // namespace sgm

#endif  // SGM_GRAPH_PATTERN_CATALOG_H_
