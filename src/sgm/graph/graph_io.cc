#include "sgm/graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sgm/graph/graph_builder.h"

namespace sgm {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Strict non-negative decimal parse into *out, bounded by max. Rejects
// signs, non-digit characters and overflow — `operator>>` into an unsigned
// silently wraps "-1" to 4294967295, which is exactly how a hostile header
// turns into a 16 GB allocation.
bool ParseUint32(const std::string& token, uint32_t max, uint32_t* out) {
  if (token.empty() || token.size() > 10) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > max) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) fields.push_back(std::move(token));
  return fields;
}

}  // namespace

std::optional<Graph> ReadGraph(std::istream& in, std::string* error,
                               const ReadGraphLimits& limits) {
  std::string line;
  uint32_t declared_vertices = 0;
  uint32_t declared_edges = 0;
  uint32_t vertices_seen = 0;
  bool saw_header = false;
  GraphBuilder builder;
  std::vector<bool> vertex_seen;
  // Degree column of each 'v' record (kInvalidVertex = not provided);
  // validated against the actual adjacency after parsing.
  std::vector<uint32_t> declared_degrees;
  size_t line_number = 0;

  const auto fail = [&](const std::string& what) -> std::optional<Graph> {
    SetError(error, what + " at line " + std::to_string(line_number));
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.empty()) continue;
    const std::string& tag = fields[0];
    if (tag == "t") {
      if (saw_header) return fail("duplicate header");
      if (fields.size() != 3 ||
          !ParseUint32(fields[1], limits.max_vertices, &declared_vertices) ||
          !ParseUint32(fields[2], limits.max_edges, &declared_edges)) {
        return fail("malformed header");
      }
      saw_header = true;
      builder = GraphBuilder(declared_vertices);
      vertex_seen.assign(declared_vertices, false);
      declared_degrees.assign(declared_vertices, kInvalidVertex);
    } else if (tag == "v") {
      uint32_t id = 0;
      Label label = 0;
      uint32_t degree = kInvalidVertex;
      if (!saw_header || fields.size() < 3 || fields.size() > 4 ||
          !ParseUint32(fields[1], limits.max_vertices, &id) ||
          !ParseUint32(fields[2], limits.max_label, &label)) {
        return fail("malformed vertex");
      }
      if (fields.size() == 4 &&
          !ParseUint32(fields[3], limits.max_edges, &degree)) {
        return fail("malformed vertex degree");
      }
      if (id >= declared_vertices || vertex_seen[id]) {
        return fail("bad vertex id");
      }
      vertex_seen[id] = true;
      ++vertices_seen;
      builder.SetLabel(id, label);
      declared_degrees[id] = degree;
    } else if (tag == "e") {
      Vertex u = 0, v = 0;
      if (!saw_header || fields.size() != 3 ||
          !ParseUint32(fields[1], limits.max_vertices, &u) ||
          !ParseUint32(fields[2], limits.max_vertices, &v)) {
        return fail("malformed edge");
      }
      if (u >= declared_vertices || v >= declared_vertices || u == v) {
        return fail("bad edge");
      }
      builder.AddEdge(u, v);
    } else {
      return fail("unknown record '" + tag + "'");
    }
  }

  if (in.bad()) {
    SetError(error, "read failure");
    return std::nullopt;
  }
  if (!saw_header) {
    SetError(error, "missing 't' header");
    return std::nullopt;
  }
  if (vertices_seen != declared_vertices) {
    SetError(error, "truncated input: header declares " +
                        std::to_string(declared_vertices) + " vertices, found " +
                        std::to_string(vertices_seen));
    return std::nullopt;
  }
  if (builder.edge_count() != declared_edges) {
    SetError(error, "edge count mismatch: header declares " +
                        std::to_string(declared_edges) + ", found " +
                        std::to_string(builder.edge_count()));
    return std::nullopt;
  }
  Graph graph = builder.Build();
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    if (declared_degrees[v] != kInvalidVertex &&
        declared_degrees[v] != graph.degree(v)) {
      SetError(error, "degree mismatch for vertex " + std::to_string(v) +
                          ": declared " + std::to_string(declared_degrees[v]) +
                          ", actual " + std::to_string(graph.degree(v)));
      return std::nullopt;
    }
  }
  return graph;
}

std::optional<Graph> LoadGraphFile(const std::string& path, std::string* error,
                                   const ReadGraphLimits& limits) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadGraph(in, error, limits);
}

void WriteGraph(const Graph& graph, std::ostream& out) {
  out << "t " << graph.vertex_count() << ' ' << graph.edge_count() << '\n';
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    out << "v " << v << ' ' << graph.label(v) << ' ' << graph.degree(v)
        << '\n';
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) out << "e " << v << ' ' << w << '\n';
    }
  }
}

bool SaveGraphFile(const Graph& graph, const std::string& path,
                   std::string* error) {
  std::ofstream out(path);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  WriteGraph(graph, out);
  out.flush();
  if (!out) {
    SetError(error, "write failure on " + path);
    return false;
  }
  return true;
}

}  // namespace sgm
