#include "sgm/graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sgm/graph/graph_builder.h"

namespace sgm {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<Graph> ReadGraph(std::istream& in, std::string* error) {
  std::string line;
  uint32_t declared_vertices = 0;
  uint32_t declared_edges = 0;
  bool saw_header = false;
  GraphBuilder builder;
  std::vector<bool> vertex_seen;
  size_t line_number = 0;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 't') {
      if (saw_header) {
        SetError(error, "duplicate header at line " + std::to_string(line_number));
        return std::nullopt;
      }
      if (!(fields >> declared_vertices >> declared_edges)) {
        SetError(error, "malformed header at line " + std::to_string(line_number));
        return std::nullopt;
      }
      saw_header = true;
      builder = GraphBuilder(declared_vertices);
      vertex_seen.assign(declared_vertices, false);
    } else if (tag == 'v') {
      uint32_t id = 0;
      Label label = 0;
      uint32_t degree = 0;
      if (!saw_header || !(fields >> id >> label)) {
        SetError(error, "malformed vertex at line " + std::to_string(line_number));
        return std::nullopt;
      }
      fields >> degree;  // optional and validated post hoc
      if (id >= declared_vertices || vertex_seen[id]) {
        SetError(error, "bad vertex id at line " + std::to_string(line_number));
        return std::nullopt;
      }
      vertex_seen[id] = true;
      builder.SetLabel(id, label);
    } else if (tag == 'e') {
      Vertex u = 0, v = 0;
      if (!saw_header || !(fields >> u >> v)) {
        SetError(error, "malformed edge at line " + std::to_string(line_number));
        return std::nullopt;
      }
      if (u >= declared_vertices || v >= declared_vertices || u == v) {
        SetError(error, "bad edge at line " + std::to_string(line_number));
        return std::nullopt;
      }
      builder.AddEdge(u, v);
    } else {
      SetError(error, "unknown record '" + std::string(1, tag) + "' at line " +
                          std::to_string(line_number));
      return std::nullopt;
    }
  }

  if (!saw_header) {
    SetError(error, "missing 't' header");
    return std::nullopt;
  }
  if (builder.edge_count() != declared_edges) {
    SetError(error, "edge count mismatch: header declares " +
                        std::to_string(declared_edges) + ", found " +
                        std::to_string(builder.edge_count()));
    return std::nullopt;
  }
  return builder.Build();
}

std::optional<Graph> LoadGraphFile(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadGraph(in, error);
}

void WriteGraph(const Graph& graph, std::ostream& out) {
  out << "t " << graph.vertex_count() << ' ' << graph.edge_count() << '\n';
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    out << "v " << v << ' ' << graph.label(v) << ' ' << graph.degree(v)
        << '\n';
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) out << "e " << v << ' ' << w << '\n';
    }
  }
}

bool SaveGraphFile(const Graph& graph, const std::string& path,
                   std::string* error) {
  std::ofstream out(path);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  WriteGraph(graph, out);
  out.flush();
  if (!out) {
    SetError(error, "write failure on " + path);
    return false;
  }
  return true;
}

}  // namespace sgm
