#include "sgm/graph/pattern_catalog.h"

#include <utility>

#include "sgm/graph/graph_builder.h"

namespace sgm {

namespace {

Graph BuildPattern(uint32_t vertex_count, std::span<const Label> labels,
                   std::span<const std::pair<Vertex, Vertex>> edges) {
  SGM_CHECK_MSG(labels.empty() || labels.size() == vertex_count,
                "label count must match pattern size");
  GraphBuilder builder(vertex_count);
  for (uint32_t v = 0; v < vertex_count && !labels.empty(); ++v) {
    builder.SetLabel(v, labels[v]);
  }
  for (const auto& [a, b] : edges) builder.AddEdge(a, b);
  return builder.Build();
}

}  // namespace

Graph PathPattern(uint32_t vertex_count, std::span<const Label> labels) {
  SGM_CHECK(vertex_count >= 2);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v + 1 < vertex_count; ++v) edges.emplace_back(v, v + 1);
  return BuildPattern(vertex_count, labels, edges);
}

Graph CyclePattern(uint32_t vertex_count, std::span<const Label> labels) {
  SGM_CHECK(vertex_count >= 3);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v < vertex_count; ++v) {
    edges.emplace_back(v, (v + 1) % vertex_count);
  }
  return BuildPattern(vertex_count, labels, edges);
}

Graph CliquePattern(uint32_t vertex_count, std::span<const Label> labels) {
  SGM_CHECK(vertex_count >= 2);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < vertex_count; ++u) {
    for (Vertex v = u + 1; v < vertex_count; ++v) edges.emplace_back(u, v);
  }
  return BuildPattern(vertex_count, labels, edges);
}

Graph StarPattern(uint32_t leaves, std::span<const Label> labels) {
  SGM_CHECK(leaves >= 1);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex leaf = 1; leaf <= leaves; ++leaf) edges.emplace_back(0, leaf);
  return BuildPattern(leaves + 1, labels, edges);
}

Graph DiamondPattern(std::span<const Label> labels) {
  return BuildPattern(4, labels, std::vector<std::pair<Vertex, Vertex>>{
                                     {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
}

Graph TailedTrianglePattern(std::span<const Label> labels) {
  return BuildPattern(4, labels, std::vector<std::pair<Vertex, Vertex>>{
                                     {0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

Graph HousePattern(std::span<const Label> labels) {
  return BuildPattern(5, labels,
                      std::vector<std::pair<Vertex, Vertex>>{
                          {0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}, {3, 4}});
}

Graph BiFanPattern(std::span<const Label> labels) {
  return BuildPattern(4, labels, std::vector<std::pair<Vertex, Vertex>>{
                                     {0, 2}, {0, 3}, {1, 2}, {1, 3}});
}

Graph BowTiePattern(std::span<const Label> labels) {
  return BuildPattern(5, labels,
                      std::vector<std::pair<Vertex, Vertex>>{
                          {0, 1}, {1, 2}, {0, 2}, {0, 3}, {3, 4}, {0, 4}});
}

}  // namespace sgm
