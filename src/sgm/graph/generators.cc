#include "sgm/graph/generators.h"

#include <utility>
#include <vector>

#include "sgm/graph/graph_builder.h"

namespace sgm {

namespace {

// Assigns uniform random labels from [0, label_count) to every vertex.
void AssignUniformLabels(GraphBuilder* builder, uint32_t label_count,
                         Prng* prng) {
  SGM_CHECK(label_count > 0);
  for (Vertex v = 0; v < builder->vertex_count(); ++v) {
    builder->SetLabel(v, static_cast<Label>(prng->NextBounded(label_count)));
  }
}

// Draws one RMAT endpoint pair within a 2^levels x 2^levels adjacency matrix.
std::pair<Vertex, Vertex> DrawRmatEdge(uint32_t levels,
                                       const RmatParams& params, Prng* prng) {
  uint32_t row = 0;
  uint32_t col = 0;
  for (uint32_t level = 0; level < levels; ++level) {
    const double r = prng->NextDouble();
    row <<= 1;
    col <<= 1;
    if (r < params.a) {
      // top-left: nothing to add
    } else if (r < params.a + params.b) {
      col |= 1;
    } else if (r < params.a + params.b + params.c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

}  // namespace

Graph GenerateRmat(uint32_t vertex_count, uint32_t edge_count,
                   uint32_t label_count, Prng* prng,
                   const RmatParams& params) {
  SGM_CHECK(vertex_count >= 2);
  uint32_t levels = 0;
  while ((1ULL << levels) < vertex_count) ++levels;

  GraphBuilder builder(vertex_count);
  AssignUniformLabels(&builder, label_count, prng);

  // Re-draw until the requested number of distinct, loop-free edges inside
  // the vertex range is reached. A generous retry budget guards against
  // pathological parameterizations (e.g., more edges than the graph can
  // hold) turning into an infinite loop.
  const uint64_t max_possible =
      static_cast<uint64_t>(vertex_count) * (vertex_count - 1) / 2;
  SGM_CHECK_MSG(edge_count <= max_possible, "edge_count exceeds simple-graph capacity");
  uint64_t attempts = 0;
  const uint64_t attempt_budget = 100ULL * edge_count + 1000000ULL;
  while (builder.edge_count() < edge_count) {
    SGM_CHECK_MSG(++attempts <= attempt_budget,
                  "RMAT generator exceeded retry budget");
    const auto [u, v] = DrawRmatEdge(levels, params, prng);
    if (u >= vertex_count || v >= vertex_count) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph GenerateErdosRenyi(uint32_t vertex_count, uint32_t edge_count,
                         uint32_t label_count, Prng* prng) {
  SGM_CHECK(vertex_count >= 2);
  const uint64_t max_possible =
      static_cast<uint64_t>(vertex_count) * (vertex_count - 1) / 2;
  SGM_CHECK_MSG(edge_count <= max_possible, "edge_count exceeds simple-graph capacity");

  GraphBuilder builder(vertex_count);
  AssignUniformLabels(&builder, label_count, prng);
  while (builder.edge_count() < edge_count) {
    const auto u = static_cast<Vertex>(prng->NextBounded(vertex_count));
    const auto v = static_cast<Vertex>(prng->NextBounded(vertex_count));
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph RelabelUniform(const Graph& graph, uint32_t label_count, Prng* prng) {
  GraphBuilder builder(graph.vertex_count());
  AssignUniformLabels(&builder, label_count, prng);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

Graph RelabelSkewed(const Graph& graph, uint32_t label_count,
                    double dominant_fraction, Prng* prng) {
  SGM_CHECK(label_count >= 2);
  GraphBuilder builder(graph.vertex_count());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    const Label label =
        prng->NextBernoulli(dominant_fraction)
            ? 0
            : static_cast<Label>(1 + prng->NextBounded(label_count - 1));
    builder.SetLabel(v, label);
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

Graph SampleEdges(const Graph& graph, double keep_ratio, Prng* prng) {
  GraphBuilder builder(graph.vertex_count());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    builder.SetLabel(v, graph.label(v));
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w && prng->NextBernoulli(keep_ratio)) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

}  // namespace sgm
