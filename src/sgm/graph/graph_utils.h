// Structural graph helpers shared by the filtering and ordering methods:
// connectivity, BFS trees (the q_t of Section 2.1), 2-core extraction, and
// vertex-induced subgraphs.
#ifndef SGM_GRAPH_GRAPH_UTILS_H_
#define SGM_GRAPH_GRAPH_UTILS_H_

#include <span>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// BFS spanning tree of a connected graph, rooted at `root`. This is the
/// q_t structure used by CFL, CECI and DP-iso: `order` is the BFS traversal
/// order δ; `parent[v]` is the tree parent (kInvalidVertex for the root);
/// `level[v]` is the depth; `children[v]` lists tree children in δ order.
struct BfsTree {
  Vertex root = kInvalidVertex;
  std::vector<Vertex> order;
  std::vector<Vertex> parent;
  std::vector<uint32_t> level;
  std::vector<std::vector<Vertex>> children;

  /// Number of BFS levels (max level + 1).
  uint32_t depth() const;
};

/// Builds the BFS tree of `graph` from `root`. Requires a connected graph
/// (every vertex must be reached).
BfsTree BuildBfsTree(const Graph& graph, Vertex root);

/// True iff the graph is connected (the paper assumes connected queries).
bool IsConnected(const Graph& graph);

/// Returns a marker per vertex: true iff the vertex belongs to the 2-core of
/// the graph (maximal subgraph with minimum degree 2, Section 2.1). Computed
/// by iteratively peeling degree<2 vertices.
std::vector<bool> TwoCoreMembership(const Graph& graph);

/// Number of vertices in the 2-core.
uint32_t TwoCoreSize(const Graph& graph);

/// Vertex-induced subgraph g[vertices]. `vertices` need not be sorted; the
/// i-th entry becomes vertex i of the result. If old_to_new is non-null it
/// receives the mapping (kInvalidVertex for vertices outside the selection).
Graph InducedSubgraph(const Graph& graph, std::span<const Vertex> vertices,
                      std::vector<Vertex>* old_to_new = nullptr);

/// The largest connected component as its own graph (ties broken by the
/// smallest contained vertex id). Useful for normalizing loaded real-world
/// data before matching. old_to_new as in InducedSubgraph.
Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<Vertex>* old_to_new = nullptr);

/// Remaps the labels to a dense range [0, #used-labels) in order of first
/// appearance by vertex id — loaded graphs may use sparse label values,
/// which waste label-index space. If label_mapping is non-null it receives
/// old-label -> new-label (kInvalidLabel for unused labels).
Graph CompactLabels(const Graph& graph,
                    std::vector<Label>* label_mapping = nullptr);

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_UTILS_H_
