// Mutable staging area for constructing Graph instances.
//
// GraphBuilder accepts vertices and edges in any order, silently ignores
// duplicate edges and self loops, and produces a validated immutable Graph.
// It is the construction path used by the generators, the IO loaders, the
// query extractor and the tests.
#ifndef SGM_GRAPH_GRAPH_BUILDER_H_
#define SGM_GRAPH_GRAPH_BUILDER_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// Incrementally assembles a labeled undirected graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Creates a builder with vertex_count vertices, all labeled 0.
  explicit GraphBuilder(uint32_t vertex_count) : labels_(vertex_count, 0) {}

  /// Appends a vertex with the given label; returns its id.
  Vertex AddVertex(Label label);

  /// Sets the label of an existing vertex.
  void SetLabel(Vertex v, Label label);

  /// Adds the undirected edge (u, v). Self loops and duplicates are ignored
  /// (returns false); returns true when the edge is new.
  bool AddEdge(Vertex u, Vertex v);

  /// True iff (u, v) was added before.
  bool HasEdge(Vertex u, Vertex v) const;

  uint32_t vertex_count() const { return static_cast<uint32_t>(labels_.size()); }
  uint32_t edge_count() const { return static_cast<uint32_t>(edges_.size()); }
  Label label(Vertex v) const {
    SGM_CHECK(v < labels_.size());
    return labels_[v];
  }

  /// Finalizes into an immutable Graph. The builder remains usable.
  Graph Build() const;

 private:
  static uint64_t EdgeKey(Vertex u, Vertex v);

  std::vector<Label> labels_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
  std::unordered_set<uint64_t> edge_keys_;
};

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_BUILDER_H_
