// Immutable labeled undirected graph in compressed-sparse-row (CSR) layout.
//
// This is the shared in-memory representation of both query graphs and data
// graphs (Section 2.1 of the paper): undirected, vertex-labeled, no self
// loops, no parallel edges. Neighbor lists are sorted ascending, so edge
// lookups are binary searches and candidate-adjacency intersections can use
// the kernels in util/set_intersection.h.
//
// Construct instances through GraphBuilder (graph_builder.h) or the loaders
// in graph_io.h; the constructor here validates and finalizes a prepared
// edge list.
#ifndef SGM_GRAPH_GRAPH_H_
#define SGM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Immutable labeled undirected graph (CSR).
///
/// Invariants (checked at construction):
///  * neighbor lists sorted ascending, no duplicates, no self loops;
///  * labels dense in [0, label_count).
class Graph {
 public:
  /// One (label, count) entry of a vertex's neighbor-label frequency table.
  struct LabelCount {
    Label label;
    uint32_t count;

    friend bool operator==(const LabelCount&, const LabelCount&) = default;
  };

  Graph() = default;

  /// Builds a graph from per-vertex labels and an undirected edge list.
  /// Each edge must appear exactly once (either orientation); duplicate or
  /// self-loop edges are invariant violations. Prefer GraphBuilder, which
  /// deduplicates for you.
  Graph(std::vector<Label> labels, std::span<const std::pair<Vertex, Vertex>> edges);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices.
  uint32_t vertex_count() const { return vertex_count_; }
  /// Number of undirected edges.
  uint32_t edge_count() const { return edge_count_; }
  /// Number of distinct labels (labels are dense in [0, label_count)).
  uint32_t label_count() const { return label_count_; }
  /// Largest vertex degree.
  uint32_t max_degree() const { return max_degree_; }
  /// Size of the largest label class (used by ordering heuristics).
  uint32_t max_label_frequency() const { return max_label_frequency_; }
  /// Average degree 2|E|/|V|.
  double average_degree() const {
    return vertex_count_ == 0
               ? 0.0
               : 2.0 * static_cast<double>(edge_count_) / vertex_count_;
  }

  Label label(Vertex v) const {
    SGM_CHECK(v < vertex_count_);
    return labels_[v];
  }

  uint32_t degree(Vertex v) const {
    SGM_CHECK(v < vertex_count_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v.
  std::span<const Vertex> neighbors(Vertex v) const {
    SGM_CHECK(v < vertex_count_);
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff the undirected edge (u, v) exists. O(log d) binary search.
  bool HasEdge(Vertex u, Vertex v) const;

  /// Sorted list of vertices carrying the given label.
  std::span<const Vertex> VerticesWithLabel(Label l) const {
    SGM_CHECK(l < label_count_);
    return {vertices_by_label_.data() + label_offsets_[l],
            label_offsets_[l + 1] - label_offsets_[l]};
  }

  /// Number of vertices carrying the given label.
  uint32_t LabelFrequency(Label l) const {
    SGM_CHECK(l < label_count_);
    return label_offsets_[l + 1] - label_offsets_[l];
  }

  /// Neighbor-label frequency table of v: sorted by label, one entry per
  /// distinct neighbor label. Powers the NLF filter (Section 3.1.1).
  std::span<const LabelCount> NeighborLabelFrequency(Vertex v) const {
    SGM_CHECK(v < vertex_count_);
    return {nlf_data_.data() + nlf_offsets_[v],
            nlf_offsets_[v + 1] - nlf_offsets_[v]};
  }

  /// Number of neighbors of v with the given label (0 if none).
  uint32_t NeighborCountWithLabel(Vertex v, Label l) const;

  /// Approximate heap footprint in bytes (for the memory metrics in §5.6).
  size_t MemoryBytes() const;

 private:
  uint32_t vertex_count_ = 0;
  uint32_t edge_count_ = 0;
  uint32_t label_count_ = 0;
  uint32_t max_degree_ = 0;
  uint32_t max_label_frequency_ = 0;

  std::vector<uint32_t> offsets_;    // size vertex_count_ + 1
  std::vector<Vertex> neighbors_;    // size 2 * edge_count_
  std::vector<Label> labels_;        // size vertex_count_

  // Label index: vertices grouped by label.
  std::vector<uint32_t> label_offsets_;     // size label_count_ + 1
  std::vector<Vertex> vertices_by_label_;   // size vertex_count_

  // Per-vertex neighbor-label frequency in CSR layout, sorted by label.
  std::vector<uint32_t> nlf_offsets_;  // size vertex_count_ + 1
  std::vector<LabelCount> nlf_data_;
};

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_H_
