// Text serialization of labeled graphs.
//
// The format is the one used by the paper's published datasets and code:
//
//   t <vertex-count> <edge-count>
//   v <id> <label> <degree>          (one line per vertex, ids dense from 0)
//   e <u> <v>                        (one line per undirected edge)
//
// The degree column is redundant and is validated, not trusted. Lines
// starting with '#' or '%' are treated as comments.
//
// The reader is hardened against hostile input (it is a libFuzzer target,
// see src/sgm/fuzz/fuzzers/): numeric fields are parsed strictly — no signs,
// no overflow wrap-around — and the declared sizes are checked against
// ReadGraphLimits before anything is allocated, so a forged header cannot
// force a multi-gigabyte allocation.
#ifndef SGM_GRAPH_GRAPH_IO_H_
#define SGM_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "sgm/graph/graph.h"

namespace sgm {

/// Allocation caps enforced by ReadGraph before trusting a header. The
/// defaults comfortably cover the paper's largest dataset (Friendster,
/// 65M vertices / 1.8B edges would need a raised cap) while keeping the
/// worst-case allocation from a malicious header in the hundreds of MB.
struct ReadGraphLimits {
  uint32_t max_vertices = 1u << 27;  // 134M
  uint32_t max_edges = 1u << 29;     // 537M
  /// Labels are dense in [0, label_count): Graph allocates an index sized by
  /// the largest label value, so it must be capped independently.
  uint32_t max_label = 1u << 24;  // 16.7M
};

/// Parses a graph from a stream. On failure returns std::nullopt and, if
/// error is non-null, stores a human-readable description.
std::optional<Graph> ReadGraph(std::istream& in, std::string* error,
                               const ReadGraphLimits& limits = {});

/// Loads a graph from a file path.
std::optional<Graph> LoadGraphFile(const std::string& path, std::string* error,
                                   const ReadGraphLimits& limits = {});

/// Writes a graph in the same text format.
void WriteGraph(const Graph& graph, std::ostream& out);

/// Saves a graph to a file path. Returns false (and sets error) on IO failure.
bool SaveGraphFile(const Graph& graph, const std::string& path,
                   std::string* error);

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_IO_H_
