// Text serialization of labeled graphs.
//
// The format is the one used by the paper's published datasets and code:
//
//   t <vertex-count> <edge-count>
//   v <id> <label> <degree>          (one line per vertex, ids dense from 0)
//   e <u> <v>                        (one line per undirected edge)
//
// The degree column is redundant and is validated, not trusted. Lines
// starting with '#' or '%' are treated as comments.
#ifndef SGM_GRAPH_GRAPH_IO_H_
#define SGM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "sgm/graph/graph.h"

namespace sgm {

/// Parses a graph from a stream. On failure returns std::nullopt and, if
/// error is non-null, stores a human-readable description.
std::optional<Graph> ReadGraph(std::istream& in, std::string* error);

/// Loads a graph from a file path.
std::optional<Graph> LoadGraphFile(const std::string& path, std::string* error);

/// Writes a graph in the same text format.
void WriteGraph(const Graph& graph, std::ostream& out);

/// Saves a graph to a file path. Returns false (and sets error) on IO failure.
bool SaveGraphFile(const Graph& graph, const std::string& path,
                   std::string* error);

}  // namespace sgm

#endif  // SGM_GRAPH_GRAPH_IO_H_
