#include "sgm/baselines/vf2.h"

#include <vector>

#include "sgm/util/timer.h"

namespace sgm {

namespace {

// Note on the problem variant: the paper's Definition 2.1 is non-induced
// subgraph isomorphism (monomorphism), so the feasibility rules below are
// the sound monomorphism adaptations of VF2's look-aheads: query-side
// counts must not exceed data-side counts, and the absent-edge (induced)
// check is omitted.
class Vf2Engine {
 public:
  Vf2Engine(const Graph& query, const Graph& data, const Vf2Options& options,
            const Vf2Callback& callback)
      : query_(query),
        data_(data),
        options_(options),
        callback_(callback),
        n_(query.vertex_count()) {}

  Vf2Result Run() {
    Timer timer;
    timer_ = &timer;
    mapping_.assign(n_, kInvalidVertex);
    inverse_.assign(data_.vertex_count(), kInvalidVertex);
    query_frontier_.assign(n_, 0);
    data_frontier_.assign(data_.vertex_count(), 0);
    Search(0);
    result_.total_ms = timer.ElapsedMillis();
    return result_;
  }

 private:
  bool Feasible(Vertex u, Vertex v) const {
    if (data_.label(v) != query_.label(u) ||
        data_.degree(v) < query_.degree(u)) {
      return false;
    }
    // Consistency: every mapped neighbor of u maps to a neighbor of v.
    uint32_t query_in_frontier = 0;
    uint32_t query_fresh = 0;
    for (const Vertex w : query_.neighbors(u)) {
      if (mapping_[w] != kInvalidVertex) {
        if (!data_.HasEdge(v, mapping_[w])) return false;
      } else if (query_frontier_[w] > 0) {
        ++query_in_frontier;
      } else {
        ++query_fresh;
      }
    }
    // Look-ahead: unmapped neighbors of v, split by frontier membership.
    uint32_t data_in_frontier = 0;
    uint32_t data_fresh = 0;
    for (const Vertex w : data_.neighbors(v)) {
      if (inverse_[w] != kInvalidVertex) continue;
      if (data_frontier_[w] > 0) {
        ++data_in_frontier;
      } else {
        ++data_fresh;
      }
    }
    // Frontier query neighbors must land on frontier data neighbors of v;
    // fresh ones may land on any unmapped neighbor.
    if (query_in_frontier > data_in_frontier) return false;
    if (query_in_frontier + query_fresh > data_in_frontier + data_fresh) {
      return false;
    }
    return true;
  }

  void Push(Vertex u, Vertex v) {
    mapping_[u] = v;
    inverse_[v] = u;
    for (const Vertex w : query_.neighbors(u)) ++query_frontier_[w];
    for (const Vertex w : data_.neighbors(v)) ++data_frontier_[w];
  }

  void Pop(Vertex u, Vertex v) {
    for (const Vertex w : query_.neighbors(u)) --query_frontier_[w];
    for (const Vertex w : data_.neighbors(v)) --data_frontier_[w];
    mapping_[u] = kInvalidVertex;
    inverse_[v] = kInvalidVertex;
  }

  // Candidate pair generation of VF2: the smallest-id query vertex in the
  // frontier T1 (or the smallest unmapped one when the frontier is empty),
  // paired with every data vertex of the matching class.
  Vertex SelectQueryVertex() const {
    Vertex fallback = kInvalidVertex;
    for (Vertex u = 0; u < n_; ++u) {
      if (mapping_[u] != kInvalidVertex) continue;
      if (query_frontier_[u] > 0) return u;
      if (fallback == kInvalidVertex) fallback = u;
    }
    return fallback;
  }

  void Search(uint32_t depth) {
    if (stopped_) return;
    ++result_.search_nodes;
    if ((result_.search_nodes & 255) == 0 && options_.time_limit_ms > 0 &&
        timer_->ElapsedMillis() > options_.time_limit_ms) {
      result_.timed_out = true;
      stopped_ = true;
      return;
    }
    if (depth == n_) {
      ++result_.match_count;
      if (callback_ && !callback_(mapping_)) stopped_ = true;
      if (options_.max_matches > 0 &&
          result_.match_count >= options_.max_matches) {
        stopped_ = true;
      }
      return;
    }
    const Vertex u = SelectQueryVertex();
    SGM_CHECK(u != kInvalidVertex);
    const bool frontier_pair = query_frontier_[u] > 0;
    for (Vertex v = 0; v < data_.vertex_count(); ++v) {
      if (stopped_) return;
      if (inverse_[v] != kInvalidVertex) continue;
      // VF2 pairs frontier query vertices only with frontier data vertices.
      if (frontier_pair && data_frontier_[v] == 0) continue;
      if (!Feasible(u, v)) continue;
      Push(u, v);
      Search(depth + 1);
      Pop(u, v);
    }
  }

  const Graph& query_;
  const Graph& data_;
  const Vf2Options& options_;
  const Vf2Callback& callback_;
  const uint32_t n_;

  std::vector<Vertex> mapping_;
  std::vector<Vertex> inverse_;
  std::vector<uint32_t> query_frontier_;  // mapped-neighbor counts (T1)
  std::vector<uint32_t> data_frontier_;   // mapped-neighbor counts (T2)
  Vf2Result result_;
  Timer* timer_ = nullptr;
  bool stopped_ = false;
};

}  // namespace

Vf2Result Vf2Match(const Graph& query, const Graph& data,
                   const Vf2Options& options, const Vf2Callback& callback) {
  SGM_CHECK(query.vertex_count() >= 1);
  Vf2Engine engine(query, data, options, callback);
  return engine.Run();
}

}  // namespace sgm
