// The classic VF2 algorithm (Cordella, Foggia, Sansone and Vento, "A (Sub)
// Graph Isomorphism Algorithm for Matching Large Graphs", TPAMI 2004) —
// the state-space-representation baseline of Table 1 that VF2++ improves
// on.
//
// Faithful to the published formulation for undirected graphs: candidate
// pairs are drawn from the frontier sets T1 (unmapped query vertices
// adjacent to the mapping) and T2 (unmapped data vertices adjacent to the
// mapping), and a pair (u, v) is admitted by the feasibility rules —
// consistency over mapped neighbors plus the one-look-ahead cardinality
// rules comparing |N(u) ∩ T1| vs |N(v) ∩ T2| and the "rest" counts.
#ifndef SGM_BASELINES_VF2_H_
#define SGM_BASELINES_VF2_H_

#include <cstdint>
#include <functional>
#include <span>

#include "sgm/graph/graph.h"

namespace sgm {

/// Knobs of a VF2 run.
struct Vf2Options {
  uint64_t max_matches = 100000;  ///< 0 = unlimited
  double time_limit_ms = 300000.0;  ///< 0 = unlimited
};

/// Outcome of a VF2 run.
struct Vf2Result {
  uint64_t match_count = 0;
  uint64_t search_nodes = 0;
  bool timed_out = false;
  double total_ms = 0.0;
};

/// Called per match; mapping[u] is the data vertex assigned to query vertex
/// u. Return false to stop.
using Vf2Callback = std::function<bool(std::span<const Vertex>)>;

/// Finds all subgraph isomorphisms from query to data with classic VF2.
Vf2Result Vf2Match(const Graph& query, const Graph& data,
                   const Vf2Options& options = Vf2Options{},
                   const Vf2Callback& callback = {});

}  // namespace sgm

#endif  // SGM_BASELINES_VF2_H_
