// Ullmann's algorithm (J. R. Ullmann, "An Algorithm for Subgraph
// Isomorphism", JACM 1976) — the original backtracking subgraph isomorphism
// algorithm with boolean candidate-matrix refinement, listed in Table 1 of
// the paper as the root of the state-space family.
//
// Kept deliberately close to the 1976 formulation: an n_q x n_G boolean
// matrix M where M[u][v] = 1 means v is still a candidate for u, and the
// classic refinement step — v stays a candidate of u only if every neighbor
// of u has at least one candidate among v's neighbors — applied after every
// assignment. Serves as a historically faithful baseline; the modern
// algorithms in sgm/core should always beat it.
#ifndef SGM_BASELINES_ULLMANN_H_
#define SGM_BASELINES_ULLMANN_H_

#include <cstdint>
#include <functional>
#include <span>

#include "sgm/graph/graph.h"

namespace sgm {

/// Knobs of an Ullmann run.
struct UllmannOptions {
  uint64_t max_matches = 100000;  ///< 0 = unlimited
  double time_limit_ms = 300000.0;  ///< 0 = unlimited
};

/// Outcome of an Ullmann run.
struct UllmannResult {
  uint64_t match_count = 0;
  uint64_t search_nodes = 0;
  uint64_t refinements = 0;
  bool timed_out = false;
  double total_ms = 0.0;
};

/// Called per match; mapping[u] is the data vertex assigned to query vertex
/// u. Return false to stop.
using UllmannCallback = std::function<bool(std::span<const Vertex>)>;

/// Finds all subgraph isomorphisms from query to data with Ullmann's
/// algorithm.
UllmannResult UllmannMatch(const Graph& query, const Graph& data,
                           const UllmannOptions& options = UllmannOptions{},
                           const UllmannCallback& callback = {});

}  // namespace sgm

#endif  // SGM_BASELINES_ULLMANN_H_
