#include "sgm/baselines/ullmann.h"

#include <vector>

#include "sgm/util/bitset.h"
#include "sgm/util/timer.h"

namespace sgm {

namespace {

class UllmannEngine {
 public:
  UllmannEngine(const Graph& query, const Graph& data,
                const UllmannOptions& options,
                const UllmannCallback& callback)
      : query_(query),
        data_(data),
        options_(options),
        callback_(callback),
        n_(query.vertex_count()) {}

  UllmannResult Run() {
    Timer timer;
    // Initial candidate matrix from labels and degrees.
    std::vector<Bitset> matrix(n_, Bitset(data_.vertex_count()));
    for (Vertex u = 0; u < n_; ++u) {
      for (Vertex v = 0; v < data_.vertex_count(); ++v) {
        if (data_.label(v) == query_.label(u) &&
            data_.degree(v) >= query_.degree(u)) {
          matrix[u].Set(v);
        }
      }
    }
    mapping_.assign(n_, kInvalidVertex);
    used_.assign(data_.vertex_count(), false);
    timer_ = &timer;
    if (Refine(&matrix)) Search(matrix, 0);
    result_.total_ms = timer.ElapsedMillis();
    return result_;
  }

 private:
  // Ullmann's refinement: v remains a candidate of u only if, for every
  // neighbor u' of u, some neighbor of v is still a candidate of u'.
  // Iterates to a fixpoint; returns false when a row empties.
  bool Refine(std::vector<Bitset>* matrix) {
    ++result_.refinements;
    bool changed = true;
    while (changed) {
      changed = false;
      for (Vertex u = 0; u < n_; ++u) {
        Bitset& row = (*matrix)[u];
        std::vector<Vertex> dropped;
        row.ForEach([&](uint32_t v) {
          for (const Vertex u_prime : query_.neighbors(u)) {
            bool supported = false;
            for (const Vertex w : data_.neighbors(v)) {
              if ((*matrix)[u_prime].Test(w)) {
                supported = true;
                break;
              }
            }
            if (!supported) {
              dropped.push_back(v);
              return;
            }
          }
        });
        for (const Vertex v : dropped) {
          row.Clear(v);
          changed = true;
        }
        if (row.Empty()) return false;
      }
    }
    return true;
  }

  void Search(const std::vector<Bitset>& matrix, Vertex u) {
    if (stopped_) return;
    ++result_.search_nodes;
    if ((result_.search_nodes & 255) == 0 && options_.time_limit_ms > 0 &&
        timer_->ElapsedMillis() > options_.time_limit_ms) {
      result_.timed_out = true;
      stopped_ = true;
      return;
    }
    if (u == n_) {
      ++result_.match_count;
      if (callback_ && !callback_(mapping_)) stopped_ = true;
      if (options_.max_matches > 0 &&
          result_.match_count >= options_.max_matches) {
        stopped_ = true;
      }
      return;
    }
    matrix[u].ForEach([&](uint32_t v) {
      if (stopped_ || used_[v]) return;
      // Restrict row u to {v}, refine, recurse.
      std::vector<Bitset> child = matrix;
      child[u].Reset();
      child[u].Set(v);
      // Remove v from deeper rows (injectivity).
      for (Vertex w = u + 1; w < n_; ++w) {
        if (child[w].Test(v)) child[w].Clear(v);
      }
      mapping_[u] = v;
      used_[v] = true;
      if (Refine(&child)) Search(child, u + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
    });
  }

  const Graph& query_;
  const Graph& data_;
  const UllmannOptions& options_;
  const UllmannCallback& callback_;
  const uint32_t n_;

  std::vector<Vertex> mapping_;
  std::vector<bool> used_;
  UllmannResult result_;
  Timer* timer_ = nullptr;
  bool stopped_ = false;
};

}  // namespace

UllmannResult UllmannMatch(const Graph& query, const Graph& data,
                           const UllmannOptions& options,
                           const UllmannCallback& callback) {
  SGM_CHECK(query.vertex_count() >= 1);
  UllmannEngine engine(query, data, options, callback);
  return engine.Run();
}

}  // namespace sgm
