// EXPLAIN for subgraph queries: runs only the preprocessing phases of a
// configuration and reports the plan the engine would execute — per-vertex
// candidate counts, the matching order, memory of the auxiliary structure,
// and two search-space estimates. Useful for understanding why a query is
// slow and which configuration knob to turn, without paying for the
// enumeration.
#ifndef SGM_EXPLAIN_H_
#define SGM_EXPLAIN_H_

#include <string>
#include <vector>

#include "sgm/matcher.h"

namespace sgm {

/// The inspectable plan of a matching configuration for one query.
struct QueryPlan {
  FilterMethod filter = FilterMethod::kGraphQL;
  OrderMethod order = OrderMethod::kGraphQL;
  LocalCandidateMethod lc_method = LocalCandidateMethod::kIntersect;
  bool use_failing_sets = false;
  bool adaptive_order = false;

  /// |C(u)| per query vertex u.
  std::vector<uint32_t> candidate_counts;
  /// The matching order φ.
  std::vector<Vertex> matching_order;
  /// log10 of the Cartesian bound Π |C(u)| — the search space before any
  /// edge constraint.
  double log10_cartesian_bound = 0.0;
  /// Estimated embeddings of the order's spanning tree in the auxiliary
  /// structure (DP estimate, the quantity DP-iso's weight array computes);
  /// a much tighter indicator of enumeration effort.
  double estimated_tree_embeddings = 0.0;

  size_t candidate_memory_bytes = 0;
  size_t aux_memory_bytes = 0;
  double filter_ms = 0.0;
  double aux_build_ms = 0.0;
  double order_ms = 0.0;

  /// True when some candidate set is empty (the query has no match and
  /// enumeration would be skipped entirely).
  bool no_match_possible = false;

  /// Multi-line human-readable rendering.
  std::string ToString(const Graph& query) const;
};

/// Builds the plan for the given configuration without enumerating.
QueryPlan ExplainQuery(const Graph& query, const Graph& data,
                       const MatchOptions& options = MatchOptions{});

}  // namespace sgm

#endif  // SGM_EXPLAIN_H_
