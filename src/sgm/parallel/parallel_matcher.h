// Shared-memory parallel subgraph matching — the single-machine parallel
// execution style of PSM/CECI/pRI that Table 1 of the paper lists for most
// algorithm families. Preprocessing (filtering, auxiliary structure,
// ordering) runs once; the candidate set of the first order vertex is then
// partitioned into contiguous slices, one enumeration engine per worker
// thread, with a shared atomic match budget.
#ifndef SGM_PARALLEL_PARALLEL_MATCHER_H_
#define SGM_PARALLEL_PARALLEL_MATCHER_H_

#include <cstdint>

#include "sgm/matcher.h"

namespace sgm {

/// Result of a parallel run: the standard MatchResult (times are wall
/// clock; search counters are summed over workers) plus worker accounting.
struct ParallelMatchResult {
  MatchResult result;
  uint32_t workers_used = 0;
};

/// Runs one query with `thread_count` workers (0 = hardware concurrency).
/// Matches are counted exactly once across workers; options.max_matches is
/// a global budget. The per-match callback, when provided, is serialized
/// under a mutex and may be called from any worker.
ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       uint32_t thread_count = 0,
                                       const MatchCallback& callback = {});

}  // namespace sgm

#endif  // SGM_PARALLEL_PARALLEL_MATCHER_H_
