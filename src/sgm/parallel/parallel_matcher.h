// Shared-memory parallel subgraph matching — the single-machine parallel
// execution style of PSM/CECI/pRI that Table 1 of the paper lists for most
// algorithm families. Preprocessing (filtering, auxiliary structure,
// ordering) runs once; enumeration then fans out over the candidates of the
// first order vertex, with a shared atomic match budget.
//
// Two dispatch modes:
//  - kStaticSlices: the original scheme — the root candidate range is cut
//    into one contiguous slice per worker up front. Simple, but enumeration
//    trees are heavily skewed, so one worker usually drains a hub root while
//    the rest sit idle.
//  - kWorkStealing (default): root candidates are dispensed as fine-grained
//    chunks from a shared atomic counter; each worker owns one long-lived
//    EnumerationEngine whose scratch is reset (not reallocated) per chunk.
//    In the endgame, the worker holding the last remaining work publishes
//    the untried depth-1 subtrees of its current root as stealable
//    subtasks, so even a single dominant root spreads across all workers.
#ifndef SGM_PARALLEL_PARALLEL_MATCHER_H_
#define SGM_PARALLEL_PARALLEL_MATCHER_H_

#include <cstdint>
#include <vector>

#include "sgm/matcher.h"

namespace sgm {

/// How enumeration work is distributed across workers.
enum class ParallelMode : uint8_t {
  kStaticSlices = 0,
  kWorkStealing = 1,
};

/// Returns "static" / "work-stealing".
const char* ParallelModeName(ParallelMode mode);

/// Knobs of a parallel run (beyond the per-query MatchOptions).
struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  uint32_t thread_count = 0;
  ParallelMode mode = ParallelMode::kWorkStealing;
  /// Root candidates per dispatched chunk (work-stealing mode);
  /// 0 = auto-tuned from candidate count and thread count.
  uint32_t chunk_size = 0;
  /// Depth-1 subtree splitting in the endgame (work-stealing mode).
  bool subtree_stealing = true;
};

/// Per-worker accounting of one parallel run, for load-balance analysis.
struct ParallelWorkerStats {
  /// Root chunks this worker claimed (1 contiguous slice in static mode).
  uint32_t root_chunks = 0;
  /// Stolen depth-1 subtasks this worker executed.
  uint32_t stolen_subtasks = 0;
  uint64_t recursion_calls = 0;
  uint64_t matches_found = 0;
  /// CPU time spent executing work items (thread CPU clock, so comparable
  /// even when workers outnumber cores).
  double busy_ms = 0.0;
  /// CPU time of each individual work item this worker executed, in
  /// execution order (static mode: one entry, the whole slice). Summing
  /// gives busy_ms; schedulers/benches can replay these costs to evaluate
  /// an assignment independently of how the OS scheduled the threads —
  /// essential on hosts with fewer cores than workers.
  std::vector<double> item_costs_ms;
};

/// Result of a parallel run: the standard MatchResult (times are wall
/// clock; search counters are summed over workers) plus worker accounting.
struct ParallelMatchResult {
  MatchResult result;
  uint32_t workers_used = 0;
  ParallelMode mode = ParallelMode::kWorkStealing;
  /// Root chunk size actually used (the full slice length in static mode).
  uint32_t chunk_size = 0;
  /// Depth-1 subtasks published across the run (work-stealing mode).
  uint64_t subtasks_published = 0;
  std::vector<ParallelWorkerStats> worker_stats;

  /// Load-imbalance factor: max worker busy time / mean worker busy time.
  /// 1.0 is perfect balance; a static split of a skewed tree typically
  /// lands at ~workers_used. Returns 1.0 when there was no measurable work.
  double LoadImbalance() const;
};

/// Runs one query with the given parallel configuration. Matches are
/// counted exactly once across workers; options.max_matches is a global
/// budget. The per-match callback, when provided, is serialized under a
/// mutex and may be called from any worker; match counting is exact in that
/// case (count == callbacks delivered, see EnumerateStats::match_count).
ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       const ParallelOptions& parallel_options,
                                       const MatchCallback& callback = {});

/// Back-compatible wrapper: `thread_count` workers (0 = hardware
/// concurrency) in the default work-stealing mode.
ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       uint32_t thread_count = 0,
                                       const MatchCallback& callback = {});

}  // namespace sgm

#endif  // SGM_PARALLEL_PARALLEL_MATCHER_H_
