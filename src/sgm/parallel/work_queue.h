// Chunked work distribution for parallel enumeration. Root candidates are
// handed out as fine-grained [begin, end) chunks from a single atomic
// counter — the classic dynamic-scheduling answer to the heavily skewed
// enumeration trees of subgraph matching, where a static per-worker slice
// leaves most threads idle while one drains the hub vertex.
#ifndef SGM_PARALLEL_WORK_QUEUE_H_
#define SGM_PARALLEL_WORK_QUEUE_H_

#include <atomic>
#include <cstdint>

namespace sgm::parallel {

/// Picks a chunk size for `total` work items shared by `workers` threads.
/// Small enough that every worker sees many chunks (so skew averages out),
/// large enough that the atomic fetch_add is amortized. Roughly 16 chunks
/// per worker, clamped to [1, 256].
uint32_t AutoChunkSize(uint32_t total, uint32_t workers);

/// Lock-free dispenser of contiguous index chunks over [0, total).
/// Any number of threads may call NextChunk concurrently; each index is
/// handed out exactly once.
class ChunkQueue {
 public:
  ChunkQueue(uint32_t total, uint32_t chunk_size)
      : total_(total), chunk_(chunk_size == 0 ? 1 : chunk_size) {}

  ChunkQueue(const ChunkQueue&) = delete;
  ChunkQueue& operator=(const ChunkQueue&) = delete;

  /// Claims the next chunk. Returns false when the range is exhausted.
  bool NextChunk(uint32_t* begin, uint32_t* end) {
    const uint32_t b = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *end = b + chunk_ < total_ ? b + chunk_ : total_;
    return true;
  }

  /// Number of unclaimed chunks (approximate under concurrency; exact once
  /// claiming has quiesced). 0 means every chunk has been handed out —
  /// the trigger for depth-1 subtree splitting.
  uint32_t RemainingChunks() const {
    const uint32_t n = next_.load(std::memory_order_relaxed);
    if (n >= total_) return 0;
    return (total_ - n + chunk_ - 1) / chunk_;
  }

  uint32_t chunk_size() const { return chunk_; }
  uint32_t total() const { return total_; }

 private:
  const uint32_t total_;
  const uint32_t chunk_;
  std::atomic<uint32_t> next_{0};
};

/// CPU time of the calling thread in milliseconds. Unlike wall clock, this
/// is not inflated when threads are descheduled (e.g. more workers than
/// cores), so per-worker busy times remain comparable on oversubscribed
/// machines; the load-imbalance factor is computed from it.
double ThreadCpuMillis();

}  // namespace sgm::parallel

#endif  // SGM_PARALLEL_WORK_QUEUE_H_
