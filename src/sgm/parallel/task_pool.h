// Work-stealing task pool for parallel enumeration.
//
// Two kinds of work flow through the pool:
//   1. Root chunks — contiguous ranges of root candidates, dispensed from a
//      lock-free ChunkQueue. This is the common case and never touches the
//      mutex.
//   2. Stolen depth-1 subtasks — when every root chunk has been claimed and
//      at least one worker is idle, the worker that owns the remaining work
//      publishes the untried depth-1 local candidates of its current root as
//      (root image, d1 range) subtasks. A thief re-binds the root and
//      explores only its share of the depth-1 range; subtasks can be split
//      again, so a single hub root spreads across all workers.
//
// The pool also decides *when* splitting pays off (OfferSplit): only in the
// endgame (no unclaimed root chunks) and only when someone is actually idle,
// so the hook costs two relaxed atomic loads on the hot path.
#ifndef SGM_PARALLEL_TASK_POOL_H_
#define SGM_PARALLEL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sgm/core/types.h"
#include "sgm/parallel/work_queue.h"

namespace sgm::parallel {

/// A stolen depth-1 subtree: explore depth-1 local candidates
/// [d1_begin, d1_end) under the root candidate mapped to `root_image`.
struct StolenSubtask {
  Vertex root_image = kInvalidVertex;
  uint32_t d1_begin = 0;
  uint32_t d1_end = 0;
};

/// One unit of work handed to a worker.
struct WorkItem {
  enum class Kind : uint8_t { kRootChunk, kSubtask };
  Kind kind = Kind::kRootChunk;
  uint32_t begin = 0;  // root chunk [begin, end)
  uint32_t end = 0;
  StolenSubtask subtask;
};

/// Shared scheduler state of one parallel enumeration run.
/// Thread-safe; one instance per ParallelMatchQuery call.
class TaskPool {
 public:
  /// `root_count` root candidates shared by `workers` threads;
  /// `chunk_size` 0 = AutoChunkSize.
  TaskPool(uint32_t workers, uint32_t root_count, uint32_t chunk_size);

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Claims the next unit of work, blocking while work may still appear.
  /// Returns false when the run is over: every root chunk and subtask is
  /// done and no active worker could publish more, or Stop() was called.
  bool NextWork(WorkItem* item);

  /// Split offer from a worker iterating the depth-1 candidates of a root:
  /// [next, end) are the absolute indices it has not started yet. When the
  /// endgame condition holds (no unclaimed root chunks, idle workers), the
  /// pool queues a suffix as stolen subtasks and returns the new end of the
  /// caller's local range; otherwise returns `end` unchanged.
  uint32_t OfferSplit(Vertex root_image, uint32_t next, uint32_t end);

  /// Wakes every waiting worker and makes NextWork return false. Called on
  /// global stop (match budget, callback veto, timeout). Idempotent.
  void Stop();

  uint32_t chunk_size() const { return roots_.chunk_size(); }
  uint32_t IdleWorkers() const {
    return workers_ - active_.load(std::memory_order_relaxed);
  }
  uint64_t subtasks_published() const {
    return subtasks_published_.load(std::memory_order_relaxed);
  }

 private:
  const uint32_t workers_;
  ChunkQueue roots_;
  std::atomic<bool> stop_{false};
  /// Workers currently executing a work item (all start active). Mutated
  /// only under mu_; read without it by OfferSplit/IdleWorkers.
  std::atomic<uint32_t> active_;
  std::atomic<uint64_t> subtasks_published_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<StolenSubtask> subtasks_;  // LIFO
};

}  // namespace sgm::parallel

#endif  // SGM_PARALLEL_TASK_POOL_H_
