#include "sgm/parallel/task_pool.h"

#include <algorithm>

namespace sgm::parallel {

TaskPool::TaskPool(uint32_t workers, uint32_t root_count, uint32_t chunk_size)
    : workers_(workers),
      roots_(root_count,
             chunk_size == 0 ? AutoChunkSize(root_count, workers) : chunk_size),
      active_(workers) {
  SGM_CHECK(workers >= 1);
}

bool TaskPool::NextWork(WorkItem* item) {
  if (!stop_.load(std::memory_order_relaxed)) {
    uint32_t begin, end;
    if (roots_.NextChunk(&begin, &end)) {
      item->kind = WorkItem::Kind::kRootChunk;
      item->begin = begin;
      item->end = end;
      return true;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  active_.fetch_sub(1, std::memory_order_relaxed);
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) {
      cv_.notify_all();
      return false;
    }
    if (!subtasks_.empty()) {
      item->kind = WorkItem::Kind::kSubtask;
      item->subtask = subtasks_.back();
      subtasks_.pop_back();
      active_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (active_.load(std::memory_order_relaxed) == 0) {
      // Nothing queued and nobody running who could publish more: done.
      cv_.notify_all();
      return false;
    }
    cv_.wait(lock);
  }
}

uint32_t TaskPool::OfferSplit(Vertex root_image, uint32_t next, uint32_t end) {
  if (end - next < 2) return end;  // nothing worth sharing
  if (stop_.load(std::memory_order_relaxed)) return end;
  // Split only in the endgame: every root chunk claimed, someone idle.
  if (roots_.RemainingChunks() > 0) return end;
  const uint32_t idle = IdleWorkers();
  if (idle == 0) return end;

  const uint32_t range = end - next;
  const uint32_t pieces = std::min(idle + 1, range);
  const uint32_t piece = range / pieces;
  // The caller keeps the first piece (plus the rounding remainder) and
  // continues without a queue round-trip; the rest become subtasks.
  const uint32_t keep_end = next + piece + range % pieces;
  uint32_t published = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Don't oversupply: if the queue already holds enough for every idle
    // worker, splitting again only shatters the work (a thread that is
    // merely descheduled, not starving, still counts as idle here).
    if (subtasks_.size() >= idle) return end;
    for (uint32_t b = keep_end; b < end; b += piece) {
      subtasks_.push_back({root_image, b, std::min(b + piece, end)});
      ++published;
    }
  }
  subtasks_published_.fetch_add(published, std::memory_order_relaxed);
  cv_.notify_all();
  return keep_end;
}

void TaskPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

}  // namespace sgm::parallel
