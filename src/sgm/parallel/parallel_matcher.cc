#include "sgm/parallel/parallel_matcher.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "sgm/core/enumerate/enumeration_engine.h"
#include "sgm/core/order/dpiso_order.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/phase_timer.h"
#include "sgm/parallel/task_pool.h"
#include "sgm/parallel/work_queue.h"
#include "sgm/plan.h"
#include "sgm/util/timer.h"

namespace sgm {

const char* ParallelModeName(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::kStaticSlices:
      return "static";
    case ParallelMode::kWorkStealing:
      return "work-stealing";
  }
  return "unknown";
}

double ParallelMatchResult::LoadImbalance() const {
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const ParallelWorkerStats& w : worker_stats) {
    max_busy = std::max(max_busy, w.busy_ms);
    total_busy += w.busy_ms;
  }
  if (worker_stats.empty() || total_busy <= 0.0) return 1.0;
  return max_busy * static_cast<double>(worker_stats.size()) / total_busy;
}

ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       const ParallelOptions& parallel_options,
                                       const MatchCallback& callback) {
  uint32_t thread_count = parallel_options.thread_count;
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }

  ParallelMatchResult parallel;
  parallel.mode = parallel_options.mode;
  MatchResult& result = parallel.result;
  Timer total_timer;
  obs::TraceBuffer* trace =
      options.collector != nullptr ? options.collector->trace() : nullptr;
  if (trace != nullptr) trace->SetThreadName(0, "pipeline");
  const bool profile_enabled = options.collector != nullptr &&
                               options.collector->depth_profile_enabled();

  // ---- Shared preprocessing (the same build path as MatchQuery). ----
  const auto plan_ptr = BuildMatchPlan(query, data, options);
  const MatchPlan& plan = *plan_ptr;
  result.filter_ms = plan.filter_ms;
  result.aux_build_ms = plan.aux_build_ms;
  result.order_ms = plan.order_ms;
  result.preprocessing_ms = plan.build_ms();
  result.average_candidates = plan.average_candidates;
  result.candidate_memory_bytes = plan.candidate_memory_bytes;
  result.aux_memory_bytes = plan.aux_memory_bytes;
  result.filter_rounds = plan.filter_rounds;
  result.matching_order = plan.matching_order;
  if (plan.empty_candidates) {
    result.total_ms = total_timer.ElapsedMillis();
    return parallel;
  }

  const CandidateSets& candidates = plan.candidates;
  const AuxStructure* aux_ptr = plan.has_aux ? &plan.aux : nullptr;
  const DpisoWeights* weights_ptr =
      options.adaptive_order ? &plan.weights : nullptr;

  // ---- Parallel enumeration. ----
  const uint32_t root_candidates =
      candidates.Count(result.matching_order[0]);
  const uint32_t workers =
      std::max(1u, std::min(thread_count, root_candidates));
  parallel.workers_used = workers;
  parallel.worker_stats.assign(workers, {});

  std::atomic<uint64_t> global_matches{0};
  std::atomic<bool> stop{false};
  std::mutex callback_mutex;
  std::vector<EnumerateStats> worker_enumerate(workers);
  std::vector<obs::DepthProfile> worker_profiles(profile_enabled ? workers : 0);

  EnumerateOptions base_options;
  base_options.lc_method = options.lc_method;
  base_options.use_failing_sets = options.use_failing_sets;
  base_options.adaptive_order = options.adaptive_order;
  base_options.vf2pp_lookahead = options.vf2pp_lookahead;
  base_options.restrict_neighbor_scan_to_candidates =
      options.filter != FilterMethod::kLDF;
  // The global budget is enforced through the shared counter below; the
  // cancel flag stops workers that are deep in matchless subtrees.
  base_options.max_matches = 0;
  base_options.time_limit_ms = options.time_limit_ms;
  base_options.intersection = options.intersection;
  base_options.use_lc_cache = options.use_lc_cache;
  base_options.cancel_flag = &stop;

  // Shared per-match accounting. With a user callback, counting and
  // delivery are serialized under one mutex, so the final count equals the
  // number of callback invocations exactly (delivered-match semantics, the
  // same rule as EnumerationEngine::RecordMatch). Without a callback the
  // hot path never takes a mutex: counting is a relaxed fetch_add, clamped
  // to the budget at the end.
  const MatchCallback worker_callback =
      [&](std::span<const Vertex> mapping) -> bool {
    if (stop.load(std::memory_order_relaxed)) return false;
    if (options.cancel_flag != nullptr &&
        options.cancel_flag->load(std::memory_order_relaxed)) {
      // External cancellation (MatchOptions::cancel_flag) folds into the
      // run's own stop flag so every worker drains promptly.
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    if (callback) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      // Re-check under the lock: a run stopped while we waited must never
      // deliver a late match.
      if (stop.load(std::memory_order_relaxed)) return false;
      const uint64_t count =
          global_matches.fetch_add(1, std::memory_order_relaxed) + 1;
      if (!callback(mapping)) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      if (options.max_matches > 0 && count >= options.max_matches) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    }
    const uint64_t count =
        global_matches.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options.max_matches > 0 && count > options.max_matches) {
      // Past the global budget: suppress and stop this worker.
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    if (options.max_matches > 0 && count >= options.max_matches) {
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  };

  // -- Static mode: one contiguous root slice per worker (the baseline). --
  const auto static_worker = [&](uint32_t worker) {
    EnumerateOptions enumerate_options = base_options;
    enumerate_options.root_slice_begin =
        static_cast<uint32_t>(static_cast<uint64_t>(root_candidates) *
                              worker / workers);
    enumerate_options.root_slice_end =
        static_cast<uint32_t>(static_cast<uint64_t>(root_candidates) *
                              (worker + 1) / workers);
    if (profile_enabled) {
      enumerate_options.depth_profile = &worker_profiles[worker];
    }
    if (trace != nullptr) {
      trace->SetThreadName(worker + 1, "worker-" + std::to_string(worker));
    }
    obs::TraceSpan span(trace,
                        "slice[" +
                            std::to_string(enumerate_options.root_slice_begin) +
                            "," +
                            std::to_string(enumerate_options.root_slice_end) +
                            ")",
                        "work-item", worker + 1);
    ThreadCpuTimer cpu_timer;
    worker_enumerate[worker] = Enumerate(
        query, data, candidates, aux_ptr, result.matching_order,
        enumerate_options, weights_ptr, worker_callback);
    ParallelWorkerStats& ws = parallel.worker_stats[worker];
    ws.busy_ms = cpu_timer.ElapsedMillis();
    ws.item_costs_ms.push_back(ws.busy_ms);
    ws.root_chunks = 1;
    ws.recursion_calls = worker_enumerate[worker].recursion_calls;
    ws.matches_found = worker_enumerate[worker].match_count;
  };

  // -- Work-stealing mode: chunked dispatch + depth-1 subtree stealing. --
  parallel::TaskPool pool(workers, root_candidates,
                          parallel_options.chunk_size);
  const auto stealing_worker = [&](uint32_t worker) {
    // One long-lived engine per worker: scratch buffers are allocated once
    // and Reset() between chunks.
    EnumerateOptions worker_options = base_options;
    if (profile_enabled) {
      worker_options.depth_profile = &worker_profiles[worker];
    }
    EnumerationEngine engine(query, data, candidates, aux_ptr,
                             result.matching_order, worker_options, weights_ptr,
                             worker_callback);
    if (parallel_options.subtree_stealing) {
      engine.set_split_hook(
          [&pool](Vertex root, uint32_t next, uint32_t end) -> uint32_t {
            return pool.OfferSplit(root, next, end);
          });
    }
    if (trace != nullptr) {
      trace->SetThreadName(worker + 1, "worker-" + std::to_string(worker));
    }
    ParallelWorkerStats& ws = parallel.worker_stats[worker];
    parallel::WorkItem item;
    ThreadCpuTimer cpu_timer;
    while (!stop.load(std::memory_order_relaxed) && pool.NextWork(&item)) {
      if (options.cancel_flag != nullptr &&
          options.cancel_flag->load(std::memory_order_relaxed)) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      const bool is_chunk = item.kind == parallel::WorkItem::Kind::kRootChunk;
      std::string span_name;
      if (trace != nullptr) {
        span_name = is_chunk
                        ? "chunk[" + std::to_string(item.begin) + "," +
                              std::to_string(item.end) + ")"
                        : "steal root=" +
                              std::to_string(item.subtask.root_image);
      }
      obs::TraceSpan span(trace, std::move(span_name), "work-item",
                          worker + 1);
      cpu_timer.Reset();
      engine.Reset();
      if (is_chunk) {
        engine.RunSlice(item.begin, item.end);
        ++ws.root_chunks;
      } else {
        engine.RunSubtree(item.subtask.root_image, item.subtask.d1_begin,
                          item.subtask.d1_end);
        ++ws.stolen_subtasks;
      }
      const double item_ms = cpu_timer.ElapsedMillis();
      ws.busy_ms += item_ms;
      ws.item_costs_ms.push_back(item_ms);
      if (engine.aborted()) break;
    }
    // Whether this worker ran out of work, aborted, or saw the stop flag:
    // wake everyone so the pool drains (Stop is idempotent).
    pool.Stop();
    worker_enumerate[worker] = engine.stats();
    ws.recursion_calls = engine.stats().recursion_calls;
    ws.matches_found = engine.stats().match_count;
  };

  const bool stealing = parallel_options.mode == ParallelMode::kWorkStealing;
  parallel.chunk_size = stealing
                            ? pool.chunk_size()
                            : (root_candidates + workers - 1) / workers;

  Timer enumeration_timer;
  const auto worker_fn = [&](uint32_t worker) {
    if (stealing) {
      stealing_worker(worker);
    } else {
      static_worker(worker);
    }
  };
  {
    obs::TraceSpan enum_span(trace, obs::kPhaseEnumeration, "phase");
    enum_span.AddArg("workers", static_cast<double>(workers));
    if (workers == 1) {
      worker_fn(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
      for (auto& thread : threads) thread.join();
    }
  }
  result.enumeration_ms = enumeration_timer.ElapsedMillis();
  if (stealing) parallel.subtasks_published = pool.subtasks_published();
  for (const obs::DepthProfile& profile : worker_profiles) {
    result.depth_profile.Merge(profile);
  }

  // Aggregate worker statistics.
  EnumerateStats& stats = result.enumerate;
  for (const EnumerateStats& worker : worker_enumerate) {
    stats.recursion_calls += worker.recursion_calls;
    stats.local_candidates_scanned += worker.local_candidates_scanned;
    stats.failing_set_prunes += worker.failing_set_prunes;
    stats.bitmap_intersections += worker.bitmap_intersections;
    stats.lc_cache_hits += worker.lc_cache_hits;
    stats.lc_cache_misses += worker.lc_cache_misses;
    stats.timed_out = stats.timed_out || worker.timed_out;
  }
  stats.match_count = std::min<uint64_t>(
      global_matches.load(),
      options.max_matches > 0 ? options.max_matches
                              : std::numeric_limits<uint64_t>::max());
  stats.reached_match_limit =
      options.max_matches > 0 && global_matches.load() >= options.max_matches;
  stats.enumeration_ms = result.enumeration_ms;
  result.match_count = stats.match_count;
  result.total_ms = total_timer.ElapsedMillis();
  return parallel;
}

ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       uint32_t thread_count,
                                       const MatchCallback& callback) {
  ParallelOptions parallel_options;
  parallel_options.thread_count = thread_count;
  return ParallelMatchQuery(query, data, options, parallel_options, callback);
}

}  // namespace sgm
