#include "sgm/parallel/parallel_matcher.h"

#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "sgm/core/order/dpiso_order.h"
#include "sgm/util/timer.h"

namespace sgm {

ParallelMatchResult ParallelMatchQuery(const Graph& query, const Graph& data,
                                       const MatchOptions& options,
                                       uint32_t thread_count,
                                       const MatchCallback& callback) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }

  ParallelMatchResult parallel;
  MatchResult& result = parallel.result;
  Timer total_timer;

  // ---- Shared preprocessing (identical to MatchQuery). ----
  Timer phase_timer;
  FilterResult filtered =
      RunFilter(options.filter, query, data, options.filter_options);
  result.filter_ms = phase_timer.ElapsedMillis();
  result.average_candidates = filtered.candidates.AverageCount();
  result.candidate_memory_bytes = filtered.candidates.MemoryBytes();
  if (filtered.candidates.AnyEmpty()) {
    result.preprocessing_ms = result.filter_ms;
    result.total_ms = total_timer.ElapsedMillis();
    return parallel;
  }

  phase_timer.Reset();
  AuxStructure aux;
  switch (options.aux_scope) {
    case AuxEdgeScope::kNone:
      break;
    case AuxEdgeScope::kTreeEdges:
      SGM_CHECK_MSG(filtered.bfs_tree.has_value(),
                    "tree-edge aux scope needs a filter that builds q_t");
      aux = AuxStructure::BuildTreeEdges(query, data, filtered.candidates,
                                         filtered.bfs_tree->parent);
      break;
    case AuxEdgeScope::kAllEdges:
      aux = AuxStructure::BuildAllEdges(query, data, filtered.candidates);
      break;
  }
  result.aux_build_ms = phase_timer.ElapsedMillis();
  result.aux_memory_bytes = aux.MemoryBytes();

  phase_timer.Reset();
  OrderInputs order_inputs;
  order_inputs.candidates = &filtered.candidates;
  order_inputs.tree =
      filtered.bfs_tree.has_value() ? &*filtered.bfs_tree : nullptr;
  order_inputs.aux = options.aux_scope == AuxEdgeScope::kNone ? nullptr : &aux;
  result.matching_order = ComputeOrder(options.order, query, data,
                                       order_inputs);
  DpisoWeights weights;
  if (options.adaptive_order) {
    SGM_CHECK_MSG(options.aux_scope == AuxEdgeScope::kAllEdges,
                  "adaptive ordering needs an all-edges aux structure");
    weights = DpisoWeights::Build(query, filtered.candidates, aux,
                                  result.matching_order);
  }
  result.order_ms = phase_timer.ElapsedMillis();
  result.preprocessing_ms =
      result.filter_ms + result.aux_build_ms + result.order_ms;

  // ---- Parallel enumeration over root-candidate slices. ----
  const uint32_t root_candidates =
      filtered.candidates.Count(result.matching_order[0]);
  const uint32_t workers =
      std::max(1u, std::min(thread_count, root_candidates));
  parallel.workers_used = workers;

  std::atomic<uint64_t> global_matches{0};
  std::atomic<bool> stop{false};
  std::mutex callback_mutex;
  std::vector<EnumerateStats> worker_stats(workers);

  const auto worker_fn = [&](uint32_t worker) {
    EnumerateOptions enumerate_options;
    enumerate_options.lc_method = options.lc_method;
    enumerate_options.use_failing_sets = options.use_failing_sets;
    enumerate_options.adaptive_order = options.adaptive_order;
    enumerate_options.vf2pp_lookahead = options.vf2pp_lookahead;
    enumerate_options.restrict_neighbor_scan_to_candidates =
        options.filter != FilterMethod::kLDF;
    // The global budget is enforced through the shared counter below.
    enumerate_options.max_matches = 0;
    enumerate_options.time_limit_ms = options.time_limit_ms;
    enumerate_options.intersection = options.intersection;
    enumerate_options.root_slice_begin =
        static_cast<uint32_t>(static_cast<uint64_t>(root_candidates) *
                              worker / workers);
    enumerate_options.root_slice_end =
        static_cast<uint32_t>(static_cast<uint64_t>(root_candidates) *
                              (worker + 1) / workers);

    const MatchCallback worker_callback =
        [&](std::span<const Vertex> mapping) -> bool {
      if (stop.load(std::memory_order_relaxed)) return false;
      const uint64_t count =
          global_matches.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.max_matches > 0 && count > options.max_matches) {
        // Past the global budget: suppress delivery and stop this worker.
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      if (callback) {
        std::lock_guard<std::mutex> lock(callback_mutex);
        if (!callback(mapping)) {
          stop.store(true, std::memory_order_relaxed);
          return false;
        }
      }
      if (options.max_matches > 0 && count >= options.max_matches) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };

    worker_stats[worker] = Enumerate(
        query, data, filtered.candidates,
        options.aux_scope == AuxEdgeScope::kNone ? nullptr : &aux,
        result.matching_order, enumerate_options,
        options.adaptive_order ? &weights : nullptr, worker_callback);
  };

  Timer enumeration_timer;
  if (workers == 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
    for (auto& thread : threads) thread.join();
  }
  result.enumeration_ms = enumeration_timer.ElapsedMillis();

  // Aggregate worker statistics.
  EnumerateStats& stats = result.enumerate;
  for (const EnumerateStats& worker : worker_stats) {
    stats.recursion_calls += worker.recursion_calls;
    stats.local_candidates_scanned += worker.local_candidates_scanned;
    stats.failing_set_prunes += worker.failing_set_prunes;
    stats.timed_out = stats.timed_out || worker.timed_out;
  }
  stats.match_count = std::min<uint64_t>(
      global_matches.load(),
      options.max_matches > 0 ? options.max_matches
                              : std::numeric_limits<uint64_t>::max());
  stats.reached_match_limit =
      options.max_matches > 0 && global_matches.load() >= options.max_matches;
  stats.enumeration_ms = result.enumeration_ms;
  result.match_count = stats.match_count;
  result.total_ms = total_timer.ElapsedMillis();
  return parallel;
}

}  // namespace sgm
