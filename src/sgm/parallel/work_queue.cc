#include "sgm/parallel/work_queue.h"

#include <algorithm>
#include <chrono>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define SGM_HAVE_THREAD_CPUTIME 1
#endif

namespace sgm::parallel {

uint32_t AutoChunkSize(uint32_t total, uint32_t workers) {
  if (workers <= 1) return std::max(1u, total);
  const uint32_t target_chunks = workers * 16;
  return std::clamp(total / target_chunks, 1u, 256u);
}

double ThreadCpuMillis() {
#ifdef SGM_HAVE_THREAD_CPUTIME
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  // Fallback: wall clock (inflated under oversubscription, but monotone).
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         1e-6;
}

}  // namespace sgm::parallel
