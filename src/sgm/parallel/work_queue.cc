#include "sgm/parallel/work_queue.h"

#include <algorithm>

#include "sgm/util/timer.h"

namespace sgm::parallel {

uint32_t AutoChunkSize(uint32_t total, uint32_t workers) {
  if (workers <= 1) return std::max(1u, total);
  const uint32_t target_chunks = workers * 16;
  return std::clamp(total / target_chunks, 1u, 256u);
}

double ThreadCpuMillis() {
  return static_cast<double>(ThreadCpuTimer::NowNanos()) * 1e-6;
}

}  // namespace sgm::parallel
