#include "sgm/plan.h"

#include <algorithm>
#include <utility>

#include "sgm/obs/collector.h"
#include "sgm/obs/phase_timer.h"
#include "sgm/util/timer.h"

namespace sgm {

size_t MatchPlan::MemoryBytes() const {
  size_t bytes = sizeof(MatchPlan);
  bytes += candidates.MemoryBytes();
  bytes += aux.MemoryBytes();
  bytes += matching_order.capacity() * sizeof(Vertex);
  bytes += weights.MemoryBytes();
  if (bfs_tree.has_value()) {
    bytes += bfs_tree->parent.capacity() * sizeof(Vertex) +
             bfs_tree->order.capacity() * sizeof(Vertex);
  }
  for (const FilterRound& round : filter_rounds) {
    bytes += sizeof(FilterRound) + round.name.capacity();
  }
  return bytes;
}

std::unique_ptr<MatchPlan> BuildMatchPlan(const Graph& query,
                                          const Graph& data,
                                          const MatchOptions& options) {
  SGM_CHECK_MSG(query.vertex_count() >= 1 &&
                    query.vertex_count() <= kMaxQueryVertices,
                "query size out of supported range");

  auto plan_ptr = std::make_unique<MatchPlan>();
  MatchPlan& plan = *plan_ptr;
  plan.options = options;
  obs::TraceBuffer* trace =
      options.collector != nullptr ? options.collector->trace() : nullptr;
  if (trace != nullptr) trace->SetThreadName(0, "pipeline");
  obs::PhaseTimer phase_timer(trace);

  // ---- Filtering (line 1 of Algorithm 1). ----
  phase_timer.Begin(obs::kPhaseFilter);
  FilterResult filtered =
      RunFilter(options.filter, query, data, options.filter_options);
  plan.filter_ms = phase_timer.End();
  if (options.restrict_candidates_below > 0) {
    // Sharded-execution hook: keep only candidates below the id threshold
    // (shard-owned vertices under the owned-first local id layout). Sets
    // are sorted, so the tail past lower_bound is exactly the halo.
    for (Vertex u = 0; u < query.vertex_count(); ++u) {
      std::vector<Vertex>& set = filtered.candidates.mutable_candidates(u);
      set.erase(std::lower_bound(set.begin(), set.end(),
                                 options.restrict_candidates_below),
                set.end());
      set.shrink_to_fit();
    }
  }
  plan.average_candidates = filtered.candidates.AverageCount();
  plan.candidate_memory_bytes = filtered.candidates.MemoryBytes();
  plan.filter_rounds = std::move(filtered.rounds);
  plan.candidates = std::move(filtered.candidates);
  plan.bfs_tree = std::move(filtered.bfs_tree);

  if (plan.candidates.AnyEmpty()) {
    // Some query vertex has no candidate: no match exists, and there is
    // nothing to index or order.
    plan.empty_candidates = true;
    return plan_ptr;
  }

  // ---- Auxiliary structure. ----
  phase_timer.Begin(obs::kPhaseAuxBuild);
  switch (options.aux_scope) {
    case AuxEdgeScope::kNone:
      break;
    case AuxEdgeScope::kTreeEdges: {
      SGM_CHECK_MSG(plan.bfs_tree.has_value(),
                    "tree-edge aux scope needs a filter that builds q_t");
      plan.aux = AuxStructure::BuildTreeEdges(query, data, plan.candidates,
                                              plan.bfs_tree->parent);
      plan.has_aux = true;
      break;
    }
    case AuxEdgeScope::kAllEdges: {
      AuxBuildOptions aux_build;
      // The sidecar only pays off where the enumerator can consume it: the
      // set-intersection local candidates with a bitmap-aware kernel.
      aux_build.build_bitmaps =
          options.lc_method == LocalCandidateMethod::kIntersect &&
          (options.intersection == IntersectionMethod::kBitmap ||
           options.intersection == IntersectionMethod::kAuto);
      aux_build.bitmap_max_candidates = options.bitmap_max_candidates;
      plan.aux =
          AuxStructure::BuildAllEdges(query, data, plan.candidates, aux_build);
      plan.has_aux = true;
      break;
    }
  }
  plan.aux_memory_bytes = plan.aux.MemoryBytes();

  // ---- Ordering (line 2 of Algorithm 1). ----
  plan.aux_build_ms = phase_timer.Begin(obs::kPhaseOrder);
  OrderInputs order_inputs;
  order_inputs.candidates = &plan.candidates;
  order_inputs.tree = plan.bfs_tree.has_value() ? &*plan.bfs_tree : nullptr;
  order_inputs.aux = plan.has_aux ? &plan.aux : nullptr;
  plan.matching_order = ComputeOrder(options.order, query, data, order_inputs);
  if (options.postpone_degree_one) {
    plan.matching_order = PostponeDegreeOneVertices(query, plan.matching_order);
  }
  SGM_CHECK(IsValidMatchingOrder(query, plan.matching_order));

  if (options.adaptive_order) {
    SGM_CHECK_MSG(options.aux_scope == AuxEdgeScope::kAllEdges,
                  "adaptive ordering needs an all-edges aux structure");
    plan.weights = DpisoWeights::Build(query, plan.candidates, plan.aux,
                                       plan.matching_order);
  }
  plan.order_ms = phase_timer.End();
  return plan_ptr;
}

MatchResult ExecutePlan(const Graph& query, const Graph& data,
                        const MatchPlan& plan, const MatchOptions& run_options,
                        const MatchCallback& callback,
                        bool include_build_metrics) {
  MatchResult result;
  Timer total_timer;

  // Structural facts of the plan are part of every result built from it.
  result.average_candidates = plan.average_candidates;
  result.candidate_memory_bytes = plan.candidate_memory_bytes;
  result.aux_memory_bytes = plan.aux_memory_bytes;
  result.filter_rounds = plan.filter_rounds;
  result.matching_order = plan.matching_order;
  if (include_build_metrics) {
    result.filter_ms = plan.filter_ms;
    result.aux_build_ms = plan.aux_build_ms;
    result.order_ms = plan.order_ms;
  }
  result.preprocessing_ms =
      result.filter_ms + result.aux_build_ms + result.order_ms;

  if (plan.empty_candidates) {
    result.total_ms = total_timer.ElapsedMillis() +
                      (include_build_metrics ? plan.build_ms() : 0.0);
    return result;
  }

  obs::TraceBuffer* trace = run_options.collector != nullptr
                                ? run_options.collector->trace()
                                : nullptr;
  if (trace != nullptr) trace->SetThreadName(0, "pipeline");

  // ---- Enumeration (line 3 of Algorithm 1). ----
  EnumerateOptions enumerate_options;
  enumerate_options.lc_method = plan.options.lc_method;
  enumerate_options.use_failing_sets = plan.options.use_failing_sets;
  enumerate_options.adaptive_order = plan.options.adaptive_order;
  enumerate_options.vf2pp_lookahead = plan.options.vf2pp_lookahead;
  // The id-threshold restriction of sharded passes lives in the candidate
  // sets only, so neighbor scans must honor candidate membership even under
  // the plain LDF filter — otherwise halo vertices would re-enter through
  // Algorithm 2's direct neighbor walk.
  enumerate_options.restrict_neighbor_scan_to_candidates =
      plan.options.filter != FilterMethod::kLDF ||
      plan.options.restrict_candidates_below > 0;
  enumerate_options.max_matches = run_options.max_matches;
  enumerate_options.time_limit_ms = run_options.time_limit_ms;
  enumerate_options.intersection = plan.options.intersection;
  enumerate_options.use_lc_cache = run_options.use_lc_cache;
  enumerate_options.cancel_flag = run_options.cancel_flag;
  if (run_options.collector != nullptr &&
      run_options.collector->depth_profile_enabled()) {
    enumerate_options.depth_profile = &result.depth_profile;
  }
  if (run_options.debug_skip_last_root_candidate) {
    // Emulated off-by-one: enumerate roots [0, count-1) instead of
    // [0, count). See MatchOptions::debug_skip_last_root_candidate.
    const uint32_t root_count =
        plan.candidates.Count(plan.matching_order[0]);
    enumerate_options.root_slice_end = root_count > 0 ? root_count - 1 : 0;
  }

  {
    obs::TraceSpan span(trace, obs::kPhaseEnumeration, "phase");
    result.enumerate =
        Enumerate(query, data, plan.candidates,
                  plan.has_aux ? &plan.aux : nullptr, plan.matching_order,
                  enumerate_options,
                  plan.options.adaptive_order ? &plan.weights : nullptr,
                  callback);
    span.AddArg("recursion_calls",
                static_cast<double>(result.enumerate.recursion_calls));
    span.AddArg("matches", static_cast<double>(result.enumerate.match_count));
  }
  result.match_count = result.enumerate.match_count;
  result.enumeration_ms = result.enumerate.enumeration_ms;
  result.total_ms = total_timer.ElapsedMillis() +
                    (include_build_metrics ? plan.build_ms() : 0.0);
  return result;
}

}  // namespace sgm
