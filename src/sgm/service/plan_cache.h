// Plan cache for the serving layer: retains built MatchPlan objects
// (candidate sets, auxiliary structures with bitmap sidecars, matching
// orders, adaptive weights) keyed on the exact query graph plus the
// structural match options, so a repeated query skips the preprocessing
// phases entirely and replays only the enumeration.
//
// Keys are exact byte encodings, not isomorphism-canonical forms: a plan's
// matching order and candidate sets are expressed in the query's own vertex
// numbering, so two isomorphic but differently numbered queries must NOT
// share a plan — the embeddings they return map different vertex ids.
// Equality is checked on the full key string (the map key), so a hash
// collision can never surface a wrong plan.
//
// Eviction is LRU under a caller-configured memory budget, accounted with
// MatchPlan::MemoryBytes(). All operations are thread-safe; returned plans
// are shared_ptr<const MatchPlan>, so an evicted plan stays alive for
// requests still executing it.
#ifndef SGM_SERVICE_PLAN_CACHE_H_
#define SGM_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sgm/plan.h"

namespace sgm::service {

/// Configuration of a PlanCache.
struct PlanCacheOptions {
  /// Memory budget in bytes, accounted with MatchPlan::MemoryBytes().
  /// Plans are evicted least-recently-used until the cache fits. A single
  /// plan larger than the whole budget is never retained (the build still
  /// succeeds; the plan just is not cached). 0 disables caching entirely.
  size_t memory_budget_bytes = 256ull << 20;  // 256 MiB
};

/// Point-in-time counters of a PlanCache, surfaced through
/// MatchService::Stats() and the service section of obs::RunReport.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Inserts dropped because the plan alone exceeds the budget.
  uint64_t rejected = 0;
  size_t entries = 0;
  size_t memory_bytes = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe LRU cache of built MatchPlans under a memory budget.
class PlanCache {
 public:
  explicit PlanCache(const PlanCacheOptions& options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Deterministic byte encoding of a query graph (labels + sorted edge
  /// list). Two graphs encode equally iff they are identical vertex-by-
  /// vertex — deliberately not isomorphism-canonical (see file comment).
  static std::string EncodeQuery(const Graph& query);

  /// Fingerprint of every option that shapes a built plan: filter, order,
  /// local-candidate method, aux scope, intersection method, adaptive
  /// ordering, degree-one postponement, bitmap threshold and the filter
  /// tuning knobs. Per-run knobs (max_matches, time limit, collector,
  /// cancel flag, lc cache) are excluded: one plan serves them all.
  static std::string EncodeOptions(const MatchOptions& options);

  /// The full cache key of a (query, options) pair against one version of
  /// the data graph. `graph_epoch` is the DynamicGraph epoch the plan was
  /// built against: a plan depends on data-graph statistics (candidate
  /// sets, ordering costs), so keys from different epochs must never
  /// collide — after an update, old-epoch plans simply age out of the LRU.
  /// Services with an immutable graph pass the default 0.
  static std::string MakeKey(const Graph& query, const MatchOptions& options,
                             uint64_t graph_epoch = 0) {
    return EncodeQuery(query) + '|' + EncodeOptions(options) + "|g" +
           std::to_string(graph_epoch);
  }

  /// Returns the cached plan and promotes it to most-recently-used, or null
  /// on a miss. Counts a hit or a miss.
  std::shared_ptr<const MatchPlan> Lookup(const std::string& key);

  /// Inserts a freshly built plan and returns it as a shared pointer. If
  /// another thread inserted the same key first, the incumbent wins and is
  /// returned (both plans are equivalent by construction). Evicts LRU
  /// entries as needed; a plan bigger than the whole budget is returned
  /// uncached. Does not count a hit or a miss.
  std::shared_ptr<const MatchPlan> Insert(const std::string& key,
                                          std::unique_ptr<MatchPlan> plan);

  /// Drops every entry (in-flight executions keep their shared_ptrs alive).
  void Clear();

  PlanCacheStats Stats() const;

  size_t memory_budget_bytes() const { return options_.memory_budget_bytes; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const MatchPlan> plan;
    size_t bytes = 0;
  };

  /// Evicts LRU entries until memory_bytes_ fits the budget. Caller holds
  /// mutex_.
  void EvictToFitLocked();

  const PlanCacheOptions options_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t memory_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace sgm::service

#endif  // SGM_SERVICE_PLAN_CACHE_H_
