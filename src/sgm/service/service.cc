#include "sgm/service/service.h"

#include <algorithm>
#include <utility>

#include "sgm/graph/graph_utils.h"
#include "sgm/plan.h"

namespace sgm::service {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimedOut:
      return "timeout";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

MatchService::MatchService(Graph data, const ServiceOptions& options)
    : options_(options),
      data_(std::move(data)),
      plan_cache_(PlanCacheOptions{options.plan_cache_budget_bytes}),
      epoch_(std::chrono::steady_clock::now()) {
  uint32_t workers = options_.worker_count;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() { Shutdown(); }

double MatchService::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::future<MatchResponse> MatchService::Submit(MatchRequest request) {
  std::promise<MatchResponse> promise;
  std::future<MatchResponse> future = promise.get_future();

  // Admission-time validation: reject malformed queries before they cost a
  // queue slot, with a reason a caller can act on.
  std::string reject_reason;
  if (request.query.vertex_count() < 1 ||
      request.query.vertex_count() > kMaxQueryVertices) {
    reject_reason = "query size out of supported range [1, 64]";
  } else if (!IsConnected(request.query)) {
    reject_reason = "query graph must be connected";
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
    if (reject_reason.empty() && shutdown_) {
      reject_reason = "service is shut down";
    }
    if (reject_reason.empty() && options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      reject_reason = "admission queue full";
    }
    if (!reject_reason.empty()) {
      ++rejected_;
    } else {
      Pending pending;
      pending.depth_at_admission = static_cast<uint32_t>(queue_.size());
      pending.submit_time_ms = NowMs();
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      max_queue_depth_seen_ = std::max(
          max_queue_depth_seen_, static_cast<uint32_t>(queue_.size()));
      lock.unlock();
      work_available_.notify_one();
      return future;
    }
  }

  MatchResponse response;
  response.status = RequestStatus::kRejected;
  response.error = reject_reason;
  promise.set_value(std::move(response));
  return future;
}

MatchResponse MatchService::Match(MatchRequest request) {
  return Submit(std::move(request)).get();
}

void MatchService::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(std::move(pending));
  }
}

void MatchService::Execute(Pending pending) {
  const double queue_ms = NowMs() - pending.submit_time_ms;

  // Every executing request holds a service-side token (the caller's when
  // provided), so Shutdown can cancel work it no longer wants.
  std::shared_ptr<std::atomic<bool>> token = pending.request.cancel;
  if (token == nullptr) token = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) token->store(true, std::memory_order_relaxed);
    inflight_tokens_.push_back(token);
  }

  MatchResponse response = Run(pending.request, queue_ms, token.get());
  response.queue_ms = queue_ms;
  response.queue_depth_at_admission = pending.depth_at_admission;
  response.service_ms = NowMs() - pending.submit_time_ms;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_tokens_.erase(
        std::find(inflight_tokens_.begin(), inflight_tokens_.end(), token));
    switch (response.status) {
      case RequestStatus::kOk:
        ++completed_;
        break;
      case RequestStatus::kTimedOut:
        ++timed_out_;
        break;
      case RequestStatus::kCancelled:
        ++cancelled_;
        break;
      case RequestStatus::kRejected:
        ++rejected_;
        break;
    }
    total_matches_ += response.engine.match_count;
    total_queue_ms_ += queue_ms;
    total_execute_ms_ += response.service_ms - queue_ms;
  }
  pending.promise.set_value(std::move(response));
}

MatchResponse MatchService::Run(const MatchRequest& request, double queue_ms,
                                const std::atomic<bool>* cancel_token) {
  MatchResponse response;
  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
    return response;
  }

  double deadline_ms = request.deadline_ms > 0.0
                           ? request.deadline_ms
                           : options_.default_deadline_ms;
  if (deadline_ms > 0.0 && queue_ms >= deadline_ms) {
    // Expired while queued: the exit-3-style overload path — the request
    // never executes, so overload costs only a dequeue per casualty.
    response.status = RequestStatus::kTimedOut;
    return response;
  }

  MatchOptions options = request.options;
  options.collector = nullptr;  // per-request collectors are not supported
  options.cancel_flag = cancel_token;
  if (deadline_ms > 0.0) {
    options.time_limit_ms =
        std::min(options.time_limit_ms, deadline_ms - queue_ms);
  }

  // Plan: cache when enabled, build-and-discard otherwise. The cache key is
  // computed from the effective options, whose run-only knobs the encoding
  // ignores.
  std::shared_ptr<const MatchPlan> plan;
  const bool cache_enabled = plan_cache_.memory_budget_bytes() > 0;
  std::string key;
  if (cache_enabled) {
    key = PlanCache::MakeKey(request.query, options);
    plan = plan_cache_.Lookup(key);
    response.plan_cache_hit = plan != nullptr;
  }
  if (plan == nullptr) {
    auto built = BuildMatchPlan(request.query, data_, options);
    plan = cache_enabled ? plan_cache_.Insert(key, std::move(built))
                         : std::shared_ptr<const MatchPlan>(std::move(built));
  }

  MatchCallback callback;
  if (request.collect_embeddings) {
    callback = [&response](std::span<const Vertex> mapping) {
      response.embeddings.emplace_back(mapping.begin(), mapping.end());
      return true;
    };
  }

  // A cache hit did no preprocessing, so its result reports none.
  response.engine =
      ExecutePlan(request.query, data_, *plan, options, callback,
                  /*include_build_metrics=*/!response.plan_cache_hit);

  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
  } else if (response.engine.enumerate.timed_out) {
    response.status = RequestStatus::kTimedOut;
  }
  return response;
}

ServiceStats MatchService::Stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.timed_out = timed_out_;
    stats.cancelled = cancelled_;
    stats.rejected = rejected_;
    stats.total_matches = total_matches_;
    stats.total_queue_ms = total_queue_ms_;
    stats.total_execute_ms = total_execute_ms_;
    stats.queue_depth = static_cast<uint32_t>(queue_.size());
    stats.max_queue_depth = max_queue_depth_seen_;
  }
  stats.plan_cache = plan_cache_.Stats();
  return stats;
}

void MatchService::Shutdown() {
  std::deque<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && queue_.empty() && workers_.empty()) return;
    shutdown_ = true;
    for (const auto& token : inflight_tokens_) {
      token->store(true, std::memory_order_relaxed);
    }
    drained.swap(queue_);
    cancelled_ += drained.size();
  }
  work_available_.notify_all();
  for (Pending& pending : drained) {
    MatchResponse response;
    response.status = RequestStatus::kCancelled;
    response.error = "service shut down before execution";
    response.queue_depth_at_admission = pending.depth_at_admission;
    response.queue_ms = NowMs() - pending.submit_time_ms;
    response.service_ms = response.queue_ms;
    pending.promise.set_value(std::move(response));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

obs::RunReport BuildServedRunReport(const Graph& query, const Graph& data,
                                    const MatchRequest& request,
                                    const MatchResponse& response) {
  obs::RunReport report =
      obs::BuildRunReport(query, data, request.options, response.engine);
  report.served = true;
  report.plan_cache_hit = response.plan_cache_hit;
  report.queue_ms = response.queue_ms;
  report.queue_depth = response.queue_depth_at_admission;
  report.request_status = RequestStatusName(response.status);
  return report;
}

}  // namespace sgm::service
