#include "sgm/service/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sgm/graph/graph_utils.h"
#include "sgm/plan.h"
#include "sgm/util/timer.h"

namespace sgm::service {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimedOut:
      return "timeout";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

MatchService::MatchService(Graph data, const ServiceOptions& options)
    : options_(options),
      data_(std::move(data)),
      sharded_(options.shards > 1
                   ? std::make_unique<const shard::ShardedGraph>(
                         data_, options.shards, options.shard_partitioner)
                   : nullptr),
      plan_cache_(PlanCacheOptions{options.plan_cache_budget_bytes}),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::MetricsRegistry::Default()),
      epoch_(std::chrono::steady_clock::now()) {
  uint32_t workers = options_.worker_count;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }

  // Resolve every series once; the request path only touches the cached
  // pointers (a few relaxed atomic RMWs per request — docs/API.md lists
  // the series and DESIGN.md §12 the model).
  obs::MetricsRegistry& reg = *metrics_;
  const char* kRequestsHelp =
      "Served requests by terminal status (admission rejects included).";
  instruments_.requests_ok =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "ok"}});
  instruments_.requests_timeout =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "timeout"}});
  instruments_.requests_cancelled =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "cancelled"}});
  instruments_.requests_rejected =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "rejected"}});
  instruments_.admission_rejects = reg.GetCounter(
      "sgm_service_admission_rejects_total",
      "Requests rejected because the admission queue was full.");
  instruments_.deadline_expired_in_queue = reg.GetCounter(
      "sgm_service_deadline_expired_in_queue_total",
      "Requests whose deadline expired while queued (never executed).");
  instruments_.matches = reg.GetCounter(
      "sgm_service_matches_total", "Embeddings found across all requests.");
  instruments_.slow_queries = reg.GetCounter(
      "sgm_service_slow_queries_total",
      "Requests at or above the slow-query threshold.");
  instruments_.plan_cache_hits = reg.GetCounter(
      "sgm_service_plan_cache_hits_total", "Plan cache lookup hits.");
  instruments_.plan_cache_misses = reg.GetCounter(
      "sgm_service_plan_cache_misses_total", "Plan cache lookup misses.");
  instruments_.plan_cache_evictions = reg.GetCounter(
      "sgm_service_plan_cache_evictions_total",
      "Plans evicted by the LRU policy to stay under the memory budget.");
  instruments_.plan_cache_rejected = reg.GetCounter(
      "sgm_service_plan_cache_rejected_total",
      "Plan inserts dropped because one plan exceeds the whole budget.");
  instruments_.plan_cache_entries = reg.GetGauge(
      "sgm_service_plan_cache_entries", "Plans resident in the cache.");
  instruments_.plan_cache_bytes = reg.GetGauge(
      "sgm_service_plan_cache_bytes", "Memory charged to cached plans.");
  instruments_.inflight = reg.GetGauge(
      "sgm_service_inflight_requests", "Requests executing right now.");
  instruments_.queue_depth = reg.GetGauge(
      "sgm_service_queue_depth", "Requests waiting in the admission queue.");
  instruments_.queue_ms = reg.GetHistogram(
      "sgm_service_queue_ms",
      "Time from Submit() to a worker picking the request up.");
  instruments_.execute_ms = reg.GetHistogram(
      "sgm_service_execute_ms",
      "Time a worker spent executing the request (excludes queueing).");
  instruments_.request_ms = reg.GetHistogram(
      "sgm_service_request_ms",
      "Total time from Submit() to the terminal status (queue + execute).");
  instruments_.worker_busy_us.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    instruments_.worker_busy_us.push_back(reg.GetCounter(
        "sgm_service_worker_busy_us_total",
        "Thread-CPU microseconds each worker spent executing requests.",
        {{"worker", std::to_string(w)}}));
  }

  workers_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

MatchService::~MatchService() { Shutdown(); }

double MatchService::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::future<MatchResponse> MatchService::Submit(MatchRequest request) {
  std::promise<MatchResponse> promise;
  std::future<MatchResponse> future = promise.get_future();

  // Admission-time validation: reject malformed queries before they cost a
  // queue slot, with a reason a caller can act on.
  std::string reject_reason;
  if (request.query.vertex_count() < 1 ||
      request.query.vertex_count() > kMaxQueryVertices) {
    reject_reason = "query size out of supported range [1, 64]";
  } else if (!IsConnected(request.query)) {
    reject_reason = "query graph must be connected";
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
    if (reject_reason.empty() && shutdown_) {
      reject_reason = "service is shut down";
    }
    if (reject_reason.empty() && options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      reject_reason = "admission queue full";
    }
    if (!reject_reason.empty()) {
      ++rejected_;
    } else {
      Pending pending;
      pending.depth_at_admission = static_cast<uint32_t>(queue_.size());
      pending.submit_time_ms = NowMs();
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      max_queue_depth_seen_ = std::max(
          max_queue_depth_seen_, static_cast<uint32_t>(queue_.size()));
      instruments_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
      lock.unlock();
      work_available_.notify_one();
      return future;
    }
  }

  instruments_.requests_rejected->Increment();
  if (reject_reason == "admission queue full") {
    instruments_.admission_rejects->Increment();
  }
  MatchResponse response;
  response.status = RequestStatus::kRejected;
  response.error = reject_reason;
  promise.set_value(std::move(response));
  return future;
}

MatchResponse MatchService::Match(MatchRequest request) {
  return Submit(std::move(request)).get();
}

void MatchService::WorkerLoop(uint32_t worker_index) {
  obs::Counter* busy_us = instruments_.worker_busy_us[worker_index];
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      pending = std::move(queue_.front());
      queue_.pop_front();
      instruments_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    ThreadCpuTimer cpu_timer;
    Execute(std::move(pending));
    busy_us->Increment(static_cast<uint64_t>(
        std::max<int64_t>(0, cpu_timer.ElapsedNanos() / 1000)));
  }
}

void MatchService::Execute(Pending pending) {
  const double queue_ms = NowMs() - pending.submit_time_ms;

  // Every executing request holds a service-side token (the caller's when
  // provided), so Shutdown can cancel work it no longer wants.
  std::shared_ptr<std::atomic<bool>> token = pending.request.cancel;
  if (token == nullptr) token = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) token->store(true, std::memory_order_relaxed);
    inflight_tokens_.push_back(token);
  }
  instruments_.inflight->Add(1);

  MatchResponse response = Run(pending.request, queue_ms, token.get());
  response.queue_ms = queue_ms;
  response.queue_depth_at_admission = pending.depth_at_admission;
  response.service_ms = NowMs() - pending.submit_time_ms;

  obs::Counter* status_counter = instruments_.requests_rejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_tokens_.erase(
        std::find(inflight_tokens_.begin(), inflight_tokens_.end(), token));
    switch (response.status) {
      case RequestStatus::kOk:
        ++completed_;
        status_counter = instruments_.requests_ok;
        break;
      case RequestStatus::kTimedOut:
        ++timed_out_;
        status_counter = instruments_.requests_timeout;
        break;
      case RequestStatus::kCancelled:
        ++cancelled_;
        status_counter = instruments_.requests_cancelled;
        break;
      case RequestStatus::kRejected:
        ++rejected_;
        break;
    }
    total_matches_ += response.engine.match_count;
    total_queue_ms_ += queue_ms;
    total_execute_ms_ += response.service_ms - queue_ms;
    SyncPlanCacheMetricsLocked();
  }
  instruments_.inflight->Add(-1);
  status_counter->Increment();
  instruments_.matches->Increment(response.engine.match_count);
  instruments_.queue_ms->Record(queue_ms);
  instruments_.execute_ms->Record(response.service_ms - queue_ms);
  instruments_.request_ms->Record(response.service_ms);
  MaybeLogSlowQuery(pending.request, response);
  pending.promise.set_value(std::move(response));
}

void MatchService::SyncPlanCacheMetricsLocked() {
  const PlanCacheStats now = plan_cache_.Stats();
  instruments_.plan_cache_hits->Increment(now.hits - cache_stats_seen_.hits);
  instruments_.plan_cache_misses->Increment(now.misses -
                                            cache_stats_seen_.misses);
  instruments_.plan_cache_evictions->Increment(now.evictions -
                                               cache_stats_seen_.evictions);
  instruments_.plan_cache_rejected->Increment(now.rejected -
                                              cache_stats_seen_.rejected);
  instruments_.plan_cache_entries->Set(static_cast<int64_t>(now.entries));
  instruments_.plan_cache_bytes->Set(static_cast<int64_t>(now.memory_bytes));
  cache_stats_seen_ = now;
}

void MatchService::MaybeLogSlowQuery(const MatchRequest& request,
                                     const MatchResponse& response) {
  obs::SlowQueryLog* log = options_.slow_query_log;
  if (log == nullptr || response.service_ms < log->threshold_ms()) return;
  instruments_.slow_queries->Increment();

  obs::SlowQueryRecord record;
  record.unix_time_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  record.status = RequestStatusName(response.status);
  record.threshold_ms = log->threshold_ms();
  record.service_ms = response.service_ms;
  record.queue_ms = response.queue_ms;
  record.execute_ms = response.service_ms - response.queue_ms;
  record.plan_cache_hit = response.plan_cache_hit;
  record.query_vertices = request.query.vertex_count();
  record.query_edges = request.query.edge_count();
  record.match_count = response.engine.match_count;
  record.recursion_calls = response.engine.enumerate.recursion_calls;
  record.local_candidates_scanned =
      response.engine.enumerate.local_candidates_scanned;
  record.failing_set_prunes = response.engine.enumerate.failing_set_prunes;
  record.bitmap_intersections =
      response.engine.enumerate.bitmap_intersections;
  record.lc_cache_hits = response.engine.enumerate.lc_cache_hits;
  record.lc_cache_misses = response.engine.enumerate.lc_cache_misses;
  record.timed_out = response.engine.enumerate.timed_out;
  record.reached_match_limit = response.engine.enumerate.reached_match_limit;
  if (log->embed_reproducer()) {
    record.reproducer =
        obs::BuildSlowQueryReproducer(request.query, data_, request.options);
  }
  log->Append(record);
}

MatchResponse MatchService::Run(const MatchRequest& request, double queue_ms,
                                const std::atomic<bool>* cancel_token) {
  MatchResponse response;
  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
    return response;
  }

  double deadline_ms = request.deadline_ms > 0.0
                           ? request.deadline_ms
                           : options_.default_deadline_ms;
  if (deadline_ms > 0.0 && queue_ms >= deadline_ms) {
    // Expired while queued: the exit-3-style overload path — the request
    // never executes, so overload costs only a dequeue per casualty.
    instruments_.deadline_expired_in_queue->Increment();
    response.status = RequestStatus::kTimedOut;
    return response;
  }

  MatchOptions options = request.options;
  options.collector = nullptr;  // per-request collectors are not supported
  options.cancel_flag = cancel_token;
  if (deadline_ms > 0.0) {
    options.time_limit_ms =
        std::min(options.time_limit_ms, deadline_ms - queue_ms);
  }

  MatchCallback sharded_callback;
  if (sharded_ != nullptr) {
    // Sharded execution bypasses the plan cache (per-shard plan caching is
    // future work): build the shard plans, run all passes under the shared
    // gate, and report the per-pass breakdown on the response.
    options.shards = 0;  // the executor owns the split; avoid re-dispatch
    if (request.collect_embeddings) {
      sharded_callback = [&response](std::span<const Vertex> mapping) {
        response.embeddings.emplace_back(mapping.begin(), mapping.end());
        return true;
      };
    }
    ShardedMatchResult sharded = ShardedMatchQuery(
        request.query, *sharded_, options, sharded_callback);
    response.engine = std::move(sharded.result);
    response.sharding = std::move(sharded.sharding);
    if (cancel_token->load(std::memory_order_relaxed)) {
      response.status = RequestStatus::kCancelled;
    } else if (response.engine.enumerate.timed_out) {
      response.status = RequestStatus::kTimedOut;
    }
    return response;
  }

  // Plan: cache when enabled, build-and-discard otherwise. The cache key is
  // computed from the effective options, whose run-only knobs the encoding
  // ignores.
  std::shared_ptr<const MatchPlan> plan;
  const bool cache_enabled = plan_cache_.memory_budget_bytes() > 0;
  std::string key;
  if (cache_enabled) {
    key = PlanCache::MakeKey(request.query, options);
    plan = plan_cache_.Lookup(key);
    response.plan_cache_hit = plan != nullptr;
  }
  if (plan == nullptr) {
    auto built = BuildMatchPlan(request.query, data_, options);
    plan = cache_enabled ? plan_cache_.Insert(key, std::move(built))
                         : std::shared_ptr<const MatchPlan>(std::move(built));
  }

  MatchCallback callback;
  if (request.collect_embeddings) {
    callback = [&response](std::span<const Vertex> mapping) {
      response.embeddings.emplace_back(mapping.begin(), mapping.end());
      return true;
    };
  }

  // A cache hit did no preprocessing, so its result reports none.
  response.engine =
      ExecutePlan(request.query, data_, *plan, options, callback,
                  /*include_build_metrics=*/!response.plan_cache_hit);

  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
  } else if (response.engine.enumerate.timed_out) {
    response.status = RequestStatus::kTimedOut;
  }
  return response;
}

ServiceStats MatchService::Stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.timed_out = timed_out_;
    stats.cancelled = cancelled_;
    stats.rejected = rejected_;
    stats.total_matches = total_matches_;
    stats.total_queue_ms = total_queue_ms_;
    stats.total_execute_ms = total_execute_ms_;
    stats.queue_depth = static_cast<uint32_t>(queue_.size());
    stats.max_queue_depth = max_queue_depth_seen_;
  }
  stats.plan_cache = plan_cache_.Stats();
  return stats;
}

void MatchService::Shutdown() {
  std::deque<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && queue_.empty() && workers_.empty()) return;
    shutdown_ = true;
    for (const auto& token : inflight_tokens_) {
      token->store(true, std::memory_order_relaxed);
    }
    drained.swap(queue_);
    cancelled_ += drained.size();
    instruments_.queue_depth->Set(0);
    SyncPlanCacheMetricsLocked();
  }
  instruments_.requests_cancelled->Increment(drained.size());
  work_available_.notify_all();
  for (Pending& pending : drained) {
    MatchResponse response;
    response.status = RequestStatus::kCancelled;
    response.error = "service shut down before execution";
    response.queue_depth_at_admission = pending.depth_at_admission;
    response.queue_ms = NowMs() - pending.submit_time_ms;
    response.service_ms = response.queue_ms;
    pending.promise.set_value(std::move(response));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

obs::RunReport BuildServedRunReport(const Graph& query, const Graph& data,
                                    const MatchRequest& request,
                                    const MatchResponse& response,
                                    const obs::MetricsRegistry* metrics) {
  obs::RunReport report;
  if (response.sharding.shard_count > 0) {
    ShardedMatchResult sharded;
    sharded.result = response.engine;
    sharded.sharding = response.sharding;
    report = obs::BuildRunReport(query, data, request.options, sharded);
  } else {
    report = obs::BuildRunReport(query, data, request.options, response.engine);
  }
  report.served = true;
  report.plan_cache_hit = response.plan_cache_hit;
  report.queue_ms = response.queue_ms;
  report.queue_depth = response.queue_depth_at_admission;
  report.request_status = RequestStatusName(response.status);
  if (metrics != nullptr) report.service_metrics = metrics->ToJson();
  return report;
}

}  // namespace sgm::service
