#include "sgm/service/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sgm/graph/graph_utils.h"
#include "sgm/plan.h"
#include "sgm/util/timer.h"

namespace sgm::service {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimedOut:
      return "timeout";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

MatchService::MatchService(Graph data, const ServiceOptions& options)
    : options_(options),
      dynamic_(std::move(data)),
      continuous_(&dynamic_),
      snapshot_(dynamic_.SnapshotShared()),
      plan_cache_(PlanCacheOptions{options.plan_cache_budget_bytes}),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::MetricsRegistry::Default()),
      epoch_(std::chrono::steady_clock::now()) {
  if (options.shards > 1) {
    // Shards reference *snapshot_, which a sharded service never replaces
    // (ApplyUpdates rejects).
    sharded_ = std::make_unique<const shard::ShardedGraph>(
        *snapshot_, options.shards, options.shard_partitioner);
  }
  uint32_t workers = options_.worker_count;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }

  // Resolve every series once; the request path only touches the cached
  // pointers (a few relaxed atomic RMWs per request — docs/API.md lists
  // the series and DESIGN.md §12 the model).
  obs::MetricsRegistry& reg = *metrics_;
  const char* kRequestsHelp =
      "Served requests by terminal status (admission rejects included).";
  instruments_.requests_ok =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "ok"}});
  instruments_.requests_timeout =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "timeout"}});
  instruments_.requests_cancelled =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "cancelled"}});
  instruments_.requests_rejected =
      reg.GetCounter("sgm_service_requests_total", kRequestsHelp,
                     {{"status", "rejected"}});
  instruments_.admission_rejects = reg.GetCounter(
      "sgm_service_admission_rejects_total",
      "Requests rejected because the admission queue was full.");
  instruments_.deadline_expired_in_queue = reg.GetCounter(
      "sgm_service_deadline_expired_in_queue_total",
      "Requests whose deadline expired while queued (never executed).");
  instruments_.matches = reg.GetCounter(
      "sgm_service_matches_total", "Embeddings found across all requests.");
  instruments_.slow_queries = reg.GetCounter(
      "sgm_service_slow_queries_total",
      "Requests at or above the slow-query threshold.");
  instruments_.plan_cache_hits = reg.GetCounter(
      "sgm_service_plan_cache_hits_total", "Plan cache lookup hits.");
  instruments_.plan_cache_misses = reg.GetCounter(
      "sgm_service_plan_cache_misses_total", "Plan cache lookup misses.");
  instruments_.plan_cache_evictions = reg.GetCounter(
      "sgm_service_plan_cache_evictions_total",
      "Plans evicted by the LRU policy to stay under the memory budget.");
  instruments_.plan_cache_rejected = reg.GetCounter(
      "sgm_service_plan_cache_rejected_total",
      "Plan inserts dropped because one plan exceeds the whole budget.");
  instruments_.plan_cache_entries = reg.GetGauge(
      "sgm_service_plan_cache_entries", "Plans resident in the cache.");
  instruments_.plan_cache_bytes = reg.GetGauge(
      "sgm_service_plan_cache_bytes", "Memory charged to cached plans.");
  instruments_.update_batches = reg.GetCounter(
      "sgm_service_update_batches_total",
      "Update batches applied to the data graph.");
  instruments_.update_ops = reg.GetCounter(
      "sgm_service_update_ops_total",
      "Primitive graph mutations applied across all update batches.");
  instruments_.delta_additions = reg.GetCounter(
      "sgm_service_delta_additions_total",
      "Continuous-query match additions reported across all batches.");
  instruments_.delta_retractions = reg.GetCounter(
      "sgm_service_delta_retractions_total",
      "Continuous-query match retractions reported across all batches.");
  instruments_.graph_epoch = reg.GetGauge(
      "sgm_service_graph_epoch",
      "Current data-graph epoch (applied update batches).");
  instruments_.inflight = reg.GetGauge(
      "sgm_service_inflight_requests", "Requests executing right now.");
  instruments_.queue_depth = reg.GetGauge(
      "sgm_service_queue_depth", "Requests waiting in the admission queue.");
  instruments_.queue_ms = reg.GetHistogram(
      "sgm_service_queue_ms",
      "Time from Submit() to a worker picking the request up.");
  instruments_.execute_ms = reg.GetHistogram(
      "sgm_service_execute_ms",
      "Time a worker spent executing the request (excludes queueing).");
  instruments_.request_ms = reg.GetHistogram(
      "sgm_service_request_ms",
      "Total time from Submit() to the terminal status (queue + execute).");
  instruments_.worker_busy_us.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    instruments_.worker_busy_us.push_back(reg.GetCounter(
        "sgm_service_worker_busy_us_total",
        "Thread-CPU microseconds each worker spent executing requests.",
        {{"worker", std::to_string(w)}}));
  }

  workers_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

MatchService::~MatchService() { Shutdown(); }

double MatchService::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::future<MatchResponse> MatchService::Submit(MatchRequest request) {
  std::promise<MatchResponse> promise;
  std::future<MatchResponse> future = promise.get_future();

  // Admission-time validation: reject malformed queries before they cost a
  // queue slot, with a reason a caller can act on.
  std::string reject_reason;
  if (request.query.vertex_count() < 1 ||
      request.query.vertex_count() > kMaxQueryVertices) {
    reject_reason = "query size out of supported range [1, 64]";
  } else if (!IsConnected(request.query)) {
    reject_reason = "query graph must be connected";
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
    if (reject_reason.empty() && shutdown_) {
      reject_reason = "service is shut down";
    }
    if (reject_reason.empty() && options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      reject_reason = "admission queue full";
    }
    if (!reject_reason.empty()) {
      ++rejected_;
    } else {
      Pending pending;
      pending.depth_at_admission = static_cast<uint32_t>(queue_.size());
      pending.submit_time_ms = NowMs();
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      max_queue_depth_seen_ = std::max(
          max_queue_depth_seen_, static_cast<uint32_t>(queue_.size()));
      instruments_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
      lock.unlock();
      work_available_.notify_one();
      return future;
    }
  }

  instruments_.requests_rejected->Increment();
  if (reject_reason == "admission queue full") {
    instruments_.admission_rejects->Increment();
  }
  MatchResponse response;
  response.status = RequestStatus::kRejected;
  response.error = reject_reason;
  promise.set_value(std::move(response));
  return future;
}

MatchResponse MatchService::Match(MatchRequest request) {
  return Submit(std::move(request)).get();
}

void MatchService::WorkerLoop(uint32_t worker_index) {
  obs::Counter* busy_us = instruments_.worker_busy_us[worker_index];
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      pending = std::move(queue_.front());
      queue_.pop_front();
      instruments_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    ThreadCpuTimer cpu_timer;
    Execute(std::move(pending));
    busy_us->Increment(static_cast<uint64_t>(
        std::max<int64_t>(0, cpu_timer.ElapsedNanos() / 1000)));
  }
}

void MatchService::Execute(Pending pending) {
  const double queue_ms = NowMs() - pending.submit_time_ms;

  // Every executing request holds a service-side token (the caller's when
  // provided), so Shutdown can cancel work it no longer wants.
  std::shared_ptr<std::atomic<bool>> token = pending.request.cancel;
  if (token == nullptr) token = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) token->store(true, std::memory_order_relaxed);
    inflight_tokens_.push_back(token);
  }
  instruments_.inflight->Add(1);

  // Pin the graph this request executes against: enumeration reads an
  // immutable snapshot, so concurrent ApplyUpdates never race it.
  const GraphView view = CurrentView();
  MatchResponse response = Run(pending.request, queue_ms, token.get(), view);
  response.queue_ms = queue_ms;
  response.queue_depth_at_admission = pending.depth_at_admission;
  response.service_ms = NowMs() - pending.submit_time_ms;

  obs::Counter* status_counter = instruments_.requests_rejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_tokens_.erase(
        std::find(inflight_tokens_.begin(), inflight_tokens_.end(), token));
    switch (response.status) {
      case RequestStatus::kOk:
        ++completed_;
        status_counter = instruments_.requests_ok;
        break;
      case RequestStatus::kTimedOut:
        ++timed_out_;
        status_counter = instruments_.requests_timeout;
        break;
      case RequestStatus::kCancelled:
        ++cancelled_;
        status_counter = instruments_.requests_cancelled;
        break;
      case RequestStatus::kRejected:
        ++rejected_;
        break;
    }
    total_matches_ += response.engine.match_count;
    total_queue_ms_ += queue_ms;
    total_execute_ms_ += response.service_ms - queue_ms;
    SyncPlanCacheMetricsLocked();
  }
  instruments_.inflight->Add(-1);
  status_counter->Increment();
  instruments_.matches->Increment(response.engine.match_count);
  instruments_.queue_ms->Record(queue_ms);
  instruments_.execute_ms->Record(response.service_ms - queue_ms);
  instruments_.request_ms->Record(response.service_ms);
  MaybeLogSlowQuery(pending.request, response, *view.graph);
  pending.promise.set_value(std::move(response));
}

void MatchService::SyncPlanCacheMetricsLocked() {
  const PlanCacheStats now = plan_cache_.Stats();
  instruments_.plan_cache_hits->Increment(now.hits - cache_stats_seen_.hits);
  instruments_.plan_cache_misses->Increment(now.misses -
                                            cache_stats_seen_.misses);
  instruments_.plan_cache_evictions->Increment(now.evictions -
                                               cache_stats_seen_.evictions);
  instruments_.plan_cache_rejected->Increment(now.rejected -
                                              cache_stats_seen_.rejected);
  instruments_.plan_cache_entries->Set(static_cast<int64_t>(now.entries));
  instruments_.plan_cache_bytes->Set(static_cast<int64_t>(now.memory_bytes));
  cache_stats_seen_ = now;
}

void MatchService::MaybeLogSlowQuery(const MatchRequest& request,
                                     const MatchResponse& response,
                                     const Graph& data) {
  obs::SlowQueryLog* log = options_.slow_query_log;
  if (log == nullptr || response.service_ms < log->threshold_ms()) return;
  instruments_.slow_queries->Increment();

  obs::SlowQueryRecord record;
  record.unix_time_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  record.status = RequestStatusName(response.status);
  record.threshold_ms = log->threshold_ms();
  record.service_ms = response.service_ms;
  record.queue_ms = response.queue_ms;
  record.execute_ms = response.service_ms - response.queue_ms;
  record.plan_cache_hit = response.plan_cache_hit;
  record.query_vertices = request.query.vertex_count();
  record.query_edges = request.query.edge_count();
  record.match_count = response.engine.match_count;
  record.recursion_calls = response.engine.enumerate.recursion_calls;
  record.local_candidates_scanned =
      response.engine.enumerate.local_candidates_scanned;
  record.failing_set_prunes = response.engine.enumerate.failing_set_prunes;
  record.bitmap_intersections =
      response.engine.enumerate.bitmap_intersections;
  record.lc_cache_hits = response.engine.enumerate.lc_cache_hits;
  record.lc_cache_misses = response.engine.enumerate.lc_cache_misses;
  record.timed_out = response.engine.enumerate.timed_out;
  record.reached_match_limit = response.engine.enumerate.reached_match_limit;
  if (log->embed_reproducer()) {
    record.reproducer =
        obs::BuildSlowQueryReproducer(request.query, data, request.options);
  }
  log->Append(record);
}

MatchResponse MatchService::Run(const MatchRequest& request, double queue_ms,
                                const std::atomic<bool>* cancel_token,
                                const GraphView& view) {
  const Graph& data = *view.graph;
  MatchResponse response;
  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
    return response;
  }

  double deadline_ms = request.deadline_ms > 0.0
                           ? request.deadline_ms
                           : options_.default_deadline_ms;
  if (deadline_ms > 0.0 && queue_ms >= deadline_ms) {
    // Expired while queued: the exit-3-style overload path — the request
    // never executes, so overload costs only a dequeue per casualty.
    instruments_.deadline_expired_in_queue->Increment();
    response.status = RequestStatus::kTimedOut;
    return response;
  }

  MatchOptions options = request.options;
  options.collector = nullptr;  // per-request collectors are not supported
  options.cancel_flag = cancel_token;
  if (deadline_ms > 0.0) {
    options.time_limit_ms =
        std::min(options.time_limit_ms, deadline_ms - queue_ms);
  }

  MatchCallback sharded_callback;
  if (sharded_ != nullptr) {
    // Sharded execution bypasses the plan cache (per-shard plan caching is
    // future work): build the shard plans, run all passes under the shared
    // gate, and report the per-pass breakdown on the response.
    options.shards = 0;  // the executor owns the split; avoid re-dispatch
    if (request.collect_embeddings) {
      sharded_callback = [&response](std::span<const Vertex> mapping) {
        response.embeddings.emplace_back(mapping.begin(), mapping.end());
        return true;
      };
    }
    ShardedMatchResult sharded = ShardedMatchQuery(
        request.query, *sharded_, options, sharded_callback);
    response.engine = std::move(sharded.result);
    response.sharding = std::move(sharded.sharding);
    if (cancel_token->load(std::memory_order_relaxed)) {
      response.status = RequestStatus::kCancelled;
    } else if (response.engine.enumerate.timed_out) {
      response.status = RequestStatus::kTimedOut;
    }
    return response;
  }

  // Plan: cache when enabled, build-and-discard otherwise. The cache key is
  // computed from the effective options, whose run-only knobs the encoding
  // ignores.
  std::shared_ptr<const MatchPlan> plan;
  const bool cache_enabled = plan_cache_.memory_budget_bytes() > 0;
  std::string key;
  if (cache_enabled) {
    key = PlanCache::MakeKey(request.query, options, view.epoch);
    plan = plan_cache_.Lookup(key);
    response.plan_cache_hit = plan != nullptr;
  }
  if (plan == nullptr) {
    auto built = BuildMatchPlan(request.query, data, options);
    plan = cache_enabled ? plan_cache_.Insert(key, std::move(built))
                         : std::shared_ptr<const MatchPlan>(std::move(built));
  }

  MatchCallback callback;
  if (request.collect_embeddings) {
    callback = [&response](std::span<const Vertex> mapping) {
      response.embeddings.emplace_back(mapping.begin(), mapping.end());
      return true;
    };
  }

  // A cache hit did no preprocessing, so its result reports none.
  response.engine =
      ExecutePlan(request.query, data, *plan, options, callback,
                  /*include_build_metrics=*/!response.plan_cache_hit);

  if (cancel_token->load(std::memory_order_relaxed)) {
    response.status = RequestStatus::kCancelled;
  } else if (response.engine.enumerate.timed_out) {
    response.status = RequestStatus::kTimedOut;
  }
  return response;
}

MatchService::GraphView MatchService::CurrentView() {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  if (snapshot_epoch_ != dynamic_.epoch()) {
    // Lazy compaction: ApplyUpdates never merges the overlay, so the first
    // request after a batch pays the CSR rebuild once and every later
    // request shares the result.
    dynamic_.Compact();
    snapshot_ = dynamic_.SnapshotShared();
    snapshot_epoch_ = dynamic_.epoch();
    dynamic_stats_.compactions = dynamic_.compactions();
    dynamic_stats_.overlay_bytes = dynamic_.OverlayMemoryBytes();
  }
  return {snapshot_, snapshot_epoch_};
}

UpdateReport MatchService::ApplyUpdates(const dynamic::UpdateBatch& batch) {
  UpdateReport report;
  if (sharded_ != nullptr) {
    report.error =
        "sharded services do not accept updates (shards are built at "
        "construction)";
    return report;
  }

  std::string error;
  std::optional<dynamic::BatchResult> result;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    result = continuous_.ApplyBatch(batch, &error);
    if (result.has_value()) {
      dynamic_stats_.graph_epoch = result->epoch;
      ++dynamic_stats_.update_batches;
      dynamic_stats_.update_ops += result->ops_applied;
      dynamic_stats_.update_apply_ms += result->apply_ms;
      dynamic_stats_.delta_enumerate_ms += result->enumerate_ms;
      for (const dynamic::MatchDelta& delta : result->deltas) {
        dynamic_stats_.delta_additions += delta.additions;
        dynamic_stats_.delta_retractions += delta.retractions;
        dynamic_stats_.candidates_repaired += delta.candidates_repaired;
      }
      dynamic_stats_.compactions = dynamic_.compactions();
      dynamic_stats_.overlay_bytes = dynamic_.OverlayMemoryBytes();
      dynamic_stats_.continuous_queries = continuous_.registration_count();
    }
  }
  if (!result.has_value()) {
    report.error = error;
    return report;
  }

  uint64_t additions = 0;
  uint64_t retractions = 0;
  for (const dynamic::MatchDelta& delta : result->deltas) {
    additions += delta.additions;
    retractions += delta.retractions;
  }
  instruments_.update_batches->Increment();
  instruments_.update_ops->Increment(result->ops_applied);
  instruments_.delta_additions->Increment(additions);
  instruments_.delta_retractions->Increment(retractions);
  instruments_.graph_epoch->Set(static_cast<int64_t>(result->epoch));

  report.applied = true;
  report.epoch = result->epoch;
  report.ops_applied = result->ops_applied;
  report.apply_ms = result->apply_ms;
  report.enumerate_ms = result->enumerate_ms;
  report.deltas = std::move(result->deltas);
  return report;
}

uint64_t MatchService::RegisterContinuousQuery(Graph query,
                                               std::string* error) {
  if (sharded_ != nullptr) {
    if (error != nullptr) {
      *error = "sharded services do not accept continuous queries";
    }
    return 0;
  }
  std::lock_guard<std::mutex> lock(graph_mutex_);
  const uint64_t id = continuous_.Register(std::move(query), error);
  dynamic_stats_.continuous_queries = continuous_.registration_count();
  return id;
}

bool MatchService::UnregisterContinuousQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  const bool removed = continuous_.Unregister(query_id);
  dynamic_stats_.continuous_queries = continuous_.registration_count();
  return removed;
}

uint64_t MatchService::graph_epoch() const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  return dynamic_.epoch();
}

ServiceDynamicStats MatchService::DynamicStats() const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  ServiceDynamicStats stats = dynamic_stats_;
  stats.graph_epoch = dynamic_.epoch();
  stats.compactions = dynamic_.compactions();
  stats.overlay_bytes = dynamic_.OverlayMemoryBytes();
  stats.continuous_queries = continuous_.registration_count();
  return stats;
}

ServiceStats MatchService::Stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.timed_out = timed_out_;
    stats.cancelled = cancelled_;
    stats.rejected = rejected_;
    stats.total_matches = total_matches_;
    stats.total_queue_ms = total_queue_ms_;
    stats.total_execute_ms = total_execute_ms_;
    stats.queue_depth = static_cast<uint32_t>(queue_.size());
    stats.max_queue_depth = max_queue_depth_seen_;
  }
  stats.plan_cache = plan_cache_.Stats();
  return stats;
}

void MatchService::Shutdown() {
  std::deque<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && queue_.empty() && workers_.empty()) return;
    shutdown_ = true;
    for (const auto& token : inflight_tokens_) {
      token->store(true, std::memory_order_relaxed);
    }
    drained.swap(queue_);
    cancelled_ += drained.size();
    instruments_.queue_depth->Set(0);
    SyncPlanCacheMetricsLocked();
  }
  instruments_.requests_cancelled->Increment(drained.size());
  work_available_.notify_all();
  for (Pending& pending : drained) {
    MatchResponse response;
    response.status = RequestStatus::kCancelled;
    response.error = "service shut down before execution";
    response.queue_depth_at_admission = pending.depth_at_admission;
    response.queue_ms = NowMs() - pending.submit_time_ms;
    response.service_ms = response.queue_ms;
    pending.promise.set_value(std::move(response));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

obs::RunReport BuildServedRunReport(const Graph& query, const Graph& data,
                                    const MatchRequest& request,
                                    const MatchResponse& response,
                                    const obs::MetricsRegistry* metrics,
                                    const ServiceDynamicStats* dynamic_stats) {
  obs::RunReport report;
  if (response.sharding.shard_count > 0) {
    ShardedMatchResult sharded;
    sharded.result = response.engine;
    sharded.sharding = response.sharding;
    report = obs::BuildRunReport(query, data, request.options, sharded);
  } else {
    report = obs::BuildRunReport(query, data, request.options, response.engine);
  }
  report.served = true;
  report.plan_cache_hit = response.plan_cache_hit;
  report.queue_ms = response.queue_ms;
  report.queue_depth = response.queue_depth_at_admission;
  report.request_status = RequestStatusName(response.status);
  if (metrics != nullptr) report.service_metrics = metrics->ToJson();
  if (dynamic_stats != nullptr) {
    report.dynamic_enabled = true;
    report.graph_epoch = dynamic_stats->graph_epoch;
    report.update_batches = dynamic_stats->update_batches;
    report.update_ops = dynamic_stats->update_ops;
    report.delta_additions = dynamic_stats->delta_additions;
    report.delta_retractions = dynamic_stats->delta_retractions;
    report.candidates_repaired = dynamic_stats->candidates_repaired;
    report.graph_compactions = dynamic_stats->compactions;
    report.overlay_bytes = dynamic_stats->overlay_bytes;
    report.update_apply_ms = dynamic_stats->update_apply_ms;
    report.delta_enumerate_ms = dynamic_stats->delta_enumerate_ms;
    report.continuous_queries = dynamic_stats->continuous_queries;
  }
  return report;
}

}  // namespace sgm::service
