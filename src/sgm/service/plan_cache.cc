#include "sgm/service/plan_cache.h"

#include <utility>

#include "sgm/core/aux_structure.h"

namespace sgm::service {

namespace {

void AppendNumber(std::string* out, uint64_t value) {
  char buffer[24];
  int length = 0;
  do {
    buffer[length++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (length > 0) out->push_back(buffer[--length]);
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) : options_(options) {}

std::string PlanCache::EncodeQuery(const Graph& query) {
  std::string key;
  key.reserve(8 * query.vertex_count() + 12 * query.edge_count() + 16);
  key.push_back('v');
  AppendNumber(&key, query.vertex_count());
  key.push_back('l');
  for (Vertex v = 0; v < query.vertex_count(); ++v) {
    AppendNumber(&key, query.label(v));
    key.push_back(',');
  }
  key.push_back('e');
  // Neighbor lists are sorted (a Graph invariant), so emitting each edge
  // from its smaller endpoint yields a deterministic encoding.
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    for (Vertex v : query.neighbors(u)) {
      if (v <= u) continue;
      AppendNumber(&key, u);
      key.push_back('-');
      AppendNumber(&key, v);
      key.push_back(',');
    }
  }
  return key;
}

std::string PlanCache::EncodeOptions(const MatchOptions& options) {
  std::string key;
  key += FilterMethodName(options.filter);
  key.push_back('/');
  key += OrderMethodName(options.order);
  key.push_back('/');
  key += LocalCandidateMethodName(options.lc_method);
  key.push_back('/');
  key += AuxEdgeScopeName(options.aux_scope);
  key.push_back('/');
  key += IntersectionMethodName(options.intersection);
  key.push_back('/');
  key.push_back(options.adaptive_order ? 'a' : '-');
  key.push_back(options.postpone_degree_one ? 'p' : '-');
  // The enumeration-only flags (failing sets, VF2++ lookahead) do not shape
  // the plan, but they ride in plan.options and ExecutePlan honors them, so
  // they are part of the key: one cached plan per enumeration behavior.
  key.push_back(options.use_failing_sets ? 'f' : '-');
  key.push_back(options.vf2pp_lookahead ? 'k' : '-');
  key.push_back('/');
  AppendNumber(&key, options.bitmap_max_candidates);
  key.push_back('/');
  AppendNumber(&key, options.filter_options.graphql_refinement_rounds);
  key.push_back(':');
  AppendNumber(&key, options.filter_options.graphql_profile_radius);
  key.push_back(':');
  AppendNumber(&key, options.filter_options.dpiso_refinement_rounds);
  return key;
}

std::shared_ptr<const MatchPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

std::shared_ptr<const MatchPlan> PlanCache::Insert(
    const std::string& key, std::unique_ptr<MatchPlan> plan) {
  std::shared_ptr<const MatchPlan> shared(std::move(plan));
  const size_t bytes = shared->MemoryBytes();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a build race: another thread cached this key while we were
    // building. Keep the incumbent (equivalent by construction) so every
    // concurrent caller converges on one shared plan.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }
  if (bytes > options_.memory_budget_bytes) {
    ++rejected_;
    return shared;  // usable by the caller, just not retained
  }
  lru_.push_front(Entry{key, shared, bytes});
  index_.emplace(key, lru_.begin());
  memory_bytes_ += bytes;
  EvictToFitLocked();
  return shared;
}

void PlanCache::EvictToFitLocked() {
  while (memory_bytes_ > options_.memory_budget_bytes && !lru_.empty()) {
    Entry& victim = lru_.back();
    memory_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  memory_bytes_ = 0;
}

PlanCacheStats PlanCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.rejected = rejected_;
  stats.entries = lru_.size();
  stats.memory_bytes = memory_bytes_;
  return stats;
}

}  // namespace sgm::service
