// MatchService: an embeddable serving layer that owns one data graph and
// shared infrastructure (plan cache, worker pool, admission queue) and
// answers concurrent subgraph-match requests against it.
//
// Request lifecycle (docs/ARCHITECTURE.md draws the full picture):
//
//   Submit(request)
//     └─ admission: queue-depth check → FIFO queue (kRejected on overload)
//         └─ worker: deadline check (kTimedOut if it expired while queued)
//             └─ plan cache: exact-key lookup → hit: reuse plan
//                                             → miss: BuildMatchPlan + insert
//                 └─ ExecutePlan (serial engine, per-request cancel flag,
//                    remaining-deadline time limit)
//                     └─ MatchResponse through the Submit() future
//
// Concurrency model: the service owns `worker_count` threads; each request
// executes serially on exactly one of them, so K in-flight requests share
// the workers without oversubscribing cores — the same threads-as-budget
// discipline as parallel::TaskPool, applied across requests instead of
// across root candidates of one query. For single-query latency on an idle
// service, ParallelMatchQuery (which fans one query out over a TaskPool)
// remains the right tool; the service optimizes aggregate throughput.
//
// The data graph is mutable through ApplyUpdates (DESIGN.md §14): each
// batch lands atomically on a dynamic::DynamicGraph, bumps the graph
// epoch (folded into every plan-cache key, so stale plans are
// unreachable) and yields exact match deltas for registered continuous
// queries. Requests pin an immutable snapshot at execution start —
// in-flight enumeration never observes a mutation — and the first request
// after a batch compacts the overlay lazily.
//
// Cancellation is cooperative and uses MatchOptions::cancel_flag: the
// serial engine checks the request's token every 1024 recursion calls.
// Deadlines cover the whole lifecycle — time spent queued counts against
// the deadline, and a request whose deadline expires before a worker picks
// it up completes as kTimedOut without running (graceful overload: the
// queue drains at the speed of the workers, and everything past its
// deadline costs only a dequeue).
#ifndef SGM_SERVICE_SERVICE_H_
#define SGM_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sgm/dynamic/continuous.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/graph.h"
#include "sgm/matcher.h"
#include "sgm/obs/metrics.h"
#include "sgm/obs/run_report.h"
#include "sgm/obs/slow_query_log.h"
#include "sgm/service/plan_cache.h"

namespace sgm::service {

/// Terminal state of a served request. Mirrors the sgm_match exit-code
/// convention: kOk ↔ 0, kTimedOut ↔ 3; kRejected covers both admission
/// overload and invalid queries (the response's `error` says which).
enum class RequestStatus : uint8_t {
  kOk = 0,
  kTimedOut = 1,
  kCancelled = 2,
  kRejected = 3,
};

/// Short name: "ok", "timeout", "cancelled", "rejected".
const char* RequestStatusName(RequestStatus status);

/// One match request against the service's data graph.
struct MatchRequest {
  /// The query graph (copied into the request; connected, 1..64 vertices).
  Graph query;
  /// Structural options select the plan (and thus the cache key); per-run
  /// knobs (max_matches, time_limit_ms) bound this request's execution.
  /// options.collector and options.cancel_flag are ignored — use `cancel`
  /// below; per-request collectors are not supported.
  MatchOptions options;
  /// Whole-lifecycle deadline in milliseconds, measured from Submit();
  /// queueing time counts. 0 = no deadline (options.time_limit_ms still
  /// bounds the enumeration). Expired-in-queue requests finish kTimedOut
  /// without executing.
  double deadline_ms = 0.0;
  /// Optional cancellation token. Set it (from any thread) to abort the
  /// request: queued requests complete kCancelled without running, an
  /// executing request stops within ~1024 recursion calls. Null = not
  /// cancellable by the caller (the service still cancels on Shutdown).
  std::shared_ptr<std::atomic<bool>> cancel;
  /// When true, the response carries the embeddings (element i of a match
  /// is the data vertex mapped to query vertex i). Mind max_matches.
  bool collect_embeddings = false;
};

/// The service's answer to one MatchRequest.
struct MatchResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Human-readable detail for kRejected (overload vs invalid query).
  std::string error;
  /// The engine-level result. On a plan-cache hit the preprocessing times
  /// are zero — this run did no preprocessing. Partial on kTimedOut or
  /// kCancelled (matches found before the stop are counted), default-
  /// constructed on kRejected.
  MatchResult engine;
  /// Per-pass breakdown when the service runs sharded
  /// (ServiceOptions::shards > 1); shard_count == 0 on monolithic services.
  ShardedRunInfo sharding;
  /// True when the plan came out of the cache.
  bool plan_cache_hit = false;
  /// Time spent in the admission queue before a worker picked the request
  /// up, and total time from Submit() to completion.
  double queue_ms = 0.0;
  double service_ms = 0.0;
  /// Number of requests already waiting when this one was enqueued.
  uint32_t queue_depth_at_admission = 0;
  /// Embeddings, iff MatchRequest::collect_embeddings.
  std::vector<std::vector<Vertex>> embeddings;
};

/// Configuration of a MatchService.
struct ServiceOptions {
  /// Worker threads executing requests. 0 = hardware concurrency.
  uint32_t worker_count = 0;
  /// Split the data graph into this many shards at construction and answer
  /// every request through the sharded executor (plan.h). 0 or 1 =
  /// monolithic. Sharded requests bypass the plan cache — per-shard plan
  /// caching is future work — so expect build cost on every request.
  uint32_t shards = 0;
  /// Partitioner for the sharded path (ignored when shards <= 1).
  shard::Partitioner shard_partitioner = shard::Partitioner::kGreedy;
  /// Plan cache memory budget; 0 disables the cache (every request builds
  /// its plan from scratch — the baseline sgm_serve --no-cache measures).
  size_t plan_cache_budget_bytes = 256ull << 20;
  /// Admission bound: a Submit() finding this many requests already queued
  /// completes kRejected immediately. 0 = unbounded queue.
  uint32_t max_queue_depth = 0;
  /// Applied to requests that carry no deadline of their own. 0 = none.
  double default_deadline_ms = 0.0;
  /// Registry the service instruments (request/status counters, queue and
  /// execute latency histograms, plan-cache and worker series — docs/API.md
  /// lists them). nullptr = the process-wide obs::MetricsRegistry::Default();
  /// point at a local registry to isolate (tests do).
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured slow-query sink: requests whose service_ms reaches the
  /// log's threshold append one JSONL record. nullptr disables logging.
  /// The log must outlive the service.
  obs::SlowQueryLog* slow_query_log = nullptr;
};

/// Result of one MatchService::ApplyUpdates call.
struct UpdateReport {
  /// False when the batch failed validation (graph untouched) or the
  /// service does not accept updates (sharded); `error` says which.
  bool applied = false;
  std::string error;
  /// Graph epoch after the batch.
  uint64_t epoch = 0;
  uint32_t ops_applied = 0;
  /// Exact match deltas of the registered continuous queries, ascending
  /// query id (empty when none are registered).
  std::vector<dynamic::MatchDelta> deltas;
  /// Overlay mutation + candidate repair vs anchored enumeration split.
  double apply_ms = 0.0;
  double enumerate_ms = 0.0;
};

/// Cumulative dynamic-graph counters since service construction.
struct ServiceDynamicStats {
  uint64_t graph_epoch = 0;
  uint64_t update_batches = 0;
  uint64_t update_ops = 0;
  uint64_t delta_additions = 0;
  uint64_t delta_retractions = 0;
  uint64_t candidates_repaired = 0;
  uint64_t compactions = 0;
  size_t overlay_bytes = 0;
  double update_apply_ms = 0.0;
  double delta_enumerate_ms = 0.0;
  uint64_t continuous_queries = 0;
};

/// Aggregate service counters, point-in-time.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  ///< finished kOk
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  uint64_t rejected = 0;
  uint64_t total_matches = 0;
  double total_queue_ms = 0.0;
  double total_execute_ms = 0.0;
  /// Requests waiting right now / high-water mark since construction.
  uint32_t queue_depth = 0;
  uint32_t max_queue_depth = 0;
  PlanCacheStats plan_cache;
};

/// See file comment. All public methods are thread-safe.
class MatchService {
 public:
  /// Takes ownership of the data graph; workers start immediately.
  explicit MatchService(Graph data, const ServiceOptions& options = {});
  /// Cancels in-flight requests, fails queued ones and joins the workers.
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// The latest compacted snapshot of the data graph. Stable only while no
  /// ApplyUpdates call races it — single-threaded test and report code
  /// only; request execution pins its own snapshot internally.
  const Graph& data() const {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    return *snapshot_;
  }
  uint32_t worker_count() const { return static_cast<uint32_t>(workers_.size()); }
  /// Shards the service executes against; 0 when monolithic.
  uint32_t shard_count() const {
    return sharded_ != nullptr ? sharded_->shard_count() : 0;
  }

  /// Enqueues a request. The future resolves when the request reaches a
  /// terminal status — including kRejected (admission) and kTimedOut
  /// (expired while queued); Submit itself never blocks on matching work.
  std::future<MatchResponse> Submit(MatchRequest request);

  /// Synchronous convenience: Submit + wait.
  MatchResponse Match(MatchRequest request);

  /// Applies one update batch atomically to the data graph, bumping its
  /// epoch (which re-keys the plan cache — subsequent requests cannot see
  /// a stale plan) and producing the exact match delta of every registered
  /// continuous query. Requests already executing keep their pinned
  /// pre-update snapshot; requests submitted afterwards see the new graph.
  /// Sharded services reject updates (their shards are built once at
  /// construction). Thread-safe; concurrent ApplyUpdates calls serialize.
  UpdateReport ApplyUpdates(const dynamic::UpdateBatch& batch);

  /// Registers a continuous query: every subsequent ApplyUpdates reports
  /// its exact match delta. Returns the query id (> 0), or 0 with *error
  /// set when the query is rejected (see dynamic::ContinuousMatcher).
  uint64_t RegisterContinuousQuery(Graph query, std::string* error);
  /// Returns false when no such registration exists.
  bool UnregisterContinuousQuery(uint64_t query_id);

  /// Current data-graph epoch (number of applied update batches).
  uint64_t graph_epoch() const;

  ServiceStats Stats() const;
  /// Cumulative dynamic-update counters.
  ServiceDynamicStats DynamicStats() const;

  /// The registry this service instruments (never null; resolves the
  /// options' nullptr default to obs::MetricsRegistry::Default()).
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Stops accepting work, cancels executing requests (their futures
  /// resolve kCancelled), fails queued requests and joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Pending {
    MatchRequest request;
    std::promise<MatchResponse> promise;
    /// Set at Submit; queue_ms and service_ms derive from it.
    double submit_time_ms = 0.0;
    uint32_t depth_at_admission = 0;
  };

  /// The service's series in the metrics registry, resolved once at
  /// construction so the request path never pays a registry lookup.
  struct Instruments {
    /// sgm_service_requests_total{status=...}, one per terminal status.
    obs::Counter* requests_ok = nullptr;
    obs::Counter* requests_timeout = nullptr;
    obs::Counter* requests_cancelled = nullptr;
    obs::Counter* requests_rejected = nullptr;
    obs::Counter* admission_rejects = nullptr;
    obs::Counter* deadline_expired_in_queue = nullptr;
    obs::Counter* matches = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* plan_cache_misses = nullptr;
    obs::Counter* plan_cache_evictions = nullptr;
    obs::Counter* plan_cache_rejected = nullptr;
    obs::Gauge* plan_cache_entries = nullptr;
    obs::Gauge* plan_cache_bytes = nullptr;
    obs::Counter* update_batches = nullptr;
    obs::Counter* update_ops = nullptr;
    obs::Counter* delta_additions = nullptr;
    obs::Counter* delta_retractions = nullptr;
    obs::Gauge* graph_epoch = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_ms = nullptr;
    obs::Histogram* execute_ms = nullptr;
    obs::Histogram* request_ms = nullptr;
    /// sgm_service_worker_busy_us_total{worker="i"}, one per worker.
    std::vector<obs::Counter*> worker_busy_us;
  };

  /// One request's pinned view of the data graph: the snapshot it executes
  /// against and the epoch folded into its plan-cache key.
  struct GraphView {
    std::shared_ptr<const Graph> graph;
    uint64_t epoch = 0;
  };

  void WorkerLoop(uint32_t worker_index);
  /// Executes one dequeued request end to end and fulfills its promise.
  void Execute(Pending pending);
  MatchResponse Run(const MatchRequest& request, double queue_ms,
                    const std::atomic<bool>* cancel_token,
                    const GraphView& view);
  /// Pins the current snapshot, compacting the overlay first when updates
  /// landed since the last pin (lazy: only the first request after a batch
  /// pays the merge).
  GraphView CurrentView();
  /// Appends a slow-query record when the response qualifies. `data` is
  /// the graph the request ran against.
  void MaybeLogSlowQuery(const MatchRequest& request,
                         const MatchResponse& response, const Graph& data);
  /// Folds the plan cache's point-in-time stats into the cumulative
  /// counters/gauges. Caller holds mutex_ (it guards cache_stats_seen_).
  void SyncPlanCacheMetricsLocked();

  /// Monotonic milliseconds since service construction.
  double NowMs() const;

  const ServiceOptions options_;
  /// The mutable data graph and its continuous queries, guarded by
  /// graph_mutex_ together with snapshot_/snapshot_epoch_ and the
  /// cumulative dynamic counters. Requests never touch dynamic_ directly —
  /// they pin an immutable snapshot via CurrentView(), so enumeration runs
  /// lock-free while updates land.
  dynamic::DynamicGraph dynamic_;
  dynamic::ContinuousMatcher continuous_;
  std::shared_ptr<const Graph> snapshot_;
  uint64_t snapshot_epoch_ = 0;
  mutable std::mutex graph_mutex_;
  ServiceDynamicStats dynamic_stats_;
  /// Built once at construction when options_.shards > 1; null otherwise.
  /// Points into *snapshot_, which sharded services never replace
  /// (ApplyUpdates rejects).
  std::unique_ptr<const shard::ShardedGraph> sharded_;
  PlanCache plan_cache_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments instruments_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  /// Tokens of requests currently executing, for Shutdown cancellation.
  /// Each executing request holds a service-side token even when the
  /// caller provided none.
  std::vector<std::shared_ptr<std::atomic<bool>>> inflight_tokens_;

  // Counters (guarded by mutex_).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t rejected_ = 0;
  uint64_t total_matches_ = 0;
  double total_queue_ms_ = 0.0;
  double total_execute_ms_ = 0.0;
  uint32_t max_queue_depth_seen_ = 0;
  /// Last plan-cache stats folded into the metrics (delta updates keep the
  /// cumulative counters correct across snapshots).
  PlanCacheStats cache_stats_seen_;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::thread> workers_;
};

/// Builds the standard run report of a served request: the engine section
/// comes from obs::BuildRunReport over the request's options and the
/// response's engine result; the service section (served, plan_cache_hit,
/// queue_ms, queue_depth, request_status) is filled from the response.
/// When `metrics` is non-null its ToJson() snapshot lands in
/// service.metrics (pass service.metrics() for the answering service).
/// When `dynamic_stats` is non-null the report's `dynamic` section carries
/// the service's cumulative update counters (pass the answering service's
/// DynamicStats()).
obs::RunReport BuildServedRunReport(const Graph& query, const Graph& data,
                                    const MatchRequest& request,
                                    const MatchResponse& response,
                                    const obs::MetricsRegistry* metrics =
                                        nullptr,
                                    const ServiceDynamicStats* dynamic_stats =
                                        nullptr);

}  // namespace sgm::service

#endif  // SGM_SERVICE_SERVICE_H_
