#include "sgm/matcher.h"

#include <utility>

#include "sgm/core/order/dpiso_order.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/phase_timer.h"
#include "sgm/util/timer.h"

namespace sgm {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kQuickSI:
      return "QSI";
    case Algorithm::kGraphQL:
      return "GQL";
    case Algorithm::kCFL:
      return "CFL";
    case Algorithm::kCECI:
      return "CECI";
    case Algorithm::kDPiso:
      return "DP";
    case Algorithm::kRI:
      return "RI";
    case Algorithm::kVF2pp:
      return "2PP";
  }
  return "unknown";
}

MatchOptions MatchOptions::Classic(Algorithm algorithm) {
  MatchOptions options;
  switch (algorithm) {
    case Algorithm::kQuickSI:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kQuickSI;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kGraphQL:
      options.filter = FilterMethod::kGraphQL;
      options.order = OrderMethod::kGraphQL;
      options.lc_method = LocalCandidateMethod::kCandidateScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kCFL:
      options.filter = FilterMethod::kCFL;
      options.order = OrderMethod::kCFL;
      options.lc_method = LocalCandidateMethod::kPivotIndex;
      options.aux_scope = AuxEdgeScope::kTreeEdges;
      break;
    case Algorithm::kCECI:
      options.filter = FilterMethod::kCECI;
      options.order = OrderMethod::kCECI;
      options.lc_method = LocalCandidateMethod::kIntersect;
      options.aux_scope = AuxEdgeScope::kAllEdges;
      break;
    case Algorithm::kDPiso:
      options.filter = FilterMethod::kDPiso;
      options.order = OrderMethod::kDPiso;
      options.lc_method = LocalCandidateMethod::kIntersect;
      options.aux_scope = AuxEdgeScope::kAllEdges;
      options.adaptive_order = true;
      options.use_failing_sets = true;  // DP-iso proposed and ships with it
      options.postpone_degree_one = true;  // DP-iso's leaf decomposition
      break;
    case Algorithm::kRI:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kRI;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kVF2pp:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kVF2pp;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      options.vf2pp_lookahead = true;
      break;
  }
  return options;
}

MatchOptions MatchOptions::Optimized(Algorithm algorithm) {
  MatchOptions options = Classic(algorithm);
  // The §5.2 optimization: maintain candidate edges for every query edge and
  // compute local candidates by set intersection; drop VF2++'s extra rules.
  options.lc_method = LocalCandidateMethod::kIntersect;
  options.aux_scope = AuxEdgeScope::kAllEdges;
  options.vf2pp_lookahead = false;
  options.use_failing_sets = false;
  // §5.3: the direct-enumeration algorithms get GraphQL's candidate sets so
  // the comparison isolates the ordering method.
  if (algorithm == Algorithm::kQuickSI || algorithm == Algorithm::kRI ||
      algorithm == Algorithm::kVF2pp) {
    options.filter = FilterMethod::kGraphQL;
  }
  // The optimized DP keeps its adaptive ordering but, like the others in
  // §5.3, failing sets stay off unless the caller turns them on.
  return options;
}

MatchOptions MatchOptions::Recommended(uint32_t query_vertex_count) {
  MatchOptions options = Optimized(Algorithm::kGraphQL);
  options.use_failing_sets = query_vertex_count > 8;
  return options;
}

MatchResult MatchQuery(const Graph& query, const Graph& data,
                       const MatchOptions& options,
                       const MatchCallback& callback) {
  SGM_CHECK_MSG(query.vertex_count() >= 1 &&
                    query.vertex_count() <= kMaxQueryVertices,
                "query size out of supported range");

  MatchResult result;
  Timer total_timer;
  obs::TraceBuffer* trace =
      options.collector != nullptr ? options.collector->trace() : nullptr;
  if (trace != nullptr) trace->SetThreadName(0, "pipeline");
  obs::PhaseTimer phase_timer(trace);

  // ---- Filtering (line 1 of Algorithm 1). ----
  phase_timer.Begin(obs::kPhaseFilter);
  FilterResult filtered = RunFilter(options.filter, query, data,
                                    options.filter_options);
  result.filter_ms = phase_timer.End();
  result.average_candidates = filtered.candidates.AverageCount();
  result.candidate_memory_bytes = filtered.candidates.MemoryBytes();
  result.filter_rounds = std::move(filtered.rounds);

  if (filtered.candidates.AnyEmpty()) {
    // Some query vertex has no candidate: no match exists.
    result.preprocessing_ms = result.filter_ms;
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }

  // ---- Auxiliary structure. ----
  phase_timer.Begin(obs::kPhaseAuxBuild);
  AuxStructure aux;
  switch (options.aux_scope) {
    case AuxEdgeScope::kNone:
      break;
    case AuxEdgeScope::kTreeEdges: {
      SGM_CHECK_MSG(filtered.bfs_tree.has_value(),
                    "tree-edge aux scope needs a filter that builds q_t");
      aux = AuxStructure::BuildTreeEdges(query, data, filtered.candidates,
                                         filtered.bfs_tree->parent);
      break;
    }
    case AuxEdgeScope::kAllEdges: {
      AuxBuildOptions aux_build;
      // The sidecar only pays off where the enumerator can consume it: the
      // set-intersection local candidates with a bitmap-aware kernel.
      aux_build.build_bitmaps =
          options.lc_method == LocalCandidateMethod::kIntersect &&
          (options.intersection == IntersectionMethod::kBitmap ||
           options.intersection == IntersectionMethod::kAuto);
      aux_build.bitmap_max_candidates = options.bitmap_max_candidates;
      aux = AuxStructure::BuildAllEdges(query, data, filtered.candidates,
                                        aux_build);
      break;
    }
  }
  result.aux_memory_bytes = aux.MemoryBytes();

  // ---- Ordering (line 2 of Algorithm 1). ----
  result.aux_build_ms = phase_timer.Begin(obs::kPhaseOrder);
  OrderInputs order_inputs;
  order_inputs.candidates = &filtered.candidates;
  order_inputs.tree =
      filtered.bfs_tree.has_value() ? &*filtered.bfs_tree : nullptr;
  order_inputs.aux = options.aux_scope == AuxEdgeScope::kNone ? nullptr : &aux;
  result.matching_order = ComputeOrder(options.order, query, data,
                                       order_inputs);
  if (options.postpone_degree_one) {
    result.matching_order =
        PostponeDegreeOneVertices(query, result.matching_order);
  }
  SGM_CHECK(IsValidMatchingOrder(query, result.matching_order));

  DpisoWeights weights;
  if (options.adaptive_order) {
    SGM_CHECK_MSG(options.aux_scope == AuxEdgeScope::kAllEdges,
                  "adaptive ordering needs an all-edges aux structure");
    weights = DpisoWeights::Build(query, filtered.candidates, aux,
                                  result.matching_order);
  }
  result.order_ms = phase_timer.End();
  result.preprocessing_ms =
      result.filter_ms + result.aux_build_ms + result.order_ms;

  // ---- Enumeration (line 3 of Algorithm 1). ----
  EnumerateOptions enumerate_options;
  enumerate_options.lc_method = options.lc_method;
  enumerate_options.use_failing_sets = options.use_failing_sets;
  enumerate_options.adaptive_order = options.adaptive_order;
  enumerate_options.vf2pp_lookahead = options.vf2pp_lookahead;
  enumerate_options.restrict_neighbor_scan_to_candidates =
      options.filter != FilterMethod::kLDF;
  enumerate_options.max_matches = options.max_matches;
  enumerate_options.time_limit_ms = options.time_limit_ms;
  enumerate_options.intersection = options.intersection;
  enumerate_options.use_lc_cache = options.use_lc_cache;
  if (options.collector != nullptr &&
      options.collector->depth_profile_enabled()) {
    enumerate_options.depth_profile = &result.depth_profile;
  }
  if (options.debug_skip_last_root_candidate) {
    // Emulated off-by-one: enumerate roots [0, count-1) instead of
    // [0, count). See MatchOptions::debug_skip_last_root_candidate.
    const uint32_t root_count =
        filtered.candidates.Count(result.matching_order[0]);
    enumerate_options.root_slice_end = root_count > 0 ? root_count - 1 : 0;
  }

  {
    obs::TraceSpan span(trace, obs::kPhaseEnumeration, "phase");
    result.enumerate = Enumerate(
        query, data, filtered.candidates,
        options.aux_scope == AuxEdgeScope::kNone ? nullptr : &aux,
        result.matching_order, enumerate_options,
        options.adaptive_order ? &weights : nullptr, callback);
    span.AddArg("recursion_calls",
                static_cast<double>(result.enumerate.recursion_calls));
    span.AddArg("matches", static_cast<double>(result.enumerate.match_count));
  }
  result.match_count = result.enumerate.match_count;
  result.enumeration_ms = result.enumerate.enumeration_ms;
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

bool ContainsSubgraph(const Graph& query, const Graph& data,
                      const MatchOptions& options) {
  MatchOptions first_match = options;
  first_match.max_matches = 1;
  return MatchQuery(query, data, first_match).match_count > 0;
}

std::vector<std::vector<Vertex>> CollectMatches(const Graph& query,
                                                const Graph& data,
                                                const MatchOptions& options) {
  std::vector<std::vector<Vertex>> matches;
  MatchQuery(query, data, options,
             [&matches](std::span<const Vertex> mapping) {
               matches.emplace_back(mapping.begin(), mapping.end());
               return true;
             });
  return matches;
}

}  // namespace sgm
