#include "sgm/matcher.h"

#include <utility>

#include "sgm/plan.h"

namespace sgm {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kQuickSI:
      return "QSI";
    case Algorithm::kGraphQL:
      return "GQL";
    case Algorithm::kCFL:
      return "CFL";
    case Algorithm::kCECI:
      return "CECI";
    case Algorithm::kDPiso:
      return "DP";
    case Algorithm::kRI:
      return "RI";
    case Algorithm::kVF2pp:
      return "2PP";
  }
  return "unknown";
}

MatchOptions MatchOptions::Classic(Algorithm algorithm) {
  MatchOptions options;
  switch (algorithm) {
    case Algorithm::kQuickSI:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kQuickSI;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kGraphQL:
      options.filter = FilterMethod::kGraphQL;
      options.order = OrderMethod::kGraphQL;
      options.lc_method = LocalCandidateMethod::kCandidateScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kCFL:
      options.filter = FilterMethod::kCFL;
      options.order = OrderMethod::kCFL;
      options.lc_method = LocalCandidateMethod::kPivotIndex;
      options.aux_scope = AuxEdgeScope::kTreeEdges;
      break;
    case Algorithm::kCECI:
      options.filter = FilterMethod::kCECI;
      options.order = OrderMethod::kCECI;
      options.lc_method = LocalCandidateMethod::kIntersect;
      options.aux_scope = AuxEdgeScope::kAllEdges;
      break;
    case Algorithm::kDPiso:
      options.filter = FilterMethod::kDPiso;
      options.order = OrderMethod::kDPiso;
      options.lc_method = LocalCandidateMethod::kIntersect;
      options.aux_scope = AuxEdgeScope::kAllEdges;
      options.adaptive_order = true;
      options.use_failing_sets = true;  // DP-iso proposed and ships with it
      options.postpone_degree_one = true;  // DP-iso's leaf decomposition
      break;
    case Algorithm::kRI:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kRI;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      break;
    case Algorithm::kVF2pp:
      options.filter = FilterMethod::kLDF;
      options.order = OrderMethod::kVF2pp;
      options.lc_method = LocalCandidateMethod::kNeighborScan;
      options.aux_scope = AuxEdgeScope::kNone;
      options.vf2pp_lookahead = true;
      break;
  }
  return options;
}

MatchOptions MatchOptions::Optimized(Algorithm algorithm) {
  MatchOptions options = Classic(algorithm);
  // The §5.2 optimization: maintain candidate edges for every query edge and
  // compute local candidates by set intersection; drop VF2++'s extra rules.
  options.lc_method = LocalCandidateMethod::kIntersect;
  options.aux_scope = AuxEdgeScope::kAllEdges;
  options.vf2pp_lookahead = false;
  options.use_failing_sets = false;
  // §5.3: the direct-enumeration algorithms get GraphQL's candidate sets so
  // the comparison isolates the ordering method.
  if (algorithm == Algorithm::kQuickSI || algorithm == Algorithm::kRI ||
      algorithm == Algorithm::kVF2pp) {
    options.filter = FilterMethod::kGraphQL;
  }
  // The optimized DP keeps its adaptive ordering but, like the others in
  // §5.3, failing sets stay off unless the caller turns them on.
  return options;
}

MatchOptions MatchOptions::Recommended(uint32_t query_vertex_count) {
  MatchOptions options = Optimized(Algorithm::kGraphQL);
  options.use_failing_sets = query_vertex_count > 8;
  return options;
}

MatchResult MatchQuery(const Graph& query, const Graph& data,
                       const MatchOptions& options,
                       const MatchCallback& callback) {
  if (options.shards > 1) {
    // One-shot sharded run: partition on the fly, then the shard-local and
    // boundary passes of DESIGN.md §13. Long-lived callers share one
    // ShardedGraph across queries instead.
    const shard::ShardedGraph sharded(data, options.shards,
                                      options.shard_partitioner);
    return ShardedMatchQuery(query, sharded, options, callback).result;
  }
  // Build-then-execute: the preprocessing phases live in BuildMatchPlan so
  // the plan cache of service/service.h can retain and replay them; a
  // one-shot call composes the two halves back into the original pipeline.
  const auto plan = BuildMatchPlan(query, data, options);
  return ExecutePlan(query, data, *plan, options, callback);
}

bool ContainsSubgraph(const Graph& query, const Graph& data,
                      const MatchOptions& options) {
  MatchOptions first_match = options;
  first_match.max_matches = 1;
  return MatchQuery(query, data, first_match).match_count > 0;
}

std::vector<std::vector<Vertex>> CollectMatches(const Graph& query,
                                                const Graph& data,
                                                const MatchOptions& options) {
  std::vector<std::vector<Vertex>> matches;
  MatchQuery(query, data, options,
             [&matches](std::span<const Vertex> mapping) {
               matches.emplace_back(mapping.begin(), mapping.end());
               return true;
             });
  return matches;
}

}  // namespace sgm
