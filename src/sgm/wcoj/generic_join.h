// Worst-case optimal join (WCOJ) evaluation of subgraph queries — the
// alternative computation model the paper discusses in Section 2.2
// (LogicBlox, EmptyHeaded, Graphflow). The query is treated as a multi-way
// join with one attribute per query vertex and one relation per query edge;
// Generic Join extends one attribute at a time by intersecting the
// adjacency lists of all bound neighbor attributes.
//
// As the paper notes, WCOJ systems by default compute *homomorphisms*
// (repeated data vertices allowed); an isomorphism mode adds the
// injectivity constraint so results are comparable with the backtracking
// algorithms. This engine exists as the cross-model baseline; it uses no
// candidate filtering beyond labels, mirroring the label-only pruning of
// EmptyHeaded/Graphflow.
#ifndef SGM_WCOJ_GENERIC_JOIN_H_
#define SGM_WCOJ_GENERIC_JOIN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// Result semantics of the join.
enum class WcojMode : uint8_t {
  kHomomorphism = 0,  ///< the WCOJ default (Section 2.2)
  kIsomorphism = 1,   ///< injective; comparable with Definition 2.1
};

/// Knobs of a Generic Join run.
struct WcojOptions {
  WcojMode mode = WcojMode::kIsomorphism;
  uint64_t max_results = 100000;  ///< 0 = unlimited
  double time_limit_ms = 300000.0;  ///< 0 = unlimited
};

/// Outcome of a Generic Join run.
struct WcojResult {
  uint64_t result_count = 0;
  uint64_t intersections = 0;
  bool timed_out = false;
  double total_ms = 0.0;
  /// The attribute (query-vertex) order the planner chose.
  std::vector<Vertex> attribute_order;
};

/// Called per result; mapping[u] is the data vertex bound to query vertex
/// u. Return false to stop.
using WcojCallback = std::function<bool(std::span<const Vertex>)>;

/// Evaluates the query as a multi-way join with Generic Join.
WcojResult GenericJoinMatch(const Graph& query, const Graph& data,
                            const WcojOptions& options = WcojOptions{},
                            const WcojCallback& callback = {});

/// The attribute order used by the planner: highest-degree query vertex
/// first, then greedily the unbound vertex with the most bound neighbors
/// (ties by smaller data-label frequency). Exposed for tests.
std::vector<Vertex> WcojAttributeOrder(const Graph& query, const Graph& data);

}  // namespace sgm

#endif  // SGM_WCOJ_GENERIC_JOIN_H_
