#include "sgm/wcoj/generic_join.h"

#include <algorithm>
#include <limits>

#include "sgm/util/set_intersection.h"
#include "sgm/util/timer.h"

namespace sgm {

std::vector<Vertex> WcojAttributeOrder(const Graph& query,
                                       const Graph& data) {
  const uint32_t n = query.vertex_count();
  const auto label_frequency = [&](Vertex u) -> uint32_t {
    const Label l = query.label(u);
    return l < data.label_count() ? data.LabelFrequency(l) : 0;
  };

  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> bound(n, false);

  Vertex start = 0;
  for (Vertex u = 1; u < n; ++u) {
    if (query.degree(u) > query.degree(start) ||
        (query.degree(u) == query.degree(start) &&
         label_frequency(u) < label_frequency(start))) {
      start = u;
    }
  }
  order.push_back(start);
  bound[start] = true;

  while (order.size() < n) {
    Vertex best = kInvalidVertex;
    std::pair<uint32_t, int64_t> best_score{0, 0};
    for (Vertex u = 0; u < n; ++u) {
      if (bound[u]) continue;
      uint32_t bound_neighbors = 0;
      for (const Vertex w : query.neighbors(u)) {
        if (bound[w]) ++bound_neighbors;
      }
      const std::pair<uint32_t, int64_t> score{
          bound_neighbors, -static_cast<int64_t>(label_frequency(u))};
      if (best == kInvalidVertex || score > best_score) {
        best_score = score;
        best = u;
      }
    }
    order.push_back(best);
    bound[best] = true;
  }
  return order;
}

namespace {

class GenericJoinEngine {
 public:
  GenericJoinEngine(const Graph& query, const Graph& data,
                    const WcojOptions& options, const WcojCallback& callback)
      : query_(query),
        data_(data),
        options_(options),
        callback_(callback),
        n_(query.vertex_count()) {}

  WcojResult Run() {
    Timer timer;
    timer_ = &timer;
    result_.attribute_order = WcojAttributeOrder(query_, data_);
    position_.assign(n_, 0);
    for (uint32_t i = 0; i < n_; ++i) {
      position_[result_.attribute_order[i]] = i;
    }
    mapping_.assign(n_, kInvalidVertex);
    bound_count_.assign(data_.vertex_count(), 0);
    buffers_.assign(n_, {});
    scratch_.clear();
    Extend(0);
    result_.total_ms = timer.ElapsedMillis();
    return result_;
  }

 private:
  // Candidates of the attribute at the given level: the intersection of the
  // adjacency lists of all bound neighbor attributes, label-filtered.
  std::span<const Vertex> Candidates(Vertex u, uint32_t level) {
    std::vector<std::span<const Vertex>> lists;
    for (const Vertex w : query_.neighbors(u)) {
      if (position_[w] < level) {
        lists.push_back(data_.neighbors(mapping_[w]));
      }
    }
    auto& buffer = buffers_[level];
    buffer.clear();
    if (lists.empty()) {
      // No bound neighbor: scan the label class (start attribute).
      const Label l = query_.label(u);
      if (l >= data_.label_count()) return buffer;
      return data_.VerticesWithLabel(l);
    }
    // Generic Join: intersect starting from the smallest list.
    std::sort(lists.begin(), lists.end(),
              [](const auto& a, const auto& b) { return a.size() < b.size(); });
    buffer.assign(lists[0].begin(), lists[0].end());
    for (size_t i = 1; i < lists.size(); ++i) {
      ++result_.intersections;
      IntersectHybrid(buffer, lists[i], &scratch_);
      buffer.swap(scratch_);
      if (buffer.empty()) return buffer;
    }
    // Label filter (EmptyHeaded/Graphflow prune on labels only).
    const Label l = query_.label(u);
    size_t out = 0;
    for (const Vertex v : buffer) {
      if (data_.label(v) == l) buffer[out++] = v;
    }
    buffer.resize(out);
    return buffer;
  }

  void Extend(uint32_t level) {
    if (stopped_) return;
    if ((++steps_ & 1023) == 0 && options_.time_limit_ms > 0 &&
        timer_->ElapsedMillis() > options_.time_limit_ms) {
      result_.timed_out = true;
      stopped_ = true;
      return;
    }
    if (level == n_) {
      ++result_.result_count;
      if (callback_ && !callback_(mapping_)) stopped_ = true;
      if (options_.max_results > 0 &&
          result_.result_count >= options_.max_results) {
        stopped_ = true;
      }
      return;
    }
    const Vertex u = result_.attribute_order[level];
    const auto candidates = Candidates(u, level);
    for (const Vertex v : candidates) {
      if (stopped_) return;
      if (options_.mode == WcojMode::kIsomorphism && bound_count_[v] > 0) {
        continue;
      }
      mapping_[u] = v;
      ++bound_count_[v];
      Extend(level + 1);
      --bound_count_[v];
      mapping_[u] = kInvalidVertex;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const WcojOptions& options_;
  const WcojCallback& callback_;
  const uint32_t n_;

  std::vector<uint32_t> position_;
  std::vector<Vertex> mapping_;
  std::vector<uint32_t> bound_count_;
  std::vector<std::vector<Vertex>> buffers_;
  std::vector<Vertex> scratch_;
  WcojResult result_;
  Timer* timer_ = nullptr;
  uint64_t steps_ = 0;
  bool stopped_ = false;
};

}  // namespace

WcojResult GenericJoinMatch(const Graph& query, const Graph& data,
                            const WcojOptions& options,
                            const WcojCallback& callback) {
  SGM_CHECK(query.vertex_count() >= 1);
  GenericJoinEngine engine(query, data, options, callback);
  return engine.Run();
}

}  // namespace sgm
