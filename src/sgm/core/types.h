// Fundamental types and invariant-checking macros shared by every sgm module.
#ifndef SGM_CORE_TYPES_H_
#define SGM_CORE_TYPES_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sgm {

/// Identifier of a vertex in a query or data graph.
using Vertex = uint32_t;
/// Vertex label. Labels are dense integers in [0, label_count).
using Label = uint32_t;

/// Sentinel for "no vertex" (e.g., an unmapped query vertex).
inline constexpr Vertex kInvalidVertex = std::numeric_limits<Vertex>::max();
/// Sentinel for "no label".
inline constexpr Label kInvalidLabel = std::numeric_limits<Label>::max();

/// Maximum number of query vertices supported by the enumeration engine.
/// Failing sets are stored as one 64-bit mask per search node, so queries are
/// capped at 64 vertices (the paper evaluates up to 32).
inline constexpr uint32_t kMaxQueryVertices = 64;

}  // namespace sgm

/// Invariant check that stays active in release builds. Database-engine style:
/// a violated invariant is a bug, so fail fast with a location message.
#define SGM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SGM_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SGM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SGM_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // SGM_CORE_TYPES_H_
