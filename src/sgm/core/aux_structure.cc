#include "sgm/core/aux_structure.h"

#include <algorithm>

#include "sgm/util/bitmap_intersection.h"
#include "sgm/util/set_intersection.h"

namespace sgm {

const char* AuxEdgeScopeName(AuxEdgeScope scope) {
  switch (scope) {
    case AuxEdgeScope::kNone:
      return "none";
    case AuxEdgeScope::kTreeEdges:
      return "tree-edges";
    case AuxEdgeScope::kAllEdges:
      return "all-edges";
  }
  return "unknown";
}

AuxStructure::AuxStructure(const Graph& query, const Graph& data,
                           const CandidateSets& candidates,
                           std::span<const std::pair<Vertex, Vertex>> edges,
                           const AuxBuildOptions& build_options)
    : candidates_(&candidates),
      query_vertex_count_(query.vertex_count()) {
  SGM_CHECK(candidates.query_vertex_count() == query.vertex_count());
  slot_.assign(static_cast<size_t>(query_vertex_count_) * query_vertex_count_,
               -1);
  indexes_.reserve(edges.size() * 2);

  std::vector<Vertex> scratch;
  for (const auto& [a, b] : edges) {
    SGM_CHECK_MSG(query.HasEdge(a, b), "aux structure pair is not a query edge");
    for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
      SGM_CHECK_MSG(SlotOf(from, to) < 0, "duplicate aux structure edge");
      slot_[from * query_vertex_count_ + to] =
          static_cast<int32_t>(indexes_.size());
      DirectedIndex index;
      const auto from_cands = candidates.candidates(from);
      const auto to_cands = candidates.candidates(to);
      // The sidecar is selected per query vertex: only a C(to) below the
      // density threshold pays the fixed-stride rows; sparse sets keep the
      // CSR arrays alone.
      const bool bitmaps =
          build_options.build_bitmaps && !to_cands.empty() &&
          to_cands.size() <= build_options.bitmap_max_candidates;
      if (bitmaps) {
        index.bitmap_stride =
            BitmapWords(static_cast<uint32_t>(to_cands.size()));
        index.bits.assign(from_cands.size() *
                              static_cast<size_t>(index.bitmap_stride),
                          0);
      }
      index.offsets.reserve(from_cands.size() + 1);
      index.offsets.push_back(0);
      for (size_t r = 0; r < from_cands.size(); ++r) {
        IntersectHybrid(data.neighbors(from_cands[r]), to_cands, &scratch);
        index.lists.insert(index.lists.end(), scratch.begin(), scratch.end());
        index.offsets.push_back(static_cast<uint32_t>(index.lists.size()));
        if (bitmaps && !scratch.empty()) {
          // scratch ⊆ C(to) and both are sorted: a resumed two-pointer walk
          // recovers each neighbor's candidate index in one pass.
          uint64_t* row = index.bits.data() + r * index.bitmap_stride;
          size_t pos = 0;
          for (const Vertex v : scratch) {
            while (to_cands[pos] != v) ++pos;
            row[pos >> 6] |= 1ULL << (pos & 63);
            ++pos;
          }
        }
      }
      indexes_.push_back(std::move(index));
    }
  }
}

AuxStructure AuxStructure::BuildAllEdges(const Graph& query, const Graph& data,
                                         const CandidateSets& candidates,
                                         const AuxBuildOptions& build_options) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    for (const Vertex w : query.neighbors(u)) {
      if (u < w) edges.emplace_back(u, w);
    }
  }
  return AuxStructure(query, data, candidates, edges, build_options);
}

AuxStructure AuxStructure::BuildTreeEdges(const Graph& query,
                                          const Graph& data,
                                          const CandidateSets& candidates,
                                          std::span<const Vertex> parent,
                                          const AuxBuildOptions& build_options) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    if (parent[u] != kInvalidVertex) edges.emplace_back(parent[u], u);
  }
  return AuxStructure(query, data, candidates, edges, build_options);
}

std::span<const Vertex> AuxStructure::NeighborsByIndex(Vertex from_u,
                                                       uint32_t cand_index,
                                                       Vertex to_u) const {
  const int32_t slot = SlotOf(from_u, to_u);
  SGM_CHECK_MSG(slot >= 0, "query edge not indexed in aux structure");
  const DirectedIndex& index = indexes_[static_cast<size_t>(slot)];
  SGM_CHECK(cand_index + 1 < index.offsets.size());
  return {index.lists.data() + index.offsets[cand_index],
          index.offsets[cand_index + 1] - index.offsets[cand_index]};
}

std::span<const uint64_t> AuxStructure::BitmapByIndex(Vertex from_u,
                                                      uint32_t cand_index,
                                                      Vertex to_u) const {
  const int32_t slot = SlotOf(from_u, to_u);
  SGM_CHECK_MSG(slot >= 0, "query edge not indexed in aux structure");
  const DirectedIndex& index = indexes_[static_cast<size_t>(slot)];
  SGM_CHECK_MSG(index.bitmap_stride > 0, "no bitmap sidecar for this edge");
  SGM_CHECK(cand_index + 1 < index.offsets.size());
  return {index.bits.data() +
              static_cast<size_t>(cand_index) * index.bitmap_stride,
          index.bitmap_stride};
}

std::span<const Vertex> AuxStructure::NeighborsOfVertex(Vertex from_u,
                                                        Vertex data_vertex,
                                                        Vertex to_u) const {
  const uint32_t cand_index = candidates_->IndexOf(from_u, data_vertex);
  SGM_CHECK_MSG(cand_index < candidates_->Count(from_u),
                "data vertex is not a candidate of from_u");
  return NeighborsByIndex(from_u, cand_index, to_u);
}

uint64_t AuxStructure::CandidateEdgeCount() const {
  uint64_t total = 0;
  for (const auto& index : indexes_) total += index.lists.size();
  return total;
}

size_t AuxStructure::MemoryBytes() const {
  size_t bytes = slot_.capacity() * sizeof(int32_t) +
                 indexes_.capacity() * sizeof(DirectedIndex);
  for (const auto& index : indexes_) {
    bytes += index.offsets.capacity() * sizeof(uint32_t) +
             index.lists.capacity() * sizeof(Vertex) +
             index.bits.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace sgm
