#include "sgm/core/candidate_sets.h"

#include <algorithm>

namespace sgm {

bool CandidateSets::Contains(Vertex u, Vertex v) const {
  SGM_CHECK(u < sets_.size());
  return std::binary_search(sets_[u].begin(), sets_[u].end(), v);
}

uint32_t CandidateSets::IndexOf(Vertex u, Vertex v) const {
  SGM_CHECK(u < sets_.size());
  const auto it = std::lower_bound(sets_[u].begin(), sets_[u].end(), v);
  if (it == sets_[u].end() || *it != v) {
    return static_cast<uint32_t>(sets_[u].size());
  }
  return static_cast<uint32_t>(it - sets_[u].begin());
}

void CandidateSets::SortAll() {
  for (auto& set : sets_) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
}

bool CandidateSets::AnyEmpty() const {
  for (const auto& set : sets_) {
    if (set.empty()) return true;
  }
  return false;
}

uint64_t CandidateSets::TotalCount() const {
  uint64_t total = 0;
  for (const auto& set : sets_) total += set.size();
  return total;
}

double CandidateSets::AverageCount() const {
  if (sets_.empty()) return 0.0;
  return static_cast<double>(TotalCount()) / static_cast<double>(sets_.size());
}

size_t CandidateSets::MemoryBytes() const {
  size_t bytes = sets_.capacity() * sizeof(std::vector<Vertex>);
  for (const auto& set : sets_) bytes += set.capacity() * sizeof(Vertex);
  return bytes;
}

}  // namespace sgm
