// Ordering methods: generation of matching orders (Section 3.2 of the
// paper). A matching order is a permutation of the query vertices in which
// every vertex after the first has at least one backward neighbor
// ("connected" orders), so the enumeration never takes a Cartesian product
// between disconnected partial matches.
#ifndef SGM_CORE_ORDER_ORDER_H_
#define SGM_CORE_ORDER_ORDER_H_

#include <vector>

#include "sgm/core/aux_structure.h"
#include "sgm/core/candidate_sets.h"
#include "sgm/graph/graph.h"
#include "sgm/graph/graph_utils.h"

namespace sgm {

/// Identifies an ordering method.
enum class OrderMethod : uint8_t {
  kQuickSI = 0,  ///< infrequent-edge first (weighted spanning order)
  kGraphQL = 1,  ///< left-deep join: greedy min |C(u)|
  kCFL = 2,      ///< path-based order over q_t with DP cardinality estimates
  kCECI = 3,     ///< BFS traversal order from argmin |C(u)|/d(u)
  kDPiso = 4,    ///< static BFS order; adaptive selection happens at run time
  kRI = 5,       ///< structure-based: max backward neighbors + tie breakers
  kVF2pp = 6,    ///< BFS level-wise, rare labels and large degrees first
};

/// Returns the paper's abbreviation ("QSI", "GQL", "CFL", ...).
const char* OrderMethodName(OrderMethod method);

/// Inputs available to the ordering methods. `candidates` must be non-null
/// for candidate-based methods (GraphQL, CFL, CECI, DP-iso). `tree` and
/// `aux` are optional accelerators for CFL (they are rebuilt when absent).
struct OrderInputs {
  const CandidateSets* candidates = nullptr;
  const BfsTree* tree = nullptr;      // q_t from the filtering phase
  const AuxStructure* aux = nullptr;  // candidate edges for CFL's estimates
};

/// Computes a matching order with the selected method.
std::vector<Vertex> ComputeOrder(OrderMethod method, const Graph& query,
                                 const Graph& data, const OrderInputs& inputs);

// ---- Individual methods. ----

std::vector<Vertex> QuickSiOrder(const Graph& query, const Graph& data);
std::vector<Vertex> GraphQlOrder(const Graph& query,
                                 const CandidateSets& candidates);
std::vector<Vertex> CflOrder(const Graph& query, const Graph& data,
                             const CandidateSets& candidates,
                             const BfsTree* tree, const AuxStructure* aux);
std::vector<Vertex> CeciOrder(const Graph& query,
                              const CandidateSets& candidates);
std::vector<Vertex> DpisoStaticOrder(const Graph& query,
                                     const CandidateSets& candidates);
std::vector<Vertex> RiOrder(const Graph& query);
std::vector<Vertex> Vf2ppOrder(const Graph& query, const Graph& data);

/// Validates the "connected permutation" invariant of a matching order.
bool IsValidMatchingOrder(const Graph& query, std::span<const Vertex> order);

/// DP-iso's leaf decomposition: rebuilds the order so that all degree-one
/// query vertices come last (their only constraint is one already-mapped
/// neighbor, so matching them early only multiplies the search). The
/// relative order of the remaining (core) vertices is preserved as far as
/// the connectivity invariant allows. Requires a valid input order of a
/// connected query; returns a valid order.
std::vector<Vertex> PostponeDegreeOneVertices(const Graph& query,
                                              std::span<const Vertex> order);

}  // namespace sgm

#endif  // SGM_CORE_ORDER_ORDER_H_
