#include "sgm/core/order/order.h"

#include <algorithm>

namespace sgm {

const char* OrderMethodName(OrderMethod method) {
  switch (method) {
    case OrderMethod::kQuickSI:
      return "QSI";
    case OrderMethod::kGraphQL:
      return "GQL";
    case OrderMethod::kCFL:
      return "CFL";
    case OrderMethod::kCECI:
      return "CECI";
    case OrderMethod::kDPiso:
      return "DP";
    case OrderMethod::kRI:
      return "RI";
    case OrderMethod::kVF2pp:
      return "2PP";
  }
  return "unknown";
}

std::vector<Vertex> ComputeOrder(OrderMethod method, const Graph& query,
                                 const Graph& data,
                                 const OrderInputs& inputs) {
  switch (method) {
    case OrderMethod::kQuickSI:
      return QuickSiOrder(query, data);
    case OrderMethod::kGraphQL:
      SGM_CHECK_MSG(inputs.candidates != nullptr,
                    "GraphQL ordering needs candidate sets");
      return GraphQlOrder(query, *inputs.candidates);
    case OrderMethod::kCFL:
      SGM_CHECK_MSG(inputs.candidates != nullptr,
                    "CFL ordering needs candidate sets");
      return CflOrder(query, data, *inputs.candidates, inputs.tree,
                      inputs.aux);
    case OrderMethod::kCECI:
      SGM_CHECK_MSG(inputs.candidates != nullptr,
                    "CECI ordering needs candidate sets");
      return CeciOrder(query, *inputs.candidates);
    case OrderMethod::kDPiso:
      SGM_CHECK_MSG(inputs.candidates != nullptr,
                    "DP-iso ordering needs candidate sets");
      return DpisoStaticOrder(query, *inputs.candidates);
    case OrderMethod::kRI:
      return RiOrder(query);
    case OrderMethod::kVF2pp:
      return Vf2ppOrder(query, data);
  }
  SGM_CHECK_MSG(false, "unreachable order method");
  return {};
}

std::vector<Vertex> PostponeDegreeOneVertices(const Graph& query,
                                              std::span<const Vertex> order) {
  const uint32_t n = query.vertex_count();
  SGM_CHECK(order.size() == n);
  std::vector<Vertex> core;
  std::vector<Vertex> leaves;
  for (const Vertex u : order) {
    (query.degree(u) == 1 ? leaves : core).push_back(u);
  }
  if (leaves.empty() || core.empty()) {
    return {order.begin(), order.end()};
  }

  // Re-emit the core greedily in (approximately) its original order while
  // keeping the connectivity invariant: each emitted vertex after the first
  // must have a neighbor among the already-emitted ones. The core of a
  // connected graph is connected once leaves are stripped, so this always
  // makes progress.
  std::vector<Vertex> result;
  result.reserve(n);
  std::vector<bool> emitted(n, false);
  std::vector<bool> taken(core.size(), false);
  for (size_t emitted_count = 0; emitted_count < core.size();) {
    bool progressed = false;
    for (size_t i = 0; i < core.size(); ++i) {
      if (taken[i]) continue;
      const Vertex u = core[i];
      bool ok = result.empty();
      for (const Vertex w : query.neighbors(u)) {
        if (emitted[w]) {
          ok = true;
          break;
        }
      }
      if (ok) {
        result.push_back(u);
        emitted[u] = true;
        taken[i] = true;
        ++emitted_count;
        progressed = true;
        break;
      }
    }
    SGM_CHECK_MSG(progressed, "core of a connected query must be connected");
  }
  for (const Vertex u : leaves) result.push_back(u);
  return result;
}

bool IsValidMatchingOrder(const Graph& query, std::span<const Vertex> order) {
  const uint32_t n = query.vertex_count();
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < order.size(); ++i) {
    const Vertex u = order[i];
    if (u >= n || seen[u]) return false;
    if (i > 0) {
      bool has_backward = false;
      for (const Vertex w : query.neighbors(u)) {
        if (seen[w]) {
          has_backward = true;
          break;
        }
      }
      if (!has_backward) return false;
    }
    seen[u] = true;
  }
  return true;
}

}  // namespace sgm
