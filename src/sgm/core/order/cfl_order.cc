// CFL's path-based ordering (Section 3.2): decompose the BFS tree q_t into
// root-to-leaf paths, estimate the number of path embeddings in the
// auxiliary structure by dynamic programming, and emit the paths greedily —
// first the path minimizing c(P)/|NT(P)| (non-tree edges terminate invalid
// branches early), then repeatedly the path minimizing c(P^u)/|C(u)| where u
// is the vertex connecting the path to the current order.
#include "sgm/core/order/order.h"

#include <algorithm>
#include <limits>

#include "sgm/util/set_intersection.h"

namespace sgm {

namespace {

// Root selection when no BFS tree was handed down from the CFL filter:
// highest-degree core vertex with the rarest label (the filter's own rule
// lives in cfl_filter.cc; this standalone fallback only needs the data
// graph's label statistics).
Vertex FallbackRoot(const Graph& query, const Graph& data) {
  std::vector<bool> in_core = TwoCoreMembership(query);
  if (std::find(in_core.begin(), in_core.end(), true) == in_core.end()) {
    in_core.assign(query.vertex_count(), true);
  }
  Vertex best = kInvalidVertex;
  double best_score = std::numeric_limits<double>::infinity();
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    if (!in_core[u]) continue;
    const Label l = query.label(u);
    const double freq = l < data.label_count() ? data.LabelFrequency(l) : 0.0;
    const double score = freq / std::max(1u, query.degree(u));
    if (score < best_score) {
      best_score = score;
      best = u;
    }
  }
  return best == kInvalidVertex ? 0 : best;
}

}  // namespace

std::vector<Vertex> CflOrder(const Graph& query, const Graph& data,
                             const CandidateSets& candidates,
                             const BfsTree* tree, const AuxStructure* aux) {
  const uint32_t n = query.vertex_count();
  SGM_CHECK(candidates.query_vertex_count() == n);

  BfsTree local_tree;
  if (tree == nullptr) {
    local_tree = BuildBfsTree(query, FallbackRoot(query, data));
    tree = &local_tree;
  }

  // Candidate adjacency accessor: prefer the prebuilt auxiliary structure,
  // fall back to an on-the-fly intersection against the data graph.
  std::vector<Vertex> scratch;
  const auto candidate_neighbors =
      [&](Vertex u, uint32_t cand_index,
          Vertex child) -> std::span<const Vertex> {
    if (aux != nullptr && aux->HasIndex(u, child)) {
      return aux->NeighborsByIndex(u, cand_index, child);
    }
    const Vertex v = candidates.candidates(u)[cand_index];
    IntersectHybrid(data.neighbors(v), candidates.candidates(child), &scratch);
    return scratch;
  };

  // Enumerate root-to-leaf paths of q_t.
  std::vector<std::vector<Vertex>> paths;
  {
    std::vector<Vertex> stack_path;
    // Iterative DFS carrying the current path.
    struct Frame {
      Vertex vertex;
      size_t child_index;
    };
    std::vector<Frame> stack{{tree->root, 0}};
    stack_path.push_back(tree->root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& children = tree->children[frame.vertex];
      if (children.empty()) {
        paths.push_back(stack_path);
        stack.pop_back();
        stack_path.pop_back();
      } else if (frame.child_index < children.size()) {
        const Vertex child = children[frame.child_index++];
        stack.push_back({child, 0});
        stack_path.push_back(child);
      } else {
        stack.pop_back();
        stack_path.pop_back();
      }
    }
  }

  // Per-path dynamic programming: weight[i][ci] estimates the number of
  // embeddings of the path suffix starting at path vertex i rooted at the
  // ci-th candidate. c(P^u) is then the sum over C(u).
  std::vector<std::vector<std::vector<double>>> weights(paths.size());
  for (size_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    auto& w = weights[p];
    w.resize(path.size());
    w.back().assign(candidates.Count(path.back()), 1.0);
    for (size_t i = path.size() - 1; i-- > 0;) {
      const Vertex u = path[i];
      const Vertex child = path[i + 1];
      w[i].assign(candidates.Count(u), 0.0);
      for (uint32_t ci = 0; ci < candidates.Count(u); ++ci) {
        double sum = 0.0;
        for (const Vertex v_child : candidate_neighbors(u, ci, child)) {
          const uint32_t child_index = candidates.IndexOf(child, v_child);
          if (child_index < candidates.Count(child)) {
            sum += w[i + 1][child_index];
          }
        }
        w[i][ci] = sum;
      }
    }
  }

  const auto suffix_cardinality = [&](size_t p, size_t i) -> double {
    double total = 0.0;
    for (const double x : weights[p][i]) total += x;
    return total;
  };

  // Non-tree edges adjacent to a path's vertices.
  const auto non_tree_edge_count = [&](const std::vector<Vertex>& path) {
    std::vector<bool> on_path(n, false);
    for (const Vertex u : path) on_path[u] = true;
    uint32_t count = 0;
    for (Vertex u = 0; u < n; ++u) {
      for (const Vertex w : query.neighbors(u)) {
        if (u < w && (on_path[u] || on_path[w]) &&
            tree->parent[u] != w && tree->parent[w] != u) {
          ++count;
        }
      }
    }
    return count;
  };

  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);
  std::vector<bool> path_used(paths.size(), false);

  // First path: argmin c(P) / |NT(P)|.
  size_t first = 0;
  double first_score = std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < paths.size(); ++p) {
    const double nt = std::max(1u, non_tree_edge_count(paths[p]));
    const double score = suffix_cardinality(p, 0) / nt;
    if (score < first_score) {
      first_score = score;
      first = p;
    }
  }
  for (const Vertex u : paths[first]) {
    order.push_back(u);
    in_order[u] = true;
  }
  path_used[first] = true;

  // Remaining paths: argmin c(P^u)/|C(u)| at the connection vertex u (the
  // deepest path vertex already ordered; paths share prefixes with the
  // ordered set, so the connection vertex is well defined).
  while (order.size() < n) {
    size_t best_path = paths.size();
    size_t best_connect = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t p = 0; p < paths.size(); ++p) {
      if (path_used[p]) continue;
      size_t connect = 0;
      for (size_t i = 0; i < paths[p].size(); ++i) {
        if (in_order[paths[p][i]]) connect = i;
      }
      if (connect + 1 == paths[p].size()) {
        // Entire path already ordered through shared prefixes.
        path_used[p] = true;
        continue;
      }
      const Vertex u = paths[p][connect];
      const double denom = std::max(1u, candidates.Count(u));
      const double score = suffix_cardinality(p, connect) / denom;
      if (score < best_score) {
        best_score = score;
        best_path = p;
        best_connect = connect;
      }
    }
    if (best_path == paths.size()) break;  // all paths consumed
    for (size_t i = best_connect + 1; i < paths[best_path].size(); ++i) {
      const Vertex u = paths[best_path][i];
      if (!in_order[u]) {
        order.push_back(u);
        in_order[u] = true;
      }
    }
    path_used[best_path] = true;
  }
  SGM_CHECK_MSG(order.size() == n, "CFL order must cover all query vertices");
  return order;
}

}  // namespace sgm
