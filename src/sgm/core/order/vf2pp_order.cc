// VF2++'s ordering (Section 3.2): root at the query vertex whose label is
// rarest in the data graph (largest degree breaking ties), build a BFS tree,
// and emit vertices depth by depth; within a depth, repeatedly pick the
// vertex with the most already-ordered neighbors, breaking ties by larger
// degree and then by rarer label.
#include "sgm/core/order/order.h"

#include <algorithm>
#include <tuple>

namespace sgm {

std::vector<Vertex> Vf2ppOrder(const Graph& query, const Graph& data) {
  const uint32_t n = query.vertex_count();
  const auto label_frequency = [&](Vertex u) -> uint32_t {
    const Label l = query.label(u);
    return l < data.label_count() ? data.LabelFrequency(l) : 0;
  };

  Vertex root = 0;
  for (Vertex u = 1; u < n; ++u) {
    const auto score = std::tuple{label_frequency(u),
                                  ~uint64_t{query.degree(u)}};
    const auto best = std::tuple{label_frequency(root),
                                 ~uint64_t{query.degree(root)}};
    if (score < best) root = u;
  }

  const BfsTree tree = BuildBfsTree(query, root);
  const uint32_t depth = tree.depth();

  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);
  for (uint32_t level = 0; level < depth; ++level) {
    std::vector<Vertex> level_vertices;
    for (Vertex u = 0; u < n; ++u) {
      if (tree.level[u] == level) level_vertices.push_back(u);
    }
    while (!level_vertices.empty()) {
      size_t best_pos = 0;
      std::tuple<uint32_t, uint32_t, int64_t> best_score{0, 0, 0};
      for (size_t i = 0; i < level_vertices.size(); ++i) {
        const Vertex u = level_vertices[i];
        uint32_t backward = 0;
        for (const Vertex w : query.neighbors(u)) {
          if (in_order[w]) ++backward;
        }
        const std::tuple<uint32_t, uint32_t, int64_t> score{
            backward, query.degree(u),
            -static_cast<int64_t>(label_frequency(u))};
        if (i == 0 || score > best_score) {
          best_score = score;
          best_pos = i;
        }
      }
      const Vertex chosen = level_vertices[best_pos];
      level_vertices.erase(level_vertices.begin() +
                           static_cast<ptrdiff_t>(best_pos));
      order.push_back(chosen);
      in_order[chosen] = true;
    }
  }
  return order;
}

}  // namespace sgm
