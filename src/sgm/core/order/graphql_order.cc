// GraphQL's left-deep-join ordering (Section 3.2): start from the query
// vertex with the smallest candidate set, then repeatedly append the
// neighbor of the ordered prefix with the smallest candidate set.
#include "sgm/core/order/order.h"

#include <limits>

namespace sgm {

std::vector<Vertex> GraphQlOrder(const Graph& query,
                                 const CandidateSets& candidates) {
  const uint32_t n = query.vertex_count();
  SGM_CHECK(candidates.query_vertex_count() == n);

  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);

  Vertex start = 0;
  uint32_t best = std::numeric_limits<uint32_t>::max();
  for (Vertex u = 0; u < n; ++u) {
    if (candidates.Count(u) < best) {
      best = candidates.Count(u);
      start = u;
    }
  }
  order.push_back(start);
  in_order[start] = true;

  while (order.size() < n) {
    Vertex next = kInvalidVertex;
    uint32_t next_count = std::numeric_limits<uint32_t>::max();
    for (const Vertex u : order) {
      for (const Vertex w : query.neighbors(u)) {
        if (!in_order[w] && candidates.Count(w) < next_count) {
          next_count = candidates.Count(w);
          next = w;
        }
      }
    }
    SGM_CHECK_MSG(next != kInvalidVertex, "query must be connected");
    order.push_back(next);
    in_order[next] = true;
  }
  return order;
}

}  // namespace sgm
