// RI's structure-based ordering (Section 3.2): start from the query vertex
// of maximum degree; then repeatedly pick, among the unordered neighbors of
// the ordered prefix, the vertex with the most backward neighbors. Ties are
// broken by (1) the number of ordered vertices that are adjacent to the
// candidate and have a neighbor outside the order, then (2) the number of
// the candidate's neighbors that are outside the order and not adjacent to
// any ordered vertex. RI never consults the data graph.
#include "sgm/core/order/order.h"

#include <tuple>

namespace sgm {

std::vector<Vertex> RiOrder(const Graph& query) {
  const uint32_t n = query.vertex_count();
  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);

  Vertex start = 0;
  for (Vertex u = 1; u < n; ++u) {
    if (query.degree(u) > query.degree(start)) start = u;
  }
  order.push_back(start);
  in_order[start] = true;

  while (order.size() < n) {
    Vertex next = kInvalidVertex;
    std::tuple<uint32_t, uint32_t, uint32_t> best_score{0, 0, 0};
    for (Vertex u = 0; u < n; ++u) {
      if (in_order[u]) continue;
      // Primary: number of backward neighbors (vertices of the prefix
      // adjacent to u); 0 means u is not adjacent to the prefix yet.
      uint32_t backward = 0;
      for (const Vertex w : query.neighbors(u)) {
        if (in_order[w]) ++backward;
      }
      if (backward == 0) continue;

      // Tie breaker 1: ordered vertices adjacent to u that still have an
      // unordered neighbor.
      uint32_t frontier = 0;
      for (const Vertex w : query.neighbors(u)) {
        if (!in_order[w]) continue;
        for (const Vertex x : query.neighbors(w)) {
          if (!in_order[x]) {
            ++frontier;
            break;
          }
        }
      }

      // Tie breaker 2: neighbors of u outside the order with no ordered
      // neighbor at all.
      uint32_t lookahead = 0;
      for (const Vertex w : query.neighbors(u)) {
        if (in_order[w]) continue;
        bool touches_order = false;
        for (const Vertex x : query.neighbors(w)) {
          if (in_order[x]) {
            touches_order = true;
            break;
          }
        }
        if (!touches_order) ++lookahead;
      }

      const std::tuple<uint32_t, uint32_t, uint32_t> score{backward, frontier,
                                                           lookahead};
      if (next == kInvalidVertex || score > best_score) {
        best_score = score;
        next = u;
      }
    }
    SGM_CHECK_MSG(next != kInvalidVertex, "query must be connected");
    order.push_back(next);
    in_order[next] = true;
  }
  return order;
}

}  // namespace sgm
