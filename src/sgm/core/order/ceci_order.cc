// CECI's ordering (Section 3.2): the BFS traversal order of the query from
// the root u_r = argmin |C(u)|/d(u).
#include "sgm/core/order/order.h"

#include <algorithm>
#include <limits>

namespace sgm {

std::vector<Vertex> CeciOrder(const Graph& query,
                              const CandidateSets& candidates) {
  SGM_CHECK(candidates.query_vertex_count() == query.vertex_count());
  Vertex root = 0;
  double best = std::numeric_limits<double>::infinity();
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    const double score = static_cast<double>(candidates.Count(u)) /
                         static_cast<double>(std::max(1u, query.degree(u)));
    if (score < best) {
      best = score;
      root = u;
    }
  }
  return BuildBfsTree(query, root).order;
}

}  // namespace sgm
