// DP-iso's adaptive ordering support (Section 3.2): the static BFS order δ
// plus the weight array that estimates, for each candidate v of each query
// vertex u, the number of embeddings of the maximal tree-like path starting
// at u when u is mapped to v. The enumeration engine uses these weights to
// pick the next extendable vertex at run time.
#ifndef SGM_CORE_ORDER_DPISO_ORDER_H_
#define SGM_CORE_ORDER_DPISO_ORDER_H_

#include <span>
#include <vector>

#include "sgm/core/aux_structure.h"
#include "sgm/core/candidate_sets.h"
#include "sgm/graph/graph.h"

namespace sgm {

/// Weight array over candidates, built by dynamic programming along the
/// reverse of δ over maximal tree-like paths.
class DpisoWeights {
 public:
  DpisoWeights() = default;

  /// Builds the weights. `aux` must index every query edge; `delta` is the
  /// BFS traversal order underlying the adaptive strategy.
  static DpisoWeights Build(const Graph& query,
                            const CandidateSets& candidates,
                            const AuxStructure& aux,
                            std::span<const Vertex> delta);

  /// Estimated tree-like-path embeddings when u is mapped to its
  /// cand_index-th candidate.
  double WeightByIndex(Vertex u, uint32_t cand_index) const {
    SGM_CHECK(u < weights_.size());
    SGM_CHECK(cand_index < weights_[u].size());
    return weights_[u][cand_index];
  }

  /// True when every candidate of u carries the same weight, with that
  /// weight in *value. Vertices without tree-like children keep the uniform
  /// initialization 1.0, so this is the common case — and a weight sum over
  /// a candidate subset then collapses to value × |subset|, which the
  /// enumeration engine serves with a count-only (popcount / SIMD)
  /// intersection instead of a per-element weight walk.
  bool UniformWeight(Vertex u, double* value) const {
    SGM_CHECK(u < uniform_.size());
    if (!uniform_[u]) return false;
    *value = weights_[u].empty() ? 0.0 : weights_[u][0];
    return true;
  }

  bool empty() const { return weights_.empty(); }

  /// Approximate heap footprint in bytes (plan-cache memory accounting).
  size_t MemoryBytes() const {
    size_t bytes = sizeof(DpisoWeights) + uniform_.capacity();
    bytes += weights_.capacity() * sizeof(std::vector<double>);
    for (const std::vector<double>& w : weights_) {
      bytes += w.capacity() * sizeof(double);
    }
    return bytes;
  }

 private:
  std::vector<std::vector<double>> weights_;
  /// Per query vertex: 1 when weights_[u] is constant.
  std::vector<uint8_t> uniform_;
};

}  // namespace sgm

#endif  // SGM_CORE_ORDER_DPISO_ORDER_H_
