// QuickSI's infrequent-edge-first ordering (Section 3.2): weight each query
// vertex by the frequency of its label in the data graph and each query edge
// by the number of data edges whose endpoint labels match; start from the
// globally lightest edge and grow a spanning order by repeatedly taking the
// lightest edge leaving the ordered set.
#include "sgm/core/order/order.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace sgm {

namespace {

// Key for an unordered label pair.
uint64_t LabelPairKey(Label a, Label b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<Vertex> QuickSiOrder(const Graph& query, const Graph& data) {
  const uint32_t n = query.vertex_count();
  // An edgeless connected query is a single vertex; the edge-seeded loop
  // below would emit that vertex twice.
  if (n <= 1) return n == 0 ? std::vector<Vertex>{} : std::vector<Vertex>{0};

  // Edge-label-pair frequencies over the data graph.
  std::unordered_map<uint64_t, uint64_t> pair_frequency;
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    for (const Vertex w : data.neighbors(v)) {
      if (v < w) {
        ++pair_frequency[LabelPairKey(data.label(v), data.label(w))];
      }
    }
  }
  const auto edge_weight = [&](Vertex u, Vertex w) -> uint64_t {
    const auto it =
        pair_frequency.find(LabelPairKey(query.label(u), query.label(w)));
    return it == pair_frequency.end() ? 0 : it->second;
  };
  const auto vertex_weight = [&](Vertex u) -> uint64_t {
    const Label l = query.label(u);
    return l < data.label_count() ? data.LabelFrequency(l) : 0;
  };

  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);

  // Seed: the globally lightest query edge; its endpoints enter in ascending
  // vertex-weight order.
  uint64_t best_weight = std::numeric_limits<uint64_t>::max();
  Vertex best_u = 0, best_w = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex w : query.neighbors(u)) {
      if (u < w && edge_weight(u, w) < best_weight) {
        best_weight = edge_weight(u, w);
        best_u = u;
        best_w = w;
      }
    }
  }
  if (vertex_weight(best_w) < vertex_weight(best_u)) std::swap(best_u, best_w);
  order.push_back(best_u);
  order.push_back(best_w);
  in_order[best_u] = in_order[best_w] = true;

  // Grow: lightest edge from the ordered set to an unordered vertex.
  while (order.size() < n) {
    uint64_t grow_weight = std::numeric_limits<uint64_t>::max();
    Vertex next = kInvalidVertex;
    for (const Vertex u : order) {
      for (const Vertex w : query.neighbors(u)) {
        if (!in_order[w] && edge_weight(u, w) < grow_weight) {
          grow_weight = edge_weight(u, w);
          next = w;
        }
      }
    }
    SGM_CHECK_MSG(next != kInvalidVertex, "query must be connected");
    order.push_back(next);
    in_order[next] = true;
  }
  return order;
}

}  // namespace sgm
