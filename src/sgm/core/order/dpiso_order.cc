#include "sgm/core/order/dpiso_order.h"

#include <algorithm>
#include <limits>

#include "sgm/core/order/order.h"

namespace sgm {

std::vector<Vertex> DpisoStaticOrder(const Graph& query,
                                     const CandidateSets& candidates) {
  // DP-iso's underlying BFS order δ starts from argmin |C(u)|/d(u), the
  // same rule as CECI; the adaptive vertex selection that refines δ at run
  // time lives in the enumeration engine (see DpisoWeights).
  return CeciOrder(query, candidates);
}

DpisoWeights DpisoWeights::Build(const Graph& query,
                                 const CandidateSets& candidates,
                                 const AuxStructure& aux,
                                 std::span<const Vertex> delta) {
  const uint32_t n = query.vertex_count();
  SGM_CHECK(delta.size() == n);

  std::vector<uint32_t> position(n, 0);
  for (uint32_t i = 0; i < n; ++i) position[delta[i]] = i;

  // Tree-like children of u: forward neighbors (w.r.t. δ) whose only
  // backward neighbor is u itself.
  std::vector<std::vector<Vertex>> tree_like_children(n);
  for (Vertex u_prime = 0; u_prime < n; ++u_prime) {
    uint32_t backward = 0;
    Vertex parent = kInvalidVertex;
    for (const Vertex w : query.neighbors(u_prime)) {
      if (position[w] < position[u_prime]) {
        ++backward;
        parent = w;
      }
    }
    if (backward == 1) tree_like_children[parent].push_back(u_prime);
  }

  DpisoWeights result;
  result.weights_.resize(n);
  for (Vertex u = 0; u < n; ++u) {
    result.weights_[u].assign(candidates.Count(u), 1.0);
  }

  // Reverse-δ dynamic programming: W[u][v] = min over tree-like children u'
  // of the summed weights of v's candidate neighbors in C(u').
  for (uint32_t i = n; i-- > 0;) {
    const Vertex u = delta[i];
    if (tree_like_children[u].empty()) continue;
    auto& weights_u = result.weights_[u];
    for (uint32_t ci = 0; ci < weights_u.size(); ++ci) {
      double best = std::numeric_limits<double>::infinity();
      for (const Vertex child : tree_like_children[u]) {
        double sum = 0.0;
        for (const Vertex v_child : aux.NeighborsByIndex(u, ci, child)) {
          const uint32_t child_index = candidates.IndexOf(child, v_child);
          sum += result.weights_[child][child_index];
        }
        best = std::min(best, sum);
      }
      weights_u[ci] = best;
    }
  }
  result.uniform_.assign(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    const auto& weights_u = result.weights_[u];
    result.uniform_[u] =
        std::all_of(weights_u.begin(), weights_u.end(),
                    [&](double w) { return w == weights_u.front(); });
  }
  return result;
}

}  // namespace sgm
