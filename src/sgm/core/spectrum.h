// Spectrum analysis (Section 5.3, Figure 14 / Table 6): evaluate a query
// under many randomly sampled matching orders to measure how far a given
// ordering method is from the best order the search could have used.
#ifndef SGM_CORE_SPECTRUM_H_
#define SGM_CORE_SPECTRUM_H_

#include <vector>

#include "sgm/matcher.h"
#include "sgm/util/prng.h"

namespace sgm {

/// Configuration of a spectrum run. The candidate sets and the auxiliary
/// structure are built once (per `filter`), then every sampled order is
/// enumerated with the set-intersection method under its own time budget.
struct SpectrumOptions {
  uint32_t num_orders = 1000;
  double per_order_time_limit_ms = 60000.0;  // the paper uses one minute
  uint64_t max_matches = 100000;
  FilterMethod filter = FilterMethod::kGraphQL;
  IntersectionMethod intersection = IntersectionMethod::kHybrid;
};

/// Outcome of a spectrum run.
struct SpectrumResult {
  /// Enumeration time of every sampled order that finished in its budget.
  std::vector<double> completed_times_ms;
  uint32_t attempted = 0;
  uint32_t completed = 0;
  double best_ms = 0.0;
  double worst_completed_ms = 0.0;
};

/// Samples `options.num_orders` random connected matching orders and
/// enumerates the query under each.
SpectrumResult RunSpectrum(const Graph& query, const Graph& data,
                           const SpectrumOptions& options, Prng* prng);

/// Uniformly samples a valid (connected) matching order: a random start
/// vertex, then repeatedly a uniformly random unordered vertex adjacent to
/// the prefix.
std::vector<Vertex> RandomConnectedOrder(const Graph& query, Prng* prng);

}  // namespace sgm

#endif  // SGM_CORE_SPECTRUM_H_
