// CFL's candidate generation (Section 3.1.1): build a BFS tree q_t of the
// query, generate candidate sets top-down level by level with Generation
// Rule 3.1 (intersecting the neighborhoods of already-generated candidate
// sets, with LDF and NLF checks on admission), prune backwards with
// Filtering Rule 3.1 along non-tree edges at each level, then refine
// bottom-up against down-level neighbors.
#include "sgm/core/filter/filter.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace sgm {

namespace {

// CFL's root selection (also used by its path-based ordering): among core
// vertices (all vertices when the 2-core is empty), take the three with the
// smallest label-frequency/degree ratio, then pick the one with the fewest
// NLF candidates.
Vertex SelectCflRoot(const Graph& query, const Graph& data) {
  std::vector<bool> in_core = TwoCoreMembership(query);
  if (std::find(in_core.begin(), in_core.end(), true) == in_core.end()) {
    in_core.assign(query.vertex_count(), true);
  }
  std::vector<std::pair<double, Vertex>> ranked;
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    if (!in_core[u]) continue;
    const Label l = query.label(u);
    const double freq =
        l < data.label_count() ? data.LabelFrequency(l) : 0.0;
    ranked.emplace_back(freq / std::max(1u, query.degree(u)), u);
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > 3) ranked.resize(3);

  Vertex best = ranked.front().second;
  uint64_t best_count = std::numeric_limits<uint64_t>::max();
  for (const auto& [score, u] : ranked) {
    uint64_t count = 0;
    const Label l = query.label(u);
    if (l < data.label_count()) {
      for (const Vertex v : data.VerticesWithLabel(l)) {
        if (data.degree(v) >= query.degree(u) &&
            PassesNlf(query, data, u, v)) {
          ++count;
        }
      }
    }
    if (count < best_count) {
      best_count = count;
      best = u;
    }
  }
  return best;
}

}  // namespace

FilterResult RunCflFilter(const Graph& query, const Graph& data) {
  const Vertex root = SelectCflRoot(query, data);
  BfsTree tree = BuildBfsTree(query, root);
  const uint32_t n = query.vertex_count();

  CandidateSets candidates(n);
  std::vector<uint8_t> scratch(data.vertex_count(), 0);

  // Position of each vertex in the BFS order (earlier = processed first).
  std::vector<uint32_t> position(n, 0);
  for (uint32_t i = 0; i < n; ++i) position[tree.order[i]] = i;

  // --- Generation phase (top-down along the BFS order). ---
  // Count-based implementation of Generation Rule 3.1: cnt[w] counts how
  // many already-processed neighbors u' of u have a candidate adjacent to w;
  // w qualifies when cnt[w] equals the number of such neighbors and it
  // passes LDF and NLF.
  std::vector<uint32_t> cnt(data.vertex_count(), 0);
  std::vector<uint32_t> stamp(data.vertex_count(), 0);
  uint32_t stamp_epoch = 0;
  std::vector<Vertex> touched;

  for (uint32_t i = 0; i < n; ++i) {
    const Vertex u = tree.order[i];
    auto& set = candidates.mutable_candidates(u);
    if (u == root) {
      const Label l = query.label(u);
      if (l < data.label_count()) {
        for (const Vertex v : data.VerticesWithLabel(l)) {
          if (data.degree(v) >= query.degree(u) &&
              PassesNlf(query, data, u, v)) {
            set.push_back(v);
          }
        }
      }
    } else {
      // Collect already-processed neighbors of u.
      std::vector<Vertex> processed;
      for (const Vertex u_prime : query.neighbors(u)) {
        if (position[u_prime] < i) processed.push_back(u_prime);
      }
      SGM_CHECK(!processed.empty());  // BFS parent is always processed
      touched.clear();
      for (const Vertex u_prime : processed) {
        ++stamp_epoch;
        for (const Vertex v_prime : candidates.candidates(u_prime)) {
          for (const Vertex w : data.neighbors(v_prime)) {
            if (stamp[w] == stamp_epoch) continue;  // dedup within u'
            stamp[w] = stamp_epoch;
            if (cnt[w] == 0) touched.push_back(w);
            ++cnt[w];
          }
        }
      }
      for (const Vertex w : touched) {
        if (cnt[w] == processed.size() && PassesLdf(query, data, u, w) &&
            PassesNlf(query, data, u, w)) {
          set.push_back(w);
        }
        cnt[w] = 0;
      }
      std::sort(set.begin(), set.end());

      // Backward pruning along the non-tree edges just closed by u.
      for (const Vertex u_prime : processed) {
        if (u_prime == tree.parent[u]) continue;
        PruneByNeighborConstraint(data,
                                  &candidates.mutable_candidates(u_prime),
                                  candidates.candidates(u), &scratch);
      }
    }
    if (set.empty()) {
      // Some query vertex has no candidate: the query has no match. Leave
      // the remaining sets empty and return.
      return {std::move(candidates), std::move(tree), {}};
    }
  }

  // --- Refinement phase (bottom-up): prune C(u) against every neighbor at
  // a deeper BFS level (tree children and downward non-tree edges). ---
  for (uint32_t i = n; i-- > 0;) {
    const Vertex u = tree.order[i];
    for (const Vertex u_prime : query.neighbors(u)) {
      if (tree.level[u_prime] > tree.level[u]) {
        PruneByNeighborConstraint(data, &candidates.mutable_candidates(u),
                                  candidates.candidates(u_prime), &scratch);
      }
    }
  }

  return {std::move(candidates), std::move(tree), {}};
}

}  // namespace sgm
