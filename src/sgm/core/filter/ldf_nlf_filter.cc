// The basic filters of Section 3.1.1: label-and-degree filtering (LDF) and
// neighbor-label-frequency filtering (NLF).
#include "sgm/core/filter/filter.h"

namespace sgm {

bool PassesLdf(const Graph& query, const Graph& data, Vertex u, Vertex v) {
  const Label l = query.label(u);
  if (l >= data.label_count()) return false;
  return data.label(v) == l && data.degree(v) >= query.degree(u);
}

bool PassesNlf(const Graph& query, const Graph& data, Vertex u, Vertex v) {
  for (const auto& [label, count] : query.NeighborLabelFrequency(u)) {
    if (data.NeighborCountWithLabel(v, label) < count) return false;
  }
  return true;
}

CandidateSets BuildLdfCandidates(const Graph& query, const Graph& data) {
  CandidateSets candidates(query.vertex_count());
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    const Label l = query.label(u);
    if (l >= data.label_count()) continue;  // label absent from data graph
    auto& set = candidates.mutable_candidates(u);
    for (const Vertex v : data.VerticesWithLabel(l)) {
      if (data.degree(v) >= query.degree(u)) set.push_back(v);
    }
    // VerticesWithLabel is sorted, so the set already is.
  }
  return candidates;
}

CandidateSets BuildNlfCandidates(const Graph& query, const Graph& data) {
  CandidateSets candidates(query.vertex_count());
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    const Label l = query.label(u);
    if (l >= data.label_count()) continue;
    auto& set = candidates.mutable_candidates(u);
    for (const Vertex v : data.VerticesWithLabel(l)) {
      if (data.degree(v) >= query.degree(u) && PassesNlf(query, data, u, v)) {
        set.push_back(v);
      }
    }
  }
  return candidates;
}

}  // namespace sgm
