// GraphQL's candidate generation (Section 3.1.1 of the paper):
//
//  1. Local pruning — the profile of u (lexicographically sorted labels of u
//     and its neighbors within distance r = 1) must be a sub-sequence of the
//     profile of v. With sorted profiles this is equivalent to a per-label
//     count dominance test, which we evaluate using the precomputed
//     neighbor-label-frequency tables.
//  2. Global refinement — the pseudo subgraph isomorphism test: for
//     v ∈ C(u), build the bipartite graph B between N(u) and N(v) with an
//     edge (u', v') whenever v' ∈ C(u'), and require a semi-perfect matching
//     (all of N(u) matched). Repeated for a user-specified number of rounds.
#include "sgm/core/filter/filter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sgm/util/timer.h"

namespace sgm {

namespace {

// Kuhn's augmenting-path algorithm deciding whether the bipartite graph
// between left = N(u) and right = N(v) has a matching covering all of left.
// adjacency[i] lists right indices reachable from left index i.
class SemiPerfectMatcher {
 public:
  bool Covers(const std::vector<std::vector<uint32_t>>& adjacency,
              uint32_t right_size) {
    const auto left_size = static_cast<uint32_t>(adjacency.size());
    right_match_.assign(right_size, kUnmatched);
    for (uint32_t i = 0; i < left_size; ++i) {
      visited_.assign(right_size, false);
      if (!TryAugment(adjacency, i)) return false;
    }
    return true;
  }

 private:
  static constexpr uint32_t kUnmatched = 0xffffffffu;

  bool TryAugment(const std::vector<std::vector<uint32_t>>& adjacency,
                  uint32_t left) {
    for (const uint32_t right : adjacency[left]) {
      if (visited_[right]) continue;
      visited_[right] = true;
      if (right_match_[right] == kUnmatched ||
          TryAugment(adjacency, right_match_[right])) {
        right_match_[right] = left;
        return true;
      }
    }
    return false;
  }

  std::vector<uint32_t> right_match_;
  std::vector<bool> visited_;
};

// Profile dominance at r = 1: every label in {L(u)} ∪ L(N(u)) must occur in
// {L(v)} ∪ L(N(v)) at least as many times. Labels of u and v are equal by
// LDF, so comparing neighbor-label counts suffices — except the neighbor
// multiset of u may contain L(u) itself, which v's own label also covers.
bool ProfileDominates(const Graph& query, const Graph& data, Vertex u,
                      Vertex v) {
  for (const auto& [label, count] : query.NeighborLabelFrequency(u)) {
    uint32_t available = data.NeighborCountWithLabel(v, label);
    // v itself contributes one occurrence of its own label to the profile,
    // matching the occurrence contributed by u (labels equal under LDF), so
    // self labels cancel and no adjustment is needed.
    if (available < count) return false;
  }
  return true;
}

// Generic radius-r profile: label counts of the distinct vertices within
// distance <= radius of `center` (excluding the center; its own label
// cancels against the other side's under LDF). Stamp-based BFS, O(edges
// explored) per call.
class ProfileCollector {
 public:
  explicit ProfileCollector(const Graph& graph)
      : graph_(graph), stamp_(graph.vertex_count(), 0) {}

  // Returns counts indexed by label in a small sorted vector.
  std::vector<std::pair<Label, uint32_t>> Collect(Vertex center,
                                                  uint32_t radius) {
    ++epoch_;
    counts_.clear();
    frontier_ = {center};
    stamp_[center] = epoch_;
    for (uint32_t hop = 0; hop < radius; ++hop) {
      next_.clear();
      for (const Vertex v : frontier_) {
        for (const Vertex w : graph_.neighbors(v)) {
          if (stamp_[w] == epoch_) continue;
          stamp_[w] = epoch_;
          next_.push_back(w);
          AddLabel(graph_.label(w));
        }
      }
      frontier_.swap(next_);
    }
    std::sort(counts_.begin(), counts_.end());
    return counts_;
  }

 private:
  void AddLabel(Label label) {
    for (auto& [l, c] : counts_) {
      if (l == label) {
        ++c;
        return;
      }
    }
    counts_.emplace_back(label, 1);
  }

  const Graph& graph_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::vector<std::pair<Label, uint32_t>> counts_;
};

// Sub-multiset test over sorted (label, count) vectors.
bool CountsDominated(const std::vector<std::pair<Label, uint32_t>>& needed,
                     const std::vector<std::pair<Label, uint32_t>>& have) {
  size_t j = 0;
  for (const auto& [label, count] : needed) {
    while (j < have.size() && have[j].first < label) ++j;
    if (j == have.size() || have[j].first != label || have[j].second < count) {
      return false;
    }
  }
  return true;
}

}  // namespace

FilterResult RunGraphQlFilter(const Graph& query, const Graph& data,
                              const FilterOptions& options) {
  // Step 1: local pruning over the LDF candidates. Radius 1 uses the
  // precomputed neighbor-label tables; larger radii additionally require
  // profile dominance at every hop count up to the radius (each check is
  // individually complete, so the conjunction is too, and radius r strictly
  // refines radius r-1).
  SGM_CHECK(options.graphql_profile_radius >= 1);
  Timer round_timer;
  std::vector<FilterRound> rounds;
  ProfileCollector query_profiles(query);
  ProfileCollector data_profiles(data);
  CandidateSets candidates(query.vertex_count());
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    const Label l = query.label(u);
    if (l >= data.label_count()) continue;
    std::vector<std::vector<std::pair<Label, uint32_t>>> needed_per_radius;
    for (uint32_t r = 2; r <= options.graphql_profile_radius; ++r) {
      needed_per_radius.push_back(query_profiles.Collect(u, r));
    }
    auto& set = candidates.mutable_candidates(u);
    for (const Vertex v : data.VerticesWithLabel(l)) {
      if (data.degree(v) < query.degree(u)) continue;
      bool dominated = ProfileDominates(query, data, u, v);
      for (uint32_t r = 2; dominated && r <= options.graphql_profile_radius;
           ++r) {
        dominated = CountsDominated(needed_per_radius[r - 2],
                                    data_profiles.Collect(v, r));
      }
      if (dominated) set.push_back(v);
    }
  }

  rounds.push_back({"local-pruning", candidates.TotalCount(),
                    round_timer.ElapsedMillis()});

  // Step 2: global refinement. Membership flags over the data graph are kept
  // per query vertex and updated as candidates are pruned, so a check
  // "v' ∈ C(u')" is O(1).
  std::vector<std::vector<uint8_t>> member(query.vertex_count());
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    member[u].assign(data.vertex_count(), 0);
    for (const Vertex v : candidates.candidates(u)) member[u][v] = 1;
  }

  SemiPerfectMatcher matcher;
  std::vector<std::vector<uint32_t>> adjacency;
  for (uint32_t round = 0; round < options.graphql_refinement_rounds; ++round) {
    round_timer.Reset();
    bool changed = false;
    for (Vertex u = 0; u < query.vertex_count(); ++u) {
      auto& set = candidates.mutable_candidates(u);
      const auto query_nbrs = query.neighbors(u);
      size_t out = 0;
      for (const Vertex v : set) {
        const auto data_nbrs = data.neighbors(v);
        adjacency.assign(query_nbrs.size(), {});
        bool feasible = true;
        for (size_t i = 0; i < query_nbrs.size(); ++i) {
          const Vertex u_prime = query_nbrs[i];
          for (size_t j = 0; j < data_nbrs.size(); ++j) {
            if (member[u_prime][data_nbrs[j]]) {
              adjacency[i].push_back(static_cast<uint32_t>(j));
            }
          }
          if (adjacency[i].empty()) {
            feasible = false;  // some neighbor of u has no candidate near v
            break;
          }
        }
        if (feasible &&
            matcher.Covers(adjacency, static_cast<uint32_t>(data_nbrs.size()))) {
          set[out++] = v;
        } else {
          member[u][v] = 0;
          changed = true;
        }
      }
      set.resize(out);
    }
    rounds.push_back({"refine-" + std::to_string(round + 1),
                      candidates.TotalCount(), round_timer.ElapsedMillis()});
    if (!changed) break;
  }

  return {std::move(candidates), std::nullopt, std::move(rounds)};
}

}  // namespace sgm
