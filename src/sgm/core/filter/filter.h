// Filtering methods: generation and pruning of candidate vertex sets
// (Section 3.1 of the paper).
//
// Every method produces complete candidate sets (Definition 2.2): a data
// vertex participating in any match is never pruned. The methods differ in
// pruning power and cost:
//
//   kLDF     label-and-degree baseline (all algorithms start from it)
//   kNLF     LDF + neighbor label frequency
//   kGraphQL local profile pruning + global pseudo-isomorphism refinement
//   kCFL     BFS-tree top-down generation + bottom-up refinement
//   kCECI    BFS-tree forward construction + reverse refinement
//   kDPiso   LDF + k alternating refinement passes over the BFS order
//   kSteady  fixpoint of Filtering Rule 3.1 (the STEADY baseline of Fig. 8)
#ifndef SGM_CORE_FILTER_FILTER_H_
#define SGM_CORE_FILTER_FILTER_H_

#include <optional>
#include <string>
#include <vector>

#include "sgm/core/candidate_sets.h"
#include "sgm/graph/graph.h"
#include "sgm/graph/graph_utils.h"

namespace sgm {

/// Identifies a candidate filtering method.
enum class FilterMethod : uint8_t {
  kLDF = 0,
  kNLF = 1,
  kGraphQL = 2,
  kCFL = 3,
  kCECI = 4,
  kDPiso = 5,
  kSteady = 6,
};

/// Returns a short name ("LDF", "GQL", "CFL", ...), matching the paper's
/// abbreviations.
const char* FilterMethodName(FilterMethod method);

/// Tuning knobs for the filtering methods.
struct FilterOptions {
  /// Global-refinement rounds of GraphQL's pseudo subgraph isomorphism
  /// check (the user-specified k of Section 3.1.1).
  uint32_t graphql_refinement_rounds = 2;
  /// Radius r of GraphQL's neighborhood profile (labels of all vertices
  /// within r hops). The paper analyzes r = 1; r = 2 prunes harder at a
  /// quadratic per-vertex cost.
  uint32_t graphql_profile_radius = 1;
  /// Refinement passes of DP-iso (the original paper sets k = 3).
  uint32_t dpiso_refinement_rounds = 3;
};

/// One pruning step of a filtering method, recorded for observability: how
/// many candidates survived the step (sum of |C(u)| over all query
/// vertices) and how long it took. The sequence of rounds is what Figure 8
/// of the paper plots per method, and what RunReport carries per run.
struct FilterRound {
  std::string name;
  /// Sum of |C(u)| after this round.
  uint64_t total_candidates = 0;
  double ms = 0.0;
};

/// Output of a filtering method. The BFS tree is populated by the methods
/// that build one (CFL, CECI, DP-iso) so that downstream components (CFL's
/// path-based ordering, tree-edge aux structures) can reuse it. `rounds`
/// records the per-round pruning trajectory; RunFilter guarantees at least
/// one terminal round for methods without internal instrumentation.
struct FilterResult {
  CandidateSets candidates;
  std::optional<BfsTree> bfs_tree;
  std::vector<FilterRound> rounds;
};

/// Runs the selected filtering method. The query must be connected.
FilterResult RunFilter(FilterMethod method, const Graph& query,
                       const Graph& data,
                       const FilterOptions& options = FilterOptions{});

// ---- Individual methods (callable directly; RunFilter dispatches). ----

/// Label-and-degree filter: C(u) = {v | L(v)=L(u), d(v) >= d(u)}.
CandidateSets BuildLdfCandidates(const Graph& query, const Graph& data);

/// LDF + neighbor-label-frequency filter.
CandidateSets BuildNlfCandidates(const Graph& query, const Graph& data);

FilterResult RunGraphQlFilter(const Graph& query, const Graph& data,
                              const FilterOptions& options);
FilterResult RunCflFilter(const Graph& query, const Graph& data);
FilterResult RunCeciFilter(const Graph& query, const Graph& data);
FilterResult RunDpisoFilter(const Graph& query, const Graph& data,
                            const FilterOptions& options);
FilterResult RunSteadyFilter(const Graph& query, const Graph& data);

// ---- Shared predicates and helpers used across filter implementations. ----

/// LDF predicate for a single (query vertex, data vertex) pair.
bool PassesLdf(const Graph& query, const Graph& data, Vertex u, Vertex v);

/// NLF predicate: every neighbor label of u appears at least as often
/// around v. Implies nothing about LDF; callers typically check both.
bool PassesNlf(const Graph& query, const Graph& data, Vertex u, Vertex v);

/// In-place application of Filtering Rule 3.1: removes from *candidates_u
/// every vertex with no neighbor in candidates_constraint. `scratch` must be
/// a byte array of size data.vertex_count(), all zero on entry; it is
/// restored to all-zero before returning. Returns true when anything was
/// pruned.
bool PruneByNeighborConstraint(const Graph& data,
                               std::vector<Vertex>* candidates_u,
                               std::span<const Vertex> candidates_constraint,
                               std::vector<uint8_t>* scratch);

/// Root selection shared by CECI and DP-iso:
/// argmin_u |C_seed(u)| / d(u) where C_seed is produced by `seed_candidates`.
Vertex SelectRootMinCandidatesOverDegree(const Graph& query,
                                         const CandidateSets& seed);

}  // namespace sgm

#endif  // SGM_CORE_FILTER_FILTER_H_
