#include "sgm/core/filter/filter.h"

#include <algorithm>
#include <limits>

#include "sgm/util/timer.h"

namespace sgm {

const char* FilterMethodName(FilterMethod method) {
  switch (method) {
    case FilterMethod::kLDF:
      return "LDF";
    case FilterMethod::kNLF:
      return "NLF";
    case FilterMethod::kGraphQL:
      return "GQL";
    case FilterMethod::kCFL:
      return "CFL";
    case FilterMethod::kCECI:
      return "CECI";
    case FilterMethod::kDPiso:
      return "DP";
    case FilterMethod::kSteady:
      return "STEADY";
  }
  return "unknown";
}

FilterResult RunFilter(FilterMethod method, const Graph& query,
                       const Graph& data, const FilterOptions& options) {
  Timer timer;
  FilterResult result;
  switch (method) {
    case FilterMethod::kLDF:
      result = {BuildLdfCandidates(query, data), std::nullopt, {}};
      break;
    case FilterMethod::kNLF:
      result = {BuildNlfCandidates(query, data), std::nullopt, {}};
      break;
    case FilterMethod::kGraphQL:
      result = RunGraphQlFilter(query, data, options);
      break;
    case FilterMethod::kCFL:
      result = RunCflFilter(query, data);
      break;
    case FilterMethod::kCECI:
      result = RunCeciFilter(query, data);
      break;
    case FilterMethod::kDPiso:
      result = RunDpisoFilter(query, data, options);
      break;
    case FilterMethod::kSteady:
      result = RunSteadyFilter(query, data);
      break;
  }
  // Methods without internal round instrumentation still contribute one
  // terminal round, so RunReport::filter_rounds is never empty.
  if (result.rounds.empty()) {
    result.rounds.push_back({FilterMethodName(method),
                             result.candidates.TotalCount(),
                             timer.ElapsedMillis()});
  }
  return result;
}

bool PruneByNeighborConstraint(const Graph& data,
                               std::vector<Vertex>* candidates_u,
                               std::span<const Vertex> candidates_constraint,
                               std::vector<uint8_t>* scratch) {
  SGM_CHECK(scratch->size() == data.vertex_count());
  for (const Vertex v : candidates_constraint) (*scratch)[v] = 1;
  size_t out = 0;
  for (const Vertex v : *candidates_u) {
    bool has_neighbor = false;
    for (const Vertex w : data.neighbors(v)) {
      if ((*scratch)[w]) {
        has_neighbor = true;
        break;
      }
    }
    if (has_neighbor) (*candidates_u)[out++] = v;
  }
  const bool pruned = out != candidates_u->size();
  candidates_u->resize(out);
  for (const Vertex v : candidates_constraint) (*scratch)[v] = 0;
  return pruned;
}

Vertex SelectRootMinCandidatesOverDegree(const Graph& query,
                                         const CandidateSets& seed) {
  Vertex best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    const double score = static_cast<double>(seed.Count(u)) /
                         static_cast<double>(std::max(1u, query.degree(u)));
    if (score < best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

}  // namespace sgm
