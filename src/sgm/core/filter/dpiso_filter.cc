// DP-iso's candidate-space construction (Section 3.1.1): candidates start
// from LDF; k alternating refinement passes then apply Filtering Rule 3.1 —
// odd passes walk the reverse BFS order δ and refine C(u) against the
// neighbors positioned after u in δ (with an NLF check folded into the first
// pass), even passes walk δ forward refining against the neighbors
// positioned before u.
#include "sgm/core/filter/filter.h"

#include <string>
#include <vector>

#include "sgm/util/timer.h"

namespace sgm {

FilterResult RunDpisoFilter(const Graph& query, const Graph& data,
                            const FilterOptions& options) {
  const uint32_t n = query.vertex_count();

  Timer round_timer;
  std::vector<FilterRound> rounds;
  const CandidateSets seed = BuildLdfCandidates(query, data);
  rounds.push_back({"ldf-seed", seed.TotalCount(),
                    round_timer.ElapsedMillis()});
  const Vertex root = SelectRootMinCandidatesOverDegree(query, seed);
  BfsTree tree = BuildBfsTree(query, root);

  CandidateSets candidates(n);
  for (Vertex u = 0; u < n; ++u) {
    const auto s = seed.candidates(u);
    candidates.mutable_candidates(u).assign(s.begin(), s.end());
  }

  std::vector<uint32_t> position(n, 0);
  for (uint32_t i = 0; i < n; ++i) position[tree.order[i]] = i;

  std::vector<uint8_t> scratch(data.vertex_count(), 0);
  for (uint32_t pass = 0; pass < options.dpiso_refinement_rounds; ++pass) {
    round_timer.Reset();
    const bool reverse = (pass % 2 == 0);  // first pass walks reverse δ
    for (uint32_t step = 0; step < n; ++step) {
      const uint32_t i = reverse ? n - 1 - step : step;
      const Vertex u = tree.order[i];
      auto& set = candidates.mutable_candidates(u);
      if (pass == 0) {
        // Fold the NLF check into the first pass, as DP-iso does.
        size_t out = 0;
        for (const Vertex v : set) {
          if (PassesNlf(query, data, u, v)) set[out++] = v;
        }
        set.resize(out);
      }
      for (const Vertex u_prime : query.neighbors(u)) {
        const bool relevant = reverse ? position[u_prime] > i
                                      : position[u_prime] < i;
        if (relevant) {
          PruneByNeighborConstraint(data, &set,
                                    candidates.candidates(u_prime), &scratch);
        }
      }
      if (set.empty()) {
        rounds.push_back({"pass-" + std::to_string(pass + 1),
                          candidates.TotalCount(),
                          round_timer.ElapsedMillis()});
        return {std::move(candidates), std::move(tree), std::move(rounds)};
      }
    }
    rounds.push_back({"pass-" + std::to_string(pass + 1),
                      candidates.TotalCount(), round_timer.ElapsedMillis()});
  }

  return {std::move(candidates), std::move(tree), std::move(rounds)};
}

}  // namespace sgm
