// STEADY baseline of Figure 8: the steady state of Filtering Rule 3.1.
// Candidates are seeded by NLF, then the rule is applied over every directed
// query edge until a fixpoint is reached. This is the strongest pruning the
// rule can give, and the paper uses it as the lower-bound reference when
// comparing the practical filters (which stop after a bounded number of
// refinement steps).
#include "sgm/core/filter/filter.h"

#include <string>
#include <vector>

#include "sgm/util/timer.h"

namespace sgm {

FilterResult RunSteadyFilter(const Graph& query, const Graph& data) {
  const uint32_t n = query.vertex_count();
  Timer round_timer;
  std::vector<FilterRound> rounds;
  CandidateSets candidates(n);
  const CandidateSets seed = BuildNlfCandidates(query, data);
  rounds.push_back({"nlf-seed", seed.TotalCount(),
                    round_timer.ElapsedMillis()});
  for (Vertex u = 0; u < n; ++u) {
    const auto s = seed.candidates(u);
    candidates.mutable_candidates(u).assign(s.begin(), s.end());
  }

  std::vector<uint8_t> scratch(data.vertex_count(), 0);
  bool changed = true;
  uint32_t iteration = 0;
  while (changed) {
    round_timer.Reset();
    ++iteration;
    changed = false;
    for (Vertex u = 0; u < n; ++u) {
      auto& set = candidates.mutable_candidates(u);
      for (const Vertex u_prime : query.neighbors(u)) {
        if (PruneByNeighborConstraint(data, &set,
                                      candidates.candidates(u_prime),
                                      &scratch)) {
          changed = true;
        }
      }
      if (set.empty()) {
        rounds.push_back({"fixpoint-" + std::to_string(iteration),
                          candidates.TotalCount(),
                          round_timer.ElapsedMillis()});
        return {std::move(candidates), std::nullopt, std::move(rounds)};
      }
    }
    rounds.push_back({"fixpoint-" + std::to_string(iteration),
                      candidates.TotalCount(), round_timer.ElapsedMillis()});
  }
  return {std::move(candidates), std::nullopt, std::move(rounds)};
}

}  // namespace sgm
