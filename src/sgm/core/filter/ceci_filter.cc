// CECI's candidate generation (Section 3.1.1): BFS traversal order δ from
// the root argmin |C_NLF(u)|/d(u). Phase 1 constructs C(u) from the tree
// parent's candidates (Generation Rule 3.1 with LDF/NLF admission checks)
// and prunes bidirectionally along backward non-tree edges. Phase 2 refines
// along the reverse of δ using the tree children (Filtering Rule 3.1).
#include "sgm/core/filter/filter.h"

#include <algorithm>

namespace sgm {

FilterResult RunCeciFilter(const Graph& query, const Graph& data) {
  const uint32_t n = query.vertex_count();

  // Root selection over NLF seed candidates.
  const CandidateSets seed = BuildNlfCandidates(query, data);
  const Vertex root = SelectRootMinCandidatesOverDegree(query, seed);
  BfsTree tree = BuildBfsTree(query, root);

  CandidateSets candidates(n);
  std::vector<uint8_t> scratch(data.vertex_count(), 0);
  std::vector<uint32_t> position(n, 0);
  for (uint32_t i = 0; i < n; ++i) position[tree.order[i]] = i;

  // --- Phase 1: construction and filtering along δ. ---
  std::vector<uint32_t> stamp(data.vertex_count(), 0);
  uint32_t stamp_epoch = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const Vertex u = tree.order[i];
    auto& set = candidates.mutable_candidates(u);
    if (u == root) {
      set.assign(seed.candidates(u).begin(), seed.candidates(u).end());
    } else {
      // Generate from the tree parent: distinct neighbors of C(u.p) passing
      // LDF and NLF.
      const Vertex parent = tree.parent[u];
      ++stamp_epoch;
      for (const Vertex v_parent : candidates.candidates(parent)) {
        for (const Vertex w : data.neighbors(v_parent)) {
          if (stamp[w] == stamp_epoch) continue;
          stamp[w] = stamp_epoch;
          if (PassesLdf(query, data, u, w) && PassesNlf(query, data, u, w)) {
            set.push_back(w);
          }
        }
      }
      std::sort(set.begin(), set.end());

      // Rule out parent candidates with no neighbor in C(u).
      PruneByNeighborConstraint(data, &candidates.mutable_candidates(parent),
                                candidates.candidates(u), &scratch);

      // Backward non-tree edges: prune C(u) against C(u_n) and vice versa.
      for (const Vertex u_n : query.neighbors(u)) {
        if (position[u_n] < i && u_n != parent) {
          PruneByNeighborConstraint(data, &set, candidates.candidates(u_n),
                                    &scratch);
          PruneByNeighborConstraint(data, &candidates.mutable_candidates(u_n),
                                    candidates.candidates(u), &scratch);
        }
      }
    }
    if (set.empty()) return {std::move(candidates), std::move(tree), {}};
  }

  // --- Phase 2: refinement along the reverse of δ using tree children. ---
  for (uint32_t i = n; i-- > 0;) {
    const Vertex u = tree.order[i];
    for (const Vertex child : tree.children[u]) {
      PruneByNeighborConstraint(data, &candidates.mutable_candidates(u),
                                candidates.candidates(child), &scratch);
    }
  }

  return {std::move(candidates), std::move(tree), {}};
}

}  // namespace sgm
