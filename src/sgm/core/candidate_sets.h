// Candidate vertex sets C(u) — one sorted set of data vertices per query
// vertex (Definition 2.2 of the paper). Produced by the filtering methods
// and consumed by the ordering methods, the auxiliary structure and the
// enumeration engine.
#ifndef SGM_CORE_CANDIDATE_SETS_H_
#define SGM_CORE_CANDIDATE_SETS_H_

#include <span>
#include <vector>

#include "sgm/core/types.h"

namespace sgm {

/// Per-query-vertex candidate sets. All sets are kept sorted ascending;
/// mutating accessors expect callers to restore that invariant (or call
/// SortAll) before the sets are consumed.
class CandidateSets {
 public:
  CandidateSets() = default;

  /// Creates empty candidate sets for `query_vertex_count` query vertices.
  explicit CandidateSets(uint32_t query_vertex_count)
      : sets_(query_vertex_count) {}

  uint32_t query_vertex_count() const {
    return static_cast<uint32_t>(sets_.size());
  }

  /// Sorted candidates of query vertex u.
  std::span<const Vertex> candidates(Vertex u) const {
    SGM_CHECK(u < sets_.size());
    return sets_[u];
  }

  /// Mutable access for filter construction.
  std::vector<Vertex>& mutable_candidates(Vertex u) {
    SGM_CHECK(u < sets_.size());
    return sets_[u];
  }

  uint32_t Count(Vertex u) const {
    SGM_CHECK(u < sets_.size());
    return static_cast<uint32_t>(sets_[u].size());
  }

  /// True iff the sorted set C(u) contains the data vertex v.
  bool Contains(Vertex u, Vertex v) const;

  /// Index of v within C(u), or C(u).size() when absent (binary search).
  uint32_t IndexOf(Vertex u, Vertex v) const;

  /// Sorts every set ascending and drops duplicates.
  void SortAll();

  /// True iff some C(u) is empty — the query then has no match.
  bool AnyEmpty() const;

  /// Sum of |C(u)| over all query vertices.
  uint64_t TotalCount() const;

  /// (1/|V(q)|) * sum |C(u)| — the candidate-count metric of Section 4.
  double AverageCount() const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<Vertex>> sets_;
};

}  // namespace sgm

#endif  // SGM_CORE_CANDIDATE_SETS_H_
