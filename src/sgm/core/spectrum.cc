#include "sgm/core/spectrum.h"

#include <algorithm>
#include <limits>

namespace sgm {

std::vector<Vertex> RandomConnectedOrder(const Graph& query, Prng* prng) {
  const uint32_t n = query.vertex_count();
  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> in_order(n, false);

  const auto start = static_cast<Vertex>(prng->NextBounded(n));
  order.push_back(start);
  in_order[start] = true;

  std::vector<Vertex> frontier;
  while (order.size() < n) {
    frontier.clear();
    for (Vertex u = 0; u < n; ++u) {
      if (in_order[u]) continue;
      for (const Vertex w : query.neighbors(u)) {
        if (in_order[w]) {
          frontier.push_back(u);
          break;
        }
      }
    }
    SGM_CHECK_MSG(!frontier.empty(), "query must be connected");
    const Vertex next = frontier[prng->NextBounded(frontier.size())];
    order.push_back(next);
    in_order[next] = true;
  }
  return order;
}

SpectrumResult RunSpectrum(const Graph& query, const Graph& data,
                           const SpectrumOptions& options, Prng* prng) {
  SpectrumResult result;

  FilterResult filtered = RunFilter(options.filter, query, data);
  if (filtered.candidates.AnyEmpty()) {
    // No matches under any order; every order completes instantly.
    result.attempted = result.completed = options.num_orders;
    result.completed_times_ms.assign(options.num_orders, 0.0);
    return result;
  }
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query, data, filtered.candidates);

  EnumerateOptions enumerate_options;
  enumerate_options.lc_method = LocalCandidateMethod::kIntersect;
  enumerate_options.max_matches = options.max_matches;
  enumerate_options.time_limit_ms = options.per_order_time_limit_ms;
  enumerate_options.intersection = options.intersection;

  result.best_ms = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < options.num_orders; ++i) {
    const std::vector<Vertex> order = RandomConnectedOrder(query, prng);
    const EnumerateStats stats = Enumerate(
        query, data, filtered.candidates, &aux, order, enumerate_options);
    ++result.attempted;
    if (stats.timed_out) continue;  // omit orders exceeding their budget
    ++result.completed;
    result.completed_times_ms.push_back(stats.enumeration_ms);
    result.best_ms = std::min(result.best_ms, stats.enumeration_ms);
    result.worst_completed_ms =
        std::max(result.worst_completed_ms, stats.enumeration_ms);
  }
  if (result.completed == 0) result.best_ms = 0.0;
  return result;
}

}  // namespace sgm
