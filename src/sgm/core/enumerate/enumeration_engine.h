// Reusable enumeration engine: the recursive backtracking search of
// Algorithm 1 as a long-lived object. Construction precomputes the
// order-dependent structures (backward neighbors, pivots, masks) and
// allocates every scratch buffer (partial mapping, inverse index, per-depth
// local-candidate buffers, intersection scratch) exactly once; afterwards
// the engine can run any number of root slices or stolen depth-1 subtrees
// without reallocating — the per-worker reuse that makes fine-grained
// work-stealing dispatch affordable (see sgm/parallel/).
//
// Single-run callers should keep using the Enumerate() wrapper in
// enumerator.h; this header exists for schedulers that own one engine per
// worker.
#ifndef SGM_CORE_ENUMERATE_ENUMERATION_ENGINE_H_
#define SGM_CORE_ENUMERATE_ENUMERATION_ENGINE_H_

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "sgm/core/aux_structure.h"
#include "sgm/core/candidate_sets.h"
#include "sgm/core/enumerate/enumerator.h"
#include "sgm/core/enumerate/failing_set.h"
#include "sgm/core/order/dpiso_order.h"
#include "sgm/graph/graph.h"
#include "sgm/util/timer.h"

namespace sgm {

/// Subtree-splitting hook, consulted while the engine iterates the depth-1
/// local candidates of a root. `root_image` is the data vertex the root is
/// mapped to; [next, end) are the absolute depth-1 indices the engine has
/// not started yet. The hook may take ownership of a suffix [k, end)
/// (publishing it as stealable subtasks) and returns k; returning `end`
/// declines the split. Must be thread-safe when engines run concurrently.
using SubtreeSplitHook =
    std::function<uint32_t(Vertex root_image, uint32_t next, uint32_t end)>;

/// One enumeration engine. Not thread-safe: one engine per thread. The
/// referenced graph/candidate/aux/weights structures must outlive it and are
/// only read, so any number of engines may share them concurrently.
class EnumerationEngine {
 public:
  /// `order`, `options`, `weights` and `callback` are captured at
  /// construction (callback by value, so a per-worker lambda may be a
  /// temporary). See Enumerate() for the parameter contract.
  EnumerationEngine(const Graph& query, const Graph& data,
                    const CandidateSets& candidates, const AuxStructure* aux,
                    std::span<const Vertex> order,
                    const EnumerateOptions& options,
                    const DpisoWeights* weights = nullptr,
                    MatchCallback callback = {});

  EnumerationEngine(const EnumerationEngine&) = delete;
  EnumerationEngine& operator=(const EnumerationEngine&) = delete;

  /// Installs (or clears) the depth-1 split hook.
  void set_split_hook(SubtreeSplitHook hook) {
    split_hook_ = std::move(hook);
  }

  /// Clears per-run search state — partial mapping, inverse index, abort
  /// flag, adaptive-order bookkeeping — without touching the accumulated
  /// statistics or reallocating any buffer. O(|V(q)|) when the previous
  /// run finished cleanly (backtracking already restored the scratch).
  void Reset();

  /// Enumerates root candidates [begin, end) of the start vertex (clamped
  /// to the candidate count). Statistics accumulate across calls.
  void RunSlice(uint32_t begin, uint32_t end);

  /// Enumerates the depth-1 local candidates [d1_begin, d1_end) of the
  /// subtree rooted at `root_image` — the executor side of a stolen
  /// subtask. The depth-1 candidate list of a given root is deterministic,
  /// so thief and victim agree on the indices.
  void RunSubtree(Vertex root_image, uint32_t d1_begin, uint32_t d1_end);

  /// Single-shot convenience used by Enumerate(): restarts the clock, runs
  /// options.root_slice_begin/end, stamps stats().enumeration_ms.
  EnumerateStats Run();

  const EnumerateStats& stats() const { return stats_; }

  /// True once the search stopped early (callback veto, match limit, time
  /// limit, or cancel flag). Sticky until Reset().
  bool aborted() const { return aborted_; }

 private:
  void MakeExtendable(Vertex u);
  void OnMapped(Vertex u);
  void OnUnmapped(Vertex u);
  Vertex SelectVertex(uint32_t depth);
  /// True when the configured kernel is kBitmap/kAuto and every backward
  /// edge of u carries a bitmap sidecar. kAuto's cost comparison against
  /// the sorted lists happens in ComputeIntersectionLc, where the list
  /// sizes are known.
  bool WantBitmapIntersection(Vertex u) const;
  /// Fills backward_index_ with the candidate index of each backward image
  /// within its own candidate set. Returns false if some image is not a
  /// candidate of its query vertex (possible for kNeighborScan-admitted
  /// mappings), in which case callers fall back to the by-vertex lookup.
  bool FillBackwardIndexes(Vertex u);
  /// Weight sum of LC(u, M) under the DP-iso weights, computed without
  /// materializing the candidate list (bitmap multi-AND, count-only SIMD
  /// intersection for uniform weights, or a merge walk against C(u)).
  double ComputeExtendableWeight(Vertex u);
  /// Materializes adaptive_lc_[u] for the currently-extendable u (called
  /// lazily, only once u is actually selected for extension).
  void MaterializeAdaptiveLc(Vertex u);
  void ComputeIntersectionLc(Vertex u, std::vector<Vertex>* out);
  bool PassesVf2ppLookahead(Vertex u, Vertex v);
  std::span<const Vertex> ComputeLocalCandidates(Vertex u, uint32_t depth);
  QueryVertexSet Explore(uint32_t depth);
  void RecordMatch();

  const Graph& query_;
  const Graph& data_;
  const CandidateSets& candidates_;
  const AuxStructure* aux_;
  std::vector<Vertex> order_;
  EnumerateOptions options_;
  const DpisoWeights* weights_;
  MatchCallback callback_;
  SubtreeSplitHook split_hook_;
  uint32_t n_;
  QueryVertexSet full_mask_ = 0;

  std::vector<uint32_t> position_;
  std::vector<std::vector<Vertex>> backward_neighbors_;
  std::vector<QueryVertexSet> backward_mask_;
  std::vector<Vertex> pivot_;

  std::vector<Vertex> mapping_;
  std::vector<Vertex> inverse_;
  /// Bitset of currently-mapped query vertices, kept in sync with
  /// mapping_. Failing-set attribution needs it when the VF2++ lookahead
  /// drops a candidate: the lookahead reads the whole mapping (it counts
  /// unmapped data neighbors), so such a failure depends on every ancestor,
  /// not just the backward neighbors of the current vertex.
  QueryVertexSet mapped_mask_ = 0;
  /// Set by ComputeLocalCandidates when the lookahead rejected at least one
  /// otherwise-admissible candidate of the vertex being extended; consumed
  /// immediately by Explore (recursion clobbers it).
  bool lc_lookahead_dropped_ = false;
  std::vector<std::vector<Vertex>> lc_buffer_;
  std::vector<Vertex> intersect_scratch_;
  /// Backward candidate-adjacency spans of the vertex currently being
  /// extended; filled once per ComputeIntersectionLc call so every list is
  /// fetched from the aux structure exactly once.
  std::vector<std::span<const Vertex>> backward_lists_;
  /// Candidate index of each backward image within its own candidate set,
  /// aligned with backward_neighbors_[u]; lets both representations address
  /// the aux structure without repeating the binary search.
  std::vector<uint32_t> backward_index_;
  /// Bitmap rows of the backward edges plus the multi-AND result buffer.
  std::vector<const uint64_t*> bitmap_rows_;
  std::vector<uint64_t> bitmap_scratch_;
  /// LC materialization buffer for ComputeExtendableWeight's general case
  /// (shared across vertices — the point of the lazy adaptive_lc_ scheme).
  std::vector<Vertex> weight_scratch_;

  /// Per-depth local-candidate reuse cache. LC(u, M) under kIntersect
  /// depends only on (u, images of u's backward neighbors), so when a
  /// sibling subtree revisits the same key at the same depth the cached
  /// list is reused verbatim. kInvalidVertex marks an empty slot. Entries
  /// deliberately survive Reset() — per-worker engines keep their warm
  /// cache across stolen subtrees (the key check stays sound regardless).
  struct LcCacheEntry {
    Vertex u = kInvalidVertex;
    std::vector<Vertex> images;
    std::vector<Vertex> lc;
  };
  std::vector<LcCacheEntry> lc_cache_;

  std::vector<std::vector<std::pair<Label, uint32_t>>> forward_label_counts_;

  std::vector<uint32_t> unmapped_backward_;
  /// Bitset of currently-extendable vertices, so SelectVertex walks only
  /// the set bits instead of scanning all |V(q)| flags.
  QueryVertexSet extendable_mask_ = 0;
  std::vector<std::vector<Vertex>> adaptive_lc_;
  /// adaptive_lc_[u] holds the list for the *current* backward images only
  /// when this flag is set; MakeExtendable computes the weight without
  /// materializing and leaves it unset until u is actually selected.
  std::vector<uint8_t> adaptive_lc_valid_;
  std::vector<double> adaptive_weight_;

  /// Slice window applied when Explore reaches slice_depth_: depth 0 for
  /// root slices, depth 1 for stolen subtrees.
  uint32_t slice_depth_ = 0;
  size_t slice_begin_ = 0;
  size_t slice_end_ = 0;
  /// Data vertex of the current root extension (valid at depth >= 1);
  /// identifies the subtree in split offers.
  Vertex current_root_image_ = kInvalidVertex;

  EnumerateStats stats_;
  Timer timer_;
  bool aborted_ = false;

  /// Depth-profile sink (= options_.depth_profile). The hot path tests this
  /// pointer once per event; with the default null profile the recursion
  /// carries no profiling cost beyond those predictable branches.
  obs::DepthProfile* profile_ = nullptr;
  /// Wall-clock of the last profiling checkpoint, used to charge elapsed
  /// time to the depth observed every 1024 recursion calls.
  double profile_last_ms_ = 0.0;
};

}  // namespace sgm

#endif  // SGM_CORE_ENUMERATE_ENUMERATION_ENGINE_H_
