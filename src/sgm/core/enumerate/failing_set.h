// Failing-set pruning support (Section 3.4 of the paper, proposed by
// DP-iso).
//
// Every node of the backtracking search tree returns a failing set: a set of
// query vertices responsible for the absence of matches in the node's
// subtree. If the exploration of a child extended on query vertex u returns
// a failing set that does not contain u, re-extending u to a different data
// vertex cannot help, so all remaining siblings are skipped (Example 3.5).
//
// Sets are 64-bit masks over query vertices, which is why queries are capped
// at kMaxQueryVertices = 64.
#ifndef SGM_CORE_ENUMERATE_FAILING_SET_H_
#define SGM_CORE_ENUMERATE_FAILING_SET_H_

#include <cstdint>

#include "sgm/core/types.h"

namespace sgm {

/// A set of query vertices encoded as a bitmask.
using QueryVertexSet = uint64_t;

/// Singleton set {u}.
inline QueryVertexSet QuerySetBit(Vertex u) {
  SGM_CHECK(u < kMaxQueryVertices);
  return 1ULL << u;
}

/// The full set over n query vertices. Returned when a subtree contains a
/// match: no ancestor may prune based on it.
inline QueryVertexSet QuerySetFull(uint32_t n) {
  SGM_CHECK(n <= kMaxQueryVertices);
  return n == 64 ? ~0ULL : (1ULL << n) - 1;
}

/// True iff u is a member of the set.
inline bool QuerySetContains(QueryVertexSet set, Vertex u) {
  return (set >> u) & 1;
}

}  // namespace sgm

#endif  // SGM_CORE_ENUMERATE_FAILING_SET_H_
