// The enumeration engine: the recursive backtracking procedure of
// Algorithm 1 with pluggable local-candidate computation (Algorithms 2-5 of
// Section 3.3), optional failing-set pruning (Section 3.4), optional
// VF2++-style look-ahead filtering, and optional DP-iso adaptive vertex
// selection.
#ifndef SGM_CORE_ENUMERATE_ENUMERATOR_H_
#define SGM_CORE_ENUMERATE_ENUMERATOR_H_

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "sgm/core/aux_structure.h"
#include "sgm/core/candidate_sets.h"
#include "sgm/core/enumerate/failing_set.h"
#include "sgm/core/order/dpiso_order.h"
#include "sgm/graph/graph.h"
#include "sgm/obs/depth_profile.h"
#include "sgm/util/set_intersection.h"

namespace sgm {

/// How local candidates LC(u, M) are computed (Section 3.3.1).
enum class LocalCandidateMethod : uint8_t {
  /// Algorithm 2 (QuickSI, RI): scan the data neighbors of the pivot's
  /// image and verify label/degree plus the remaining backward edges.
  kNeighborScan = 0,
  /// Algorithm 3 (GraphQL): scan the whole candidate set C(u) and verify
  /// every backward edge against the data graph.
  kCandidateScan = 1,
  /// Algorithm 4 (CFL): retrieve the pivot's candidate-adjacency list from
  /// the auxiliary structure; verify the other backward edges in the data
  /// graph. Requires the pivot edge to be indexed (tree edges suffice).
  kPivotIndex = 2,
  /// Algorithm 5 (CECI, DP-iso, optimized engines): intersect the
  /// candidate-adjacency lists of all backward neighbors. Requires every
  /// query edge to be indexed.
  kIntersect = 3,
};

/// Returns a short name ("neighbor-scan", "intersect", ...).
const char* LocalCandidateMethodName(LocalCandidateMethod method);

/// Knobs of a single enumeration run.
struct EnumerateOptions {
  LocalCandidateMethod lc_method = LocalCandidateMethod::kIntersect;
  /// Failing-set pruning (w/fs vs wo/fs in the paper's tables).
  bool use_failing_sets = false;
  /// DP-iso's adaptive vertex selection; requires weights and an all-edges
  /// auxiliary structure. The static order then serves as the BFS order δ.
  bool adaptive_order = false;
  /// VF2++'s extra look-ahead filtering rules (classic 2PP only).
  bool vf2pp_lookahead = false;
  /// Restrict kNeighborScan to the candidate sets (binary search) instead
  /// of the plain LDF predicate of Algorithm 2. Enable when candidate sets
  /// are stronger than LDF.
  bool restrict_neighbor_scan_to_candidates = false;
  /// Stop after this many matches (the paper uses 10^5). 0 = unlimited.
  uint64_t max_matches = 100000;
  /// Wall-clock budget in milliseconds (the paper uses five minutes).
  /// 0 = unlimited.
  double time_limit_ms = 300000.0;
  /// Set intersection kernel for kIntersect. kBitmap intersects the aux
  /// structure's bitmap sidecars (word-wise AND over candidate indexes)
  /// whenever every backward edge of the extended vertex carries one,
  /// falling back to hybrid otherwise; kAuto additionally weighs the fixed
  /// word cost against the smallest CSR list before choosing.
  IntersectionMethod intersection = IntersectionMethod::kHybrid;
  /// Per-depth local-candidate reuse cache: sibling subtrees whose backward
  /// images coincide skip the LC(u, M) recomputation entirely (kIntersect
  /// with >= 2 backward neighbors, static order only). The cache survives
  /// EnumerationEngine::Reset(), so a per-worker engine reuses entries
  /// across work-stealing chunks.
  bool use_lc_cache = true;
  /// Restricts the first extension to candidates [root_slice_begin,
  /// root_slice_end) of the start vertex — the work-partitioning hook used
  /// by the parallel matcher. Defaults cover the whole candidate set.
  uint32_t root_slice_begin = 0;
  uint32_t root_slice_end = 0xffffffffu;
  /// Optional cooperative cancellation: checked (relaxed) every 1024
  /// recursion calls; a set flag aborts the search like a timeout, without
  /// marking it timed out. Used by the parallel matcher so a global stop
  /// (budget reached, callback veto) halts workers stuck in matchless
  /// subtrees. Must outlive the run; may be null.
  const std::atomic<bool>* cancel_flag = nullptr;
  /// Optional search-depth profile sink (see obs/depth_profile.h). Null (the
  /// default) keeps the recursion free of profiling work; non-null adds a
  /// few counter increments per recursion call plus one clock read per 1024
  /// calls. Not thread-safe: one profile per engine; the parallel matcher
  /// merges per-worker profiles after the run. Must outlive the run.
  obs::DepthProfile* depth_profile = nullptr;
};

/// Outcome and search statistics of one enumeration run.
struct EnumerateStats {
  /// Matches delivered. Counting uses delivered-match semantics: a match
  /// whose callback returns false is still counted — the veto stops the
  /// search after the delivery, it does not un-deliver the match. The
  /// serial and parallel paths agree on this rule.
  uint64_t match_count = 0;
  /// Recursive Enumerate invocations (search-tree nodes).
  uint64_t recursion_calls = 0;
  /// Total size of all computed local candidate sets.
  uint64_t local_candidates_scanned = 0;
  /// Candidate extensions skipped by failing-set pruning.
  uint64_t failing_set_prunes = 0;
  /// Local-candidate computations served by the bitmap sidecar (word-wise
  /// multi-AND over candidate-index bitsets instead of sorted-array merges).
  uint64_t bitmap_intersections = 0;
  /// Local-candidate reuse cache (EnumerateOptions::use_lc_cache) outcomes:
  /// hits reuse a sibling's LC(u, M) verbatim; misses recompute and refill.
  uint64_t lc_cache_hits = 0;
  uint64_t lc_cache_misses = 0;
  bool timed_out = false;
  bool reached_match_limit = false;
  double enumeration_ms = 0.0;
};

/// Called for every match; mapping[i] is the data vertex assigned to the
/// query vertex i (not order position). Return false to stop enumeration.
using MatchCallback = std::function<bool(std::span<const Vertex>)>;

/// Runs the backtracking enumeration (single-shot; schedulers that reuse
/// one engine per worker use EnumerationEngine in enumeration_engine.h).
///
/// `order` is the matching order (or the BFS order δ when adaptive ordering
/// is on). `aux` may be null only for kNeighborScan / kCandidateScan.
/// `weights` is required when options.adaptive_order is set.
/// `callback` may be empty when only counting.
EnumerateStats Enumerate(const Graph& query, const Graph& data,
                         const CandidateSets& candidates,
                         const AuxStructure* aux,
                         std::span<const Vertex> order,
                         const EnumerateOptions& options,
                         const DpisoWeights* weights = nullptr,
                         const MatchCallback& callback = {});

}  // namespace sgm

#endif  // SGM_CORE_ENUMERATE_ENUMERATOR_H_
