#include "sgm/core/enumerate/enumerator.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "sgm/core/enumerate/enumeration_engine.h"
#include "sgm/core/filter/filter.h"
#include "sgm/util/bitmap_intersection.h"
#include "sgm/util/qfilter.h"
#include "sgm/util/timer.h"

namespace sgm {

const char* LocalCandidateMethodName(LocalCandidateMethod method) {
  switch (method) {
    case LocalCandidateMethod::kNeighborScan:
      return "neighbor-scan";
    case LocalCandidateMethod::kCandidateScan:
      return "candidate-scan";
    case LocalCandidateMethod::kPivotIndex:
      return "pivot-index";
    case LocalCandidateMethod::kIntersect:
      return "intersect";
  }
  return "unknown";
}

EnumerationEngine::EnumerationEngine(
    const Graph& query, const Graph& data, const CandidateSets& candidates,
    const AuxStructure* aux, std::span<const Vertex> order,
    const EnumerateOptions& options, const DpisoWeights* weights,
    MatchCallback callback)
    : query_(query),
      data_(data),
      candidates_(candidates),
      aux_(aux),
      order_(order.begin(), order.end()),
      options_(options),
      weights_(weights),
      callback_(std::move(callback)),
      n_(query.vertex_count()),
      slice_begin_(options.root_slice_begin),
      slice_end_(options.root_slice_end) {
  SGM_CHECK(n_ >= 1 && n_ <= kMaxQueryVertices);
  SGM_CHECK(order.size() == n_);
  SGM_CHECK(options.root_slice_begin <= options.root_slice_end);
  full_mask_ = QuerySetFull(n_);

  position_.assign(n_, 0);
  for (uint32_t i = 0; i < n_; ++i) position_[order_[i]] = i;

  // Backward neighbors (w.r.t. the order), their masks, and pivots.
  backward_neighbors_.assign(n_, {});
  backward_mask_.assign(n_, 0);
  pivot_.assign(n_, kInvalidVertex);
  for (Vertex u = 0; u < n_; ++u) {
    uint32_t best_pos = std::numeric_limits<uint32_t>::max();
    for (const Vertex w : query_.neighbors(u)) {
      if (position_[w] < position_[u]) {
        backward_neighbors_[u].push_back(w);
        backward_mask_[u] |= QuerySetBit(w);
        if (position_[w] < best_pos) {
          best_pos = position_[w];
          pivot_[u] = w;
        }
      }
    }
    if (options_.lc_method == LocalCandidateMethod::kPivotIndex &&
        !backward_neighbors_[u].empty()) {
      // The pivot must carry a candidate-adjacency index (a tree edge of
      // q_t). Prefer the earliest such backward neighbor.
      SGM_CHECK_MSG(aux_ != nullptr, "pivot-index needs an aux structure");
      Vertex indexed = kInvalidVertex;
      uint32_t indexed_pos = std::numeric_limits<uint32_t>::max();
      for (const Vertex w : backward_neighbors_[u]) {
        if (aux_->HasIndex(w, u) && position_[w] < indexed_pos) {
          indexed_pos = position_[w];
          indexed = w;
        }
      }
      SGM_CHECK_MSG(indexed != kInvalidVertex,
                    "pivot-index requires an indexed backward edge per vertex");
      pivot_[u] = indexed;
    }
  }
  if (options_.lc_method == LocalCandidateMethod::kIntersect) {
    SGM_CHECK_MSG(aux_ != nullptr, "intersect needs an aux structure");
  }

  mapping_.assign(n_, kInvalidVertex);
  inverse_.assign(data_.vertex_count(), kInvalidVertex);
  lc_buffer_.assign(n_, {});
  backward_lists_.reserve(n_);
  backward_index_.reserve(n_);
  bitmap_rows_.reserve(n_);
  lc_cache_.resize(n_);

  if (options_.vf2pp_lookahead) {
    // Forward-neighbor label requirements per query vertex.
    forward_label_counts_.assign(n_, {});
    for (Vertex u = 0; u < n_; ++u) {
      std::vector<std::pair<Label, uint32_t>> counts;
      for (const Vertex w : query_.neighbors(u)) {
        if (position_[w] > position_[u]) {
          bool found = false;
          for (auto& [l, c] : counts) {
            if (l == query_.label(w)) {
              ++c;
              found = true;
            }
          }
          if (!found) counts.emplace_back(query_.label(w), 1);
        }
      }
      forward_label_counts_[u] = std::move(counts);
    }
  }

  if (options_.adaptive_order) {
    SGM_CHECK_MSG(weights_ != nullptr && !weights_->empty(),
                  "adaptive ordering needs DP-iso weights");
    SGM_CHECK_MSG(options_.lc_method == LocalCandidateMethod::kIntersect,
                  "adaptive ordering requires the intersect method");
    unmapped_backward_.assign(n_, 0);
    adaptive_lc_.assign(n_, {});
    adaptive_lc_valid_.assign(n_, 0);
    adaptive_weight_.assign(n_, 0.0);
    for (Vertex u = 0; u < n_; ++u) {
      unmapped_backward_[u] =
          static_cast<uint32_t>(backward_neighbors_[u].size());
      if (unmapped_backward_[u] == 0) MakeExtendable(u);
    }
  }

  profile_ = options_.depth_profile;
  if (profile_ != nullptr) profile_->Resize(n_);
}

void EnumerationEngine::Reset() {
  // Backtracking restores the scratch state even on abort, so this scan
  // normally finds nothing; it exists so a future mid-search suspension
  // cannot leak mappings into the next run.
  bool dirty = false;
  for (Vertex u = 0; u < n_; ++u) {
    if (mapping_[u] != kInvalidVertex) {
      inverse_[mapping_[u]] = kInvalidVertex;
      mapping_[u] = kInvalidVertex;
      dirty = true;
    }
  }
  aborted_ = false;
  current_root_image_ = kInvalidVertex;
  mapped_mask_ = 0;
  if (options_.adaptive_order && dirty) {
    extendable_mask_ = 0;
    for (Vertex u = 0; u < n_; ++u) {
      unmapped_backward_[u] =
          static_cast<uint32_t>(backward_neighbors_[u].size());
    }
    for (Vertex u = 0; u < n_; ++u) {
      if (unmapped_backward_[u] == 0) MakeExtendable(u);
    }
  }
  // lc_cache_ deliberately survives: its key (u, backward images) stays
  // sound across runs, and per-worker engines profit from the warm entries.
}

void EnumerationEngine::RunSlice(uint32_t begin, uint32_t end) {
  if (aborted_ || n_ == 0 || candidates_.AnyEmpty()) return;
  slice_depth_ = 0;
  slice_begin_ = begin;
  slice_end_ = end;
  Explore(0);
}

void EnumerationEngine::RunSubtree(Vertex root_image, uint32_t d1_begin,
                                   uint32_t d1_end) {
  if (aborted_ || n_ < 2 || candidates_.AnyEmpty()) return;
  const Vertex u0 = SelectVertex(0);
  SGM_CHECK(inverse_[root_image] == kInvalidVertex);
  mapping_[u0] = root_image;
  inverse_[root_image] = u0;
  mapped_mask_ |= QuerySetBit(u0);
  current_root_image_ = root_image;
  OnMapped(u0);
  slice_depth_ = 1;
  slice_begin_ = d1_begin;
  slice_end_ = d1_end;
  Explore(1);
  OnUnmapped(u0);
  inverse_[root_image] = kInvalidVertex;
  mapping_[u0] = kInvalidVertex;
  mapped_mask_ &= ~QuerySetBit(u0);
  current_root_image_ = kInvalidVertex;
  slice_depth_ = 0;
}

EnumerateStats EnumerationEngine::Run() {
  timer_.Reset();
  profile_last_ms_ = 0.0;
  RunSlice(options_.root_slice_begin, options_.root_slice_end);
  stats_.enumeration_ms = timer_.ElapsedMillis();
  return stats_;
}

// ---- Adaptive-order bookkeeping (DP-iso). ----

void EnumerationEngine::MakeExtendable(Vertex u) {
  // Only the *weight* of LC(u, M) is needed until u is actually selected;
  // the list itself is materialized lazily (MaterializeAdaptiveLc), which
  // spares the per-vertex copies for vertices that never win the selection.
  extendable_mask_ |= QuerySetBit(u);
  adaptive_lc_valid_[u] = 0;
  adaptive_weight_[u] = ComputeExtendableWeight(u);
}

// Sum of the DP-iso weights over `subset`, a sorted subset of C(u): a
// resumed merge walk recovers each member's candidate index in one pass,
// without per-element binary searches.
static double WeightSumOverSubset(const DpisoWeights& weights, Vertex u,
                                  std::span<const Vertex> cands,
                                  std::span<const Vertex> subset) {
  double sum = 0.0;
  size_t pos = 0;
  for (const Vertex v : subset) {
    while (cands[pos] != v) ++pos;
    sum += weights.WeightByIndex(u, static_cast<uint32_t>(pos));
    ++pos;
  }
  return sum;
}

double EnumerationEngine::ComputeExtendableWeight(Vertex u) {
  double uniform = 0.0;
  const bool is_uniform = weights_->UniformWeight(u, &uniform);
  const auto& backward = backward_neighbors_[u];
  if (backward.empty()) {
    if (is_uniform) return uniform * candidates_.Count(u);
    double sum = 0.0;
    for (uint32_t i = 0; i < candidates_.Count(u); ++i) {
      sum += weights_->WeightByIndex(u, i);
    }
    return sum;
  }
  if (backward.size() == 1) {
    const auto list =
        aux_->NeighborsOfVertex(backward[0], mapping_[backward[0]], u);
    if (is_uniform) return uniform * static_cast<double>(list.size());
    return WeightSumOverSubset(*weights_, u, candidates_.candidates(u), list);
  }
  if (is_uniform) {
    // Uniform weights collapse the sum to value × |LC(u, M)|, served by
    // count-only kernels with nothing materialized: a popcount-only bitmap
    // multi-AND when sidecars exist, else the SIMD count intersection.
    if (WantBitmapIntersection(u) && FillBackwardIndexes(u)) {
      const uint32_t stride = aux_->BitmapStride(backward[0], u);
      bitmap_rows_.clear();
      for (size_t i = 0; i < backward.size(); ++i) {
        bitmap_rows_.push_back(
            aux_->BitmapByIndex(backward[i], backward_index_[i], u).data());
      }
      ++stats_.bitmap_intersections;
      return uniform *
             static_cast<double>(BitmapMultiAndCount(bitmap_rows_, stride));
    }
    if (backward.size() == 2) {
      const auto a =
          aux_->NeighborsOfVertex(backward[0], mapping_[backward[0]], u);
      const auto b =
          aux_->NeighborsOfVertex(backward[1], mapping_[backward[1]], u);
      return uniform * static_cast<double>(IntersectQFilterCount(a, b));
    }
  }
  // General case: materialize into the shared scratch — still no
  // per-vertex adaptive_lc_ allocation.
  ComputeIntersectionLc(u, &weight_scratch_);
  if (is_uniform) return uniform * static_cast<double>(weight_scratch_.size());
  return WeightSumOverSubset(*weights_, u, candidates_.candidates(u),
                             weight_scratch_);
}

void EnumerationEngine::MaterializeAdaptiveLc(Vertex u) {
  if (adaptive_lc_valid_[u]) return;
  // Sound because the backward images cannot change while u stays
  // extendable: they were all mapped when MakeExtendable ran, and unmapping
  // any of them retracts u from the extendable set first.
  auto& lc = adaptive_lc_[u];
  lc.clear();
  if (backward_neighbors_[u].empty()) {
    const auto cands = candidates_.candidates(u);
    lc.assign(cands.begin(), cands.end());
  } else {
    ComputeIntersectionLc(u, &lc);
  }
  adaptive_lc_valid_[u] = 1;
}

void EnumerationEngine::OnMapped(Vertex u) {
  if (!options_.adaptive_order) return;
  for (const Vertex w : query_.neighbors(u)) {
    if (position_[w] > position_[u]) {
      if (--unmapped_backward_[w] == 0) MakeExtendable(w);
    }
  }
}

void EnumerationEngine::OnUnmapped(Vertex u) {
  if (!options_.adaptive_order) return;
  for (const Vertex w : query_.neighbors(u)) {
    if (position_[w] > position_[u]) {
      if (unmapped_backward_[w]++ == 0) {
        extendable_mask_ &= ~QuerySetBit(w);
      }
    }
  }
}

// Selects the next query vertex to extend (line 6 of Algorithm 1).
Vertex EnumerationEngine::SelectVertex(uint32_t depth) {
  if (!options_.adaptive_order) return order_[depth];
  Vertex best = kInvalidVertex;
  double best_weight = std::numeric_limits<double>::infinity();
  // Walk only the extendable-and-unmapped bits; ascending bit order keeps
  // the historical lowest-index tie-break (strict <) intact.
  QueryVertexSet pending = extendable_mask_ & ~mapped_mask_;
  while (pending != 0) {
    const Vertex u = static_cast<Vertex>(std::countr_zero(pending));
    pending &= pending - 1;
    if (adaptive_weight_[u] < best_weight) {
      best_weight = adaptive_weight_[u];
      best = u;
    }
  }
  SGM_CHECK_MSG(best != kInvalidVertex, "no extendable vertex");
  return best;
}

// ---- Local candidate computation (Algorithms 2-5). ----

bool EnumerationEngine::WantBitmapIntersection(Vertex u) const {
  const IntersectionMethod method = options_.intersection;
  if (method != IntersectionMethod::kBitmap &&
      method != IntersectionMethod::kAuto) {
    return false;
  }
  if (aux_ == nullptr) return false;
  const auto& backward = backward_neighbors_[u];
  for (const Vertex w : backward) {
    if (!aux_->HasBitmap(w, u)) return false;
  }
  return !backward.empty();
}

bool EnumerationEngine::FillBackwardIndexes(Vertex u) {
  const auto& backward = backward_neighbors_[u];
  backward_index_.clear();
  for (const Vertex w : backward) {
    const uint32_t index = candidates_.IndexOf(w, mapping_[w]);
    if (index >= candidates_.Count(w)) return false;
    backward_index_.push_back(index);
  }
  return true;
}

// Intersects the candidate-adjacency lists of all backward neighbors of u
// into *out (Algorithm 5 with more than one backward neighbor).
void EnumerationEngine::ComputeIntersectionLc(Vertex u,
                                              std::vector<Vertex>* out) {
  const auto& backward = backward_neighbors_[u];
  SGM_CHECK(!backward.empty());
  if (backward.size() == 1) {
    const auto list =
        aux_->NeighborsOfVertex(backward[0], mapping_[backward[0]], u);
    out->assign(list.begin(), list.end());
    return;
  }
  backward_lists_.clear();
  if (WantBitmapIntersection(u) && FillBackwardIndexes(u)) {
    const uint32_t stride = aux_->BitmapStride(backward[0], u);
    bool use_bitmaps = true;
    if (options_.intersection == IntersectionMethod::kAuto) {
      // The word-wise AND touches `stride` words per operand regardless of
      // selectivity; take it only when that fixed cost undercuts walking
      // the smallest sorted list, else fall through to the merge kernels.
      // The spans are resolved through the already-computed indexes (cheap
      // CSR offset lookups) and kept for the fallback below, so a rejected
      // bitmap costs no second binary search per list.
      size_t smallest_list = std::numeric_limits<size_t>::max();
      for (size_t i = 0; i < backward.size(); ++i) {
        backward_lists_.push_back(
            aux_->NeighborsByIndex(backward[i], backward_index_[i], u));
        smallest_list = std::min(smallest_list, backward_lists_.back().size());
      }
      // One AND+popcount step consumes a 64-bit word per cycle while the
      // merge kernels advance roughly one element per comparison, so a
      // stride word is worth several walked elements; 8 keeps auto on
      // the bitmap side of the crossover measured on the bench analogs
      // without losing to the sorted kernels on the sparse ones.
      use_bitmaps = stride <= 8 * smallest_list;
    }
    if (use_bitmaps) {
      bitmap_rows_.clear();
      for (size_t i = 0; i < backward.size(); ++i) {
        bitmap_rows_.push_back(
            aux_->BitmapByIndex(backward[i], backward_index_[i], u).data());
      }
      bitmap_scratch_.resize(stride);
      const uint64_t count =
          BitmapMultiAnd(bitmap_rows_, stride, bitmap_scratch_.data());
      ++stats_.bitmap_intersections;
      out->clear();
      if (count > 0) {
        out->reserve(count);
        // Bit i of the result is the i-th candidate of C(u), so decoding
        // against the candidate array yields the sorted LC directly.
        BitmapDecode({bitmap_scratch_.data(), stride},
                     candidates_.candidates(u), out);
      }
      return;
    }
  }
  // Fetch every backward adjacency list exactly once (each lookup is a
  // binary search in C(w), unless the auto path above resolved the spans
  // already), then start from the smallest to bound the intersection cost.
  if (backward_lists_.empty()) {
    for (const Vertex w : backward) {
      backward_lists_.push_back(aux_->NeighborsOfVertex(w, mapping_[w], u));
    }
  }
  size_t smallest = 0;
  for (size_t i = 1; i < backward_lists_.size(); ++i) {
    if (backward_lists_[i].size() < backward_lists_[smallest].size()) {
      smallest = i;
    }
  }
  out->assign(backward_lists_[smallest].begin(),
              backward_lists_[smallest].end());
  for (size_t i = 0; i < backward_lists_.size(); ++i) {
    if (i == smallest) continue;
    Intersect(options_.intersection, *out, backward_lists_[i],
              &intersect_scratch_);
    out->swap(intersect_scratch_);
    if (out->empty()) return;
  }
}

// VF2++ look-ahead: every forward-neighbor label class of u must have
// enough unmapped neighbors around v.
bool EnumerationEngine::PassesVf2ppLookahead(Vertex u, Vertex v) {
  const auto& required = forward_label_counts_[u];
  if (required.empty()) return true;
  for (const auto& [label, count] : required) {
    uint32_t available = 0;
    for (const Vertex w : data_.neighbors(v)) {
      if (inverse_[w] == kInvalidVertex && data_.label(w) == label &&
          ++available >= count) {
        break;
      }
    }
    if (available < count) return false;
  }
  return true;
}

// Computes LC(u, M) at the given depth into a span valid until the next
// ComputeLocalCandidates call at the same depth.
std::span<const Vertex> EnumerationEngine::ComputeLocalCandidates(
    Vertex u, uint32_t depth) {
  lc_lookahead_dropped_ = false;
  if (options_.adaptive_order) {
    // The weight was computed when u became extendable; the list itself is
    // materialized here, the first time u is actually selected (and stays
    // valid while u remains extendable; see DESIGN.md).
    MaterializeAdaptiveLc(u);
    return adaptive_lc_[u];
  }
  const auto& backward = backward_neighbors_[u];
  if (depth == 0 || backward.empty()) return candidates_.candidates(u);

  auto& buffer = lc_buffer_[depth];
  buffer.clear();
  switch (options_.lc_method) {
    case LocalCandidateMethod::kNeighborScan: {
      // Algorithm 2: scan the neighbors of the pivot's image.
      const Vertex pivot = pivot_[u];
      for (const Vertex v : data_.neighbors(mapping_[pivot])) {
        const bool admissible =
            options_.restrict_neighbor_scan_to_candidates
                ? candidates_.Contains(u, v)
                : PassesLdf(query_, data_, u, v);
        if (!admissible) continue;
        bool ok = true;
        for (const Vertex w : backward) {
          if (w != pivot && !data_.HasEdge(v, mapping_[w])) {
            ok = false;
            break;
          }
        }
        if (ok && options_.vf2pp_lookahead && !PassesVf2ppLookahead(u, v)) {
          ok = false;
          lc_lookahead_dropped_ = true;
        }
        if (ok) buffer.push_back(v);
      }
      break;
    }
    case LocalCandidateMethod::kCandidateScan: {
      // Algorithm 3: scan C(u) and verify every backward edge.
      for (const Vertex v : candidates_.candidates(u)) {
        bool ok = true;
        for (const Vertex w : backward) {
          if (!data_.HasEdge(v, mapping_[w])) {
            ok = false;
            break;
          }
        }
        if (ok) buffer.push_back(v);
      }
      break;
    }
    case LocalCandidateMethod::kPivotIndex: {
      // Algorithm 4: pivot list from A, remaining edges against G.
      const Vertex pivot = pivot_[u];
      const auto base = aux_->NeighborsOfVertex(pivot, mapping_[pivot], u);
      if (backward.size() == 1) return base;
      for (const Vertex v : base) {
        bool ok = true;
        for (const Vertex w : backward) {
          if (w != pivot && !data_.HasEdge(v, mapping_[w])) {
            ok = false;
            break;
          }
        }
        if (ok) buffer.push_back(v);
      }
      break;
    }
    case LocalCandidateMethod::kIntersect: {
      // Algorithm 5: set intersections over A.
      if (backward.size() == 1) {
        return aux_->NeighborsOfVertex(backward[0], mapping_[backward[0]], u);
      }
      if (options_.use_lc_cache) {
        // LC(u, M) here depends only on (u, images of u's backward
        // neighbors): when a sibling subtree left the same key at this
        // depth — common when the vertex extended in between is not a
        // backward neighbor of u — the intersection is skipped entirely.
        LcCacheEntry& entry = lc_cache_[depth];
        bool hit = entry.u == u;
        if (hit) {
          for (size_t i = 0; i < backward.size(); ++i) {
            if (entry.images[i] != mapping_[backward[i]]) {
              hit = false;
              break;
            }
          }
        }
        if (hit) {
          ++stats_.lc_cache_hits;
          return entry.lc;
        }
        ++stats_.lc_cache_misses;
        entry.u = u;
        entry.images.resize(backward.size());
        for (size_t i = 0; i < backward.size(); ++i) {
          entry.images[i] = mapping_[backward[i]];
        }
        ComputeIntersectionLc(u, &entry.lc);
        return entry.lc;
      }
      ComputeIntersectionLc(u, &buffer);
      break;
    }
  }
  return buffer;
}

// ---- The search (lines 4-12 of Algorithm 1). ----

// Explores all extensions of the current partial match. Returns the
// failing set of this subtree (meaningful only when failing sets are on).
QueryVertexSet EnumerationEngine::Explore(uint32_t depth) {
  ++stats_.recursion_calls;
  if (profile_ != nullptr) ++profile_->depths[depth].recursion_calls;
  if ((stats_.recursion_calls & 1023) == 0) {
    if (options_.time_limit_ms > 0 || profile_ != nullptr) {
      const double now_ms = timer_.ElapsedMillis();
      if (options_.time_limit_ms > 0 && now_ms > options_.time_limit_ms) {
        aborted_ = true;
        stats_.timed_out = true;
      }
      if (profile_ != nullptr) {
        // Sampled time attribution: charge the wall time since the last
        // checkpoint to the depth active now. Unbiased over long runs; runs
        // shorter than 1024 calls leave sampled_ms at zero.
        profile_->depths[depth].sampled_ms += now_ms - profile_last_ms_;
        profile_last_ms_ = now_ms;
      }
    }
    if (options_.cancel_flag != nullptr &&
        options_.cancel_flag->load(std::memory_order_relaxed)) {
      aborted_ = true;
    }
  }
  if (aborted_) return full_mask_;

  const Vertex u = SelectVertex(depth);
  auto local_candidates = ComputeLocalCandidates(u, depth);
  // When the VF2++ lookahead dropped a candidate, LC(u, M) depended on the
  // whole mapping — the lookahead counts unmapped data neighbors, so any
  // ancestor's image can exclude a candidate here. The failure of this node
  // must then be attributed to every mapped vertex, or a failing-set prune
  // above could skip a sibling under which the dropped candidate survives.
  const QueryVertexSet lc_extra_mask =
      lc_lookahead_dropped_ ? mapped_mask_ : 0;
  size_t offset = 0;
  if (depth == slice_depth_) {
    const auto begin = std::min<size_t>(slice_begin_, local_candidates.size());
    const auto end = std::min<size_t>(slice_end_, local_candidates.size());
    local_candidates = local_candidates.subspan(begin, end - begin);
    offset = begin;
  }
  stats_.local_candidates_scanned += local_candidates.size();
  if (profile_ != nullptr) {
    profile_->depths[depth].local_candidates += local_candidates.size();
  }

  if (local_candidates.empty()) {
    if (profile_ != nullptr) ++profile_->depths[depth].empty_local_candidates;
    // "Emptyset class" failing set: u and its mapped neighbors.
    return QuerySetBit(u) | backward_mask_[u] | lc_extra_mask;
  }

  QueryVertexSet node_set = 0;
  size_t limit = local_candidates.size();
  bool donated = false;
  for (size_t i = 0; i < limit; ++i) {
    if (depth == 1 && split_hook_ && i + 1 < limit) {
      // Work-stealing endgame: offer the depth-1 candidates we have not
      // started yet as stealable subtasks. Indices are absolute within the
      // full depth-1 list, so a thief recomputes the identical list and
      // takes exactly the donated window.
      const uint32_t kept =
          split_hook_(current_root_image_, static_cast<uint32_t>(offset + i + 1),
                      static_cast<uint32_t>(offset + limit));
      if (kept < offset + limit) {
        donated = true;
        limit = kept - offset;
      }
    }
    const Vertex v = local_candidates[i];
    QueryVertexSet child_set;
    if (inverse_[v] != kInvalidVertex) {
      // Injectivity conflict: the failure involves u and the query vertex
      // already holding v ("conflict class").
      if (profile_ != nullptr) ++profile_->depths[depth].conflicts;
      child_set = QuerySetBit(u) | QuerySetBit(inverse_[v]);
    } else {
      mapping_[u] = v;
      inverse_[v] = u;
      mapped_mask_ |= QuerySetBit(u);
      if (depth == 0) current_root_image_ = v;
      OnMapped(u);
      if (depth + 1 == n_) {
        if (profile_ != nullptr) ++profile_->depths[depth].matches;
        RecordMatch();
        child_set = full_mask_;
      } else {
        child_set = Explore(depth + 1);
      }
      OnUnmapped(u);
      inverse_[v] = kInvalidVertex;
      mapping_[u] = kInvalidVertex;
      mapped_mask_ &= ~QuerySetBit(u);
    }
    if (aborted_) return full_mask_;
    if (options_.use_failing_sets) {
      if (!QuerySetContains(child_set, u)) {
        // The failure did not involve u: re-binding u cannot help, skip
        // the remaining siblings (Example 3.5). Donated siblings provably
        // fail too, so the set stays valid even after a split.
        stats_.failing_set_prunes += limit - i - 1;
        if (profile_ != nullptr) {
          profile_->depths[depth].failing_set_prunes += limit - i - 1;
        }
        return child_set;
      }
      node_set |= child_set;
    }
  }
  // When part of this node's children were donated to thieves, we cannot
  // claim the node failed — a donated subtree may still contain matches —
  // so return the full mask, which never prunes anything above.
  if (donated) return full_mask_;
  // Every extension of u failed for u-dependent reasons. The node's
  // failure additionally depends on u's mapped neighbors: they determine
  // LC(u, M), so a different assignment of one of them could surface a
  // fresh candidate. Their bits must stay in the failing set (this is why
  // DP-iso uses ancestor sets).
  return node_set | QuerySetBit(u) | backward_mask_[u] | lc_extra_mask;
}

void EnumerationEngine::RecordMatch() {
  // Delivered-match semantics: the match is counted even when the callback
  // vetoes it — the veto stops the search *after* this delivery. The
  // parallel matcher implements the same rule (see parallel_matcher.cc).
  ++stats_.match_count;
  if (callback_ && !callback_(mapping_)) aborted_ = true;
  if (options_.max_matches > 0 && stats_.match_count >= options_.max_matches) {
    aborted_ = true;
    stats_.reached_match_limit = true;
  }
}

EnumerateStats Enumerate(const Graph& query, const Graph& data,
                         const CandidateSets& candidates,
                         const AuxStructure* aux,
                         std::span<const Vertex> order,
                         const EnumerateOptions& options,
                         const DpisoWeights* weights,
                         const MatchCallback& callback) {
  EnumerationEngine engine(query, data, candidates, aux, order, options,
                           weights, callback);
  return engine.Run();
}

}  // namespace sgm
