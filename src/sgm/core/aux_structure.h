// Auxiliary data structure A: edges between candidate vertex sets.
//
// For a directed query edge (u, u') the structure stores, per candidate
// v ∈ C(u), the sorted array A_{u'}^{u}(v) = N(v) ∩ C(u') (notation of
// Table 2 in the paper). This is the common abstraction behind CFL's
// compressed path index (tree edges only), CECI's compact embedding cluster
// index and DP-iso's candidate space (all query edges), and it is what makes
// the set-intersection local-candidate computation of Algorithm 5 possible.
#ifndef SGM_CORE_AUX_STRUCTURE_H_
#define SGM_CORE_AUX_STRUCTURE_H_

#include <span>
#include <utility>
#include <vector>

#include "sgm/core/candidate_sets.h"
#include "sgm/graph/graph.h"

namespace sgm {

/// Which query edges the auxiliary structure indexes.
enum class AuxEdgeScope : uint8_t {
  /// No edges (direct-enumeration algorithms: QuickSI, RI, VF2++).
  kNone = 0,
  /// Only spanning-tree edges of q_t (CFL's compressed path index).
  kTreeEdges = 1,
  /// Every edge of E(q) (CECI, DP-iso, and the optimized engines of §5.2).
  kAllEdges = 2,
};

/// Returns a short name ("none", "tree-edges", "all-edges").
const char* AuxEdgeScopeName(AuxEdgeScope scope);

/// Build-time knobs of the auxiliary structure. The CSR arrays are always
/// built; the bitmap sidecar is the optional second representation behind
/// IntersectionMethod::kBitmap/kAuto (DESIGN.md §10).
struct AuxBuildOptions {
  /// Additionally store each list A_{u'}^{u}(v) as a fixed-stride bitset
  /// over the candidate indexes of C(u').
  bool build_bitmaps = false;
  /// Per-query-vertex density threshold: the sidecar of a directed edge
  /// (u -> u') is built only when |C(u')| <= this bound, so huge candidate
  /// sets keep the compact CSR representation alone. 0 disables sidecars.
  uint32_t bitmap_max_candidates = 4096;
};

/// Candidate-edge index. Immutable after construction.
class AuxStructure {
 public:
  AuxStructure() = default;

  /// Indexes the given undirected query edges (both directions each) against
  /// the candidate sets. Every listed pair must be an edge of `query`.
  AuxStructure(const Graph& query, const Graph& data,
               const CandidateSets& candidates,
               std::span<const std::pair<Vertex, Vertex>> edges,
               const AuxBuildOptions& build_options = {});

  /// Convenience: indexes all edges of the query.
  static AuxStructure BuildAllEdges(const Graph& query, const Graph& data,
                                    const CandidateSets& candidates,
                                    const AuxBuildOptions& build_options = {});

  /// Convenience: indexes the given spanning-tree parent array (parent[v] ==
  /// kInvalidVertex marks the root).
  static AuxStructure BuildTreeEdges(const Graph& query, const Graph& data,
                                     const CandidateSets& candidates,
                                     std::span<const Vertex> parent,
                                     const AuxBuildOptions& build_options = {});

  /// True iff the directed pair (from_u -> to_u) is indexed.
  bool HasIndex(Vertex from_u, Vertex to_u) const {
    return SlotOf(from_u, to_u) >= 0;
  }

  /// A_{to_u}^{from_u}(v) for the candidate at `cand_index` within
  /// C(from_u): the sorted data vertices of C(to_u) adjacent to it.
  std::span<const Vertex> NeighborsByIndex(Vertex from_u, uint32_t cand_index,
                                           Vertex to_u) const;

  /// Same, addressed by the data vertex itself (binary search in C(from_u)).
  /// `data_vertex` must be a member of C(from_u).
  std::span<const Vertex> NeighborsOfVertex(Vertex from_u, Vertex data_vertex,
                                            Vertex to_u) const;

  /// True iff the directed pair carries a bitmap sidecar (the pair is
  /// indexed, sidecars were requested, and |C(to_u)| met the threshold).
  bool HasBitmap(Vertex from_u, Vertex to_u) const {
    const int32_t slot = SlotOf(from_u, to_u);
    return slot >= 0 && indexes_[static_cast<size_t>(slot)].bitmap_stride > 0;
  }

  /// Words per bitmap row of the directed pair (0 when no sidecar).
  uint32_t BitmapStride(Vertex from_u, Vertex to_u) const {
    const int32_t slot = SlotOf(from_u, to_u);
    return slot < 0 ? 0 : indexes_[static_cast<size_t>(slot)].bitmap_stride;
  }

  /// The bitmap row of A_{to_u}^{from_u}(v): bit i set iff the i-th
  /// candidate of C(to_u) is a data neighbor of v. Requires HasBitmap.
  std::span<const uint64_t> BitmapByIndex(Vertex from_u, uint32_t cand_index,
                                          Vertex to_u) const;

  uint32_t query_vertex_count() const { return query_vertex_count_; }

  /// Total number of candidate-edge entries stored (both directions).
  uint64_t CandidateEdgeCount() const;

  /// Approximate heap footprint in bytes (the memory metric of §5.6).
  size_t MemoryBytes() const;

 private:
  struct DirectedIndex {
    std::vector<uint32_t> offsets;  // |C(from_u)| + 1
    std::vector<Vertex> lists;      // flattened sorted neighbor arrays
    /// Bitmap sidecar: |C(from_u)| rows of bitmap_stride words each, row r
    /// mirroring lists[offsets[r], offsets[r+1]) as candidate-index bits
    /// over C(to_u). Empty (stride 0) when the sidecar was not built.
    std::vector<uint64_t> bits;
    uint32_t bitmap_stride = 0;
  };

  int32_t SlotOf(Vertex from_u, Vertex to_u) const {
    SGM_CHECK(from_u < query_vertex_count_ && to_u < query_vertex_count_);
    return slot_[from_u * query_vertex_count_ + to_u];
  }

  const CandidateSets* candidates_ = nullptr;
  uint32_t query_vertex_count_ = 0;
  std::vector<int32_t> slot_;  // dense |V(q)|^2 map to directed index slots
  std::vector<DirectedIndex> indexes_;
};

}  // namespace sgm

#endif  // SGM_CORE_AUX_STRUCTURE_H_
