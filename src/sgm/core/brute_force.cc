#include "sgm/core/brute_force.h"

#include "sgm/core/types.h"

namespace sgm {

namespace {

struct BruteForceState {
  const Graph& query;
  const Graph& data;
  uint64_t max_matches;
  std::vector<Vertex> mapping;
  std::vector<bool> used;
  uint64_t count = 0;
  std::vector<std::vector<Vertex>>* out = nullptr;

  bool Done() const { return max_matches != 0 && count >= max_matches; }

  void Recurse(Vertex u) {
    if (Done()) return;
    if (u == query.vertex_count()) {
      ++count;
      if (out != nullptr) out->push_back(mapping);
      return;
    }
    for (Vertex v = 0; v < data.vertex_count(); ++v) {
      if (used[v] || data.label(v) != query.label(u)) continue;
      bool ok = true;
      for (const Vertex w : query.neighbors(u)) {
        if (w < u && !data.HasEdge(v, mapping[w])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = v;
      used[v] = true;
      Recurse(u + 1);
      used[v] = false;
      mapping[u] = kInvalidVertex;
      if (Done()) return;
    }
  }
};

}  // namespace

uint64_t BruteForceCount(const Graph& query, const Graph& data,
                         uint64_t max_matches) {
  BruteForceState state{query, data, max_matches,
                        std::vector<Vertex>(query.vertex_count(),
                                            kInvalidVertex),
                        std::vector<bool>(data.vertex_count(), false)};
  state.Recurse(0);
  return state.count;
}

std::vector<std::vector<Vertex>> BruteForceMatches(const Graph& query,
                                                   const Graph& data,
                                                   uint64_t max_matches) {
  std::vector<std::vector<Vertex>> matches;
  BruteForceState state{query, data, max_matches,
                        std::vector<Vertex>(query.vertex_count(),
                                            kInvalidVertex),
                        std::vector<bool>(data.vertex_count(), false)};
  state.out = &matches;
  state.Recurse(0);
  return matches;
}

}  // namespace sgm
