// Deliberately simple reference enumerator used to cross-validate the
// optimized framework in tests. It applies only the definition of subgraph
// isomorphism (label equality, injectivity, edge preservation) with no
// filtering, ordering heuristics or indexes, so its correctness is easy to
// audit by eye.
#ifndef SGM_CORE_BRUTE_FORCE_H_
#define SGM_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "sgm/graph/graph.h"

namespace sgm {

/// Counts all subgraph isomorphisms from query to data by naive
/// backtracking. `max_matches` bounds the count (0 = unlimited). Intended
/// for tests on small graphs only — exponential on purpose.
uint64_t BruteForceCount(const Graph& query, const Graph& data,
                         uint64_t max_matches = 0);

/// Materializes all matches; element i of a match is the data vertex mapped
/// to query vertex i. Matches are emitted in lexicographic order of the
/// mapping vector.
std::vector<std::vector<Vertex>> BruteForceMatches(const Graph& query,
                                                   const Graph& data,
                                                   uint64_t max_matches = 0);

}  // namespace sgm

#endif  // SGM_CORE_BRUTE_FORCE_H_
