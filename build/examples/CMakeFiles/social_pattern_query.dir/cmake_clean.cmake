file(REMOVE_RECURSE
  "CMakeFiles/social_pattern_query.dir/social_pattern_query.cc.o"
  "CMakeFiles/social_pattern_query.dir/social_pattern_query.cc.o.d"
  "social_pattern_query"
  "social_pattern_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_pattern_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
