# Empty compiler generated dependencies file for social_pattern_query.
# This may be replaced when dependencies are built.
