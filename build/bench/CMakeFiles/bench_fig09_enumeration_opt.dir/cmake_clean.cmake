file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_enumeration_opt.dir/bench_fig09_enumeration_opt.cc.o"
  "CMakeFiles/bench_fig09_enumeration_opt.dir/bench_fig09_enumeration_opt.cc.o.d"
  "bench_fig09_enumeration_opt"
  "bench_fig09_enumeration_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_enumeration_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
