# Empty compiler generated dependencies file for bench_fig09_enumeration_opt.
# This may be replaced when dependencies are built.
