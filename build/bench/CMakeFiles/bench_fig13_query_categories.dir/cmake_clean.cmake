file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_query_categories.dir/bench_fig13_query_categories.cc.o"
  "CMakeFiles/bench_fig13_query_categories.dir/bench_fig13_query_categories.cc.o.d"
  "bench_fig13_query_categories"
  "bench_fig13_query_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_query_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
