# Empty compiler generated dependencies file for bench_fig11_ordering_time.
# This may be replaced when dependencies are built.
