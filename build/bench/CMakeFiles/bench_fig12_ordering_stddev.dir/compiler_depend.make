# Empty compiler generated dependencies file for bench_fig12_ordering_stddev.
# This may be replaced when dependencies are built.
