file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ordering_stddev.dir/bench_fig12_ordering_stddev.cc.o"
  "CMakeFiles/bench_fig12_ordering_stddev.dir/bench_fig12_ordering_stddev.cc.o.d"
  "bench_fig12_ordering_stddev"
  "bench_fig12_ordering_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ordering_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
