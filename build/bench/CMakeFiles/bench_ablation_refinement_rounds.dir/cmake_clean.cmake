file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_refinement_rounds.dir/bench_ablation_refinement_rounds.cc.o"
  "CMakeFiles/bench_ablation_refinement_rounds.dir/bench_ablation_refinement_rounds.cc.o.d"
  "bench_ablation_refinement_rounds"
  "bench_ablation_refinement_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_refinement_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
