# Empty dependencies file for bench_fig08_candidate_counts.
# This may be replaced when dependencies are built.
