file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_candidate_counts.dir/bench_fig08_candidate_counts.cc.o"
  "CMakeFiles/bench_fig08_candidate_counts.dir/bench_fig08_candidate_counts.cc.o.d"
  "bench_fig08_candidate_counts"
  "bench_fig08_candidate_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_candidate_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
