# Empty dependencies file for sgm_bench_common.
# This may be replaced when dependencies are built.
