file(REMOVE_RECURSE
  "CMakeFiles/sgm_bench_common.dir/report.cc.o"
  "CMakeFiles/sgm_bench_common.dir/report.cc.o.d"
  "CMakeFiles/sgm_bench_common.dir/runner.cc.o"
  "CMakeFiles/sgm_bench_common.dir/runner.cc.o.d"
  "CMakeFiles/sgm_bench_common.dir/workloads.cc.o"
  "CMakeFiles/sgm_bench_common.dir/workloads.cc.o.d"
  "libsgm_bench_common.a"
  "libsgm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
