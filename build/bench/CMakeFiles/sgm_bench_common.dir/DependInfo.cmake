
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/report.cc" "bench/CMakeFiles/sgm_bench_common.dir/report.cc.o" "gcc" "bench/CMakeFiles/sgm_bench_common.dir/report.cc.o.d"
  "/root/repo/bench/runner.cc" "bench/CMakeFiles/sgm_bench_common.dir/runner.cc.o" "gcc" "bench/CMakeFiles/sgm_bench_common.dir/runner.cc.o.d"
  "/root/repo/bench/workloads.cc" "bench/CMakeFiles/sgm_bench_common.dir/workloads.cc.o" "gcc" "bench/CMakeFiles/sgm_bench_common.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
