file(REMOVE_RECURSE
  "libsgm_bench_common.a"
)
