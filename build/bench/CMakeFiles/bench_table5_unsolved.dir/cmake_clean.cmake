file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_unsolved.dir/bench_table5_unsolved.cc.o"
  "CMakeFiles/bench_table5_unsolved.dir/bench_table5_unsolved.cc.o.d"
  "bench_table5_unsolved"
  "bench_table5_unsolved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_unsolved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
