# Empty dependencies file for bench_table6_order_speedup.
# This may be replaced when dependencies are built.
