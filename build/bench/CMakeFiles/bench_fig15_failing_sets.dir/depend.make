# Empty dependencies file for bench_fig15_failing_sets.
# This may be replaced when dependencies are built.
