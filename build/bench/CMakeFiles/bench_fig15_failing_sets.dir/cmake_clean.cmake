file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_failing_sets.dir/bench_fig15_failing_sets.cc.o"
  "CMakeFiles/bench_fig15_failing_sets.dir/bench_fig15_failing_sets.cc.o.d"
  "bench_fig15_failing_sets"
  "bench_fig15_failing_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_failing_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
