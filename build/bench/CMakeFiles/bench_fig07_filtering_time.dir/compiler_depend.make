# Empty compiler generated dependencies file for bench_fig07_filtering_time.
# This may be replaced when dependencies are built.
