file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_filtering_time.dir/bench_fig07_filtering_time.cc.o"
  "CMakeFiles/bench_fig07_filtering_time.dir/bench_fig07_filtering_time.cc.o.d"
  "bench_fig07_filtering_time"
  "bench_fig07_filtering_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_filtering_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
