# Empty dependencies file for bench_ablation_intersection_methods.
# This may be replaced when dependencies are built.
