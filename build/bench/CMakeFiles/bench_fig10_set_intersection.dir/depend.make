# Empty dependencies file for bench_fig10_set_intersection.
# This may be replaced when dependencies are built.
