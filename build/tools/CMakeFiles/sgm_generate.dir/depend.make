# Empty dependencies file for sgm_generate.
# This may be replaced when dependencies are built.
