file(REMOVE_RECURSE
  "CMakeFiles/sgm_generate.dir/sgm_generate.cc.o"
  "CMakeFiles/sgm_generate.dir/sgm_generate.cc.o.d"
  "sgm_generate"
  "sgm_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
