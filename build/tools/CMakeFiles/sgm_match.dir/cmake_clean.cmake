file(REMOVE_RECURSE
  "CMakeFiles/sgm_match.dir/sgm_match.cc.o"
  "CMakeFiles/sgm_match.dir/sgm_match.cc.o.d"
  "sgm_match"
  "sgm_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
