# Empty dependencies file for sgm_match.
# This may be replaced when dependencies are built.
