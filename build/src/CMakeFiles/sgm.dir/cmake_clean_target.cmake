file(REMOVE_RECURSE
  "libsgm.a"
)
