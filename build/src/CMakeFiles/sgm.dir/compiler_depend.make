# Empty compiler generated dependencies file for sgm.
# This may be replaced when dependencies are built.
