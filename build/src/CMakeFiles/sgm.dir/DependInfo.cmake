
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgm/baselines/ullmann.cc" "src/CMakeFiles/sgm.dir/sgm/baselines/ullmann.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/baselines/ullmann.cc.o.d"
  "/root/repo/src/sgm/baselines/vf2.cc" "src/CMakeFiles/sgm.dir/sgm/baselines/vf2.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/baselines/vf2.cc.o.d"
  "/root/repo/src/sgm/core/aux_structure.cc" "src/CMakeFiles/sgm.dir/sgm/core/aux_structure.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/aux_structure.cc.o.d"
  "/root/repo/src/sgm/core/brute_force.cc" "src/CMakeFiles/sgm.dir/sgm/core/brute_force.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/brute_force.cc.o.d"
  "/root/repo/src/sgm/core/candidate_sets.cc" "src/CMakeFiles/sgm.dir/sgm/core/candidate_sets.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/candidate_sets.cc.o.d"
  "/root/repo/src/sgm/core/enumerate/enumerator.cc" "src/CMakeFiles/sgm.dir/sgm/core/enumerate/enumerator.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/enumerate/enumerator.cc.o.d"
  "/root/repo/src/sgm/core/filter/ceci_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/ceci_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/ceci_filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/cfl_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/cfl_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/cfl_filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/dpiso_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/dpiso_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/dpiso_filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/graphql_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/graphql_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/graphql_filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/ldf_nlf_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/ldf_nlf_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/ldf_nlf_filter.cc.o.d"
  "/root/repo/src/sgm/core/filter/steady_filter.cc" "src/CMakeFiles/sgm.dir/sgm/core/filter/steady_filter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/filter/steady_filter.cc.o.d"
  "/root/repo/src/sgm/core/order/ceci_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/ceci_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/ceci_order.cc.o.d"
  "/root/repo/src/sgm/core/order/cfl_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/cfl_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/cfl_order.cc.o.d"
  "/root/repo/src/sgm/core/order/dpiso_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/dpiso_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/dpiso_order.cc.o.d"
  "/root/repo/src/sgm/core/order/graphql_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/graphql_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/graphql_order.cc.o.d"
  "/root/repo/src/sgm/core/order/order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/order.cc.o.d"
  "/root/repo/src/sgm/core/order/quicksi_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/quicksi_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/quicksi_order.cc.o.d"
  "/root/repo/src/sgm/core/order/ri_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/ri_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/ri_order.cc.o.d"
  "/root/repo/src/sgm/core/order/vf2pp_order.cc" "src/CMakeFiles/sgm.dir/sgm/core/order/vf2pp_order.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/order/vf2pp_order.cc.o.d"
  "/root/repo/src/sgm/core/spectrum.cc" "src/CMakeFiles/sgm.dir/sgm/core/spectrum.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/core/spectrum.cc.o.d"
  "/root/repo/src/sgm/counting.cc" "src/CMakeFiles/sgm.dir/sgm/counting.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/counting.cc.o.d"
  "/root/repo/src/sgm/explain.cc" "src/CMakeFiles/sgm.dir/sgm/explain.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/explain.cc.o.d"
  "/root/repo/src/sgm/glasgow/glasgow.cc" "src/CMakeFiles/sgm.dir/sgm/glasgow/glasgow.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/glasgow/glasgow.cc.o.d"
  "/root/repo/src/sgm/graph/generators.cc" "src/CMakeFiles/sgm.dir/sgm/graph/generators.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/generators.cc.o.d"
  "/root/repo/src/sgm/graph/graph.cc" "src/CMakeFiles/sgm.dir/sgm/graph/graph.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/graph.cc.o.d"
  "/root/repo/src/sgm/graph/graph_builder.cc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_builder.cc.o.d"
  "/root/repo/src/sgm/graph/graph_io.cc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_io.cc.o.d"
  "/root/repo/src/sgm/graph/graph_stats.cc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_stats.cc.o.d"
  "/root/repo/src/sgm/graph/graph_utils.cc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_utils.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/graph_utils.cc.o.d"
  "/root/repo/src/sgm/graph/pattern_catalog.cc" "src/CMakeFiles/sgm.dir/sgm/graph/pattern_catalog.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/pattern_catalog.cc.o.d"
  "/root/repo/src/sgm/graph/query_generator.cc" "src/CMakeFiles/sgm.dir/sgm/graph/query_generator.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/graph/query_generator.cc.o.d"
  "/root/repo/src/sgm/matcher.cc" "src/CMakeFiles/sgm.dir/sgm/matcher.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/matcher.cc.o.d"
  "/root/repo/src/sgm/parallel/parallel_matcher.cc" "src/CMakeFiles/sgm.dir/sgm/parallel/parallel_matcher.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/parallel/parallel_matcher.cc.o.d"
  "/root/repo/src/sgm/util/qfilter.cc" "src/CMakeFiles/sgm.dir/sgm/util/qfilter.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/util/qfilter.cc.o.d"
  "/root/repo/src/sgm/util/set_intersection.cc" "src/CMakeFiles/sgm.dir/sgm/util/set_intersection.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/util/set_intersection.cc.o.d"
  "/root/repo/src/sgm/wcoj/generic_join.cc" "src/CMakeFiles/sgm.dir/sgm/wcoj/generic_join.cc.o" "gcc" "src/CMakeFiles/sgm.dir/sgm/wcoj/generic_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
