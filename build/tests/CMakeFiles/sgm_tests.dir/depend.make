# Empty dependencies file for sgm_tests.
# This may be replaced when dependencies are built.
