
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aux_structure_test.cc" "tests/CMakeFiles/sgm_tests.dir/aux_structure_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/aux_structure_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/sgm_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/bitset_test.cc" "tests/CMakeFiles/sgm_tests.dir/bitset_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/bitset_test.cc.o.d"
  "/root/repo/tests/candidate_sets_test.cc" "tests/CMakeFiles/sgm_tests.dir/candidate_sets_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/candidate_sets_test.cc.o.d"
  "/root/repo/tests/catalog_counting_test.cc" "tests/CMakeFiles/sgm_tests.dir/catalog_counting_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/catalog_counting_test.cc.o.d"
  "/root/repo/tests/config_matrix_test.cc" "tests/CMakeFiles/sgm_tests.dir/config_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/config_matrix_test.cc.o.d"
  "/root/repo/tests/enumerator_property_test.cc" "tests/CMakeFiles/sgm_tests.dir/enumerator_property_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/enumerator_property_test.cc.o.d"
  "/root/repo/tests/enumerator_test.cc" "tests/CMakeFiles/sgm_tests.dir/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/enumerator_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/sgm_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/failing_set_test.cc" "tests/CMakeFiles/sgm_tests.dir/failing_set_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/failing_set_test.cc.o.d"
  "/root/repo/tests/filter_property_test.cc" "tests/CMakeFiles/sgm_tests.dir/filter_property_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/filter_property_test.cc.o.d"
  "/root/repo/tests/filter_test.cc" "tests/CMakeFiles/sgm_tests.dir/filter_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/filter_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/sgm_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/glasgow_test.cc" "tests/CMakeFiles/sgm_tests.dir/glasgow_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/glasgow_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/sgm_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_stats_test.cc" "tests/CMakeFiles/sgm_tests.dir/graph_stats_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/graph_stats_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/sgm_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/graph_utils_test.cc" "tests/CMakeFiles/sgm_tests.dir/graph_utils_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/graph_utils_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sgm_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/matcher_test.cc" "tests/CMakeFiles/sgm_tests.dir/matcher_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/matcher_test.cc.o.d"
  "/root/repo/tests/order_test.cc" "tests/CMakeFiles/sgm_tests.dir/order_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/order_test.cc.o.d"
  "/root/repo/tests/paper_example_test.cc" "tests/CMakeFiles/sgm_tests.dir/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/paper_example_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/sgm_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/prng_test.cc" "tests/CMakeFiles/sgm_tests.dir/prng_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/prng_test.cc.o.d"
  "/root/repo/tests/query_generator_test.cc" "tests/CMakeFiles/sgm_tests.dir/query_generator_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/query_generator_test.cc.o.d"
  "/root/repo/tests/set_intersection_test.cc" "tests/CMakeFiles/sgm_tests.dir/set_intersection_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/set_intersection_test.cc.o.d"
  "/root/repo/tests/spectrum_test.cc" "tests/CMakeFiles/sgm_tests.dir/spectrum_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/spectrum_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/sgm_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/structural_count_test.cc" "tests/CMakeFiles/sgm_tests.dir/structural_count_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/structural_count_test.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/sgm_tests.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/test_main.cc.o.d"
  "/root/repo/tests/wcoj_test.cc" "tests/CMakeFiles/sgm_tests.dir/wcoj_test.cc.o" "gcc" "tests/CMakeFiles/sgm_tests.dir/wcoj_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
