// Side-by-side comparison of all eight algorithms of the paper on one
// workload — a miniature of Figure 16. Runs every framework algorithm in
// its classic and optimized configuration plus the Glasgow CP solver, and
// prints a table of match counts and timings.
#include <cstdio>

#include "sgm/baselines/ullmann.h"
#include "sgm/baselines/vf2.h"
#include "sgm/glasgow/glasgow.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"
#include "sgm/wcoj/generic_join.h"

namespace {

void PrintLine(const char* name, uint64_t matches, double preprocessing_ms,
               double enumeration_ms, const char* note) {
  std::printf("%-14s %10llu %14.2f %14.2f  %s\n", name,
              static_cast<unsigned long long>(matches), preprocessing_ms,
              enumeration_ms, note);
}

}  // namespace

int main() {
  sgm::Prng prng(42);
  const sgm::Graph data = sgm::GenerateRmat(8192, 65536, 12, &prng);
  const auto query =
      sgm::ExtractQuery(data, 8, sgm::QueryDensity::kDense, &prng);
  if (!query.has_value()) {
    std::printf("failed to extract a query\n");
    return 1;
  }
  std::printf("data:  |V|=%u |E|=%u |Sigma|=%u\n", data.vertex_count(),
              data.edge_count(), data.label_count());
  std::printf("query: |V|=%u |E|=%u (dense)\n\n", query->vertex_count(),
              query->edge_count());
  std::printf("%-14s %10s %14s %14s\n", "algorithm", "matches",
              "preprocess(ms)", "enumerate(ms)");

  for (const sgm::Algorithm algorithm : sgm::kAllAlgorithms) {
    for (const bool optimized : {false, true}) {
      sgm::MatchOptions options =
          optimized ? sgm::MatchOptions::Optimized(algorithm)
                    : sgm::MatchOptions::Classic(algorithm);
      options.time_limit_ms = 60000;
      const sgm::MatchResult result = sgm::MatchQuery(*query, data, options);
      char name[32];
      std::snprintf(name, sizeof(name), "%s%s",
                    optimized ? "opt-" : "", sgm::AlgorithmName(algorithm));
      PrintLine(name, result.match_count, result.preprocessing_ms,
                result.enumeration_ms, result.unsolved() ? "[timeout]" : "");
    }
  }

  sgm::GlasgowOptions glasgow_options;
  glasgow_options.time_limit_ms = 60000;
  const sgm::GlasgowResult glasgow =
      sgm::GlasgowMatch(*query, data, glasgow_options);
  PrintLine("Glasgow", glasgow.match_count, 0.0, glasgow.total_ms,
            sgm::GlasgowStatusName(glasgow.status));

  sgm::UllmannOptions ullmann_options;
  ullmann_options.time_limit_ms = 60000;
  const sgm::UllmannResult ullmann =
      sgm::UllmannMatch(*query, data, ullmann_options);
  PrintLine("Ullmann-1976", ullmann.match_count, 0.0, ullmann.total_ms,
            ullmann.timed_out ? "[timeout]" : "");

  sgm::Vf2Options vf2_options;
  vf2_options.time_limit_ms = 60000;
  const sgm::Vf2Result vf2 = sgm::Vf2Match(*query, data, vf2_options);
  PrintLine("VF2-2004", vf2.match_count, 0.0, vf2.total_ms,
            vf2.timed_out ? "[timeout]" : "");

  sgm::WcojOptions wcoj_options;
  wcoj_options.time_limit_ms = 60000;
  const sgm::WcojResult wcoj =
      sgm::GenericJoinMatch(*query, data, wcoj_options);
  PrintLine("WCOJ-join", wcoj.result_count, 0.0, wcoj.total_ms,
            wcoj.timed_out ? "[timeout]" : "");

  std::printf(
      "\nEvery engine agrees on the match count; the optimized variants"
      " show the effect of the paper's Section 5.2 enumeration upgrade.\n");
  return 0;
}
