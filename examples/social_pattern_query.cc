// Social-network pattern query — the large-sparse-graph workload of the
// paper's Youtube/DBLP experiments. Extracts a realistic 16-vertex pattern
// from a synthetic social graph and answers it twice: without and with
// failing-set pruning, demonstrating the paper's finding 4 (enable failing
// sets on large queries).
#include <cstdio>

#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"

int main() {
  // A social graph: 100k users, 500k friendships, 16 community labels.
  sgm::Prng prng(2020);
  const sgm::Graph social = sgm::GenerateRmat(100000, 500000, 16, &prng);
  std::printf("social graph: %u users, %u edges, %u communities\n\n",
              social.vertex_count(), social.edge_count(),
              social.label_count());

  // A 16-vertex pattern sampled from the graph itself, as a recommender
  // would look for "this constellation of roles around a seed group".
  const auto pattern =
      sgm::ExtractQuery(social, 16, sgm::QueryDensity::kSparse, &prng);
  if (!pattern.has_value()) {
    std::printf("could not extract a pattern (graph too sparse)\n");
    return 1;
  }
  std::printf("pattern: %u vertices, %u edges, avg degree %.2f\n\n",
              pattern->vertex_count(), pattern->edge_count(),
              pattern->average_degree());

  for (const bool failing_sets : {false, true}) {
    sgm::MatchOptions options =
        sgm::MatchOptions::Optimized(sgm::Algorithm::kGraphQL);
    options.use_failing_sets = failing_sets;
    options.max_matches = 100000;
    options.time_limit_ms = 60000;
    const sgm::MatchResult result =
        sgm::MatchQuery(*pattern, social, options);
    std::printf("failing sets %s: %llu matches in %.2f ms enumeration"
                " (%llu search nodes, %llu sibling extensions pruned)%s\n",
                failing_sets ? "ON " : "OFF",
                static_cast<unsigned long long>(result.match_count),
                result.enumeration_ms,
                static_cast<unsigned long long>(
                    result.enumerate.recursion_calls),
                static_cast<unsigned long long>(
                    result.enumerate.failing_set_prunes),
                result.unsolved() ? " [timed out]" : "");
  }
  std::printf(
      "\nPer the paper's recommendation 4, failing sets pay off on large"
      " queries like this one and should be disabled for small ones.\n");
  return 0;
}
