// Protein-interaction motif search — the bioinformatics workload that
// motivates algorithms like RI and VF2++ (Section 1 of the paper).
//
// Builds a synthetic protein-protein interaction network (power-law
// topology, labels = protein families) and searches for three classic
// motifs: a labeled triangle, a "bi-fan" (two regulators sharing two
// targets), and a regulator hub. Each motif is searched with the paper's
// recommended configuration; the run prints match counts and per-phase
// timings.
#include <cstdio>
#include <utility>
#include <vector>

#include "sgm/graph/generators.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/matcher.h"

namespace {

struct Motif {
  const char* name;
  sgm::Graph graph;
};

sgm::Graph MakeMotif(const std::vector<sgm::Label>& labels,
                     const std::vector<std::pair<sgm::Vertex, sgm::Vertex>>&
                         edges) {
  sgm::GraphBuilder builder;
  for (const sgm::Label label : labels) builder.AddVertex(label);
  for (const auto& [a, b] : edges) builder.AddEdge(a, b);
  return builder.Build();
}

}  // namespace

int main() {
  // A PPI-style network: 20k proteins, 120k interactions, 24 families.
  sgm::Prng prng(7);
  const sgm::Graph network = sgm::GenerateRmat(20000, 120000, 24, &prng);
  std::printf("PPI network: %u proteins, %u interactions, %u families,"
              " avg degree %.1f\n\n",
              network.vertex_count(), network.edge_count(),
              network.label_count(), network.average_degree());

  // Families: 0 = kinase, 1 = phosphatase, 2 = scaffold (say).
  std::vector<Motif> motifs;
  motifs.push_back({"signaling triangle (kinase-phosphatase-scaffold)",
                    MakeMotif({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}})});
  motifs.push_back({"bi-fan (two kinases sharing two scaffolds)",
                    MakeMotif({0, 0, 2, 2},
                              {{0, 2}, {0, 3}, {1, 2}, {1, 3}})});
  motifs.push_back({"regulator hub (kinase with 3 distinct partners)",
                    MakeMotif({0, 1, 2, 3}, {{0, 1}, {0, 2}, {0, 3}})});

  for (const Motif& motif : motifs) {
    sgm::MatchOptions options =
        sgm::MatchOptions::Recommended(motif.graph.vertex_count());
    options.max_matches = 1000000;
    const sgm::MatchResult result =
        sgm::MatchQuery(motif.graph, network, options);
    std::printf("%s\n", motif.name);
    std::printf("  embeddings: %llu%s\n",
                static_cast<unsigned long long>(result.match_count),
                result.enumerate.reached_match_limit ? " (capped)" : "");
    std::printf("  preprocessing %.2f ms, enumeration %.2f ms,"
                " avg candidates %.1f\n\n",
                result.preprocessing_ms, result.enumeration_ms,
                result.average_candidates);
  }
  return 0;
}
