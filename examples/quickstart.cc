// Quickstart: build a small labeled data graph and a query, run the
// recommended matcher configuration, and print every embedding.
//
//   $ ./quickstart
//
// The graphs are the running example of the paper (Figure 1): a 4-vertex
// query over a 13-vertex data graph with exactly two matches.
#include <cstdio>

#include "sgm/graph/graph_builder.h"
#include "sgm/matcher.h"

int main() {
  // Labels: 0=A, 1=B, 2=C, 3=D.
  sgm::GraphBuilder query_builder;
  const sgm::Vertex u0 = query_builder.AddVertex(0);
  const sgm::Vertex u1 = query_builder.AddVertex(1);
  const sgm::Vertex u2 = query_builder.AddVertex(2);
  const sgm::Vertex u3 = query_builder.AddVertex(3);
  query_builder.AddEdge(u0, u1);
  query_builder.AddEdge(u0, u2);
  query_builder.AddEdge(u1, u2);
  query_builder.AddEdge(u1, u3);
  query_builder.AddEdge(u2, u3);
  const sgm::Graph query = query_builder.Build();

  sgm::GraphBuilder data_builder;
  const sgm::Label labels[] = {0, 2, 1, 2, 1, 2, 1, 2, 3, 0, 3, 3, 3};
  for (const sgm::Label label : labels) data_builder.AddVertex(label);
  const std::pair<sgm::Vertex, sgm::Vertex> edges[] = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {1, 2}, {1, 8},
      {2, 3}, {2, 10}, {3, 10}, {4, 5}, {4, 12}, {5, 12}, {6, 7}, {6, 11},
      {8, 9}};
  for (const auto& [a, b] : edges) data_builder.AddEdge(a, b);
  const sgm::Graph data = data_builder.Build();

  std::printf("query: %u vertices, %u edges\n", query.vertex_count(),
              query.edge_count());
  std::printf("data:  %u vertices, %u edges\n", data.vertex_count(),
              data.edge_count());

  // The paper's recommended configuration (GraphQL filtering + ordering,
  // set-intersection enumeration, failing sets on large queries).
  const sgm::MatchOptions options =
      sgm::MatchOptions::Recommended(query.vertex_count());

  const sgm::MatchResult result = sgm::MatchQuery(
      query, data, options, [&](std::span<const sgm::Vertex> mapping) {
        std::printf("match:");
        for (sgm::Vertex u = 0; u < query.vertex_count(); ++u) {
          std::printf(" u%u->v%u", u, mapping[u]);
        }
        std::printf("\n");
        return true;  // keep enumerating
      });

  std::printf("total matches: %llu\n",
              static_cast<unsigned long long>(result.match_count));
  std::printf("preprocessing %.3f ms, enumeration %.3f ms\n",
              result.preprocessing_ms, result.enumeration_ms);
  return 0;
}
