// Motif census: count distinct occurrences of the classic 3-5 vertex motifs
// in a network, dividing out pattern symmetry — the standard network-science
// application of subgraph matching. Demonstrates the pattern catalog, the
// automorphism-aware counting API and the EXPLAIN plan inspector.
#include <cstdio>

#include "sgm/counting.h"
#include "sgm/explain.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_stats.h"
#include "sgm/graph/pattern_catalog.h"

int main() {
  sgm::Prng prng(13);
  const sgm::Graph network = sgm::GenerateRmat(30000, 150000, 1, &prng);
  const sgm::GraphStats stats = sgm::ComputeGraphStats(network);
  std::printf("network: |V|=%u |E|=%u avg-degree=%.1f clustering=%.4f\n\n",
              stats.vertex_count, stats.edge_count, stats.average_degree,
              stats.global_clustering);

  struct MotifEntry {
    const char* name;
    sgm::Graph pattern;
  };
  const MotifEntry motifs[] = {
      {"triangle", sgm::CliquePattern(3)},
      {"3-path", sgm::PathPattern(3)},
      {"4-cycle", sgm::CyclePattern(4)},
      {"diamond", sgm::DiamondPattern()},
      {"tailed-triangle", sgm::TailedTrianglePattern()},
      {"4-clique", sgm::CliquePattern(4)},
      {"bi-fan", sgm::BiFanPattern()},
  };

  std::printf("%-16s %14s %6s %14s %8s\n", "motif", "embeddings", "|Aut|",
              "occurrences", "exact");
  for (const MotifEntry& motif : motifs) {
    sgm::MatchOptions options =
        sgm::MatchOptions::Recommended(motif.pattern.vertex_count());
    options.max_matches = 5000000;
    options.time_limit_ms = 30000;
    const sgm::OccurrenceCount count =
        sgm::CountOccurrences(motif.pattern, network, options);
    std::printf("%-16s %14llu %6llu %14llu %8s\n", motif.name,
                static_cast<unsigned long long>(count.embeddings),
                static_cast<unsigned long long>(count.automorphisms),
                static_cast<unsigned long long>(count.occurrences),
                count.exact ? "yes" : "no");
  }

  // Sanity anchor: triangle occurrences must equal the direct triangle
  // count from the statistics module.
  std::printf("\ntriangles via graph statistics: %llu\n",
              static_cast<unsigned long long>(stats.triangle_count));

  // Peek at the plan the engine uses for the diamond.
  std::printf("\n%s", sgm::ExplainQuery(sgm::DiamondPattern(), network,
                                        sgm::MatchOptions::Recommended(4))
                          .ToString(sgm::DiamondPattern())
                          .c_str());
  return 0;
}
