// Ground-truth tests against the worked examples of Section 3 of the paper
// (Examples 3.1-3.4 on the Figure 1 graphs). See test_support.h for the
// reconstruction of the running example.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sgm/core/brute_force.h"
#include "sgm/core/filter/filter.h"
#include "sgm/matcher.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

std::vector<Vertex> AsVector(std::span<const Vertex> span) {
  return {span.begin(), span.end()};
}

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : query_(PaperQuery()), data_(PaperData()) {}
  Graph query_;
  Graph data_;
};

TEST_F(PaperExampleTest, GroundTruthMatches) {
  // Figure 1's match {(u0,v0),(u1,v4),(u2,v5),(u3,v12)} plus the symmetric
  // {(u0,v0),(u1,v2),(u2,v3),(u3,v10)} are the only two.
  const auto matches = BruteForceMatches(query_, data_);
  std::set<std::vector<Vertex>> expected = {{0, 4, 5, 12}, {0, 2, 3, 10}};
  std::set<std::vector<Vertex>> actual(matches.begin(), matches.end());
  EXPECT_EQ(actual, expected);
}

TEST_F(PaperExampleTest, Example31GraphQlLocalPruning) {
  FilterOptions options;
  options.graphql_refinement_rounds = 0;  // local pruning only
  const FilterResult result =
      RunFilter(FilterMethod::kGraphQL, query_, data_, options);
  EXPECT_EQ(AsVector(result.candidates.candidates(0)),
            (std::vector<Vertex>{0}));
  EXPECT_EQ(AsVector(result.candidates.candidates(1)),
            (std::vector<Vertex>{2, 4, 6}));
  EXPECT_EQ(AsVector(result.candidates.candidates(2)),
            (std::vector<Vertex>{1, 3, 5}));
  EXPECT_EQ(AsVector(result.candidates.candidates(3)),
            (std::vector<Vertex>{10, 12}));
}

TEST_F(PaperExampleTest, Example31GraphQlGlobalRefinementRemovesV1) {
  FilterOptions options;
  options.graphql_refinement_rounds = 1;
  const FilterResult result =
      RunFilter(FilterMethod::kGraphQL, query_, data_, options);
  // v1 has no semi-perfect matching (its D-neighbor v8 is not in C(u3));
  // v3 and v5 survive.
  EXPECT_FALSE(result.candidates.Contains(2, 1));
  EXPECT_TRUE(result.candidates.Contains(2, 3));
  EXPECT_TRUE(result.candidates.Contains(2, 5));
}

TEST_F(PaperExampleTest, Example32CflFilter) {
  const FilterResult result = RunFilter(FilterMethod::kCFL, query_, data_);
  // After generation + backward pruning + bottom-up refinement:
  // v6 removed from C(u1) (non-tree edge e(u1,u2)), v1 removed from C(u2)
  // (no neighbor in C(u3)).
  EXPECT_EQ(AsVector(result.candidates.candidates(0)),
            (std::vector<Vertex>{0}));
  EXPECT_EQ(AsVector(result.candidates.candidates(1)),
            (std::vector<Vertex>{2, 4}));
  EXPECT_EQ(AsVector(result.candidates.candidates(2)),
            (std::vector<Vertex>{3, 5}));
  EXPECT_EQ(AsVector(result.candidates.candidates(3)),
            (std::vector<Vertex>{10, 12}));
  // The BFS tree of Example 3.2 is rooted at u0 with u3 under u1.
  ASSERT_TRUE(result.bfs_tree.has_value());
  EXPECT_EQ(result.bfs_tree->root, 0u);
  EXPECT_EQ(result.bfs_tree->parent[3], 1u);
}

TEST_F(PaperExampleTest, Example33CeciFilter) {
  const FilterResult result = RunFilter(FilterMethod::kCECI, query_, data_);
  // δ = (u0, u1, u2, u3); v6 removed via e(u1,u2), v1 via e(u2,u3).
  ASSERT_TRUE(result.bfs_tree.has_value());
  EXPECT_EQ(result.bfs_tree->root, 0u);
  EXPECT_EQ(AsVector(result.bfs_tree->order),
            (std::vector<Vertex>{0, 1, 2, 3}));
  EXPECT_EQ(AsVector(result.candidates.candidates(0)),
            (std::vector<Vertex>{0}));
  EXPECT_EQ(AsVector(result.candidates.candidates(1)),
            (std::vector<Vertex>{2, 4}));
  EXPECT_EQ(AsVector(result.candidates.candidates(2)),
            (std::vector<Vertex>{3, 5}));
  EXPECT_EQ(AsVector(result.candidates.candidates(3)),
            (std::vector<Vertex>{10, 12}));
}

TEST_F(PaperExampleTest, Example34DpisoFilter) {
  FilterOptions options;
  options.dpiso_refinement_rounds = 1;  // the example sets k = 1
  const FilterResult result =
      RunFilter(FilterMethod::kDPiso, query_, data_, options);
  // The first (reverse-δ) pass applies NLF and removes v1 from C(u2) based
  // on C(u3) = {v10, v12}.
  EXPECT_FALSE(result.candidates.Contains(2, 1));
  EXPECT_EQ(AsVector(result.candidates.candidates(3)),
            (std::vector<Vertex>{10, 12}));
}

TEST_F(PaperExampleTest, AllAlgorithmsFindBothMatches) {
  for (const Algorithm algorithm : kAllAlgorithms) {
    const MatchResult classic =
        MatchQuery(query_, data_, MatchOptions::Classic(algorithm));
    EXPECT_EQ(classic.match_count, 2u) << AlgorithmName(algorithm);
    const MatchResult optimized =
        MatchQuery(query_, data_, MatchOptions::Optimized(algorithm));
    EXPECT_EQ(optimized.match_count, 2u) << AlgorithmName(algorithm);
  }
}

TEST_F(PaperExampleTest, MatchCallbackReceivesValidEmbeddings) {
  std::vector<std::vector<Vertex>> received;
  const MatchResult result = MatchQuery(
      query_, data_, MatchOptions::Classic(Algorithm::kGraphQL),
      [&](std::span<const Vertex> mapping) {
        received.emplace_back(mapping.begin(), mapping.end());
        return true;
      });
  ASSERT_EQ(result.match_count, 2u);
  ASSERT_EQ(received.size(), 2u);
  for (const auto& mapping : received) {
    // Validate the embedding directly against Definition 2.1.
    for (Vertex u = 0; u < query_.vertex_count(); ++u) {
      EXPECT_EQ(query_.label(u), data_.label(mapping[u]));
      for (const Vertex w : query_.neighbors(u)) {
        EXPECT_TRUE(data_.HasEdge(mapping[u], mapping[w]));
      }
    }
  }
}

}  // namespace
}  // namespace sgm
