// Property tests for continuous matching: every batch's delta, replayed
// over the previous match set, must reproduce a cold brute-force re-match
// of the updated snapshot — including retractions from deleting edges
// inside previously reported matches — and the maintained set must agree
// with the parallel enumerator on the final graph.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sgm/core/brute_force.h"
#include "sgm/dynamic/continuous.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/generators.h"
#include "sgm/matcher.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/util/prng.h"
#include "test_support.h"

namespace sgm::dynamic {
namespace {

using sgm::testing::MakeGraph;
using sgm::testing::PaperData;
using sgm::testing::PaperQuery;

using MatchSet = std::set<std::vector<Vertex>>;

MatchSet InitialMatches(const Graph& query, const Graph& data) {
  const auto matches = BruteForceMatches(query, data);
  return MatchSet(matches.begin(), matches.end());
}

/// Applies one delta's records in order, asserting the exactness contract:
/// additions must be new, retractions must exist.
void ReplayDelta(const MatchDelta& delta, MatchSet* matches,
                 const std::string& context) {
  for (const DeltaRecord& record : delta.records) {
    if (record.addition) {
      ASSERT_TRUE(matches->insert(record.embedding).second)
          << context << ": duplicate addition";
    } else {
      ASSERT_EQ(matches->erase(record.embedding), 1u)
          << context << ": retraction of an unreported match";
    }
  }
}

UpdateBatch Batch(std::vector<UpdateOp> ops) {
  UpdateBatch batch;
  batch.ops = std::move(ops);
  return batch;
}

TEST(ContinuousMatcherTest, RejectsInvalidRegistrations) {
  DynamicGraph graph(PaperData());
  ContinuousMatcher matcher(&graph);
  std::string error;
  EXPECT_EQ(matcher.Register(Graph(), &error), 0u);
  EXPECT_FALSE(error.empty());
  // Disconnected: two isolated vertices.
  EXPECT_EQ(matcher.Register(MakeGraph({0, 1}, {}), &error), 0u);
  // Label outside the data graph's fixed vocabulary.
  EXPECT_EQ(matcher.Register(MakeGraph({99}, {}), &error), 0u);
  // 65-vertex path exceeds the engine-wide query cap.
  {
    std::vector<Label> labels(65, 0);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (Vertex v = 0; v + 1 < 65; ++v) edges.emplace_back(v, v + 1);
    EXPECT_EQ(matcher.Register(MakeGraph(labels, edges), &error), 0u);
  }
  EXPECT_EQ(matcher.registration_count(), 0u);

  const uint64_t id = matcher.Register(PaperQuery(), &error);
  EXPECT_GT(id, 0u) << error;
  EXPECT_EQ(matcher.registration_count(), 1u);
  EXPECT_TRUE(matcher.Unregister(id));
  EXPECT_FALSE(matcher.Unregister(id));
}

TEST(ContinuousMatcherTest, RetractsMatchBrokenByEdgeDelete) {
  // Figure 1 has exactly two matches; deleting data edge (v0, v4) kills
  // {(u0,v0),(u1,v4),(u2,v5),(u3,v12)} and must retract exactly it.
  DynamicGraph graph(PaperData());
  ContinuousMatcher matcher(&graph);
  std::string error;
  const uint64_t id = matcher.Register(PaperQuery(), &error);
  ASSERT_GT(id, 0u) << error;

  MatchSet matches = InitialMatches(PaperQuery(), graph.Snapshot());
  ASSERT_EQ(matches.size(), 2u);

  auto result = matcher.ApplyBatch(Batch({UpdateOp::RemoveEdge(0, 4)}),
                                   &error);
  ASSERT_TRUE(result.has_value()) << error;
  ASSERT_EQ(result->deltas.size(), 1u);
  const MatchDelta& delta = result->deltas[0];
  EXPECT_EQ(delta.query_id, id);
  EXPECT_EQ(delta.additions, 0u);
  EXPECT_EQ(delta.retractions, 1u);
  ASSERT_EQ(delta.records.size(), 1u);
  EXPECT_FALSE(delta.records[0].addition);
  EXPECT_EQ(delta.records[0].embedding, (std::vector<Vertex>{0, 4, 5, 12}));

  ReplayDelta(delta, &matches, "delete (0,4)");
  EXPECT_EQ(matches, InitialMatches(PaperQuery(), graph.Snapshot()));

  // Re-inserting the edge resurrects the match as an addition.
  result = matcher.ApplyBatch(Batch({UpdateOp::AddEdge(0, 4)}), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->deltas[0].additions, 1u);
  EXPECT_EQ(result->deltas[0].records[0].embedding,
            (std::vector<Vertex>{0, 4, 5, 12}));
}

TEST(ContinuousMatcherTest, EmptyBatchYieldsNoRecords) {
  DynamicGraph graph(PaperData());
  ContinuousMatcher matcher(&graph);
  std::string error;
  ASSERT_GT(matcher.Register(PaperQuery(), &error), 0u);
  const auto result = matcher.ApplyBatch(Batch({}), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_EQ(result->ops_applied, 0u);
  ASSERT_EQ(result->deltas.size(), 1u);
  EXPECT_TRUE(result->deltas[0].records.empty());
}

TEST(ContinuousMatcherTest, AddAndRemoveInOneBatchNetsToNothing) {
  // An embedding created and destroyed inside one batch appears as an
  // ordered addition+retraction pair; the folded set is unchanged.
  DynamicGraph graph(PaperData());
  ContinuousMatcher matcher(&graph);
  std::string error;
  ASSERT_GT(matcher.Register(PaperQuery(), &error), 0u);
  MatchSet matches = InitialMatches(PaperQuery(), graph.Snapshot());

  // (v9, v7) gives A-vertex v9 a C neighbor; with (v7, v6), (v6, v11)
  // already present no new match forms — use a pair known to create one:
  // delete and re-add (0, 4) in one batch.
  const auto result = matcher.ApplyBatch(
      Batch({UpdateOp::RemoveEdge(0, 4), UpdateOp::AddEdge(0, 4)}), &error);
  ASSERT_TRUE(result.has_value()) << error;
  const MatchDelta& delta = result->deltas[0];
  EXPECT_EQ(delta.retractions, 1u);
  EXPECT_EQ(delta.additions, 1u);
  ReplayDelta(delta, &matches, "remove+re-add");
  EXPECT_EQ(matches, InitialMatches(PaperQuery(), graph.Snapshot()));
}

/// The core equivalence property: for every batch of a random stream,
/// replaying the delta over the maintained set equals a cold re-match.
void RunEquivalence(uint64_t seed, uint32_t data_vertices, uint32_t data_edges,
                    uint32_t labels,
                    const std::vector<Graph>& queries) {
  Prng prng(seed);
  Graph base = GenerateErdosRenyi(data_vertices, data_edges, labels, &prng);
  StreamGenOptions options;
  options.batches = 12;
  options.max_ops_per_batch = 6;
  // Lean hard on deletions so retraction paths get real coverage.
  options.remove_edge_weight = 0.45;
  options.remove_vertex_weight = 0.08;
  options.add_vertex_weight = 0.08;
  const UpdateStream stream = GenerateUpdateStream(base, options, &prng);

  DynamicGraph graph(std::move(base));
  ContinuousMatcher matcher(&graph);
  std::vector<uint64_t> ids;
  std::vector<MatchSet> matches;
  for (const Graph& query : queries) {
    std::string error;
    const uint64_t id = matcher.Register(query, &error);
    ASSERT_GT(id, 0u) << error;
    ids.push_back(id);
    matches.push_back(InitialMatches(query, graph.Snapshot()));
  }

  uint64_t batch_index = 0;
  for (const UpdateBatch& batch : stream.batches) {
    std::string error;
    const auto result = matcher.ApplyBatch(batch, &error);
    ASSERT_TRUE(result.has_value()) << error;
    ASSERT_EQ(result->deltas.size(), queries.size());
    const Graph snapshot = graph.Snapshot();
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::string context = "seed " + std::to_string(seed) + " batch " +
                                  std::to_string(batch_index) + " query " +
                                  std::to_string(q);
      EXPECT_EQ(result->deltas[q].query_id, ids[q]);
      ReplayDelta(result->deltas[q], &matches[q], context);
      EXPECT_EQ(matches[q], InitialMatches(queries[q], snapshot)) << context;
    }
    ++batch_index;
  }

  // Final cross-check against the optimized serial and parallel engines:
  // the incrementally maintained count must match both.
  const Graph final_snapshot = graph.Snapshot();
  for (size_t q = 0; q < queries.size(); ++q) {
    MatchOptions match_options;
    match_options.max_matches = 0;
    const MatchResult serial =
        MatchQuery(queries[q], final_snapshot, match_options);
    EXPECT_EQ(serial.match_count, matches[q].size()) << "query " << q;
    const ParallelMatchResult par =
        ParallelMatchQuery(queries[q], final_snapshot, match_options, 4);
    EXPECT_EQ(par.result.match_count, matches[q].size()) << "query " << q;
  }
}

TEST(ContinuousMatcherTest, DeltaEqualsRematchOnRandomStreams) {
  const std::vector<Graph> queries = {
      MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}),  // triangle
      MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}),          // labeled path
      MakeGraph({1}, {}),                              // single vertex
      MakeGraph({0, 1}, {{0, 1}}),                     // single edge
  };
  for (const uint64_t seed : {2ULL, 11ULL, 58ULL, 1234ULL}) {
    RunEquivalence(seed, 24, 48, 3, queries);
  }
}

TEST(ContinuousMatcherTest, DeltaEqualsRematchOnDenserGraphs) {
  // Denser graphs make multi-edge overlaps (one embedding touched by
  // several ops of the same batch) likely.
  const std::vector<Graph> queries = {
      MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}),
      MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}}),  // 4-path
  };
  for (const uint64_t seed : {7ULL, 99ULL}) {
    RunEquivalence(seed, 18, 60, 2, queries);
  }
}

}  // namespace
}  // namespace sgm::dynamic
