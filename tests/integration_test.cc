// End-to-end integration tests: full pipelines over generated datasets, all
// algorithms (framework + Glasgow) agreeing with each other on realistic
// workloads, including the paper's query-set protocol.
#include <gtest/gtest.h>

#include "sgm/core/brute_force.h"
#include "sgm/glasgow/glasgow.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_io.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"

namespace sgm {
namespace {

TEST(IntegrationTest, AllAlgorithmsAgreeOnRmatWorkload) {
  Prng prng(90001);
  const Graph data = GenerateRmat(512, 2048, 8, &prng);
  const auto queries =
      GenerateQuerySet(data, 6, QueryDensity::kAny, 5, &prng);
  ASSERT_FALSE(queries.empty());
  for (const Graph& query : queries) {
    uint64_t reference = 0;
    bool first = true;
    for (const Algorithm algorithm : kAllAlgorithms) {
      MatchOptions options = MatchOptions::Classic(algorithm);
      options.max_matches = 0;
      options.time_limit_ms = 30000;
      const MatchResult result = MatchQuery(query, data, options);
      ASSERT_FALSE(result.unsolved()) << AlgorithmName(algorithm);
      if (first) {
        reference = result.match_count;
        first = false;
      } else {
        EXPECT_EQ(result.match_count, reference) << AlgorithmName(algorithm);
      }
    }
    // Glasgow agrees too.
    GlasgowOptions glasgow_options;
    glasgow_options.max_matches = 0;
    const GlasgowResult glasgow = GlasgowMatch(query, data, glasgow_options);
    ASSERT_EQ(glasgow.status, GlasgowStatus::kComplete);
    EXPECT_EQ(glasgow.match_count, reference);
    EXPECT_GE(reference, 1u);  // extracted queries always match
  }
}

TEST(IntegrationTest, MatchLimitConsistencyAcrossAlgorithms) {
  // With a match cap, every algorithm must report exactly the cap whenever
  // the true count exceeds it.
  Prng prng(90002);
  const Graph data = GenerateErdosRenyi(256, 2500, 2, &prng);
  const auto query = ExtractQuery(data, 4, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  const uint64_t total = BruteForceCount(*query, data);
  if (total < 10) GTEST_SKIP() << "instance too small to exercise the cap";
  for (const Algorithm algorithm : kAllAlgorithms) {
    MatchOptions options = MatchOptions::Optimized(algorithm);
    options.max_matches = 10;
    const MatchResult result = MatchQuery(*query, data, options);
    EXPECT_EQ(result.match_count, 10u) << AlgorithmName(algorithm);
  }
}

TEST(IntegrationTest, SaveLoadMatchRoundTrip) {
  Prng prng(90003);
  const Graph data = GenerateErdosRenyi(200, 800, 4, &prng);
  const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());

  const std::string data_path = ::testing::TempDir() + "/sgm_int_data.graph";
  const std::string query_path = ::testing::TempDir() + "/sgm_int_query.graph";
  std::string error;
  ASSERT_TRUE(SaveGraphFile(data, data_path, &error)) << error;
  ASSERT_TRUE(SaveGraphFile(*query, query_path, &error)) << error;
  const auto data2 = LoadGraphFile(data_path, &error);
  const auto query2 = LoadGraphFile(query_path, &error);
  ASSERT_TRUE(data2.has_value() && query2.has_value()) << error;

  MatchOptions options = MatchOptions::Recommended(query->vertex_count());
  options.max_matches = 0;
  const uint64_t before = MatchQuery(*query, data, options).match_count;
  const uint64_t after = MatchQuery(*query2, *data2, options).match_count;
  EXPECT_EQ(before, after);
  EXPECT_EQ(before, BruteForceCount(*query, data));
}

TEST(IntegrationTest, DenseAndSparseQuerySetsBehaveSanely) {
  Prng prng(90004);
  const Graph data = GenerateErdosRenyi(400, 4000, 8, &prng);
  const auto dense =
      GenerateQuerySet(data, 8, QueryDensity::kDense, 3, &prng);
  const auto sparse =
      GenerateQuerySet(data, 8, QueryDensity::kSparse, 3, &prng);
  for (const auto& queries : {dense, sparse}) {
    for (const Graph& query : queries) {
      MatchOptions options = MatchOptions::Recommended(8);
      const MatchResult result = MatchQuery(query, data, options);
      EXPECT_GE(result.match_count, 1u);
    }
  }
}

TEST(IntegrationTest, LargerQueriesWithFailingSets) {
  Prng prng(90005);
  const Graph data = GenerateErdosRenyi(300, 1800, 6, &prng);
  const auto query = ExtractQuery(data, 16, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  MatchOptions with = MatchOptions::Optimized(Algorithm::kGraphQL);
  with.use_failing_sets = true;
  with.max_matches = 0;
  MatchOptions without = with;
  without.use_failing_sets = false;
  const MatchResult a = MatchQuery(*query, data, with);
  const MatchResult b = MatchQuery(*query, data, without);
  EXPECT_EQ(a.match_count, b.match_count);
  EXPECT_GE(a.match_count, 1u);
}

}  // namespace
}  // namespace sgm
