// Sharded-execution tests (DESIGN.md §13): partitioner invariants, shard
// graph construction, and — most importantly — the exactness property the
// whole subsystem is built around: for every K and partitioner, the sharded
// run delivers exactly the monolithic count and embedding set. The
// straddling-query tests pin the boundary pass specifically: instances
// whose only embeddings cross the cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>
#include <vector>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/plan.h"
#include "sgm/shard/partition.h"
#include "sgm/shard/sharded_graph.h"
#include "sgm/util/prng.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

constexpr uint32_t kShardCounts[] = {1, 2, 7};
constexpr shard::Partitioner kPartitioners[] = {shard::Partitioner::kHash,
                                                shard::Partitioner::kGreedy};

std::vector<std::vector<Vertex>> CollectSharded(
    const Graph& query, const shard::ShardedGraph& sharded,
    const MatchOptions& options) {
  std::vector<std::vector<Vertex>> matches;
  ShardedMatchQuery(query, sharded, options,
                    [&matches](std::span<const Vertex> mapping) {
                      matches.emplace_back(mapping.begin(), mapping.end());
                      return true;
                    });
  std::sort(matches.begin(), matches.end());
  return matches;
}

// Two dense communities with disjoint label alphabets ({0,1} vs {2,3})
// joined by a few 1-2 cross edges. Any embedding of a query containing a
// 1-2 edge must map it onto a cross edge — with the greedy partitioner at
// K=2 these are exactly the cut edges, so every match exercises the
// boundary pass.
Graph MakeTwoCommunityData(uint32_t side = 24, uint32_t cross = 3) {
  std::vector<Label> labels;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (uint32_t i = 0; i < side; ++i) labels.push_back(i % 2);        // A
  for (uint32_t i = 0; i < side; ++i) labels.push_back(2 + i % 2);    // B
  auto connect_blob = [&](uint32_t base) {
    for (uint32_t i = 0; i < side; ++i) {
      edges.push_back({base + i, base + (i + 1) % side});
      edges.push_back({base + i, base + (i + 5) % side});
      edges.push_back({base + i, base + (i + 9) % side});
    }
  };
  connect_blob(0);
  connect_blob(side);
  for (uint32_t c = 0; c < cross; ++c) {
    // label-1 vertex in A to label-2 vertex in B
    edges.push_back({2 * (c * 3 % (side / 2)) + 1, side + 2 * (c * 5 % (side / 2))});
  }
  return MakeGraph(labels, edges);
}

TEST(ShardPartitionTest, NamesRoundTrip) {
  for (const shard::Partitioner p : kPartitioners) {
    EXPECT_EQ(shard::ParsePartitioner(shard::PartitionerName(p)), p);
  }
  EXPECT_FALSE(shard::ParsePartitioner("metis").has_value());
}

TEST(ShardPartitionTest, AssignmentCompleteAndDeterministic) {
  Prng prng(7);
  const Graph data = GenerateErdosRenyi(200, 600, 4, &prng);
  for (const shard::Partitioner method : kPartitioners) {
    for (const uint32_t k : kShardCounts) {
      const shard::Partition a = shard::Partition::Build(data, k, method);
      const shard::Partition b = shard::Partition::Build(data, k, method);
      EXPECT_EQ(a.assignment, b.assignment) << "partitioning must be stable";
      ASSERT_EQ(a.assignment.size(), data.vertex_count());
      uint32_t total = 0;
      for (const uint32_t size : a.shard_sizes) total += size;
      EXPECT_EQ(total, data.vertex_count());
      for (const uint32_t s : a.assignment) EXPECT_LT(s, k);
      // Cut summary consistent with the assignment.
      uint64_t cut = 0;
      for (Vertex v = 0; v < data.vertex_count(); ++v) {
        for (const Vertex w : data.neighbors(v)) {
          if (w > v && a.assignment[v] != a.assignment[w]) ++cut;
        }
      }
      EXPECT_EQ(cut, a.cut_edges);
      if (k == 1) {
        EXPECT_EQ(a.cut_edges, 0u);
      }
    }
  }
}

TEST(ShardPartitionTest, MoreShardsThanVertices) {
  const Graph data = MakeGraph({0, 0, 1}, {{0, 1}, {1, 2}});
  const shard::Partition partition =
      shard::Partition::Build(data, 7, shard::Partitioner::kHash);
  EXPECT_EQ(partition.shard_count, 7u);
  uint32_t nonempty = 0;
  for (const uint32_t size : partition.shard_sizes) nonempty += size > 0;
  EXPECT_LE(nonempty, 3u);
  const shard::ShardedGraph sharded(data, 7, shard::Partitioner::kHash);
  const MatchOptions options = MatchOptions::Recommended(2);
  const Graph query = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_EQ(ShardedMatchQuery(query, sharded, options).result.match_count,
            MatchQuery(query, data, options).match_count);
}

TEST(ShardPartitionTest, GreedySeparatesCommunities) {
  const Graph data = MakeTwoCommunityData();
  const shard::Partition partition =
      shard::Partition::Build(data, 2, shard::Partitioner::kGreedy);
  // The two blobs have 3*side internal edges each and only 3 cross edges;
  // a sane greedy edge-cut keeps the blobs intact.
  EXPECT_LE(partition.cut_edges, 6u);
  const uint32_t side = data.vertex_count() / 2;
  const uint32_t first = partition.assignment[0];
  for (uint32_t v = side; v < data.vertex_count(); ++v) {
    EXPECT_NE(partition.assignment[v], first)
        << "community B vertex co-located with community A";
  }
}

TEST(ShardedGraphTest, ShardInvariants) {
  Prng prng(11);
  const Graph data = GenerateErdosRenyi(150, 450, 3, &prng);
  const shard::ShardedGraph sharded(data, 3, shard::Partitioner::kGreedy);
  const shard::Partition& partition = sharded.partition();
  std::vector<bool> seen_owner(data.vertex_count(), false);
  for (uint32_t s = 0; s < sharded.shard_count(); ++s) {
    const shard::Shard& shard = sharded.shard(s);
    ASSERT_EQ(shard.local_to_global.size(), shard.graph.vertex_count());
    // Owned-first layout, ascending within each segment.
    for (uint32_t i = 0; i < shard.graph.vertex_count(); ++i) {
      const Vertex global = shard.local_to_global[i];
      EXPECT_EQ(shard.graph.label(i), data.label(global));
      if (i < shard.owned_count) {
        EXPECT_EQ(partition.assignment[global], s);
        EXPECT_FALSE(seen_owner[global]);
        seen_owner[global] = true;
        // Owned vertices keep their entire neighborhood.
        EXPECT_EQ(shard.graph.degree(i), data.degree(global));
      } else {
        EXPECT_NE(partition.assignment[global], s);
      }
      if (i > 0 && i != shard.owned_count) {
        EXPECT_LT(shard.local_to_global[i - 1], global);
      }
    }
    // Every shard edge exists in the data graph and touches an owned
    // vertex (no halo-halo edges).
    for (uint32_t i = 0; i < shard.graph.vertex_count(); ++i) {
      for (const Vertex j : shard.graph.neighbors(i)) {
        EXPECT_TRUE(data.HasEdge(shard.local_to_global[i],
                                 shard.local_to_global[j]));
        EXPECT_TRUE(i < shard.owned_count || j < shard.owned_count);
      }
    }
  }
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    EXPECT_TRUE(seen_owner[v]) << "vertex " << v << " owned by no shard";
  }
}

TEST(ShardedGraphTest, RegionContainsCutBallAndIsCached) {
  const Graph data = MakeTwoCommunityData();
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kGreedy);
  ASSERT_FALSE(sharded.boundary_vertices().empty());
  const auto region1 = sharded.Region(1);
  ASSERT_NE(region1, nullptr);
  EXPECT_EQ(sharded.Region(1).get(), region1.get()) << "per-radius cache";
  const auto region2 = sharded.Region(2);
  EXPECT_GE(region2->graph.vertex_count(), region1->graph.vertex_count());
  // Every boundary vertex is in the region, and the region subgraph is
  // vertex-induced: edges between region vertices are preserved.
  for (const Vertex b : sharded.boundary_vertices()) {
    EXPECT_TRUE(std::binary_search(region1->local_to_global.begin(),
                                   region1->local_to_global.end(), b));
  }
  for (uint32_t i = 0; i < region1->graph.vertex_count(); ++i) {
    for (const Vertex j : region1->graph.neighbors(i)) {
      EXPECT_TRUE(data.HasEdge(region1->local_to_global[i],
                               region1->local_to_global[j]));
    }
  }
}

TEST(ShardedGraphTest, SingleShardHasNoBoundary) {
  const Graph data = PaperData();
  const shard::ShardedGraph sharded(data, 1, shard::Partitioner::kHash);
  EXPECT_TRUE(sharded.boundary_vertices().empty());
  EXPECT_EQ(sharded.Region(2), nullptr);
  EXPECT_EQ(sharded.shard(0).owned_count, data.vertex_count());
}

// The headline property: embeddings that exist only across the cut are
// found, exactly once, by the boundary pass — for a path and a cycle
// straddling the two communities, under every K and both partitioners.
TEST(ShardExecTest, StraddlingPathExactness) {
  const Graph data = MakeTwoCommunityData();
  // Path 0-1-2-3: the 1-2 edge only exists across the communities.
  const Graph query = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  const auto expected = BruteForceMatches(query, data);
  ASSERT_FALSE(expected.empty()) << "instance must have matches";
  MatchOptions options = MatchOptions::Recommended(query.vertex_count());
  options.max_matches = 0;
  for (const shard::Partitioner method : kPartitioners) {
    for (const uint32_t k : kShardCounts) {
      const shard::ShardedGraph sharded(data, k, method);
      const ShardedMatchResult result =
          ShardedMatchQuery(query, sharded, options);
      EXPECT_EQ(result.result.match_count, expected.size())
          << "K=" << k << " partitioner=" << shard::PartitionerName(method);
      EXPECT_EQ(CollectSharded(query, sharded, options), expected);
      if (k == 2 && method == shard::Partitioner::kGreedy) {
        // All matches straddle the greedy cut: the boundary pass must have
        // delivered every one of them.
        uint64_t boundary_matches = 0;
        for (const ShardPassStats& pass : result.sharding.passes) {
          if (pass.boundary) boundary_matches += pass.match_count;
        }
        EXPECT_EQ(boundary_matches, expected.size());
      }
    }
  }
}

TEST(ShardExecTest, StraddlingCycleExactness) {
  // Two communities plus a K2,2 of cross edges between label-1 vertices of
  // A and label-2 vertices of B: the alternating 4-cycle query below embeds
  // only on those four cross edges, so every match uses the cut four times.
  std::vector<Label> labels;
  std::vector<std::pair<Vertex, Vertex>> edges;
  const uint32_t side = 24;
  for (uint32_t i = 0; i < side; ++i) labels.push_back(i % 2);
  for (uint32_t i = 0; i < side; ++i) labels.push_back(2 + i % 2);
  for (uint32_t base : {0u, side}) {
    for (uint32_t i = 0; i < side; ++i) {
      edges.push_back({base + i, base + (i + 1) % side});
      edges.push_back({base + i, base + (i + 5) % side});
    }
  }
  for (const Vertex a : {1u, 3u}) {
    for (const Vertex b : {side, side + 2}) edges.push_back({a, b});
  }
  const Graph data = MakeGraph(labels, edges);
  const Graph query =
      MakeGraph({1, 2, 1, 2}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto expected = BruteForceMatches(query, data);
  // One 4-cycle image; the labeled C4 has 4 label-preserving automorphisms.
  ASSERT_EQ(expected.size(), 4u);
  MatchOptions options = MatchOptions::Optimized(Algorithm::kDPiso);
  options.max_matches = 0;
  for (const shard::Partitioner method : kPartitioners) {
    for (const uint32_t k : kShardCounts) {
      const shard::ShardedGraph sharded(data, k, method);
      EXPECT_EQ(CollectSharded(query, sharded, options), expected)
          << "K=" << k << " partitioner=" << shard::PartitionerName(method);
    }
  }
}

TEST(ShardExecTest, RandomGraphEquivalenceAcrossPresets) {
  Prng prng(23);
  const Graph data = GenerateErdosRenyi(120, 420, 3, &prng);
  const MatchOptions presets[] = {
      MatchOptions::Recommended(4),
      MatchOptions::Classic(Algorithm::kQuickSI),
      MatchOptions::Classic(Algorithm::kCFL),
      MatchOptions::Optimized(Algorithm::kDPiso),
  };
  for (const uint32_t size : {3u, 5u}) {
    const auto query =
        ExtractQuery(data, size, QueryDensity::kAny, &prng);
    ASSERT_TRUE(query.has_value());
    for (MatchOptions options : presets) {
      options.max_matches = 0;
      std::vector<std::vector<Vertex>> reference;
      MatchQuery(*query, data, options,
                 [&reference](std::span<const Vertex> mapping) {
                   reference.emplace_back(mapping.begin(), mapping.end());
                   return true;
                 });
      std::sort(reference.begin(), reference.end());
      for (const shard::Partitioner method : kPartitioners) {
        for (const uint32_t k : kShardCounts) {
          const shard::ShardedGraph sharded(data, k, method);
          EXPECT_EQ(CollectSharded(*query, sharded, options), reference)
              << "K=" << k << " partitioner="
              << shard::PartitionerName(method) << " size=" << size;
        }
      }
    }
  }
}

TEST(ShardExecTest, SingleVertexQuery) {
  const Graph data = PaperData();
  const Graph query = MakeGraph({testing::kLabelD}, {});
  MatchOptions options = MatchOptions::Recommended(1);
  for (const uint32_t k : kShardCounts) {
    const shard::ShardedGraph sharded(data, k, shard::Partitioner::kHash);
    const ShardedMatchResult result =
        ShardedMatchQuery(query, sharded, options);
    EXPECT_EQ(result.result.match_count, 4u);  // v8, v10, v11, v12
    EXPECT_EQ(result.sharding.boundary_radius, 0u)
        << "no boundary pass for single-vertex queries";
  }
}

TEST(ShardExecTest, SharedBudgetAcrossPasses) {
  const Graph data = MakeTwoCommunityData();
  const Graph query = MakeGraph({0, 1}, {{0, 1}});  // many in-community matches
  const uint64_t total =
      MatchQuery(query, data, MatchOptions::Recommended(2)).match_count;
  ASSERT_GT(total, 10u);
  MatchOptions options = MatchOptions::Recommended(2);
  options.max_matches = 7;
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kGreedy);
  const ShardedMatchResult result = ShardedMatchQuery(query, sharded, options);
  EXPECT_EQ(result.result.match_count, 7u);
  EXPECT_TRUE(result.result.enumerate.reached_match_limit);
  uint64_t attributed = 0;
  for (const ShardPassStats& pass : result.sharding.passes) {
    attributed += pass.match_count;
  }
  EXPECT_EQ(attributed, 7u) << "per-pass counts must sum to the budget";
}

TEST(ShardExecTest, BudgetNotReachedFlagStaysClear) {
  const Graph data = PaperData();
  const Graph query = PaperQuery();
  MatchOptions options = MatchOptions::Recommended(query.vertex_count());
  options.max_matches = 100;
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kHash);
  const ShardedMatchResult result = ShardedMatchQuery(query, sharded, options);
  EXPECT_EQ(result.result.match_count, 2u);  // Figure 1 has two matches
  EXPECT_FALSE(result.result.enumerate.reached_match_limit);
  EXPECT_FALSE(result.result.enumerate.timed_out);
}

TEST(ShardExecTest, CallbackVetoStopsEveryPass) {
  const Graph data = MakeTwoCommunityData();
  const Graph query = MakeGraph({0, 1}, {{0, 1}});
  MatchOptions options = MatchOptions::Recommended(2);
  options.max_matches = 0;
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kGreedy);
  std::atomic<uint64_t> seen{0};
  const ShardedMatchResult result = ShardedMatchQuery(
      query, sharded, options, [&seen](std::span<const Vertex>) {
        return seen.fetch_add(1) + 1 < 3;  // veto the third delivery
      });
  // Delivered-match semantics: the vetoed third match is still counted.
  EXPECT_EQ(result.result.match_count, 3u);
  EXPECT_EQ(seen.load(), 3u);
}

TEST(ShardExecTest, CancelFlagAbortsShardedRun) {
  const Graph data = MakeTwoCommunityData();
  const Graph query = MakeGraph({0, 1}, {{0, 1}});
  MatchOptions options = MatchOptions::Recommended(2);
  options.max_matches = 0;
  std::atomic<bool> cancel{true};  // pre-cancelled: nothing may be delivered
  options.cancel_flag = &cancel;
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kGreedy);
  const ShardedMatchResult result = ShardedMatchQuery(query, sharded, options);
  EXPECT_FALSE(result.result.enumerate.timed_out);
  EXPECT_EQ(result.result.match_count, 0u)
      << "a pre-set cancel flag must abort before any delivery";
}

TEST(ShardExecTest, MatchQueryDispatchesOnShardsOption) {
  const Graph data = MakeTwoCommunityData();
  const Graph query = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  MatchOptions options = MatchOptions::Recommended(query.vertex_count());
  options.max_matches = 0;
  const uint64_t reference = MatchQuery(query, data, options).match_count;
  options.shards = 4;
  options.shard_partitioner = shard::Partitioner::kGreedy;
  EXPECT_EQ(MatchQuery(query, data, options).match_count, reference);
}

TEST(ShardExecTest, ShardPlanReusableAcrossExecutes) {
  const Graph data = MakeTwoCommunityData();
  const Graph query = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  MatchOptions options = MatchOptions::Recommended(query.vertex_count());
  options.max_matches = 0;
  const shard::ShardedGraph sharded(data, 2, shard::Partitioner::kGreedy);
  const auto plan = BuildShardPlan(query, sharded, options);
  EXPECT_GT(plan->MemoryBytes(), 0u);
  const uint64_t first =
      ExecuteShardPlan(query, sharded, *plan, options).result.match_count;
  const uint64_t second =
      ExecuteShardPlan(query, sharded, *plan, options).result.match_count;
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, BruteForceCount(query, data));
}

// Aux structures of owned-restricted passes must shrink with K: that is the
// memory story of sharding (ISSUE acceptance: per-shard aux <= 1/2 of the
// monolithic aux at K=4; checked at benchmark scale in
// bench_fig18_large_graph, structurally here).
TEST(ShardExecTest, PerShardAuxShrinks) {
  Prng prng(41);
  const Graph data = GenerateErdosRenyi(400, 1600, 2, &prng);
  const auto query = ExtractQuery(data, 4, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  MatchOptions options = MatchOptions::Recommended(4);
  const auto mono = BuildMatchPlan(*query, data, options);
  ASSERT_GT(mono->aux_memory_bytes, 0u);
  const shard::ShardedGraph sharded(data, 4, shard::Partitioner::kHash);
  const auto plan = BuildShardPlan(*query, sharded, options);
  size_t max_shard_aux = 0;
  for (const auto& shard_plan : plan->shard_plans) {
    ASSERT_NE(shard_plan, nullptr);
    max_shard_aux = std::max(max_shard_aux, shard_plan->aux_memory_bytes);
  }
  EXPECT_LT(max_shard_aux, mono->aux_memory_bytes / 2)
      << "owned-restricted shard aux must be well below the monolithic aux";
}

}  // namespace
}  // namespace sgm
