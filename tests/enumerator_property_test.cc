// Cross-validation property tests: every (algorithm preset × failing-set
// setting) must report exactly the number of matches the brute-force
// reference finds, across randomly generated data graphs and queries.
#include <gtest/gtest.h>

#include <string>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"

namespace sgm {
namespace {

struct PresetCase {
  Algorithm algorithm;
  bool optimized;
  bool failing_sets;
};

std::string CaseName(const ::testing::TestParamInfo<PresetCase>& info) {
  std::string name = AlgorithmName(info.param.algorithm);
  name += info.param.optimized ? "_opt" : "_classic";
  name += info.param.failing_sets ? "_fs" : "_nofs";
  return name;
}

class EnumeratorAgreementTest : public ::testing::TestWithParam<PresetCase> {
};

TEST_P(EnumeratorAgreementTest, MatchesBruteForceOnRandomInputs) {
  const PresetCase& param = GetParam();
  Prng prng(4242 + static_cast<uint64_t>(param.algorithm) * 17 +
            (param.optimized ? 3 : 0) + (param.failing_sets ? 7 : 0));
  for (int round = 0; round < 10; ++round) {
    const uint32_t labels = 1 + static_cast<uint32_t>(prng.NextBounded(4));
    const Graph data = GenerateErdosRenyi(
        50, 120 + static_cast<uint32_t>(prng.NextBounded(120)), labels,
        &prng);
    const auto query = ExtractQuery(
        data, 4 + static_cast<uint32_t>(prng.NextBounded(4)),
        QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;

    MatchOptions options = param.optimized
                               ? MatchOptions::Optimized(param.algorithm)
                               : MatchOptions::Classic(param.algorithm);
    options.use_failing_sets = param.failing_sets;
    options.max_matches = 0;  // find everything
    options.time_limit_ms = 0;

    const uint64_t expected = BruteForceCount(*query, data);
    const MatchResult result = MatchQuery(*query, data, options);
    EXPECT_EQ(result.match_count, expected)
        << AlgorithmName(param.algorithm)
        << (param.optimized ? " optimized" : " classic") << " round "
        << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EnumeratorAgreementTest,
    ::testing::Values(
        PresetCase{Algorithm::kQuickSI, false, false},
        PresetCase{Algorithm::kQuickSI, true, false},
        PresetCase{Algorithm::kQuickSI, true, true},
        PresetCase{Algorithm::kGraphQL, false, false},
        PresetCase{Algorithm::kGraphQL, true, false},
        PresetCase{Algorithm::kGraphQL, true, true},
        PresetCase{Algorithm::kCFL, false, false},
        PresetCase{Algorithm::kCFL, true, false},
        PresetCase{Algorithm::kCFL, true, true},
        PresetCase{Algorithm::kCECI, false, false},
        PresetCase{Algorithm::kCECI, true, false},
        PresetCase{Algorithm::kCECI, true, true},
        PresetCase{Algorithm::kDPiso, false, false},
        PresetCase{Algorithm::kDPiso, true, false},
        PresetCase{Algorithm::kDPiso, true, true},
        PresetCase{Algorithm::kRI, false, false},
        PresetCase{Algorithm::kRI, true, false},
        PresetCase{Algorithm::kRI, true, true},
        PresetCase{Algorithm::kVF2pp, false, false},
        PresetCase{Algorithm::kVF2pp, true, false},
        PresetCase{Algorithm::kVF2pp, true, true}),
    CaseName);

// Denser, more label-poor inputs stress deep recursion and the failing-set
// logic harder; run a focused sweep on the two presets that exercise every
// engine feature at once (adaptive order + failing sets, and pivot index).
TEST(EnumeratorAgreementStressTest, DpisoAdaptiveWithFailingSets) {
  Prng prng(555);
  for (int round = 0; round < 8; ++round) {
    const Graph data = GenerateErdosRenyi(30, 140, 2, &prng);
    const auto query = ExtractQuery(data, 6, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    MatchOptions options = MatchOptions::Classic(Algorithm::kDPiso);
    options.max_matches = 0;
    options.time_limit_ms = 0;
    const MatchResult result = MatchQuery(*query, data, options);
    EXPECT_EQ(result.match_count, BruteForceCount(*query, data))
        << "round " << round;
  }
}

TEST(EnumeratorAgreementStressTest, CflPivotIndexOnSingleLabelGraphs) {
  Prng prng(556);
  for (int round = 0; round < 8; ++round) {
    const Graph data = GenerateErdosRenyi(25, 90, 1, &prng);
    const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    MatchOptions options = MatchOptions::Classic(Algorithm::kCFL);
    options.max_matches = 0;
    options.time_limit_ms = 0;
    const MatchResult result = MatchQuery(*query, data, options);
    EXPECT_EQ(result.match_count, BruteForceCount(*query, data))
        << "round " << round;
  }
}

}  // namespace
}  // namespace sgm
