#include "sgm/parallel/parallel_matcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/parallel/task_pool.h"
#include "sgm/parallel/work_queue.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

// A maximally skewed instance: the candidates of the root query vertex are
// one hub (whose subtree holds almost all matches) plus a few decoys with
// two matches each. A static root split parks nearly all work on one
// worker; work-stealing must still count exactly the same matches.
//
// Data graph: hub (label 0) adjacent to every spoke (label 1); spokes form
// a cycle; each decoy (label 0) is adjacent to one adjacent spoke pair.
// Query: triangle with labels (0, 1, 1) => 2 * spokes matches via the hub
// and 2 per decoy.
struct SkewedInstance {
  Graph data;
  Graph query;
  uint64_t expected_matches;
};

SkewedInstance MakeSkewedInstance(uint32_t spokes = 40, uint32_t decoys = 6) {
  std::vector<Label> labels;
  std::vector<std::pair<Vertex, Vertex>> edges;
  labels.push_back(0);  // hub = vertex 0
  for (uint32_t s = 0; s < spokes; ++s) labels.push_back(1);
  for (uint32_t s = 0; s < spokes; ++s) {
    edges.push_back({0, 1 + s});
    edges.push_back({1 + s, 1 + (s + 1) % spokes});
  }
  for (uint32_t d = 0; d < decoys; ++d) {
    const Vertex decoy = static_cast<Vertex>(labels.size());
    labels.push_back(0);
    const uint32_t s = (d * 5) % spokes;  // any adjacent spoke pair
    edges.push_back({decoy, 1 + s});
    edges.push_back({decoy, 1 + (s + 1) % spokes});
  }
  SkewedInstance instance;
  instance.data = MakeGraph(labels, edges);
  instance.query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}, {1, 2}});
  instance.expected_matches = 2ull * spokes + 2ull * decoys;
  return instance;
}

TEST(ParallelMatcherTest, PaperExampleAnyThreadCount) {
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
    options.max_matches = 0;
    const ParallelMatchResult parallel =
        ParallelMatchQuery(PaperQuery(), PaperData(), options, threads);
    EXPECT_EQ(parallel.result.match_count, 2u) << threads << " threads";
    EXPECT_GE(parallel.workers_used, 1u);
    EXPECT_LE(parallel.workers_used, threads);
  }
}

TEST(ParallelMatcherTest, AgreesWithSequentialOnRandomInputs) {
  Prng prng(808080);
  for (int round = 0; round < 6; ++round) {
    const Graph data = GenerateErdosRenyi(60, 240, 2, &prng);
    const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
    options.max_matches = 0;
    const uint64_t sequential = MatchQuery(*query, data, options).match_count;
    for (const uint32_t threads : {2u, 3u, 5u}) {
      const ParallelMatchResult parallel =
          ParallelMatchQuery(*query, data, options, threads);
      EXPECT_EQ(parallel.result.match_count, sequential)
          << "round " << round << " threads " << threads;
    }
  }
}

TEST(ParallelMatcherTest, WorksWithDpisoAdaptiveAndFailingSets) {
  Prng prng(909090);
  const Graph data = GenerateErdosRenyi(50, 220, 2, &prng);
  const auto query = ExtractQuery(data, 6, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  MatchOptions options = MatchOptions::Classic(Algorithm::kDPiso);
  options.max_matches = 0;
  const uint64_t expected = BruteForceCount(*query, data);
  const ParallelMatchResult parallel =
      ParallelMatchQuery(*query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, expected);
}

TEST(ParallelMatcherTest, GlobalMatchBudget) {
  Prng prng(707070);
  const Graph data = GenerateErdosRenyi(80, 600, 1, &prng);
  const Graph query = ::sgm::testing::TriangleQuery();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  const uint64_t total = MatchQuery(query, data, options).match_count;
  if (total < 20) GTEST_SKIP() << "instance too small";
  options.max_matches = 20;
  const ParallelMatchResult parallel =
      ParallelMatchQuery(query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, 20u);
  EXPECT_TRUE(parallel.result.enumerate.reached_match_limit);
}

TEST(ParallelMatcherTest, CallbackSeesEveryMatchExactlyOnce) {
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  std::mutex mutex;
  std::set<std::vector<Vertex>> seen;
  const ParallelMatchResult parallel = ParallelMatchQuery(
      PaperQuery(), PaperData(), options, 4,
      [&](std::span<const Vertex> mapping) {
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(
            seen.emplace(mapping.begin(), mapping.end()).second);
        return true;
      });
  EXPECT_EQ(parallel.result.match_count, 2u);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(ParallelMatcherTest, EmptyCandidatesShortCircuit) {
  const Graph query = PaperQuery();
  const Graph data =
      ::sgm::testing::MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  const ParallelMatchResult parallel =
      ParallelMatchQuery(query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, 0u);
}

TEST(ParallelMatcherTest, WorkStealingMatchesSequentialOnSkewedWorkload) {
  const SkewedInstance instance = MakeSkewedInstance();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  const uint64_t sequential =
      MatchQuery(instance.query, instance.data, options).match_count;
  ASSERT_EQ(sequential, instance.expected_matches);

  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (const uint64_t budget : {uint64_t{0}, uint64_t{37}}) {
      MatchOptions budgeted = options;
      budgeted.max_matches = budget;
      const uint64_t expected =
          budget == 0 ? sequential : std::min<uint64_t>(budget, sequential);
      for (const ParallelMode mode :
           {ParallelMode::kWorkStealing, ParallelMode::kStaticSlices}) {
        ParallelOptions parallel_options;
        parallel_options.thread_count = threads;
        parallel_options.mode = mode;
        const ParallelMatchResult parallel = ParallelMatchQuery(
            instance.query, instance.data, budgeted, parallel_options);
        EXPECT_EQ(parallel.result.match_count, expected)
            << ParallelModeName(mode) << " threads " << threads << " budget "
            << budget;
        EXPECT_EQ(parallel.mode, mode);
        EXPECT_GE(parallel.LoadImbalance(), 1.0);
      }
    }
  }
}

TEST(ParallelMatcherTest, TinyChunksForceSubtreeStealingAndStayExact) {
  const SkewedInstance instance = MakeSkewedInstance(60, 3);
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  options.use_failing_sets = true;

  ParallelOptions parallel_options;
  parallel_options.thread_count = 4;
  parallel_options.chunk_size = 1;  // hub root becomes the last lone chunk
  const ParallelMatchResult parallel = ParallelMatchQuery(
      instance.query, instance.data, options, parallel_options);
  EXPECT_EQ(parallel.result.match_count, instance.expected_matches);
  EXPECT_EQ(parallel.chunk_size, 1u);

  uint64_t chunks = 0;
  uint64_t stolen = 0;
  uint64_t matches = 0;
  for (const ParallelWorkerStats& w : parallel.worker_stats) {
    chunks += w.root_chunks;
    stolen += w.stolen_subtasks;
    matches += w.matches_found;
  }
  // Every root candidate is one chunk; each is processed exactly once.
  EXPECT_EQ(chunks, 4u);  // 1 hub + 3 decoys
  // Executed subtasks never exceed published ones, and per-worker match
  // counts add up to the global count (no budget, so nothing suppressed).
  EXPECT_LE(stolen, parallel.subtasks_published);
  EXPECT_EQ(matches, instance.expected_matches);
}

TEST(ParallelMatcherTest, StealingRespectsBudgetWithCallback) {
  const SkewedInstance instance = MakeSkewedInstance();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 11;
  std::atomic<uint64_t> delivered{0};
  ParallelOptions parallel_options;
  parallel_options.thread_count = 4;
  parallel_options.chunk_size = 1;
  const ParallelMatchResult parallel = ParallelMatchQuery(
      instance.query, instance.data, options, parallel_options,
      [&](std::span<const Vertex>) {
        delivered.fetch_add(1);
        return true;
      });
  // With a callback, counting is exact: count == callbacks delivered.
  EXPECT_EQ(parallel.result.match_count, 11u);
  EXPECT_EQ(delivered.load(), 11u);
  EXPECT_TRUE(parallel.result.enumerate.reached_match_limit);
}

TEST(ParallelMatcherTest, CallbackVetoCountsDeliveredMatch) {
  const SkewedInstance instance = MakeSkewedInstance();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  std::atomic<uint64_t> delivered{0};
  const ParallelMatchResult parallel = ParallelMatchQuery(
      instance.query, instance.data, options, 4,
      [&](std::span<const Vertex>) {
        return delivered.fetch_add(1) + 1 < 5;  // veto the 5th match
      });
  // Delivered-match semantics: the vetoed 5th match still counts, and no
  // match is delivered after the veto.
  EXPECT_EQ(delivered.load(), 5u);
  EXPECT_EQ(parallel.result.match_count, 5u);
}

TEST(WorkQueueTest, ChunkQueueHandsOutEveryIndexOnce) {
  parallel::ChunkQueue queue(1000, 7);
  EXPECT_EQ(queue.RemainingChunks(), (1000u + 6) / 7);
  std::vector<uint32_t> claimed(1000, 0);
  std::mutex mutex;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      uint32_t begin, end;
      while (queue.NextChunk(&begin, &end)) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, 1000u);
        std::lock_guard<std::mutex> lock(mutex);
        for (uint32_t i = begin; i < end; ++i) ++claimed[i];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(claimed[i], 1u) << i;
  EXPECT_EQ(queue.RemainingChunks(), 0u);
}

TEST(WorkQueueTest, AutoChunkSizeBounds) {
  EXPECT_EQ(parallel::AutoChunkSize(0, 1), 1u);
  EXPECT_GE(parallel::AutoChunkSize(10, 8), 1u);
  EXPECT_LE(parallel::AutoChunkSize(1u << 30, 2), 256u);
  // Single worker: one chunk, no dispatch overhead.
  EXPECT_EQ(parallel::AutoChunkSize(500, 1), 500u);
}

TEST(TaskPoolTest, DrainsChunksThenTerminates) {
  parallel::TaskPool pool(1, 10, 4);
  parallel::WorkItem item;
  uint32_t seen = 0;
  while (pool.NextWork(&item)) {
    ASSERT_EQ(item.kind, parallel::WorkItem::Kind::kRootChunk);
    seen += item.end - item.begin;
  }
  EXPECT_EQ(seen, 10u);
}

TEST(TaskPoolTest, OfferSplitDeclinesWhileRootChunksRemain) {
  parallel::TaskPool pool(2, 100, 10);
  // Root chunks still unclaimed: no split, range returned unchanged.
  EXPECT_EQ(pool.OfferSplit(0, 5, 50), 50u);
}

}  // namespace
}  // namespace sgm
