#include "sgm/parallel/parallel_matcher.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(ParallelMatcherTest, PaperExampleAnyThreadCount) {
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
    options.max_matches = 0;
    const ParallelMatchResult parallel =
        ParallelMatchQuery(PaperQuery(), PaperData(), options, threads);
    EXPECT_EQ(parallel.result.match_count, 2u) << threads << " threads";
    EXPECT_GE(parallel.workers_used, 1u);
    EXPECT_LE(parallel.workers_used, threads);
  }
}

TEST(ParallelMatcherTest, AgreesWithSequentialOnRandomInputs) {
  Prng prng(808080);
  for (int round = 0; round < 6; ++round) {
    const Graph data = GenerateErdosRenyi(60, 240, 2, &prng);
    const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
    options.max_matches = 0;
    const uint64_t sequential = MatchQuery(*query, data, options).match_count;
    for (const uint32_t threads : {2u, 3u, 5u}) {
      const ParallelMatchResult parallel =
          ParallelMatchQuery(*query, data, options, threads);
      EXPECT_EQ(parallel.result.match_count, sequential)
          << "round " << round << " threads " << threads;
    }
  }
}

TEST(ParallelMatcherTest, WorksWithDpisoAdaptiveAndFailingSets) {
  Prng prng(909090);
  const Graph data = GenerateErdosRenyi(50, 220, 2, &prng);
  const auto query = ExtractQuery(data, 6, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  MatchOptions options = MatchOptions::Classic(Algorithm::kDPiso);
  options.max_matches = 0;
  const uint64_t expected = BruteForceCount(*query, data);
  const ParallelMatchResult parallel =
      ParallelMatchQuery(*query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, expected);
}

TEST(ParallelMatcherTest, GlobalMatchBudget) {
  Prng prng(707070);
  const Graph data = GenerateErdosRenyi(80, 600, 1, &prng);
  const Graph query = ::sgm::testing::TriangleQuery();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  const uint64_t total = MatchQuery(query, data, options).match_count;
  if (total < 20) GTEST_SKIP() << "instance too small";
  options.max_matches = 20;
  const ParallelMatchResult parallel =
      ParallelMatchQuery(query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, 20u);
  EXPECT_TRUE(parallel.result.enumerate.reached_match_limit);
}

TEST(ParallelMatcherTest, CallbackSeesEveryMatchExactlyOnce) {
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 0;
  std::mutex mutex;
  std::set<std::vector<Vertex>> seen;
  const ParallelMatchResult parallel = ParallelMatchQuery(
      PaperQuery(), PaperData(), options, 4,
      [&](std::span<const Vertex> mapping) {
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(
            seen.emplace(mapping.begin(), mapping.end()).second);
        return true;
      });
  EXPECT_EQ(parallel.result.match_count, 2u);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(ParallelMatcherTest, EmptyCandidatesShortCircuit) {
  const Graph query = PaperQuery();
  const Graph data =
      ::sgm::testing::MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  const ParallelMatchResult parallel =
      ParallelMatchQuery(query, data, options, 4);
  EXPECT_EQ(parallel.result.match_count, 0u);
}

}  // namespace
}  // namespace sgm
