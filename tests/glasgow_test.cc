#include "sgm/glasgow/glasgow.h"

#include <gtest/gtest.h>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(GlasgowTest, FindsPaperExampleMatches) {
  const GlasgowResult result = GlasgowMatch(PaperQuery(), PaperData());
  EXPECT_EQ(result.status, GlasgowStatus::kComplete);
  EXPECT_EQ(result.match_count, 2u);
  EXPECT_GT(result.search_nodes, 0u);
}

TEST(GlasgowTest, AgreesWithBruteForceOnRandomInputs) {
  Prng prng(6060);
  for (int round = 0; round < 10; ++round) {
    const Graph data = GenerateErdosRenyi(
        40, 120 + static_cast<uint32_t>(prng.NextBounded(80)),
        1 + static_cast<uint32_t>(prng.NextBounded(4)), &prng);
    const auto query = ExtractQuery(
        data, 4 + static_cast<uint32_t>(prng.NextBounded(3)),
        QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    GlasgowOptions options;
    options.max_matches = 0;
    options.time_limit_ms = 0;
    const GlasgowResult result = GlasgowMatch(*query, data, options);
    EXPECT_EQ(result.status, GlasgowStatus::kComplete);
    EXPECT_EQ(result.match_count, BruteForceCount(*query, data))
        << "round " << round;
  }
}

TEST(GlasgowTest, SupplementalGraphsPreserveCounts) {
  Prng prng(6161);
  const Graph data = GenerateErdosRenyi(50, 250, 2, &prng);
  const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  GlasgowOptions with;
  with.max_matches = 0;
  GlasgowOptions without = with;
  without.use_supplemental_graphs = false;
  const GlasgowResult a = GlasgowMatch(*query, data, with);
  const GlasgowResult b = GlasgowMatch(*query, data, without);
  EXPECT_EQ(a.match_count, b.match_count);
}

TEST(GlasgowTest, MatchLimit) {
  Prng prng(6262);
  const Graph data = GenerateErdosRenyi(60, 400, 1, &prng);
  const Graph query = ::sgm::testing::TriangleQuery();
  GlasgowOptions options;
  options.max_matches = 5;
  const GlasgowResult result = GlasgowMatch(query, data, options);
  if (result.status == GlasgowStatus::kMatchLimit) {
    EXPECT_EQ(result.match_count, 5u);
  } else {
    EXPECT_LT(result.match_count, 5u);
  }
}

TEST(GlasgowTest, OutOfMemoryOnLargeGraphs) {
  // A 10k-vertex graph needs ~37.5 MB for three bit-parallel relations;
  // with a 10 MB budget the solver must refuse up front.
  Prng prng(6363);
  const Graph data = GenerateErdosRenyi(10000, 20000, 4, &prng);
  const auto query = ExtractQuery(data, 4, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  GlasgowOptions options;
  options.memory_limit_bytes = 10 * 1024 * 1024;
  const GlasgowResult result = GlasgowMatch(*query, data, options);
  EXPECT_EQ(result.status, GlasgowStatus::kOutOfMemory);
  EXPECT_EQ(result.match_count, 0u);
  EXPECT_GT(result.estimated_relation_bytes, options.memory_limit_bytes);
}

TEST(GlasgowTest, MemoryEstimateScalesQuadratically) {
  Prng prng(6464);
  const Graph small = GenerateErdosRenyi(100, 300, 2, &prng);
  const Graph large = GenerateErdosRenyi(1000, 3000, 2, &prng);
  const Graph query = ::sgm::testing::TriangleQuery(0);
  GlasgowOptions options;
  options.max_matches = 1;
  const auto a = GlasgowMatch(query, small, options);
  const auto b = GlasgowMatch(query, large, options);
  EXPECT_GT(b.estimated_relation_bytes, 50 * a.estimated_relation_bytes);
}

TEST(GlasgowTest, CallbackStopsSearch) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  uint64_t seen = 0;
  const GlasgowResult result = GlasgowMatch(
      query, data, GlasgowOptions{}, [&](std::span<const Vertex> mapping) {
        ++seen;
        // Validate the embedding.
        for (Vertex u = 0; u < query.vertex_count(); ++u) {
          EXPECT_EQ(query.label(u), data.label(mapping[u]));
          for (const Vertex w : query.neighbors(u)) {
            EXPECT_TRUE(data.HasEdge(mapping[u], mapping[w]));
          }
        }
        return false;
      });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(result.match_count, 1u);
}

TEST(GlasgowTest, StatusNames) {
  EXPECT_STREQ(GlasgowStatusName(GlasgowStatus::kComplete), "complete");
  EXPECT_STREQ(GlasgowStatusName(GlasgowStatus::kOutOfMemory), "oom");
}

}  // namespace
}  // namespace sgm
