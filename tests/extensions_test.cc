// Tests for the extension features layered on the core framework:
// subgraph containment, DP-iso's degree-one postponement, and GraphQL
// profiles with radius > 1.
#include <gtest/gtest.h>

#include <set>

#include "sgm/core/brute_force.h"
#include "sgm/core/filter/filter.h"
#include "sgm/core/order/order.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(ContainsSubgraphTest, PositiveAndNegative) {
  EXPECT_TRUE(ContainsSubgraph(PaperQuery(), PaperData()));
  // No D-labeled vertex: containment fails.
  const Graph no_d = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_FALSE(ContainsSubgraph(PaperQuery(), no_d));
}

TEST(ContainsSubgraphTest, AgreesWithBruteForceExistence) {
  Prng prng(515);
  for (int round = 0; round < 10; ++round) {
    const Graph data = GenerateErdosRenyi(30, 90, 3, &prng);
    const Graph query = GenerateErdosRenyi(4, 4, 3, &prng);
    if (!IsConnected(query)) continue;
    EXPECT_EQ(ContainsSubgraph(query, data),
              BruteForceCount(query, data, 1) > 0)
        << "round " << round;
  }
}

TEST(CollectMatchesTest, MaterializesAllEmbeddings) {
  MatchOptions options;
  options.max_matches = 0;
  const auto matches = CollectMatches(PaperQuery(), PaperData(), options);
  ASSERT_EQ(matches.size(), 2u);
  std::set<std::vector<Vertex>> actual(matches.begin(), matches.end());
  const std::set<std::vector<Vertex>> expected = {{0, 4, 5, 12},
                                                  {0, 2, 3, 10}};
  EXPECT_EQ(actual, expected);
}

TEST(CollectMatchesTest, RespectsCap) {
  MatchOptions options;
  options.max_matches = 1;
  EXPECT_EQ(CollectMatches(PaperQuery(), PaperData(), options).size(), 1u);
}

TEST(PostponeDegreeOneTest, LeavesMoveToTheBack) {
  // Star with center 0 and leaves 1..4 plus an edge 1-2 making 1,2 core.
  const Graph query = MakeGraph(
      {0, 0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  const std::vector<Vertex> order = {3, 0, 4, 1, 2};
  ASSERT_TRUE(IsValidMatchingOrder(query, order));
  const auto postponed = PostponeDegreeOneVertices(query, order);
  ASSERT_TRUE(IsValidMatchingOrder(query, postponed));
  // Degree-one vertices 3 and 4 must be the last two.
  EXPECT_EQ(query.degree(postponed[3]), 1u);
  EXPECT_EQ(query.degree(postponed[4]), 1u);
}

TEST(PostponeDegreeOneTest, NoLeavesIsIdentity) {
  const Graph query = PaperQuery();  // 2-core == whole graph
  const std::vector<Vertex> order = {0, 1, 2, 3};
  EXPECT_EQ(PostponeDegreeOneVertices(query, order), order);
}

TEST(PostponeDegreeOneTest, ValidityOnRandomQueries) {
  Prng prng(616);
  const Graph data = GenerateErdosRenyi(200, 700, 4, &prng);
  for (int round = 0; round < 10; ++round) {
    const auto query = ExtractQuery(data, 10, QueryDensity::kSparse, &prng);
    if (!query.has_value()) continue;
    const FilterResult filtered = RunFilter(FilterMethod::kNLF, *query, data);
    if (filtered.candidates.AnyEmpty()) continue;
    const auto order = CeciOrder(*query, filtered.candidates);
    const auto postponed = PostponeDegreeOneVertices(*query, order);
    EXPECT_TRUE(IsValidMatchingOrder(*query, postponed)) << "round " << round;
    // All degree-one vertices are behind all others.
    bool seen_leaf = false;
    for (const Vertex u : postponed) {
      if (query->degree(u) == 1) {
        seen_leaf = true;
      } else {
        EXPECT_FALSE(seen_leaf);
      }
    }
  }
}

TEST(PostponeDegreeOneTest, MatchCountsUnchanged) {
  Prng prng(717);
  const Graph data = GenerateErdosRenyi(60, 200, 2, &prng);
  const auto query = ExtractQuery(data, 7, QueryDensity::kSparse, &prng);
  ASSERT_TRUE(query.has_value());
  MatchOptions base = MatchOptions::Optimized(Algorithm::kGraphQL);
  base.max_matches = 0;
  MatchOptions postponed = base;
  postponed.postpone_degree_one = true;
  EXPECT_EQ(MatchQuery(*query, data, base).match_count,
            MatchQuery(*query, data, postponed).match_count);
}

TEST(GraphQlProfileRadiusTest, RadiusTwoIsCompleteAndTighter) {
  Prng prng(818);
  for (int round = 0; round < 8; ++round) {
    const Graph data = GenerateErdosRenyi(50, 150, 3, &prng);
    const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;

    FilterOptions r1;
    r1.graphql_refinement_rounds = 0;
    r1.graphql_profile_radius = 1;
    FilterOptions r2 = r1;
    r2.graphql_profile_radius = 2;
    const FilterResult c1 = RunGraphQlFilter(*query, data, r1);
    const FilterResult c2 = RunGraphQlFilter(*query, data, r2);

    // Tighter: radius-2 candidates are a subset of radius-1 candidates.
    for (Vertex u = 0; u < query->vertex_count(); ++u) {
      EXPECT_LE(c2.candidates.Count(u), c1.candidates.Count(u));
      for (const Vertex v : c2.candidates.candidates(u)) {
        EXPECT_TRUE(c1.candidates.Contains(u, v));
      }
    }
    // Complete: no matched vertex is pruned.
    for (const auto& mapping : BruteForceMatches(*query, data)) {
      for (Vertex u = 0; u < query->vertex_count(); ++u) {
        EXPECT_TRUE(c2.candidates.Contains(u, mapping[u]))
            << "radius-2 profile pruned a matched vertex, round " << round;
      }
    }
  }
}

TEST(GraphQlProfileRadiusTest, PaperExampleUnaffectedAtRadiusOne) {
  FilterOptions options;
  options.graphql_profile_radius = 2;
  options.graphql_refinement_rounds = 0;
  const FilterResult result =
      RunGraphQlFilter(PaperQuery(), PaperData(), options);
  // Radius 2 must retain both true matches' vertices.
  EXPECT_TRUE(result.candidates.Contains(1, 4));
  EXPECT_TRUE(result.candidates.Contains(2, 5));
  EXPECT_TRUE(result.candidates.Contains(3, 12));
}

}  // namespace
}  // namespace sgm
