#include "sgm/graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sgm/graph/graph_utils.h"

namespace sgm {
namespace {

TEST(GeneratorsTest, RmatProducesRequestedCounts) {
  Prng prng(42);
  const Graph graph = GenerateRmat(1000, 5000, 8, &prng);
  EXPECT_EQ(graph.vertex_count(), 1000u);
  EXPECT_EQ(graph.edge_count(), 5000u);
  EXPECT_LE(graph.label_count(), 8u);
}

TEST(GeneratorsTest, RmatIsDeterministic) {
  Prng a(7), b(7);
  const Graph ga = GenerateRmat(500, 2000, 4, &a);
  const Graph gb = GenerateRmat(500, 2000, 4, &b);
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (Vertex v = 0; v < ga.vertex_count(); ++v) {
    EXPECT_EQ(ga.label(v), gb.label(v));
    const auto na = ga.neighbors(v);
    const auto nb = gb.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  // Power-law generators concentrate edges: the maximum degree should far
  // exceed the average.
  Prng prng(3);
  const Graph graph = GenerateRmat(4096, 32768, 4, &prng);
  EXPECT_GT(graph.max_degree(), 4 * graph.average_degree());
}

TEST(GeneratorsTest, ErdosRenyiProducesRequestedCounts) {
  Prng prng(11);
  const Graph graph = GenerateErdosRenyi(2000, 8000, 16, &prng);
  EXPECT_EQ(graph.vertex_count(), 2000u);
  EXPECT_EQ(graph.edge_count(), 8000u);
}

TEST(GeneratorsTest, ErdosRenyiIsRoughlyUniform) {
  Prng prng(13);
  const Graph graph = GenerateErdosRenyi(4096, 32768, 4, &prng);
  // Uniform random graphs have light tails: max degree stays within a small
  // multiple of the average (16 here).
  EXPECT_LT(graph.max_degree(), 4 * graph.average_degree());
}

TEST(GeneratorsTest, LabelsCoverRange) {
  Prng prng(5);
  const Graph graph = GenerateErdosRenyi(5000, 10000, 8, &prng);
  std::vector<bool> seen(8, false);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    ASSERT_LT(graph.label(v), 8u);
    seen[graph.label(v)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(GeneratorsTest, RelabelUniformKeepsStructure) {
  Prng prng(17);
  const Graph graph = GenerateErdosRenyi(300, 900, 4, &prng);
  const Graph relabeled = RelabelUniform(graph, 32, &prng);
  EXPECT_EQ(relabeled.vertex_count(), graph.vertex_count());
  EXPECT_EQ(relabeled.edge_count(), graph.edge_count());
  EXPECT_LE(relabeled.label_count(), 32u);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    const auto a = graph.neighbors(v);
    const auto b = relabeled.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
  }
}

TEST(GeneratorsTest, RelabelSkewedConcentratesLabelZero) {
  Prng prng(19);
  const Graph graph = GenerateErdosRenyi(5000, 15000, 4, &prng);
  const Graph skewed = RelabelSkewed(graph, 5, 0.8, &prng);
  EXPECT_EQ(skewed.edge_count(), graph.edge_count());
  EXPECT_LE(skewed.label_count(), 5u);
  const double zero_fraction =
      static_cast<double>(skewed.LabelFrequency(0)) / skewed.vertex_count();
  EXPECT_NEAR(zero_fraction, 0.8, 0.03);
}

TEST(GeneratorsTest, SampleEdgesRatioIsRespected) {
  Prng prng(23);
  const Graph graph = GenerateErdosRenyi(1000, 20000, 4, &prng);
  const Graph sampled = SampleEdges(graph, 0.5, &prng);
  EXPECT_EQ(sampled.vertex_count(), graph.vertex_count());
  // Binomial(20000, 0.5): stay within 5 sigma (~350).
  EXPECT_NEAR(sampled.edge_count(), 10000.0, 400.0);
  // Every sampled edge exists in the original.
  for (Vertex v = 0; v < sampled.vertex_count(); ++v) {
    for (const Vertex w : sampled.neighbors(v)) {
      EXPECT_TRUE(graph.HasEdge(v, w));
    }
  }
}

TEST(GeneratorsTest, SampleEdgesExtremes) {
  Prng prng(29);
  const Graph graph = GenerateErdosRenyi(100, 500, 4, &prng);
  EXPECT_EQ(SampleEdges(graph, 1.0, &prng).edge_count(), 500u);
  EXPECT_EQ(SampleEdges(graph, 0.0, &prng).edge_count(), 0u);
}

}  // namespace
}  // namespace sgm
