#include "sgm/core/order/order.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sgm/core/filter/filter.h"
#include "sgm/core/order/dpiso_order.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

class OrderTest : public ::testing::Test {
 protected:
  OrderTest()
      : query_(PaperQuery()),
        data_(PaperData()),
        filtered_(RunFilter(FilterMethod::kGraphQL, query_, data_)) {}

  Graph query_;
  Graph data_;
  FilterResult filtered_;
};

TEST_F(OrderTest, AllMethodsProduceValidOrders) {
  OrderInputs inputs;
  inputs.candidates = &filtered_.candidates;
  for (const OrderMethod method :
       {OrderMethod::kQuickSI, OrderMethod::kGraphQL, OrderMethod::kCFL,
        OrderMethod::kCECI, OrderMethod::kDPiso, OrderMethod::kRI,
        OrderMethod::kVF2pp}) {
    const auto order = ComputeOrder(method, query_, data_, inputs);
    EXPECT_TRUE(IsValidMatchingOrder(query_, order))
        << OrderMethodName(method);
  }
}

TEST_F(OrderTest, GraphQlStartsAtSmallestCandidateSet) {
  // C(u0) = {v0} is the unique smallest set.
  const auto order = GraphQlOrder(query_, filtered_.candidates);
  EXPECT_EQ(order[0], 0u);
}

TEST_F(OrderTest, RiStartsAtMaxDegree) {
  const auto order = RiOrder(query_);
  // u1 and u2 both have degree 3; RiOrder picks the first maximum (u1).
  EXPECT_EQ(query_.degree(order[0]), query_.max_degree());
}

TEST_F(OrderTest, RiPrefersMoreBackwardNeighbors) {
  // Star-with-triangle: after the max-degree hub 0 (degree 4), vertex 1 and
  // 2 form a triangle with 0; they have more backward connectivity than the
  // pendant vertices 3, 4.
  const Graph query = MakeGraph(
      {0, 0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  const auto order = RiOrder(query);
  EXPECT_EQ(order[0], 0u);
  // Positions of 1 and 2 must precede both pendants (3 and 4): once one of
  // {1,2} is placed, the other has two backward neighbors vs one.
  const auto pos = [&](Vertex u) {
    return std::find(order.begin(), order.end(), u) - order.begin();
  };
  EXPECT_LT(std::max(pos(1), pos(2)), std::min(pos(3), pos(4)));
}

TEST_F(OrderTest, Vf2ppRootHasRarestLabel) {
  // In the paper data graph, label A appears twice (v0, v9) — the rarest.
  // u0 is the only A-labeled query vertex.
  const auto order = Vf2ppOrder(query_, data_);
  EXPECT_EQ(order[0], 0u);
}

TEST_F(OrderTest, Vf2ppEmitsLevelsInOrder) {
  const auto order = Vf2ppOrder(query_, data_);
  const BfsTree tree = BuildBfsTree(query_, order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(tree.level[order[i]], tree.level[order[i - 1]]);
  }
}

TEST_F(OrderTest, QuickSiSeedsWithInfrequentEdge) {
  // Edge label pairs in the data: (A,B) x3 via v0; (A,C) x3; (B,C) x4
  // (v1-v2, v2-v3, v4-v5, v6-v7); (B,D) x3 (v2-v10, v4-v12, v6-v11);
  // (C,D) x4 (v1-v8, v3-v10, v5-v12); (A,D) via v8-v9 x1 — absent from q.
  // Query edges: (u0,u1)=AB:3, (u0,u2)=AC:3, (u1,u2)=BC:4, (u1,u3)=BD:3,
  // (u2,u3)=CD:4. The seed edge weight must be 3.
  const auto order = QuickSiOrder(query_, data_);
  EXPECT_TRUE(IsValidMatchingOrder(query_, order));
  // First two vertices form one of the weight-3 edges.
  const Vertex a = order[0], b = order[1];
  EXPECT_TRUE(query_.HasEdge(a, b));
  const bool is_ab = (a == 0 && b == 1) || (a == 1 && b == 0);
  const bool is_ac = (a == 0 && b == 2) || (a == 2 && b == 0);
  const bool is_bd = (a == 1 && b == 3) || (a == 3 && b == 1);
  EXPECT_TRUE(is_ab || is_ac || is_bd);
}

TEST_F(OrderTest, CeciOrderIsBfsFromBestRoot) {
  const auto order = CeciOrder(query_, filtered_.candidates);
  // Root u0: |C(u0)|/d = 1/2 is the minimum.
  EXPECT_EQ(order[0], 0u);
  EXPECT_TRUE(IsValidMatchingOrder(query_, order));
}

TEST_F(OrderTest, CflOrderUsesTreeAndAux) {
  const FilterResult cfl = RunFilter(FilterMethod::kCFL, query_, data_);
  ASSERT_TRUE(cfl.bfs_tree.has_value());
  const AuxStructure aux = AuxStructure::BuildTreeEdges(
      query_, data_, cfl.candidates, cfl.bfs_tree->parent);
  const auto order =
      CflOrder(query_, data_, cfl.candidates, &*cfl.bfs_tree, &aux);
  EXPECT_TRUE(IsValidMatchingOrder(query_, order));
  // Paths start at the root.
  EXPECT_EQ(order[0], cfl.bfs_tree->root);
}

TEST_F(OrderTest, CflOrderWorksWithoutPrebuiltTree) {
  const auto order = CflOrder(query_, data_, filtered_.candidates, nullptr,
                              nullptr);
  EXPECT_TRUE(IsValidMatchingOrder(query_, order));
}

TEST(OrderPropertyTest, ValidOnRandomQueries) {
  Prng prng(31);
  const Graph data = GenerateErdosRenyi(200, 1200, 4, &prng);
  for (int round = 0; round < 10; ++round) {
    const auto query = ExtractQuery(
        data, 4 + static_cast<uint32_t>(prng.NextBounded(8)),
        QueryDensity::kAny, &prng);
    ASSERT_TRUE(query.has_value());
    const FilterResult filtered =
        RunFilter(FilterMethod::kNLF, *query, data);
    if (filtered.candidates.AnyEmpty()) continue;
    OrderInputs inputs;
    inputs.candidates = &filtered.candidates;
    for (const OrderMethod method :
         {OrderMethod::kQuickSI, OrderMethod::kGraphQL, OrderMethod::kCFL,
          OrderMethod::kCECI, OrderMethod::kDPiso, OrderMethod::kRI,
          OrderMethod::kVF2pp}) {
      const auto order = ComputeOrder(method, *query, data, inputs);
      EXPECT_TRUE(IsValidMatchingOrder(*query, order))
          << OrderMethodName(method) << " round " << round;
    }
  }
}

TEST(DpisoWeightsTest, PathCountsOnPaperExample) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const FilterResult filtered = RunFilter(FilterMethod::kDPiso, query, data);
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query, data, filtered.candidates);
  const auto order = DpisoStaticOrder(query, filtered.candidates);
  const DpisoWeights weights =
      DpisoWeights::Build(query, filtered.candidates, aux, order);
  EXPECT_FALSE(weights.empty());
  // Weights are positive path-count estimates.
  for (uint32_t ci = 0; ci < filtered.candidates.Count(order[0]); ++ci) {
    EXPECT_GE(weights.WeightByIndex(order[0], ci), 0.0);
  }
}

TEST(OrderTestNames, MethodNames) {
  EXPECT_STREQ(OrderMethodName(OrderMethod::kQuickSI), "QSI");
  EXPECT_STREQ(OrderMethodName(OrderMethod::kVF2pp), "2PP");
}

}  // namespace
}  // namespace sgm
