#include "sgm/graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;

TEST(GraphIoTest, RoundTripPreservesGraph) {
  const Graph original = PaperData();
  std::stringstream stream;
  WriteGraph(original, stream);
  std::string error;
  const auto loaded = ReadGraph(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->vertex_count(), original.vertex_count());
  ASSERT_EQ(loaded->edge_count(), original.edge_count());
  for (Vertex v = 0; v < original.vertex_count(); ++v) {
    EXPECT_EQ(loaded->label(v), original.label(v));
    const auto a = original.neighbors(v);
    const auto b = loaded->neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoTest, ParsesCommentsAndWhitespace) {
  std::stringstream stream(
      "# a comment\n"
      "t 3 2\n"
      "% another comment\n"
      "v 0 7 1\n"
      "v 1 8 2\n"
      "v 2 7 1\n"
      "\n"
      "e 0 1\n"
      "e 1 2\n");
  std::string error;
  const auto graph = ReadGraph(stream, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->vertex_count(), 3u);
  EXPECT_EQ(graph->edge_count(), 2u);
  EXPECT_EQ(graph->label(1), 8u);
}

TEST(GraphIoTest, RejectsMissingHeader) {
  std::stringstream records_before_header("v 0 1 0\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(records_before_header, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::stringstream empty_input("# only a comment\n");
  EXPECT_FALSE(ReadGraph(empty_input, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(GraphIoTest, RejectsEdgeCountMismatch) {
  std::stringstream stream("t 2 2\nv 0 0 1\nv 1 0 1\ne 0 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(GraphIoTest, RejectsBadVertexId) {
  std::stringstream stream("t 2 1\nv 0 0 1\nv 5 0 1\ne 0 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, RejectsSelfLoopEdge) {
  std::stringstream stream("t 2 1\nv 0 0 0\nv 1 0 0\ne 1 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::stringstream stream("t 1 0\nv 0 0 0\nx 1 2\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

// ---- Hostile-input hardening (the reader is a fuzz target). ----

TEST(GraphIoTest, RejectsNegativeCounts) {
  // operator>> into an unsigned would wrap "-1" to 2^32-1 and try to
  // allocate a 16 GB graph; the strict parser must refuse instead.
  std::string error;
  std::stringstream negative_vertices("t -1 0\n");
  EXPECT_FALSE(ReadGraph(negative_vertices, &error).has_value());
  std::stringstream negative_edges("t 2 -3\nv 0 0\nv 1 0\n");
  EXPECT_FALSE(ReadGraph(negative_edges, &error).has_value());
  std::stringstream negative_id("t 2 1\nv -0 0\nv 1 0\ne 0 1\n");
  EXPECT_FALSE(ReadGraph(negative_id, &error).has_value());
}

TEST(GraphIoTest, RejectsOverflowingHeader) {
  std::string error;
  std::stringstream huge("t 99999999999999999999 0\n");
  EXPECT_FALSE(ReadGraph(huge, &error).has_value());
  std::stringstream wrap("t 4294967295 0\n");
  EXPECT_FALSE(ReadGraph(wrap, &error).has_value());
}

TEST(GraphIoTest, RejectsVertexCountBeyondLimits) {
  ReadGraphLimits limits;
  limits.max_vertices = 100;
  std::string error;
  std::stringstream stream("t 101 0\n");
  EXPECT_FALSE(ReadGraph(stream, &error, limits).has_value());
  std::stringstream ok("t 100 0\n" + [] {
    std::string v;
    for (int i = 0; i < 100; ++i) v += "v " + std::to_string(i) + " 0\n";
    return v;
  }());
  EXPECT_TRUE(ReadGraph(ok, &error, limits).has_value()) << error;
}

TEST(GraphIoTest, RejectsHugeLabel) {
  // Graph's label index is sized by the largest label value, so a single
  // huge label is as dangerous as a huge vertex count.
  std::string error;
  std::stringstream stream("t 1 0\nv 0 4294967294\n");
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, RejectsTruncatedVertexList) {
  std::string error;
  std::stringstream stream("t 3 1\nv 0 0\nv 1 0\ne 0 1\n");
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(GraphIoTest, RejectsNonNumericFields) {
  std::string error;
  std::stringstream stream("t two 0\n");
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
  std::stringstream hex_edge("t 2 1\nv 0 0\nv 1 0\ne 0x0 1\n");
  EXPECT_FALSE(ReadGraph(hex_edge, &error).has_value());
}

TEST(GraphIoTest, RejectsWrongDegreeColumn) {
  std::string error;
  std::stringstream stream("t 2 1\nv 0 0 5\nv 1 0 1\ne 0 1\n");
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
  EXPECT_NE(error.find("degree"), std::string::npos);
}

TEST(GraphIoTest, AcceptsDegreelessVertexRecordsAndCrLf) {
  std::string error;
  std::stringstream stream("t 2 1\r\nv 0 3\r\nv 1 3\r\ne 0 1\r\n");
  const auto graph = ReadGraph(stream, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->edge_count(), 1u);
  EXPECT_EQ(graph->label(0), 3u);
}

TEST(GraphIoTest, AcceptsEmptyGraph) {
  std::string error;
  std::stringstream stream("t 0 0\n");
  const auto graph = ReadGraph(stream, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->vertex_count(), 0u);
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph original = PaperData();
  const std::string path = ::testing::TempDir() + "/sgm_io_test.graph";
  std::string error;
  ASSERT_TRUE(SaveGraphFile(original, path, &error)) << error;
  const auto loaded = LoadGraphFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->edge_count(), original.edge_count());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(LoadGraphFile("/nonexistent/path.graph", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sgm
