#include "sgm/graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;

TEST(GraphIoTest, RoundTripPreservesGraph) {
  const Graph original = PaperData();
  std::stringstream stream;
  WriteGraph(original, stream);
  std::string error;
  const auto loaded = ReadGraph(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->vertex_count(), original.vertex_count());
  ASSERT_EQ(loaded->edge_count(), original.edge_count());
  for (Vertex v = 0; v < original.vertex_count(); ++v) {
    EXPECT_EQ(loaded->label(v), original.label(v));
    const auto a = original.neighbors(v);
    const auto b = loaded->neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoTest, ParsesCommentsAndWhitespace) {
  std::stringstream stream(
      "# a comment\n"
      "t 3 2\n"
      "% another comment\n"
      "v 0 7 1\n"
      "v 1 8 2\n"
      "v 2 7 1\n"
      "\n"
      "e 0 1\n"
      "e 1 2\n");
  std::string error;
  const auto graph = ReadGraph(stream, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->vertex_count(), 3u);
  EXPECT_EQ(graph->edge_count(), 2u);
  EXPECT_EQ(graph->label(1), 8u);
}

TEST(GraphIoTest, RejectsMissingHeader) {
  std::stringstream records_before_header("v 0 1 0\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(records_before_header, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::stringstream empty_input("# only a comment\n");
  EXPECT_FALSE(ReadGraph(empty_input, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(GraphIoTest, RejectsEdgeCountMismatch) {
  std::stringstream stream("t 2 2\nv 0 0 1\nv 1 0 1\ne 0 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(GraphIoTest, RejectsBadVertexId) {
  std::stringstream stream("t 2 1\nv 0 0 1\nv 5 0 1\ne 0 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, RejectsSelfLoopEdge) {
  std::stringstream stream("t 2 1\nv 0 0 0\nv 1 0 0\ne 1 1\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::stringstream stream("t 1 0\nv 0 0 0\nx 1 2\n");
  std::string error;
  EXPECT_FALSE(ReadGraph(stream, &error).has_value());
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph original = PaperData();
  const std::string path = ::testing::TempDir() + "/sgm_io_test.graph";
  std::string error;
  ASSERT_TRUE(SaveGraphFile(original, path, &error)) << error;
  const auto loaded = LoadGraphFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->edge_count(), original.edge_count());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(LoadGraphFile("/nonexistent/path.graph", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sgm
