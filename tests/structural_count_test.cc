// Closed-form correctness tests: on highly symmetric data graphs the exact
// number of embeddings is known combinatorially, so every engine can be
// checked against a formula instead of another implementation.
#include <gtest/gtest.h>

#include "sgm/baselines/ullmann.h"
#include "sgm/baselines/vf2.h"
#include "sgm/glasgow/glasgow.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/matcher.h"
#include "sgm/wcoj/generic_join.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;

Graph CompleteGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph CycleGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (Vertex u = 0; u < n; ++u) builder.AddEdge(u, (u + 1) % n);
  return builder.Build();
}

Graph PathGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (Vertex u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.Build();
}

Graph StarQuery(uint32_t leaves) {
  GraphBuilder builder(1 + leaves);
  for (Vertex leaf = 1; leaf <= leaves; ++leaf) builder.AddEdge(0, leaf);
  return builder.Build();
}

uint64_t FallingFactorial(uint64_t n, uint64_t k) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) result *= n - i;
  return result;
}

// Runs one (query, data) instance through every engine and checks the
// expected count.
void ExpectAllEnginesCount(const Graph& query, const Graph& data,
                           uint64_t expected, const char* what) {
  for (const Algorithm algorithm : kAllAlgorithms) {
    MatchOptions options = MatchOptions::Classic(algorithm);
    options.max_matches = 0;
    options.time_limit_ms = 0;
    EXPECT_EQ(MatchQuery(query, data, options).match_count, expected)
        << what << " / " << AlgorithmName(algorithm);
  }
  GlasgowOptions glasgow_options;
  glasgow_options.max_matches = 0;
  glasgow_options.time_limit_ms = 0;
  EXPECT_EQ(GlasgowMatch(query, data, glasgow_options).match_count, expected)
      << what << " / Glasgow";
  UllmannOptions ullmann_options;
  ullmann_options.max_matches = 0;
  ullmann_options.time_limit_ms = 0;
  EXPECT_EQ(UllmannMatch(query, data, ullmann_options).match_count, expected)
      << what << " / Ullmann";
  Vf2Options vf2_options;
  vf2_options.max_matches = 0;
  vf2_options.time_limit_ms = 0;
  EXPECT_EQ(Vf2Match(query, data, vf2_options).match_count, expected)
      << what << " / VF2";
  WcojOptions wcoj_options;
  wcoj_options.max_results = 0;
  wcoj_options.time_limit_ms = 0;
  EXPECT_EQ(GenericJoinMatch(query, data, wcoj_options).result_count,
            expected)
      << what << " / WCOJ";
}

TEST(StructuralCountTest, TrianglesInCompleteGraph) {
  // Embeddings of a triangle in K_n: n * (n-1) * (n-2).
  for (const uint32_t n : {4u, 6u, 8u}) {
    ExpectAllEnginesCount(::sgm::testing::TriangleQuery(), CompleteGraph(n),
                          FallingFactorial(n, 3), "triangle in K_n");
  }
}

TEST(StructuralCountTest, FourCliqueInCompleteGraph) {
  const Graph clique4 = MakeGraph(
      {0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  for (const uint32_t n : {5u, 7u}) {
    ExpectAllEnginesCount(clique4, CompleteGraph(n), FallingFactorial(n, 4),
                          "K4 in K_n");
  }
}

TEST(StructuralCountTest, PathInCycle) {
  // Embeddings of the 3-path in C_n: n choices of middle vertex x 2
  // orientations.
  const Graph path3 = PathGraph(3);
  for (const uint32_t n : {5u, 9u}) {
    ExpectAllEnginesCount(path3, CycleGraph(n), 2ull * n, "P3 in C_n");
  }
}

TEST(StructuralCountTest, CycleInCycle) {
  // C_n in C_n: 2n automorphisms (n rotations x 2 reflections).
  for (const uint32_t n : {5u, 8u}) {
    ExpectAllEnginesCount(CycleGraph(n), CycleGraph(n), 2ull * n,
                          "C_n in C_n");
  }
}

TEST(StructuralCountTest, StarInCompleteGraph) {
  // Star with k leaves in K_n: n * (n-1)P(k) (center + ordered leaves).
  for (const uint32_t k : {2u, 3u}) {
    const uint32_t n = 6;
    ExpectAllEnginesCount(StarQuery(k), CompleteGraph(n),
                          n * FallingFactorial(n - 1, k), "star in K_n");
  }
}

TEST(StructuralCountTest, PathInPath) {
  // P_k in P_n: (n - k + 1) positions x 2 orientations.
  for (const uint32_t k : {3u, 4u}) {
    const uint32_t n = 9;
    ExpectAllEnginesCount(PathGraph(k), PathGraph(n), 2ull * (n - k + 1),
                          "P_k in P_n");
  }
}

TEST(StructuralCountTest, LabelsBreakSymmetry) {
  // An asymmetric labeled triangle in a complete graph with the matching
  // label arrangement: exactly one embedding per label-consistent rotation.
  const Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  const Graph data = MakeGraph({0, 1, 2, 0},
                               {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  // Matches: u0->v0 and u0->v3 (each with fixed u1->v1, u2->v2).
  ExpectAllEnginesCount(query, data, 2, "labeled triangle");
}

}  // namespace
}  // namespace sgm
