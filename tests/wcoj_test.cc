#include "sgm/wcoj/generic_join.h"

#include <gtest/gtest.h>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(WcojTest, IsomorphismModeMatchesPaperExample) {
  WcojOptions options;
  options.mode = WcojMode::kIsomorphism;
  const WcojResult result = GenericJoinMatch(PaperQuery(), PaperData(),
                                             options);
  EXPECT_EQ(result.result_count, 2u);
  EXPECT_EQ(result.attribute_order.size(), 4u);
}

TEST(WcojTest, IsomorphismAgreesWithBruteForce) {
  Prng prng(1701);
  for (int round = 0; round < 8; ++round) {
    const Graph data = GenerateErdosRenyi(40, 160, 2, &prng);
    const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    WcojOptions options;
    options.mode = WcojMode::kIsomorphism;
    options.max_results = 0;
    EXPECT_EQ(GenericJoinMatch(*query, data, options).result_count,
              BruteForceCount(*query, data))
        << "round " << round;
  }
}

TEST(WcojTest, HomomorphismCountsAtLeastIsomorphisms) {
  Prng prng(1702);
  const Graph data = GenerateErdosRenyi(40, 200, 2, &prng);
  const auto query = ExtractQuery(data, 5, QueryDensity::kAny, &prng);
  ASSERT_TRUE(query.has_value());
  WcojOptions iso;
  iso.mode = WcojMode::kIsomorphism;
  iso.max_results = 0;
  WcojOptions homo;
  homo.mode = WcojMode::kHomomorphism;
  homo.max_results = 0;
  EXPECT_GE(GenericJoinMatch(*query, data, homo).result_count,
            GenericJoinMatch(*query, data, iso).result_count);
}

TEST(WcojTest, HomomorphismOnKnownInstance) {
  // Query: path a-b-a (labels 0-1-0). Data: single edge (0,1) with labels
  // 0,1. Homomorphisms: u0->v0, u1->v1, u2->v0 (repeat allowed) = 1;
  // isomorphisms: 0.
  const Graph query = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  const Graph data = MakeGraph({0, 1}, {{0, 1}});
  WcojOptions homo;
  homo.mode = WcojMode::kHomomorphism;
  homo.max_results = 0;
  EXPECT_EQ(GenericJoinMatch(query, data, homo).result_count, 1u);
  WcojOptions iso;
  iso.mode = WcojMode::kIsomorphism;
  iso.max_results = 0;
  EXPECT_EQ(GenericJoinMatch(query, data, iso).result_count, 0u);
}

TEST(WcojTest, AttributeOrderIsValidPermutation) {
  const Graph query = PaperQuery();
  const auto order = WcojAttributeOrder(query, PaperData());
  std::vector<bool> seen(query.vertex_count(), false);
  for (const Vertex u : order) {
    ASSERT_LT(u, query.vertex_count());
    EXPECT_FALSE(seen[u]);
    seen[u] = true;
  }
  // After the first attribute, every attribute has a bound neighbor.
  for (size_t i = 1; i < order.size(); ++i) {
    bool has_bound = false;
    for (size_t j = 0; j < i; ++j) {
      if (query.HasEdge(order[i], order[j])) has_bound = true;
    }
    EXPECT_TRUE(has_bound);
  }
}

TEST(WcojTest, ResultLimit) {
  Prng prng(1703);
  const Graph data = GenerateErdosRenyi(50, 300, 1, &prng);
  const Graph query = ::sgm::testing::TriangleQuery();
  WcojOptions options;
  options.max_results = 4;
  const WcojResult result = GenericJoinMatch(query, data, options);
  EXPECT_LE(result.result_count, 4u);
}

}  // namespace
}  // namespace sgm
