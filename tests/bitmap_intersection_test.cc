// Property tests for the bitmap intersection kernels (util/) and the
// bitmap sidecar of the auxiliary structure (core/): every word-wise result
// must agree with the sorted-array reference kernels, with special care at
// the 63/64/65 word boundaries, and every sidecar row must decode to
// exactly its CSR list.
#include "sgm/util/bitmap_intersection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sgm/core/aux_structure.h"
#include "sgm/core/filter/filter.h"
#include "sgm/util/prng.h"
#include "sgm/util/set_intersection.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

// Sorted index set -> bitmap over a universe of `universe` bits.
std::vector<uint64_t> Encode(const std::vector<Vertex>& values,
                             uint32_t universe) {
  std::vector<uint64_t> words(BitmapWords(universe), 0);
  for (const Vertex v : values) {
    EXPECT_LT(v, universe);
    words[v >> 6] |= 1ULL << (v & 63);
  }
  return words;
}

// Identity value array [0, universe), so BitmapDecode returns indexes.
std::vector<Vertex> Identity(uint32_t universe) {
  std::vector<Vertex> values(universe);
  for (uint32_t i = 0; i < universe; ++i) values[i] = i;
  return values;
}

// Random sorted subset of [0, universe).
std::vector<Vertex> RandomSubset(uint32_t universe, double density,
                                 Prng* prng) {
  std::vector<Vertex> values;
  for (uint32_t i = 0; i < universe; ++i) {
    if (prng->NextBernoulli(density)) values.push_back(i);
  }
  return values;
}

TEST(BitmapWordsTest, Boundaries) {
  EXPECT_EQ(BitmapWords(0), 0u);
  EXPECT_EQ(BitmapWords(1), 1u);
  EXPECT_EQ(BitmapWords(63), 1u);
  EXPECT_EQ(BitmapWords(64), 1u);
  EXPECT_EQ(BitmapWords(65), 2u);
  EXPECT_EQ(BitmapWords(128), 2u);
  EXPECT_EQ(BitmapWords(129), 3u);
}

// The cross-validation core: word-wise AND == IntersectMerge on every
// universe size around the word boundaries and beyond.
TEST(BitmapIntersectionTest, AndMatchesMergeAcrossWordBoundaries) {
  Prng prng(20260808);
  for (const uint32_t universe : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 129u,
                                  200u, 511u, 512u, 513u}) {
    const std::vector<Vertex> identity = Identity(universe);
    for (int round = 0; round < 8; ++round) {
      const double density = 0.05 + 0.3 * (round % 4);
      const auto a = RandomSubset(universe, density, &prng);
      const auto b = RandomSubset(universe, density, &prng);
      std::vector<Vertex> expected;
      IntersectMerge(a, b, &expected);

      const auto wa = Encode(a, universe);
      const auto wb = Encode(b, universe);
      std::vector<uint64_t> out(wa.size(), ~0ULL);
      const uint64_t count = BitmapAnd(wa.data(), wb.data(), wa.size(),
                                       out.data());
      EXPECT_EQ(count, expected.size()) << "universe=" << universe;
      EXPECT_EQ(BitmapAndCount(wa.data(), wb.data(), wa.size()),
                expected.size());

      std::vector<Vertex> decoded;
      BitmapDecode(out, identity, &decoded);
      EXPECT_EQ(decoded, expected) << "universe=" << universe;
    }
  }
}

TEST(BitmapIntersectionTest, EmptySingletonAndFullOverlap) {
  const uint32_t universe = 65;  // Straddles the word boundary.
  const std::vector<Vertex> identity = Identity(universe);

  // Empty ∩ anything = empty.
  const auto empty = Encode({}, universe);
  const auto full = Encode(identity, universe);
  EXPECT_EQ(BitmapAndCount(empty.data(), full.data(), empty.size()), 0u);

  // Zero-word bitmaps (universe 0) are legal and empty.
  EXPECT_EQ(BitmapAndCount(empty.data(), full.data(), 0), 0u);
  std::vector<Vertex> decoded;
  BitmapDecode(std::span<const uint64_t>{}, std::span<const Vertex>{},
               &decoded);
  EXPECT_TRUE(decoded.empty());

  // Singleton at the last bit (bit 64, second word).
  const auto singleton = Encode({64}, universe);
  std::vector<uint64_t> out(singleton.size());
  EXPECT_EQ(BitmapAnd(singleton.data(), full.data(), singleton.size(),
                      out.data()),
            1u);
  decoded.clear();
  BitmapDecode(out, identity, &decoded);
  EXPECT_EQ(decoded, std::vector<Vertex>{64});

  // All-overlap: X ∩ X = X.
  const auto some = Encode({0, 1, 62, 63, 64}, universe);
  EXPECT_EQ(BitmapAndCount(some.data(), some.data(), some.size()), 5u);
}

TEST(BitmapIntersectionTest, AndAllowsAliasedOutput) {
  const uint32_t universe = 129;
  Prng prng(7);
  const auto a = RandomSubset(universe, 0.4, &prng);
  const auto b = RandomSubset(universe, 0.4, &prng);
  std::vector<Vertex> expected;
  IntersectMerge(a, b, &expected);

  auto wa = Encode(a, universe);
  const auto wb = Encode(b, universe);
  // out aliases a: the kernel must read each word before storing it.
  EXPECT_EQ(BitmapAnd(wa.data(), wb.data(), wa.size(), wa.data()),
            expected.size());
  std::vector<Vertex> decoded;
  BitmapDecode(wa, Identity(universe), &decoded);
  EXPECT_EQ(decoded, expected);
}

TEST(BitmapIntersectionTest, MultiAndMatchesIterativeMerge) {
  Prng prng(99);
  for (const uint32_t universe : {63u, 64u, 65u, 320u}) {
    for (size_t row_count = 1; row_count <= 5; ++row_count) {
      std::vector<std::vector<Vertex>> sets;
      std::vector<std::vector<uint64_t>> encoded;
      std::vector<const uint64_t*> rows;
      for (size_t r = 0; r < row_count; ++r) {
        sets.push_back(RandomSubset(universe, 0.5, &prng));
        encoded.push_back(Encode(sets.back(), universe));
      }
      for (const auto& words : encoded) rows.push_back(words.data());

      std::vector<Vertex> expected = sets[0];
      std::vector<Vertex> scratch;
      for (size_t r = 1; r < row_count; ++r) {
        IntersectMerge(expected, sets[r], &scratch);
        expected.swap(scratch);
      }

      const size_t words = BitmapWords(universe);
      std::vector<uint64_t> out(words, ~0ULL);
      EXPECT_EQ(BitmapMultiAnd(rows, words, out.data()), expected.size())
          << "universe=" << universe << " rows=" << row_count;
      EXPECT_EQ(BitmapMultiAndCount(rows, words), expected.size());
      std::vector<Vertex> decoded;
      BitmapDecode(out, Identity(universe), &decoded);
      EXPECT_EQ(decoded, expected);
    }
  }
}

TEST(BitmapIntersectionTest, SimdFlagIsQueryable) {
  // Whichever backend this build uses, the flag must answer without
  // crashing; correctness of both backends is covered by the tests above.
  (void)BitmapKernelsUseSimd();
}

// ---- Sidecar construction in the auxiliary structure. ----

class AuxBitmapTest : public ::testing::Test {
 protected:
  AuxBitmapTest()
      : query_(PaperQuery()),
        data_(PaperData()),
        filtered_(RunFilter(FilterMethod::kGraphQL, query_, data_)) {}

  Graph query_;
  Graph data_;
  FilterResult filtered_;
};

TEST_F(AuxBitmapTest, EveryRowDecodesToItsCsrList) {
  AuxBuildOptions build;
  build.build_bitmaps = true;
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates, build);
  std::vector<Vertex> decoded;
  for (Vertex from = 0; from < query_.vertex_count(); ++from) {
    for (const Vertex to : query_.neighbors(from)) {
      ASSERT_TRUE(aux.HasBitmap(from, to));
      EXPECT_EQ(aux.BitmapStride(from, to),
                BitmapWords(filtered_.candidates.Count(to)));
      const auto to_cands = filtered_.candidates.candidates(to);
      for (uint32_t r = 0; r < filtered_.candidates.Count(from); ++r) {
        const auto list = aux.NeighborsByIndex(from, r, to);
        decoded.clear();
        BitmapDecode(aux.BitmapByIndex(from, r, to), to_cands, &decoded);
        EXPECT_EQ(decoded,
                  std::vector<Vertex>(list.begin(), list.end()))
            << "edge (" << from << "," << to << ") row " << r;
      }
    }
  }
}

TEST_F(AuxBitmapTest, DensityThresholdSelectsPerVertex) {
  // A threshold of 1 excludes every candidate set larger than one vertex;
  // only edges pointing at singleton candidate sets keep a sidecar.
  AuxBuildOptions build;
  build.build_bitmaps = true;
  build.bitmap_max_candidates = 1;
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates, build);
  for (Vertex from = 0; from < query_.vertex_count(); ++from) {
    for (const Vertex to : query_.neighbors(from)) {
      EXPECT_EQ(aux.HasBitmap(from, to),
                filtered_.candidates.Count(to) <= 1)
          << "edge (" << from << "," << to << ")";
    }
  }

  // Threshold 0 disables sidecars outright.
  build.bitmap_max_candidates = 0;
  const AuxStructure none =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates, build);
  for (Vertex from = 0; from < query_.vertex_count(); ++from) {
    for (const Vertex to : query_.neighbors(from)) {
      EXPECT_FALSE(none.HasBitmap(from, to));
    }
  }
}

TEST_F(AuxBitmapTest, SidecarCountsTowardMemoryAndOffByDefault) {
  const AuxStructure plain =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates);
  AuxBuildOptions build;
  build.build_bitmaps = true;
  const AuxStructure with_bitmaps =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates, build);
  for (Vertex from = 0; from < query_.vertex_count(); ++from) {
    for (const Vertex to : query_.neighbors(from)) {
      EXPECT_FALSE(plain.HasBitmap(from, to));
    }
  }
  EXPECT_GT(with_bitmaps.MemoryBytes(), plain.MemoryBytes());
  EXPECT_EQ(with_bitmaps.CandidateEdgeCount(), plain.CandidateEdgeCount());
}

}  // namespace
}  // namespace sgm
