#include "sgm/util/stats.h"

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats stats;
  stats.Add(42.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}

TEST(RunningStatsTest, KnownPopulation) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook population
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  const double offset = 1e12;
  for (const double x : {offset + 1, offset + 2, offset + 3}) stats.Add(x);
  EXPECT_NEAR(stats.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace sgm
