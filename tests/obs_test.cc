// Tests of the observability layer (sgm/obs): the JSON model, the phase
// timer, thread-CPU timing, Chrome trace-event export, the per-depth search
// profile's exact consistency with EnumerateStats, and the RunReport schema
// shared by serial and parallel runs.
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sgm/matcher.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/depth_profile.h"
#include "sgm/obs/json.h"
#include "sgm/obs/phase_timer.h"
#include "sgm/obs/run_report.h"
#include "sgm/obs/trace.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/util/timer.h"
#include "test_support.h"

namespace sgm {
namespace {

using obs::Json;
using sgm::testing::MakeGraph;
using sgm::testing::PaperData;
using sgm::testing::PaperQuery;
using sgm::testing::TriangleQuery;

// ---- Json. ----

TEST(JsonTest, DumpIsCompactAndIntegerClean) {
  Json doc = Json::Object();
  doc.Set("count", Json::Number(uint64_t{42}));
  doc.Set("ratio", Json::Number(2.5));
  doc.Set("name", Json::String("GQL"));
  doc.Set("on", Json::Bool(true));
  doc.Set("none", Json::Null());
  Json list = Json::Array();
  list.Append(Json::Number(int64_t{-7}));
  list.Append(Json::Number(uint64_t{1234567890123}));
  doc.Set("list", std::move(list));

  EXPECT_EQ(doc.Dump(),
            "{\"count\":42,\"ratio\":2.5,\"name\":\"GQL\",\"on\":true,"
            "\"none\":null,\"list\":[-7,1234567890123]}");
}

TEST(JsonTest, ParseRoundTripsDump) {
  Json doc = Json::Object();
  doc.Set("text", Json::String("quote\" slash\\ newline\n tab\t"));
  Json inner = Json::Object();
  inner.Set("empty_array", Json::Array());
  inner.Set("empty_object", Json::Object());
  doc.Set("inner", std::move(inner));
  doc.Set("pi", Json::Number(3.140625));  // Exact in binary.

  for (const int indent : {0, 2}) {
    const std::string text = doc.Dump(indent);
    std::string error;
    const std::optional<Json> parsed = Json::Parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->Dump(indent), text);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{\"a\":", "[1, 2", "42 tail", "{\"a\" 1}"}) {
    std::string error;
    EXPECT_FALSE(Json::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParseRejectsPathologicalNesting) {
  // Recursive descent: unbounded '[' nesting would overflow the stack
  // (found by the json libFuzzer target). Deep-but-reasonable documents
  // must still parse, and flat width must not count as depth.
  std::string deep(100000, '[');
  std::string error;
  EXPECT_FALSE(Json::Parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos);

  std::string balanced = std::string(64, '[') + std::string(64, ']');
  EXPECT_TRUE(Json::Parse(balanced, &error).has_value()) << error;

  std::string wide = "[";
  for (int i = 0; i < 1000; ++i) wide += "{},";
  wide += "{}]";
  EXPECT_TRUE(Json::Parse(wide, &error).has_value()) << error;
}

TEST(JsonTest, ParseRejectsMalformedUnicodeEscape) {
  std::string error;
  EXPECT_FALSE(Json::Parse("\"\\uzzzz\"", &error).has_value());
  EXPECT_FALSE(Json::Parse("\"\\u12\"", &error).has_value());
  const auto ok = Json::Parse("\"\\u0041\"", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->AsString(), "A");
}

TEST(JsonTest, TypedLookupsFallBack) {
  Json doc = Json::Object();
  doc.Set("n", Json::Number(uint64_t{9}));
  doc.Set("s", Json::String("x"));
  EXPECT_EQ(doc.GetUint64("n"), 9u);
  EXPECT_EQ(doc.GetUint64("missing", 17), 17u);
  EXPECT_EQ(doc.GetUint64("s", 17), 17u);  // Wrong type falls back too.
  EXPECT_EQ(doc.GetString("s"), "x");
  EXPECT_EQ(doc.GetString("missing", "d"), "d");
  EXPECT_TRUE(doc.GetBool("missing", true));
  EXPECT_EQ(doc.Get("missing"), nullptr);
}

TEST(JsonTest, EscapeHandlesSpecialCharacters) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// JSON has no NaN/Inf tokens; serializing them as null keeps documents
// parseable (empty-histogram percentiles and zero-division rates hit this).
TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json::Number(std::nan("")).Dump(), "null");
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Json::Number(-std::numeric_limits<double>::infinity()).Dump(),
            "null");

  Json doc = Json::Object();
  doc.Set("p50_ms", Json::Number(std::nan("")));
  doc.Set("count", Json::Number(uint64_t{0}));
  const std::string dumped = doc.Dump();
  EXPECT_EQ(dumped, "{\"p50_ms\":null,\"count\":0}");
  std::string error;
  const std::optional<Json> parsed = Json::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->Get("p50_ms")->is_null());
}

// ---- PhaseTimer. ----

TEST(PhaseTimerTest, MeasuresPhasesAndEmitsSpans) {
  obs::TraceBuffer trace;
  obs::PhaseTimer timer(&trace);
  timer.Begin("alpha");
  const double alpha_ms = timer.Begin("beta");
  EXPECT_GE(alpha_ms, 0.0);
  const double beta_ms = timer.End();
  EXPECT_GE(beta_ms, 0.0);
  EXPECT_EQ(timer.End(), 0.0);  // No phase running: idempotent.

  const std::vector<obs::TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "alpha");
  EXPECT_EQ(events[1].name, "beta");
  for (const obs::TraceEvent& event : events) {
    EXPECT_EQ(event.category, "phase");
    EXPECT_GE(event.ts_us, 0.0);
    EXPECT_GE(event.dur_us, 0.0);
    EXPECT_GE(event.tdur_us, 0.0);  // Thread-CPU time was sampled.
    EXPECT_EQ(event.tid, 0u);
  }
}

TEST(PhaseTimerTest, WorksWithoutTraceBuffer) {
  obs::PhaseTimer timer;  // Timing only.
  timer.Begin(obs::kPhaseFilter);
  EXPECT_GE(timer.End(), 0.0);
}

// ---- ThreadCpuTimer. ----

TEST(ThreadCpuTimerTest, IsMonotoneAndAdvancesUnderWork) {
  const int64_t before = ThreadCpuTimer::NowNanos();
  ThreadCpuTimer timer;
  volatile uint64_t sink = 0;
  while (timer.ElapsedNanos() <= 0) {
    for (int i = 0; i < 1000; ++i) {
      sink = sink + static_cast<uint64_t>(i);
    }
  }
  EXPECT_GT(timer.ElapsedNanos(), 0);
  EXPECT_GE(ThreadCpuTimer::NowNanos(), before);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ---- Chrome trace-event export. ----

// Validates one document against the Chrome trace event format (JSON Object
// Format): {"traceEvents": [...]} where every event carries name/ph/pid/tid
// and "X" (complete) events carry ts + dur.
void ValidateChromeTrace(const Json& doc, size_t* complete_events,
                         size_t* metadata_events) {
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.GetString("displayTimeUnit"), "ms");
  const Json* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& event = events->at(i);
    ASSERT_TRUE(event.is_object());
    EXPECT_NE(event.Get("name"), nullptr);
    ASSERT_NE(event.Get("ph"), nullptr);
    EXPECT_NE(event.Get("pid"), nullptr);
    EXPECT_NE(event.Get("tid"), nullptr);
    const std::string ph = event.GetString("ph");
    if (ph == "X") {
      ++*complete_events;
      ASSERT_NE(event.Get("ts"), nullptr);
      ASSERT_NE(event.Get("dur"), nullptr);
      EXPECT_GE(event.Get("ts")->AsDouble(), 0.0);
      EXPECT_GE(event.Get("dur")->AsDouble(), 0.0);
    } else if (ph == "M") {
      ++*metadata_events;
      EXPECT_EQ(event.GetString("name"), "thread_name");
      const Json* args = event.Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->Get("name"), nullptr);
    } else {
      ADD_FAILURE() << "unexpected event phase: " << ph;
    }
  }
}

TEST(TraceTest, SerialRunWritesValidChromeTraceFile) {
  obs::Collector collector;
  collector.EnableTrace();
  MatchOptions options;
  options.collector = &collector;
  const MatchResult result = MatchQuery(PaperQuery(), PaperData(), options);
  EXPECT_EQ(result.match_count, 2u);

  const std::string path = ::testing::TempDir() + "sgm_obs_trace.json";
  std::string error;
  ASSERT_TRUE(collector.trace_buffer().WriteFile(path, &error)) << error;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  const std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  size_t complete = 0;
  size_t metadata = 0;
  ValidateChromeTrace(*doc, &complete, &metadata);
  EXPECT_GE(metadata, 1u);  // The "pipeline" thread is named.

  // The four pipeline phases appear as complete spans.
  std::set<std::string> span_names;
  const Json* events = doc->Get("traceEvents");
  for (size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).GetString("ph") == "X") {
      span_names.insert(events->at(i).GetString("name"));
    }
  }
  EXPECT_TRUE(span_names.count(obs::kPhaseFilter));
  EXPECT_TRUE(span_names.count(obs::kPhaseAuxBuild));
  EXPECT_TRUE(span_names.count(obs::kPhaseOrder));
  EXPECT_TRUE(span_names.count(obs::kPhaseEnumeration));
  EXPECT_GE(complete, 4u);
}

TEST(TraceTest, ParallelRunTracesWorkerItems) {
  obs::Collector collector;
  collector.EnableTrace();
  MatchOptions options;
  options.collector = &collector;
  ParallelOptions parallel_options;
  parallel_options.thread_count = 2;
  parallel_options.mode = ParallelMode::kWorkStealing;
  const ParallelMatchResult run =
      ParallelMatchQuery(PaperQuery(), PaperData(), options, parallel_options);
  EXPECT_EQ(run.result.match_count, 2u);

  size_t complete = 0;
  size_t metadata = 0;
  const Json doc = collector.trace_buffer().ToJson();
  ValidateChromeTrace(doc, &complete, &metadata);

  // At least one work item ran on a worker thread (tid >= 1), and workers
  // are named for the trace viewer.
  bool worker_span = false;
  for (const obs::TraceEvent& event : collector.trace_buffer().events()) {
    if (event.tid >= 1 && event.category == "work-item") worker_span = true;
  }
  EXPECT_TRUE(worker_span);
  EXPECT_GE(metadata, 2u);  // Pipeline plus at least one worker.
}

// ---- Depth profile vs EnumerateStats. ----

// A complete graph on `n` one-label vertices: dense enough that a triangle
// query exceeds the engine's 1024-call sampling checkpoint.
Graph Clique(uint32_t n) {
  std::vector<Label> labels(n, 0);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return MakeGraph(labels, edges);
}

void ExpectProfileTiesOut(const obs::DepthProfile& profile,
                          const EnumerateStats& stats) {
  ASSERT_FALSE(profile.empty());
  uint64_t recursion = 0;
  uint64_t local = 0;
  uint64_t prunes = 0;
  uint64_t matches = 0;
  for (const obs::DepthStats& d : profile.depths) {
    recursion += d.recursion_calls;
    local += d.local_candidates;
    prunes += d.failing_set_prunes;
    matches += d.matches;
    EXPECT_GE(d.sampled_ms, 0.0);
  }
  EXPECT_EQ(recursion, stats.recursion_calls);
  EXPECT_EQ(profile.TotalRecursionCalls(), stats.recursion_calls);
  EXPECT_EQ(local, stats.local_candidates_scanned);
  EXPECT_EQ(prunes, stats.failing_set_prunes);
  EXPECT_EQ(matches, stats.match_count);
}

TEST(DepthProfileTest, SerialCountersTieOutOnPaperExample) {
  obs::Collector collector;
  collector.EnableDepthProfile();
  MatchOptions options;
  options.collector = &collector;
  options.use_failing_sets = true;
  const Graph query = PaperQuery();
  const MatchResult result = MatchQuery(query, PaperData(), options);
  EXPECT_EQ(result.match_count, 2u);
  ASSERT_EQ(result.depth_profile.depths.size(), query.vertex_count());
  ExpectProfileTiesOut(result.depth_profile, result.enumerate);
  // Matches complete only at the deepest level.
  for (size_t d = 0; d + 1 < result.depth_profile.depths.size(); ++d) {
    EXPECT_EQ(result.depth_profile.depths[d].matches, 0u);
  }
  EXPECT_EQ(result.depth_profile.depths.back().matches, result.match_count);
}

TEST(DepthProfileTest, SamplingCheckpointChargesTime) {
  obs::Collector collector;
  collector.EnableDepthProfile();
  MatchOptions options;
  options.collector = &collector;
  const MatchResult result = MatchQuery(TriangleQuery(), Clique(40), options);
  // 40*39*38 ordered embeddings: well past the 1024-call checkpoint.
  EXPECT_EQ(result.match_count, 40u * 39u * 38u);
  ASSERT_GT(result.enumerate.recursion_calls, 1024u);
  ExpectProfileTiesOut(result.depth_profile, result.enumerate);
  double sampled = 0.0;
  for (const obs::DepthStats& d : result.depth_profile.depths) {
    sampled += d.sampled_ms;
  }
  EXPECT_GT(sampled, 0.0);
}

TEST(DepthProfileTest, DisabledCollectorLeavesProfileEmpty) {
  const MatchResult result =
      MatchQuery(PaperQuery(), PaperData(), MatchOptions{});
  EXPECT_TRUE(result.depth_profile.empty());
}

TEST(DepthProfileTest, ParallelWorkerProfilesMergeToRunTotals) {
  obs::Collector collector;
  collector.EnableDepthProfile();
  MatchOptions options;
  options.collector = &collector;
  options.use_failing_sets = true;
  ParallelOptions parallel_options;
  parallel_options.thread_count = 3;
  parallel_options.mode = ParallelMode::kWorkStealing;
  const ParallelMatchResult run =
      ParallelMatchQuery(TriangleQuery(), Clique(24), options,
                         parallel_options);
  EXPECT_EQ(run.result.match_count, 24u * 23u * 22u);
  ExpectProfileTiesOut(run.result.depth_profile, run.result.enumerate);
}

TEST(DepthProfileTest, MergeAccumulatesAndResizes) {
  obs::DepthProfile a;
  a.Resize(2);
  a.depths[0].recursion_calls = 3;
  a.depths[1].matches = 1;
  obs::DepthProfile b;
  b.Resize(3);
  b.depths[0].recursion_calls = 4;
  b.depths[2].conflicts = 5;
  a.Merge(b);
  ASSERT_EQ(a.depths.size(), 3u);
  EXPECT_EQ(a.depths[0].recursion_calls, 7u);
  EXPECT_EQ(a.depths[1].matches, 1u);
  EXPECT_EQ(a.depths[2].conflicts, 5u);
  EXPECT_EQ(a.TotalRecursionCalls(), 7u);
}

// ---- RunReport. ----

MatchOptions ReportOptions(obs::Collector* collector) {
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.use_failing_sets = true;
  options.collector = collector;
  return options;
}

TEST(RunReportTest, SerialReportRoundTripsThroughJson) {
  obs::Collector collector;
  collector.EnableDepthProfile();
  const MatchOptions options = ReportOptions(&collector);
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const MatchResult result = MatchQuery(query, data, options);
  const obs::RunReport report =
      obs::BuildRunReport(query, data, options, result);

  EXPECT_EQ(report.engine, "serial");
  EXPECT_EQ(report.match_count, 2u);
  EXPECT_EQ(report.query_vertices, 4u);
  EXPECT_EQ(report.data_vertices, 13u);
  EXPECT_FALSE(report.filter.empty());
  EXPECT_FALSE(report.filter_rounds.empty());
  EXPECT_EQ(report.matching_order.size(), 4u);
  // The report carries the satellite counter-consistency invariant too.
  EXPECT_EQ(report.depth_profile.TotalRecursionCalls(),
            report.recursion_calls);

  const std::string dumped = report.ToJson().Dump(2);
  std::string error;
  const std::optional<Json> parsed = Json::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->GetUint64("schema_version"),
            obs::RunReport::kSchemaVersion);
  const obs::RunReport restored = obs::RunReport::FromJson(*parsed);
  EXPECT_EQ(restored.ToJson().Dump(2), dumped);
}

TEST(RunReportTest, WriteFileProducesParseableDocument) {
  const MatchOptions options;
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const obs::RunReport report = obs::BuildRunReport(
      query, data, options, MatchQuery(query, data, options));

  const std::string path = ::testing::TempDir() + "sgm_obs_report.json";
  std::string error;
  ASSERT_TRUE(report.WriteFile(path, &error)) << error;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  const std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->GetString("engine"), "serial");
}

TEST(RunReportTest, FromJsonToleratesMissingKeys) {
  const obs::RunReport report = obs::RunReport::FromJson(Json::Object());
  EXPECT_EQ(report.engine, "serial");
  EXPECT_EQ(report.match_count, 0u);
  EXPECT_EQ(report.parallel_mode, "none");
  EXPECT_EQ(report.workers_used, 1u);
  EXPECT_TRUE(report.workers.empty());
  EXPECT_TRUE(report.compiler.empty());
  EXPECT_TRUE(report.service_metrics.is_null());
}

TEST(RunReportTest, CarriesBuildProvenance) {
  const obs::BuildProvenance provenance = obs::BuildProvenance::Current();
  EXPECT_FALSE(provenance.compiler.empty());
  EXPECT_GT(provenance.hardware_threads, 0u);

  const MatchOptions options;
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const obs::RunReport report = obs::BuildRunReport(
      query, data, options, MatchQuery(query, data, options));
  EXPECT_EQ(report.compiler, provenance.compiler);
  EXPECT_EQ(report.build_type, provenance.build_type);
  EXPECT_EQ(report.sanitizers, provenance.sanitizers);
  EXPECT_EQ(report.hardware_threads, provenance.hardware_threads);

  const Json json = report.ToJson();
  const Json* build = json.Get("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->GetString("compiler"), provenance.compiler);
  EXPECT_EQ(build->Dump(0), provenance.ToJson().Dump(0));

  const obs::RunReport restored = obs::RunReport::FromJson(json);
  EXPECT_EQ(restored.compiler, report.compiler);
  EXPECT_EQ(restored.build_type, report.build_type);
  EXPECT_EQ(restored.sanitizers, report.sanitizers);
  EXPECT_EQ(restored.hardware_threads, report.hardware_threads);
}

TEST(RunReportTest, FilterRoundsRecordMonotonePruning) {
  const MatchOptions options;
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const obs::RunReport report = obs::BuildRunReport(
      query, data, options, MatchQuery(query, data, options));
  ASSERT_FALSE(report.filter_rounds.empty());
  for (size_t i = 1; i < report.filter_rounds.size(); ++i) {
    EXPECT_LE(report.filter_rounds[i].total_candidates,
              report.filter_rounds[i - 1].total_candidates);
  }
  for (const FilterRound& round : report.filter_rounds) {
    EXPECT_FALSE(round.name.empty());
    EXPECT_GE(round.ms, 0.0);
  }
}

// Collects the nested-object key structure of a document: every path to an
// object member, arrays not descended. Two reports with equal path sets
// have the same schema.
void CollectObjectPaths(const Json& json, const std::string& prefix,
                        std::set<std::string>* out) {
  if (!json.is_object()) return;
  for (const auto& [key, value] : json.members()) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    out->insert(path);
    CollectObjectPaths(value, path, out);
  }
}

TEST(RunReportTest, SerialAndParallelReportsShareSchema) {
  obs::Collector collector;
  collector.EnableDepthProfile();
  const MatchOptions options = ReportOptions(&collector);
  const Graph query = PaperQuery();
  const Graph data = PaperData();

  const MatchResult serial = MatchQuery(query, data, options);
  const obs::RunReport serial_report =
      obs::BuildRunReport(query, data, options, serial);

  ParallelOptions parallel_options;
  parallel_options.thread_count = 2;
  const ParallelMatchResult parallel =
      ParallelMatchQuery(query, data, options, parallel_options);
  const obs::RunReport parallel_report =
      obs::BuildRunReport(query, data, options, parallel);

  // Identical key structure (the acceptance criterion: downstream tooling
  // never branches on key presence) ...
  const Json serial_json = serial_report.ToJson();
  const Json parallel_json = parallel_report.ToJson();
  std::set<std::string> serial_paths;
  std::set<std::string> parallel_paths;
  CollectObjectPaths(serial_json, "", &serial_paths);
  CollectObjectPaths(parallel_json, "", &parallel_paths);
  EXPECT_EQ(serial_paths, parallel_paths);

  // ... with matching results and configuration.
  EXPECT_EQ(serial_report.engine, "serial");
  EXPECT_EQ(parallel_report.engine, "parallel");
  EXPECT_EQ(serial_report.match_count, parallel_report.match_count);
  const Json* serial_config = serial_json.Get("config");
  const Json* parallel_config = parallel_json.Get("config");
  ASSERT_NE(serial_config, nullptr);
  ASSERT_NE(parallel_config, nullptr);
  EXPECT_EQ(serial_config->Dump(), parallel_config->Dump());

  // The degenerate parallel section of a serial run.
  EXPECT_EQ(serial_report.parallel_mode, "none");
  EXPECT_EQ(serial_report.workers_used, 1u);
  EXPECT_TRUE(serial_report.workers.empty());
  EXPECT_EQ(serial_report.load_imbalance, 1.0);

  // The real one of the parallel run.
  EXPECT_EQ(parallel_report.parallel_mode, "work-stealing");
  EXPECT_EQ(parallel_report.workers_used, parallel.workers_used);
  EXPECT_EQ(parallel_report.workers.size(), parallel.worker_stats.size());
  uint64_t worker_matches = 0;
  for (const obs::RunReportWorker& worker : parallel_report.workers) {
    worker_matches += worker.matches_found;
  }
  EXPECT_EQ(worker_matches, parallel_report.match_count);

  // And the parallel report round-trips like the serial one.
  const std::string dumped = parallel_json.Dump(2);
  std::string error;
  const std::optional<Json> parsed = Json::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(obs::RunReport::FromJson(*parsed).ToJson().Dump(2), dumped);
}

// ---- Collector toggles. ----

TEST(CollectorTest, TogglesGateTheSinks) {
  obs::Collector collector;
  EXPECT_FALSE(collector.trace_enabled());
  EXPECT_FALSE(collector.depth_profile_enabled());
  EXPECT_EQ(collector.trace(), nullptr);
  collector.EnableTrace();
  EXPECT_EQ(collector.trace(), &collector.trace_buffer());
  collector.EnableDepthProfile();
  EXPECT_TRUE(collector.depth_profile_enabled());
}

}  // namespace
}  // namespace sgm
