// Tests for the differential fuzzing subsystem: deterministic case
// generation, reproducer round-trips, oracle agreement on healthy engines,
// and the full find-minimize pipeline against an injected enumerator fault.
#include <gtest/gtest.h>

#include <iterator>
#include <sstream>

#include "sgm/fuzz/fuzz_case.h"
#include "sgm/fuzz/minimize.h"
#include "sgm/fuzz/oracle.h"
#include "sgm/fuzz/reproducer.h"

namespace sgm::fuzz {
namespace {

TEST(FuzzCaseTest, GenerationIsDeterministic) {
  for (const uint64_t seed : {1ULL, 7ULL, 123456789ULL}) {
    const FuzzCase a = GenerateCase(seed);
    const FuzzCase b = GenerateCase(seed);
    EXPECT_EQ(a.data.vertex_count(), b.data.vertex_count());
    EXPECT_EQ(a.data.edge_count(), b.data.edge_count());
    EXPECT_EQ(a.query.vertex_count(), b.query.vertex_count());
    EXPECT_EQ(a.max_matches, b.max_matches);
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (size_t i = 0; i < a.configs.size(); ++i) {
      EXPECT_EQ(a.configs[i].Name(), b.configs[i].Name());
    }
    for (Vertex v = 0; v < a.data.vertex_count(); ++v) {
      ASSERT_EQ(a.data.label(v), b.data.label(v));
      ASSERT_EQ(a.data.degree(v), b.data.degree(v));
    }
  }
}

TEST(FuzzCaseTest, CoversTheConfigMatrix) {
  // Across a modest seed range every algorithm, both intersection extremes,
  // classic and optimized variants, and a parallel promotion must show up.
  bool saw_classic = false, saw_parallel = false, saw_fs = false;
  bool saw_recommended = false;
  uint32_t algorithms_seen = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const FuzzCase fuzz_case = GenerateCase(seed);
    EXPECT_GE(fuzz_case.configs.size(), 8u);
    uint64_t algo_bits = 0;
    for (const ConfigSpec& config : fuzz_case.configs) {
      saw_classic |= config.classic;
      saw_parallel |= config.threads > 1;
      saw_fs |= config.failing_sets;
      saw_recommended |= config.recommended;
      if (!config.recommended) {
        algo_bits |= 1ULL << static_cast<int>(config.algorithm);
      }
    }
    algorithms_seen |= static_cast<uint32_t>(algo_bits);
  }
  EXPECT_TRUE(saw_classic);
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_fs);
  EXPECT_TRUE(saw_recommended);
  EXPECT_EQ(algorithms_seen, (1u << std::size(kAllAlgorithms)) - 1)
      << "every algorithm should appear across 40 seeds";
}

TEST(FuzzOracleTest, HealthyEnginesAgreeOnManySeeds) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const FuzzCase fuzz_case = GenerateCase(seed);
    const OracleResult result = RunOracle(fuzz_case);
    EXPECT_FALSE(result.Failed())
        << "seed " << seed << ": " << VerdictKindName(result.kind) << " — "
        << result.detail;
  }
}

TEST(FuzzOracleTest, RejectsOutOfContractQueries) {
  FuzzCase fuzz_case = GenerateCase(3);
  fuzz_case.query = Graph();  // 0 vertices.
  const OracleResult result = RunOracle(fuzz_case);
  EXPECT_EQ(result.kind, VerdictKind::kRejected);
  EXPECT_FALSE(result.Failed());
}

TEST(FuzzCaseTest, UpdateFractionControlsTheDynamicDimension) {
  CaseGenOptions always;
  always.update_fraction = 1.0;
  CaseGenOptions never;
  never.update_fraction = 0.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_FALSE(GenerateCase(seed, always).updates.batches.empty())
        << "seed " << seed;
    EXPECT_TRUE(GenerateCase(seed, never).updates.batches.empty())
        << "seed " << seed;
  }
}

// Property 4: the incremental replay of every generated update stream must
// land on exactly the embedding set a cold rematch of the final graph
// produces. Healthy engines ⇒ no dynamic-mismatch over many seeds.
TEST(FuzzOracleTest, DynamicReplayAgreesOnManySeeds) {
  CaseGenOptions gen_options;
  gen_options.update_fraction = 1.0;
  uint64_t batches_checked = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase fuzz_case = GenerateCase(seed, gen_options);
    const OracleResult result = RunOracle(fuzz_case);
    EXPECT_FALSE(result.Failed())
        << "seed " << seed << ": " << VerdictKindName(result.kind) << " — "
        << result.detail;
    batches_checked += result.dynamic_batches;
  }
  EXPECT_GT(batches_checked, 0u)
      << "the dynamic check never actually replayed a batch";
}

TEST(FuzzOracleTest, DynamicMismatchVerdictRoundTrips) {
  VerdictKind kind = VerdictKind::kAgree;
  ASSERT_TRUE(ParseVerdictKind("dynamic-mismatch", &kind));
  EXPECT_EQ(kind, VerdictKind::kDynamicMismatch);
  EXPECT_STREQ(VerdictKindName(VerdictKind::kDynamicMismatch),
               "dynamic-mismatch");
}

TEST(FuzzReproducerTest, RoundTripsThroughText) {
  const FuzzCase original = GenerateCase(42);
  Reproducer reproducer{original, VerdictKind::kAgree};
  std::ostringstream out;
  WriteReproducer(reproducer, out);

  std::istringstream in(out.str());
  std::string error;
  const auto loaded = ReadReproducer(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->fuzz_case.seed, original.seed);
  EXPECT_EQ(loaded->fuzz_case.max_matches, original.max_matches);
  EXPECT_EQ(loaded->fuzz_case.data.vertex_count(),
            original.data.vertex_count());
  EXPECT_EQ(loaded->fuzz_case.data.edge_count(), original.data.edge_count());
  EXPECT_EQ(loaded->fuzz_case.query.vertex_count(),
            original.query.vertex_count());
  ASSERT_EQ(loaded->fuzz_case.configs.size(), original.configs.size());
  for (size_t i = 0; i < original.configs.size(); ++i) {
    EXPECT_EQ(loaded->fuzz_case.configs[i].Name(),
              original.configs[i].Name());
  }
  // The loaded case must evaluate identically.
  const OracleResult a = RunOracle(original);
  const OracleResult b = RunOracle(loaded->fuzz_case);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.reference_count, b.reference_count);
}

TEST(FuzzReproducerTest, UpdateStreamRoundTrips) {
  CaseGenOptions gen_options;
  gen_options.update_fraction = 1.0;
  const FuzzCase original = GenerateCase(7, gen_options);
  ASSERT_FALSE(original.updates.batches.empty());
  Reproducer reproducer{original, VerdictKind::kAgree};
  std::ostringstream out;
  WriteReproducer(reproducer, out);
  EXPECT_NE(out.str().find("\nupdates\n"), std::string::npos);

  std::istringstream in(out.str());
  std::string error;
  const auto loaded = ReadReproducer(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const dynamic::UpdateStream& replayed = loaded->fuzz_case.updates;
  ASSERT_EQ(replayed.batches.size(), original.updates.batches.size());
  for (size_t b = 0; b < replayed.batches.size(); ++b) {
    EXPECT_EQ(replayed.batches[b].ops, original.updates.batches[b].ops)
        << "batch " << b;
  }
  // The replayed case must evaluate identically, dynamic counters included.
  const OracleResult a = RunOracle(original);
  const OracleResult b = RunOracle(loaded->fuzz_case);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.dynamic_batches, b.dynamic_batches);
  EXPECT_EQ(a.dynamic_additions, b.dynamic_additions);
  EXPECT_EQ(a.dynamic_retractions, b.dynamic_retractions);
}

TEST(FuzzReproducerTest, ShardKeysRoundTrip) {
  FuzzCase original = GenerateCase(42);
  ASSERT_FALSE(original.configs.empty());
  // Force a sharded config regardless of what the generator drew, so the
  // sh=/part= reproducer keys are exercised deterministically.
  original.configs[0].threads = 1;
  original.configs[0].service = false;
  original.configs[0].shards = 4;
  original.configs[0].partitioner = shard::Partitioner::kHash;
  Reproducer reproducer{original, VerdictKind::kAgree};
  std::ostringstream out;
  WriteReproducer(reproducer, out);
  EXPECT_NE(out.str().find(" sh=4 part=hash"), std::string::npos);

  std::istringstream in(out.str());
  std::string error;
  const auto loaded = ReadReproducer(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_FALSE(loaded->fuzz_case.configs.empty());
  EXPECT_EQ(loaded->fuzz_case.configs[0].shards, 4u);
  EXPECT_EQ(loaded->fuzz_case.configs[0].partitioner,
            shard::Partitioner::kHash);
  EXPECT_EQ(loaded->fuzz_case.configs[0].Name(), original.configs[0].Name());

  // Pre-shard corpus files (no sh=/part= keys) parse with the monolithic
  // defaults: strip the new keys from the serialized text and re-read.
  std::string legacy_text = out.str();
  for (const std::string& key : {std::string(" sh="), std::string(" part=")}) {
    size_t at;
    while ((at = legacy_text.find(key)) != std::string::npos) {
      size_t end = legacy_text.find_first_of(" \n", at + key.size());
      legacy_text.erase(at, end - at);
    }
  }
  std::istringstream legacy(legacy_text);
  const auto old_style = ReadReproducer(legacy, &error);
  ASSERT_TRUE(old_style.has_value()) << error;
  EXPECT_EQ(old_style->fuzz_case.configs[0].shards, 1u);
}

TEST(FuzzReproducerTest, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    std::string error;
    return std::make_pair(ReadReproducer(in, &error).has_value(), error);
  };
  EXPECT_FALSE(parse("").first);  // No graphs, no configs.
  EXPECT_FALSE(parse("config REC fs=0 ix=merge threads=1 fault=0\n").first);
  EXPECT_FALSE(parse("bogus line\n").first);
  const auto [ok, error] =
      parse("config REC fs=0 ix=warp threads=1 fault=0\n");
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("config"), std::string::npos);

  // A garbage updates section must fail the whole file, not be dropped.
  std::ostringstream valid;
  WriteReproducer({GenerateCase(5), VerdictKind::kAgree}, valid);
  const auto [upd_ok, upd_error] =
      parse(valid.str() + "updates\nbogus op\n");
  EXPECT_FALSE(upd_ok);
  EXPECT_NE(upd_error.find("updates"), std::string::npos);
}

// The acceptance test for the whole pipeline: plant an off-by-one in the
// enumerator (the debug_skip_last_root_candidate hook drops the last root
// candidate), confirm the oracle flags it, and confirm the minimizer
// shrinks the reproducer to a small case that still fails.
TEST(FuzzPipelineTest, CatchesAndMinimizesInjectedOffByOne) {
  bool caught = false;
  for (uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    FuzzCase fuzz_case = GenerateCase(seed);
    ASSERT_FALSE(fuzz_case.configs.empty());
    fuzz_case.configs[0].inject_fault = true;
    fuzz_case.configs[0].threads = 1;
    const OracleResult result = RunOracle(fuzz_case);
    if (!result.Failed()) continue;  // Fault was invisible on this case.
    caught = true;

    MinimizeStats stats;
    const FuzzCase minimized = MinimizeCase(fuzz_case, {}, {}, &stats);
    const OracleResult after = RunOracle(minimized);
    EXPECT_TRUE(after.Failed()) << "minimized case must still fail";
    EXPECT_LE(minimized.query.vertex_count(), 12u);
    EXPECT_LE(minimized.data.vertex_count(), fuzz_case.data.vertex_count());
    EXPECT_EQ(minimized.configs.size(), 1u)
        << "a single faulty config should survive minimization";
    EXPECT_TRUE(minimized.configs[0].inject_fault);
    EXPECT_GT(stats.oracle_runs, 0u);
  }
  EXPECT_TRUE(caught)
      << "the injected off-by-one was never observable in 10 seeds";
}

}  // namespace
}  // namespace sgm::fuzz
