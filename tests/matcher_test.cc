#include "sgm/matcher.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(MatchOptionsTest, ClassicPresetsMatchThePaper) {
  const MatchOptions qsi = MatchOptions::Classic(Algorithm::kQuickSI);
  EXPECT_EQ(qsi.filter, FilterMethod::kLDF);
  EXPECT_EQ(qsi.order, OrderMethod::kQuickSI);
  EXPECT_EQ(qsi.lc_method, LocalCandidateMethod::kNeighborScan);
  EXPECT_EQ(qsi.aux_scope, AuxEdgeScope::kNone);

  const MatchOptions gql = MatchOptions::Classic(Algorithm::kGraphQL);
  EXPECT_EQ(gql.filter, FilterMethod::kGraphQL);
  EXPECT_EQ(gql.lc_method, LocalCandidateMethod::kCandidateScan);

  const MatchOptions cfl = MatchOptions::Classic(Algorithm::kCFL);
  EXPECT_EQ(cfl.lc_method, LocalCandidateMethod::kPivotIndex);
  EXPECT_EQ(cfl.aux_scope, AuxEdgeScope::kTreeEdges);

  const MatchOptions dp = MatchOptions::Classic(Algorithm::kDPiso);
  EXPECT_TRUE(dp.adaptive_order);
  EXPECT_TRUE(dp.use_failing_sets);
  EXPECT_EQ(dp.aux_scope, AuxEdgeScope::kAllEdges);

  const MatchOptions vf = MatchOptions::Classic(Algorithm::kVF2pp);
  EXPECT_TRUE(vf.vf2pp_lookahead);
}

TEST(MatchOptionsTest, OptimizedSwitchesToIntersect) {
  for (const Algorithm algorithm : kAllAlgorithms) {
    const MatchOptions options = MatchOptions::Optimized(algorithm);
    EXPECT_EQ(options.lc_method, LocalCandidateMethod::kIntersect);
    EXPECT_EQ(options.aux_scope, AuxEdgeScope::kAllEdges);
    EXPECT_FALSE(options.vf2pp_lookahead);
  }
  // Direct-enumeration algorithms get GraphQL candidates (Section 5.3).
  EXPECT_EQ(MatchOptions::Optimized(Algorithm::kRI).filter,
            FilterMethod::kGraphQL);
  EXPECT_EQ(MatchOptions::Optimized(Algorithm::kQuickSI).filter,
            FilterMethod::kGraphQL);
  EXPECT_EQ(MatchOptions::Optimized(Algorithm::kVF2pp).filter,
            FilterMethod::kGraphQL);
  EXPECT_EQ(MatchOptions::Optimized(Algorithm::kCFL).filter,
            FilterMethod::kCFL);
}

TEST(MatchOptionsTest, RecommendedEnablesFailingSetsOnLargeQueries) {
  EXPECT_FALSE(MatchOptions::Recommended(4).use_failing_sets);
  EXPECT_FALSE(MatchOptions::Recommended(8).use_failing_sets);
  EXPECT_TRUE(MatchOptions::Recommended(16).use_failing_sets);
}

TEST(MatcherTest, ResultBreakdownIsConsistent) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const MatchResult result =
      MatchQuery(query, data, MatchOptions::Classic(Algorithm::kCECI));
  EXPECT_EQ(result.match_count, 2u);
  EXPECT_GE(result.preprocessing_ms,
            result.filter_ms);  // includes aux + order
  EXPECT_NEAR(result.preprocessing_ms,
              result.filter_ms + result.aux_build_ms + result.order_ms,
              1e-9);
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GT(result.average_candidates, 0.0);
  EXPECT_GT(result.aux_memory_bytes, 0u);
  EXPECT_EQ(result.matching_order.size(), query.vertex_count());
  EXPECT_FALSE(result.unsolved());
}

TEST(MatcherTest, EmptyCandidatesShortCircuit) {
  const Graph query = PaperQuery();
  // Data graph with no D-labeled vertex at all.
  const Graph data = ::sgm::testing::MakeGraph(
      {0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  const MatchResult result =
      MatchQuery(query, data, MatchOptions::Classic(Algorithm::kGraphQL));
  EXPECT_EQ(result.match_count, 0u);
  EXPECT_EQ(result.enumeration_ms, 0.0);
}

TEST(MatcherTest, MaxMatchesIsRespected) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.max_matches = 1;
  const MatchResult result = MatchQuery(query, data, options);
  EXPECT_EQ(result.match_count, 1u);
  EXPECT_TRUE(result.enumerate.reached_match_limit);
}

TEST(MatcherTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kQuickSI), "QSI");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDPiso), "DP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kVF2pp), "2PP");
}

TEST(MatcherTest, RecommendedFindsAllMatches) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const MatchResult result =
      MatchQuery(query, data, MatchOptions::Recommended(query.vertex_count()));
  EXPECT_EQ(result.match_count, 2u);
}

}  // namespace
}  // namespace sgm
