#include "sgm/graph/query_generator.h"

#include <gtest/gtest.h>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/graph/graph_utils.h"

namespace sgm {
namespace {

class QueryGeneratorTest : public ::testing::Test {
 protected:
  QueryGeneratorTest() : prng_(101) {
    // RMAT concentrates edges around hubs, so random walks find dense
    // induced subgraphs the way they do on the paper's real datasets.
    data_ = GenerateRmat(500, 4000, 4, &prng_);
  }
  Prng prng_;
  Graph data_;
};

TEST_F(QueryGeneratorTest, ExtractedQueryHasRequestedSize) {
  const auto query = ExtractQuery(data_, 8, QueryDensity::kAny, &prng_);
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(query->vertex_count(), 8u);
  EXPECT_TRUE(IsConnected(*query));
}

TEST_F(QueryGeneratorTest, DenseQueriesAreDense) {
  for (int i = 0; i < 5; ++i) {
    const auto query = ExtractQuery(data_, 8, QueryDensity::kDense, &prng_);
    ASSERT_TRUE(query.has_value());
    EXPECT_GE(query->average_degree(), 3.0);
  }
}

TEST_F(QueryGeneratorTest, SparseQueriesAreSparse) {
  for (int i = 0; i < 5; ++i) {
    const auto query = ExtractQuery(data_, 8, QueryDensity::kSparse, &prng_);
    ASSERT_TRUE(query.has_value());
    EXPECT_LT(query->average_degree(), 3.0);
  }
}

TEST_F(QueryGeneratorTest, ExtractedQueryAlwaysHasAMatch) {
  // The induced subgraph is itself an embedding, so at least one match must
  // exist.
  for (int i = 0; i < 10; ++i) {
    const auto query = ExtractQuery(data_, 5, QueryDensity::kAny, &prng_);
    ASSERT_TRUE(query.has_value());
    EXPECT_GE(BruteForceCount(*query, data_, 1), 1u);
  }
}

TEST_F(QueryGeneratorTest, QuerySetSizeAndConfig) {
  const auto queries =
      GenerateQuerySet(data_, 6, QueryDensity::kSparse, 20, &prng_);
  EXPECT_EQ(queries.size(), 20u);
  for (const Graph& q : queries) {
    EXPECT_EQ(q.vertex_count(), 6u);
    EXPECT_TRUE(IsConnected(q));
    EXPECT_LT(q.average_degree(), 3.0);
  }
}

TEST_F(QueryGeneratorTest, ImpossibleDensityReturnsNullopt) {
  // A tree data graph admits no dense (average degree >= 3) induced query.
  Prng prng(7);
  GraphBuilder builder(64);
  for (Vertex v = 1; v < 64; ++v) builder.AddEdge(v, (v - 1) / 2);
  const Graph tree = builder.Build();
  const auto query = ExtractQuery(tree, 8, QueryDensity::kDense, &prng, 50);
  EXPECT_FALSE(query.has_value());
}

TEST(QueryDensityTest, Names) {
  EXPECT_STREQ(QueryDensityName(QueryDensity::kAny), "any");
  EXPECT_STREQ(QueryDensityName(QueryDensity::kDense), "dense");
  EXPECT_STREQ(QueryDensityName(QueryDensity::kSparse), "sparse");
}

}  // namespace
}  // namespace sgm
