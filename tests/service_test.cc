// Tests of the serving layer: plan-cache correctness (LRU, memory budget,
// differential cache-on/off results), request lifecycle (deadlines,
// cancellation, admission control) and concurrent submission.
#include "sgm/service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sgm/fuzz/oracle.h"
#include "sgm/fuzz/reproducer.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"
#include "sgm/obs/metrics.h"
#include "sgm/obs/slow_query_log.h"
#include "sgm/plan.h"
#include "sgm/service/plan_cache.h"
#include "sgm/util/prng.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::kLabelA;
using ::sgm::testing::kLabelB;
using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

service::MatchRequest PaperRequest() {
  service::MatchRequest request;
  request.query = PaperQuery();
  return request;
}

// Unlabeled complete graph: enumerating all embeddings of a path query in
// it is combinatorially huge, so such a request reliably occupies a worker
// until cancelled (the engine checks the cancel flag every 1024 calls).
Graph CompleteGraph(uint32_t n) {
  GraphBuilder builder;
  for (uint32_t v = 0; v < n; ++v) builder.AddVertex(kLabelA);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph PathQuery(uint32_t k) {
  GraphBuilder builder;
  for (uint32_t v = 0; v < k; ++v) builder.AddVertex(kLabelA);
  for (uint32_t v = 0; v + 1 < k; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

// A request that cannot finish in test time: every path-6 embedding in K32
// (~6.5e8 of them), unbounded budget. Stopped only by its cancel token.
service::MatchRequest BlockerRequest(
    std::shared_ptr<std::atomic<bool>> token) {
  service::MatchRequest request;
  request.query = PathQuery(6);
  request.options.max_matches = 0;
  request.cancel = std::move(token);
  return request;
}

// Polls until the admission queue is empty (every queued request has been
// claimed by a worker) or the deadline passes.
void WaitForEmptyQueue(const service::MatchService& service) {
  for (int i = 0; i < 2000; ++i) {
    if (service.Stats().queue_depth == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------- PlanCache

TEST(PlanCacheTest, QueryEncodingDistinguishesLabelsAndEdges) {
  const Graph path = MakeGraph({kLabelA, kLabelB, kLabelA},
                               {{0, 1}, {1, 2}});
  const Graph triangle = MakeGraph({kLabelA, kLabelB, kLabelA},
                                   {{0, 1}, {1, 2}, {0, 2}});
  const Graph relabeled = MakeGraph({kLabelB, kLabelA, kLabelA},
                                    {{0, 1}, {1, 2}});
  EXPECT_NE(service::PlanCache::EncodeQuery(path),
            service::PlanCache::EncodeQuery(triangle));
  EXPECT_NE(service::PlanCache::EncodeQuery(path),
            service::PlanCache::EncodeQuery(relabeled));
  EXPECT_EQ(service::PlanCache::EncodeQuery(path),
            service::PlanCache::EncodeQuery(
                MakeGraph({kLabelA, kLabelB, kLabelA}, {{0, 1}, {1, 2}})));
}

TEST(PlanCacheTest, OptionsEncodingCoversPlanShapingKnobs) {
  const MatchOptions base = MatchOptions::Optimized(Algorithm::kGraphQL);
  MatchOptions other = base;
  other.filter = FilterMethod::kCFL;
  EXPECT_NE(service::PlanCache::EncodeOptions(base),
            service::PlanCache::EncodeOptions(other));
  other = base;
  other.use_failing_sets = !base.use_failing_sets;
  EXPECT_NE(service::PlanCache::EncodeOptions(base),
            service::PlanCache::EncodeOptions(other));
  // Per-run knobs must NOT change the key: one plan serves them all.
  other = base;
  other.max_matches = 7;
  other.time_limit_ms = 1.0;
  other.use_lc_cache = !base.use_lc_cache;
  EXPECT_EQ(service::PlanCache::EncodeOptions(base),
            service::PlanCache::EncodeOptions(other));
}

TEST(PlanCacheTest, HitMissAndLruEviction) {
  const Graph data = PaperData();
  const Graph query = PaperQuery();
  const MatchOptions options;

  service::PlanCacheOptions cache_options;
  cache_options.memory_budget_bytes = 1ull << 30;
  service::PlanCache cache(cache_options);

  const std::string key = service::PlanCache::MakeKey(query, options);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  auto plan = BuildMatchPlan(query, data, options);
  const auto shared = cache.Insert(key, std::move(plan));
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(cache.Lookup(key), shared);

  const service::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedUnderMemoryPressure) {
  const Graph data = PaperData();
  const MatchOptions options;

  // Three distinct queries -> three distinct keys (and plans of different
  // sizes, so the budget is derived from the measured sizes: one byte too
  // small for all three together, forcing exactly one eviction).
  const Graph q1 = PaperQuery();
  const Graph q2 = MakeGraph({kLabelA, kLabelB}, {{0, 1}});
  const Graph q3 = MakeGraph({kLabelB, kLabelA, kLabelB},
                             {{0, 1}, {1, 2}});
  const size_t total_bytes = BuildMatchPlan(q1, data, options)->MemoryBytes() +
                             BuildMatchPlan(q2, data, options)->MemoryBytes() +
                             BuildMatchPlan(q3, data, options)->MemoryBytes();
  service::PlanCacheOptions cache_options;
  cache_options.memory_budget_bytes = total_bytes - 1;
  service::PlanCache cache(cache_options);
  const std::string k1 = service::PlanCache::MakeKey(q1, options);
  const std::string k2 = service::PlanCache::MakeKey(q2, options);
  const std::string k3 = service::PlanCache::MakeKey(q3, options);

  cache.Insert(k1, BuildMatchPlan(q1, data, options));
  cache.Insert(k2, BuildMatchPlan(q2, data, options));
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(k1), nullptr);
  cache.Insert(k3, BuildMatchPlan(q3, data, options));

  EXPECT_GE(cache.Stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr);  // evicted
  EXPECT_LE(cache.Stats().memory_bytes, cache_options.memory_budget_bytes);
}

TEST(PlanCacheTest, OversizedPlanIsReturnedButNotRetained) {
  const Graph data = PaperData();
  const Graph query = PaperQuery();
  const MatchOptions options;
  service::PlanCacheOptions cache_options;
  cache_options.memory_budget_bytes = 1;  // nothing fits
  service::PlanCache cache(cache_options);
  const std::string key = service::PlanCache::MakeKey(query, options);
  const auto shared = cache.Insert(key, BuildMatchPlan(query, data, options));
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().rejected, 1u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
}

// ------------------------------------------------------------ MatchService

TEST(MatchServiceTest, ServesThePaperExample) {
  service::ServiceOptions options;
  options.worker_count = 2;
  service::MatchService service(PaperData(), options);

  service::MatchRequest request = PaperRequest();
  request.collect_embeddings = true;
  const service::MatchResponse response = service.Match(std::move(request));
  EXPECT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(response.engine.match_count, 2u);
  EXPECT_EQ(response.embeddings.size(), 2u);
  EXPECT_FALSE(response.plan_cache_hit);
  EXPECT_GE(response.service_ms, response.queue_ms);
}

TEST(MatchServiceTest, SecondIdenticalRequestHitsThePlanCache) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(PaperData(), options);

  const service::MatchResponse first = service.Match(PaperRequest());
  const service::MatchResponse second = service.Match(PaperRequest());
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(first.engine.match_count, second.engine.match_count);
  // A cache hit did no preprocessing and reports none.
  EXPECT_EQ(second.engine.preprocessing_ms, 0.0);

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.plan_cache.misses, 1u);
}

TEST(MatchServiceTest, CacheDisabledNeverHits) {
  service::ServiceOptions options;
  options.worker_count = 1;
  options.plan_cache_budget_bytes = 0;
  service::MatchService service(PaperData(), options);
  service.Match(PaperRequest());
  const service::MatchResponse second = service.Match(PaperRequest());
  EXPECT_FALSE(second.plan_cache_hit);
  EXPECT_EQ(second.engine.match_count, 2u);
  EXPECT_EQ(service.Stats().plan_cache.hits, 0u);
}

// The acceptance-criterion differential: cache-enabled and cache-disabled
// services must return identical match counts for every algorithm preset
// on a nontrivial generated workload.
TEST(MatchServiceTest, CacheOnOffMatchCountsIdenticalAcrossAlgorithms) {
  Prng prng(42);
  const Graph data = GenerateRmat(200, 600, 4, &prng);
  std::vector<Graph> queries;
  for (uint32_t size : {4u, 6u, 8u}) {
    auto query = ExtractQuery(data, size, QueryDensity::kAny, &prng);
    ASSERT_TRUE(query.has_value());
    queries.push_back(std::move(*query));
  }

  service::ServiceOptions cached_options;
  cached_options.worker_count = 2;
  service::ServiceOptions uncached_options = cached_options;
  uncached_options.plan_cache_budget_bytes = 0;
  service::MatchService cached(data, cached_options);
  service::MatchService uncached(data, uncached_options);

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const Graph& query : queries) {
      // Twice against the cached service: the second run is a cache hit.
      for (int round = 0; round < 2; ++round) {
        service::MatchRequest request;
        request.query = query;
        request.options = MatchOptions::Optimized(algorithm);
        const service::MatchResponse with_cache =
            cached.Match(std::move(request));

        service::MatchRequest baseline;
        baseline.query = query;
        baseline.options = MatchOptions::Optimized(algorithm);
        const service::MatchResponse without_cache =
            uncached.Match(std::move(baseline));

        ASSERT_EQ(with_cache.status, service::RequestStatus::kOk);
        ASSERT_EQ(without_cache.status, service::RequestStatus::kOk);
        EXPECT_EQ(with_cache.engine.match_count,
                  without_cache.engine.match_count)
            << AlgorithmName(algorithm) << " round " << round;
      }
    }
  }
  EXPECT_GT(cached.Stats().plan_cache.hits, 0u);
}

TEST(MatchServiceTest, RejectsInvalidQueries) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(PaperData(), options);

  service::MatchRequest disconnected;
  disconnected.query = MakeGraph({kLabelA, kLabelA}, {});
  const service::MatchResponse response =
      service.Match(std::move(disconnected));
  EXPECT_EQ(response.status, service::RequestStatus::kRejected);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.Stats().rejected, 1u);
}

TEST(MatchServiceTest, ExpiredDeadlineInQueueTimesOutWithoutRunning) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(CompleteGraph(32), options);

  // Block the single worker so the queued request ages past its deadline.
  auto blocker_token = std::make_shared<std::atomic<bool>>(false);
  auto blocker_future = service.Submit(BlockerRequest(blocker_token));

  service::MatchRequest doomed;
  doomed.query = PathQuery(2);
  doomed.deadline_ms = 5.0;
  auto doomed_future = service.Submit(std::move(doomed));

  // Let the deadline expire while the blocker holds the worker, then free
  // the worker so the doomed request gets dequeued.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  blocker_token->store(true);

  const service::MatchResponse doomed_response = doomed_future.get();
  EXPECT_EQ(doomed_response.status, service::RequestStatus::kTimedOut);
  // Never executed: no matches, no enumeration.
  EXPECT_EQ(doomed_response.engine.match_count, 0u);
  EXPECT_EQ(doomed_response.engine.enumerate.recursion_calls, 0u);
  blocker_future.get();
  EXPECT_GE(service.Stats().timed_out, 1u);
}

TEST(MatchServiceTest, CancellationAbortsARequest) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(PaperData(), options);

  auto token = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  service::MatchRequest request = PaperRequest();
  request.cancel = token;
  const service::MatchResponse response = service.Match(std::move(request));
  EXPECT_EQ(response.status, service::RequestStatus::kCancelled);
  EXPECT_EQ(service.Stats().cancelled, 1u);
}

TEST(MatchServiceTest, CancellationStopsAnExecutingRequest) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(CompleteGraph(32), options);

  auto token = std::make_shared<std::atomic<bool>>(false);
  auto future = service.Submit(BlockerRequest(token));
  WaitForEmptyQueue(service);  // the worker is now inside the enumeration
  token->store(true);
  const service::MatchResponse response = future.get();
  EXPECT_EQ(response.status, service::RequestStatus::kCancelled);
  // A cancelled run is not a timeout (MatchOptions::cancel_flag contract).
  EXPECT_FALSE(response.engine.enumerate.timed_out);
}

TEST(MatchServiceTest, AdmissionQueueBoundRejectsOverflow) {
  service::ServiceOptions options;
  options.worker_count = 1;
  options.max_queue_depth = 1;
  service::MatchService service(PaperData(), options);

  // Hold the worker on a cancellable request, then overfill the queue.
  auto hold = std::make_shared<std::atomic<bool>>(false);
  service::MatchRequest holder = PaperRequest();
  holder.cancel = hold;
  auto holder_future = service.Submit(std::move(holder));

  // Give the worker a moment to claim the holder; then one queued request
  // is admitted and the next is rejected. Retry the admitted slot until
  // the worker has dequeued the holder (timing-robust on 1-core machines).
  std::vector<std::future<service::MatchResponse>> admitted;
  bool saw_rejection = false;
  for (int i = 0; i < 64 && !saw_rejection; ++i) {
    auto future = service.Submit(PaperRequest());
    if (future.wait_for(std::chrono::milliseconds(0)) ==
        std::future_status::ready) {
      const service::MatchResponse response = future.get();
      if (response.status == service::RequestStatus::kRejected) {
        saw_rejection = true;
      }
    } else {
      admitted.push_back(std::move(future));
    }
    if (admitted.size() >= 2) break;  // queue deeper than the bound
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_LE(admitted.size(), 1u);

  hold->store(true);
  holder_future.get();
  for (auto& future : admitted) future.get();
  EXPECT_GE(service.Stats().rejected, 1u);
}

TEST(MatchServiceTest, ShutdownFailsQueuedRequestsAndStops) {
  auto service = std::make_unique<service::MatchService>(
      PaperData(), service::ServiceOptions{.worker_count = 1});
  auto hold = std::make_shared<std::atomic<bool>>(false);
  service::MatchRequest holder = PaperRequest();
  holder.cancel = hold;
  auto holder_future = service->Submit(std::move(holder));
  auto queued_future = service->Submit(PaperRequest());

  service->Shutdown();
  const service::MatchResponse holder_response = holder_future.get();
  const service::MatchResponse queued_response = queued_future.get();
  // The holder either finished before the shutdown flag reached it or was
  // cancelled; the queued request must not have run.
  EXPECT_TRUE(holder_response.status == service::RequestStatus::kOk ||
              holder_response.status == service::RequestStatus::kCancelled);
  EXPECT_EQ(queued_response.status, service::RequestStatus::kCancelled);

  // Post-shutdown submissions are rejected.
  const service::MatchResponse late = service->Match(PaperRequest());
  EXPECT_EQ(late.status, service::RequestStatus::kRejected);
}

TEST(MatchServiceTest, ConcurrentMixedWorkloadAgreesWithDirectMatching) {
  Prng prng(7);
  const Graph data = GenerateRmat(150, 450, 3, &prng);
  std::vector<Graph> queries;
  for (uint32_t i = 0; i < 4; ++i) {
    auto query =
        ExtractQuery(data, 4 + 2 * (i % 2), QueryDensity::kAny, &prng);
    ASSERT_TRUE(query.has_value());
    queries.push_back(std::move(*query));
  }
  std::vector<uint64_t> expected;
  for (const Graph& query : queries) {
    expected.push_back(MatchQuery(query, data, MatchOptions{}).match_count);
  }

  service::ServiceOptions options;
  options.worker_count = 4;
  service::MatchService service(data, options);
  std::vector<std::future<service::MatchResponse>> futures;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (const Graph& query : queries) {
      service::MatchRequest request;
      request.query = query;
      futures.push_back(service.Submit(std::move(request)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const service::MatchResponse response = futures[i].get();
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.engine.match_count, expected[i % queries.size()]);
  }
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, queries.size() * kRounds);
  // Each distinct query builds at least once; concurrent workers may race
  // to build the same plan in round one (incumbent wins), so the miss
  // count is bounded by one build per worker per query, not exactly one.
  EXPECT_GE(stats.plan_cache.misses, queries.size());
  EXPECT_LE(stats.plan_cache.misses,
            queries.size() * options.worker_count);
  EXPECT_EQ(stats.plan_cache.hits + stats.plan_cache.misses,
            queries.size() * kRounds);
  EXPECT_GE(stats.plan_cache.hits, queries.size() * (kRounds - 4));
}

TEST(MatchServiceTest, ShardedServiceAgreesWithMonolithicAndBypassesCache) {
  Prng prng(11);
  const Graph data = GenerateRmat(150, 450, 3, &prng);
  std::vector<Graph> queries;
  for (uint32_t i = 0; i < 3; ++i) {
    auto query = ExtractQuery(data, 4 + (i % 2), QueryDensity::kAny, &prng);
    ASSERT_TRUE(query.has_value());
    queries.push_back(std::move(*query));
  }

  service::ServiceOptions options;
  options.worker_count = 2;
  options.shards = 3;
  service::MatchService service(data, options);
  EXPECT_EQ(service.shard_count(), 3u);

  for (const Graph& query : queries) {
    const uint64_t expected =
        MatchQuery(query, data, MatchOptions{}).match_count;
    service::MatchRequest request;
    request.query = query;
    const service::MatchResponse response = service.Match(std::move(request));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.engine.match_count, expected);
    EXPECT_EQ(response.sharding.shard_count, 3u);
    EXPECT_FALSE(response.sharding.passes.empty());
    EXPECT_FALSE(response.plan_cache_hit);

    // The served report uses the sharded engine and round-trips the
    // sharding section through JSON.
    service::MatchRequest report_request;
    report_request.query = query;
    const obs::RunReport report = service::BuildServedRunReport(
        query, service.data(), report_request, response);
    EXPECT_EQ(report.engine, "sharded");
    EXPECT_EQ(report.shard_count, 3u);
    const obs::RunReport parsed = obs::RunReport::FromJson(report.ToJson());
    EXPECT_EQ(parsed.engine, "sharded");
    EXPECT_EQ(parsed.shard_count, 3u);
    EXPECT_EQ(parsed.shard_passes.size(), report.shard_passes.size());
  }

  // Sharded requests never touch the plan cache.
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.plan_cache.hits + stats.plan_cache.misses, 0u);
}

TEST(MatchServiceTest, ServedRunReportCarriesServiceSection) {
  service::ServiceOptions options;
  options.worker_count = 1;
  service::MatchService service(PaperData(), options);
  service.Match(PaperRequest());  // warm the cache
  service::MatchRequest request = PaperRequest();
  const Graph query = request.query;
  const service::MatchResponse response = service.Match(std::move(request));

  const obs::RunReport report = service::BuildServedRunReport(
      query, service.data(), PaperRequest(), response);
  EXPECT_TRUE(report.served);
  EXPECT_TRUE(report.plan_cache_hit);
  EXPECT_EQ(report.request_status, "ok");
  EXPECT_EQ(report.match_count, 2u);

  // The service section round-trips through JSON.
  const obs::RunReport parsed = obs::RunReport::FromJson(report.ToJson());
  EXPECT_TRUE(parsed.served);
  EXPECT_TRUE(parsed.plan_cache_hit);
  EXPECT_EQ(parsed.request_status, "ok");
}

// ------------------------------------------------------------- Telemetry

// A counter's value in the registry snapshot, by name + single label.
uint64_t CounterValue(const obs::Json& snapshot, const std::string& name,
                      const std::string& label_key = {},
                      const std::string& label_value = {}) {
  const obs::Json* counters = snapshot.Get("counters");
  EXPECT_NE(counters, nullptr);
  for (size_t i = 0; i < counters->size(); ++i) {
    const obs::Json& entry = counters->at(i);
    if (entry.GetString("name") != name) continue;
    if (!label_key.empty() &&
        entry.Get("labels")->GetString(label_key) != label_value) {
      continue;
    }
    return entry.GetUint64("value");
  }
  ADD_FAILURE() << "counter " << name << " not found";
  return 0;
}

TEST(MatchServiceTest, ExportsRequestAndPlanCacheMetrics) {
  obs::MetricsRegistry registry;
  service::ServiceOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  service::MatchService service(PaperData(), options);
  EXPECT_EQ(service.metrics(), &registry);

  service.Match(PaperRequest());
  service.Match(PaperRequest());  // plan-cache hit

  const obs::Json snapshot = registry.ToJson();
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_requests_total", "status",
                         "ok"),
            2u);
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_requests_total", "status",
                         "timeout"),
            0u);
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_plan_cache_hits_total"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_plan_cache_misses_total"),
            1u);
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_matches_total"), 4u);

  // Latency histograms saw both requests.
  const obs::Json* histograms = snapshot.Get("histograms");
  ASSERT_NE(histograms, nullptr);
  bool found_request_ms = false;
  for (size_t i = 0; i < histograms->size(); ++i) {
    if (histograms->at(i).GetString("name") == "sgm_service_request_ms") {
      found_request_ms = true;
      EXPECT_EQ(histograms->at(i).GetUint64("count"), 2u);
    }
  }
  EXPECT_TRUE(found_request_ms);

  // The Prometheus rendering of the same registry carries the series.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("sgm_service_requests_total{status=\"ok\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sgm_service_request_ms histogram"),
            std::string::npos);

  // And a served run report can embed the snapshot under service.metrics.
  service::MatchRequest request = PaperRequest();
  const Graph query = request.query;
  const service::MatchResponse response = service.Match(std::move(request));
  const obs::RunReport report = service::BuildServedRunReport(
      query, service.data(), PaperRequest(), response, &registry);
  const obs::Json json = report.ToJson();
  const obs::Json* metrics = json.Get("service")->Get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());
  const obs::RunReport parsed = obs::RunReport::FromJson(json);
  EXPECT_EQ(parsed.service_metrics.Dump(0), metrics->Dump(0));
}

TEST(MatchServiceTest, AdmissionRejectAndDeadlineExpiryAreCounted) {
  obs::MetricsRegistry registry;
  const auto blocker_token = std::make_shared<std::atomic<bool>>(false);
  service::ServiceOptions options;
  options.worker_count = 1;
  options.max_queue_depth = 1;
  options.metrics = &registry;
  service::MatchService service(CompleteGraph(32), options);

  // Occupy the worker, fill the queue, then overflow it.
  auto blocked = service.Submit(BlockerRequest(blocker_token));
  WaitForEmptyQueue(service);
  service::MatchRequest queued;
  queued.query = PathQuery(2);
  queued.deadline_ms = 1.0;  // expires while the blocker holds the worker
  auto expired = service.Submit(std::move(queued));
  service::MatchRequest overflow;
  overflow.query = PathQuery(2);
  const service::MatchResponse rejected =
      service.Submit(std::move(overflow)).get();
  EXPECT_EQ(rejected.status, service::RequestStatus::kRejected);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  blocker_token->store(true);
  blocked.get();
  EXPECT_EQ(expired.get().status, service::RequestStatus::kTimedOut);

  const obs::Json snapshot = registry.ToJson();
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_admission_rejects_total"),
            1u);
  EXPECT_EQ(CounterValue(snapshot, "sgm_service_requests_total", "status",
                         "rejected"),
            1u);
  EXPECT_EQ(
      CounterValue(snapshot, "sgm_service_deadline_expired_in_queue_total"),
      1u);
}

// ---------------------------------------------------------- Slow-query log

TEST(MatchServiceTest, SlowQueryLogRecordReplaysWithIdenticalCount) {
  const std::string log_path =
      ::testing::TempDir() + "/sgm_slow_queries.jsonl";
  std::remove(log_path.c_str());
  obs::SlowQueryLog::Options log_options;
  log_options.path = log_path;
  log_options.threshold_ms = 0.0;  // every request qualifies
  obs::SlowQueryLog log(log_options);
  ASSERT_TRUE(log.ok()) << log.error();

  obs::MetricsRegistry registry;
  service::ServiceOptions options;
  options.worker_count = 1;
  options.metrics = &registry;
  options.slow_query_log = &log;
  service::MatchService service(PaperData(), options);
  const service::MatchResponse response = service.Match(PaperRequest());
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(log.entries(), 1u);
  EXPECT_EQ(CounterValue(registry.ToJson(), "sgm_service_slow_queries_total"),
            1u);

  // The JSONL line parses and carries the latency breakdown + counters.
  std::ifstream file(log_path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  std::string error;
  const auto record = obs::Json::Parse(line, &error);
  ASSERT_TRUE(record.has_value()) << error;
  EXPECT_EQ(record->GetString("status"), "ok");
  EXPECT_GE(record->GetDouble("service_ms"), 0.0);
  EXPECT_GT(record->GetDouble("unix_time_s"), 0.0);
  EXPECT_EQ(record->Get("enumerate")->GetUint64("match_count"),
            response.engine.match_count);
  EXPECT_EQ(record->Get("query")->GetUint64("vertices"),
            PaperQuery().vertex_count());

  // The embedded reproducer replays through the differential oracle (the
  // sgm_fuzz --replay path) and reproduces the exact match count.
  const obs::Json* reproducer_text = record->Get("reproducer");
  ASSERT_NE(reproducer_text, nullptr);
  ASSERT_TRUE(reproducer_text->is_string());
  std::istringstream reproducer_stream(reproducer_text->AsString());
  const auto reproducer = fuzz::ReadReproducer(reproducer_stream, &error);
  ASSERT_TRUE(reproducer.has_value()) << error;
  ASSERT_EQ(reproducer->fuzz_case.configs.size(), 1u);
  EXPECT_TRUE(reproducer->fuzz_case.configs[0].service);

  const fuzz::OracleResult oracle = fuzz::RunOracle(reproducer->fuzz_case);
  EXPECT_FALSE(oracle.Failed()) << oracle.detail;
  ASSERT_FALSE(oracle.outcomes.empty());
  EXPECT_EQ(oracle.outcomes[0].match_count, response.engine.match_count);
}

TEST(MatchServiceTest, SlowQueryLogHonorsThresholdAndEmbedToggle) {
  const std::string log_path =
      ::testing::TempDir() + "/sgm_slow_queries_thresh.jsonl";
  std::remove(log_path.c_str());
  obs::SlowQueryLog::Options log_options;
  log_options.path = log_path;
  log_options.threshold_ms = 1e9;  // nothing is this slow
  obs::SlowQueryLog fast_log(log_options);
  {
    service::ServiceOptions options;
    options.worker_count = 1;
    obs::MetricsRegistry registry;
    options.metrics = &registry;
    options.slow_query_log = &fast_log;
    service::MatchService service(PaperData(), options);
    service.Match(PaperRequest());
  }
  EXPECT_EQ(fast_log.entries(), 0u);

  log_options.threshold_ms = 0.0;
  log_options.embed_reproducer = false;
  obs::SlowQueryLog lean_log(log_options);
  {
    service::ServiceOptions options;
    options.worker_count = 1;
    obs::MetricsRegistry registry;
    options.metrics = &registry;
    options.slow_query_log = &lean_log;
    service::MatchService service(PaperData(), options);
    service.Match(PaperRequest());
  }
  EXPECT_EQ(lean_log.entries(), 1u);
  std::ifstream file(log_path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  std::string error;
  const auto record = obs::Json::Parse(line, &error);
  ASSERT_TRUE(record.has_value()) << error;
  EXPECT_TRUE(record->Get("reproducer")->is_null());
}

}  // namespace
}  // namespace sgm
