#include "sgm/util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace sgm {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsWidth) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.Empty());
}

TEST(BitsetTest, LogicalOperations) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);

  Bitset and_result = a;
  and_result.AndWith(b);
  EXPECT_EQ(and_result.Count(), 2u);
  EXPECT_TRUE(and_result.Test(50));
  EXPECT_TRUE(and_result.Test(99));

  Bitset or_result = a;
  or_result.OrWith(b);
  EXPECT_EQ(or_result.Count(), 4u);

  Bitset diff = a;
  diff.AndNotWith(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Test(1));

  EXPECT_EQ(a.AndCount(b), 2u);
}

TEST(BitsetTest, FindFirstAndNext) {
  Bitset bits(200);
  EXPECT_EQ(bits.FindFirst(), 200u);
  bits.Set(5);
  bits.Set(77);
  bits.Set(199);
  EXPECT_EQ(bits.FindFirst(), 5u);
  EXPECT_EQ(bits.FindNext(5), 5u);
  EXPECT_EQ(bits.FindNext(6), 77u);
  EXPECT_EQ(bits.FindNext(78), 199u);
  EXPECT_EQ(bits.FindNext(200), 200u);
}

TEST(BitsetTest, ForEachAscending) {
  Bitset bits(128);
  const std::vector<uint32_t> expected = {0, 63, 64, 127};
  for (const uint32_t i : expected) bits.Set(i);
  std::vector<uint32_t> seen;
  bits.ForEach([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, Equality) {
  Bitset a(64), b(64);
  EXPECT_TRUE(a == b);
  a.Set(10);
  EXPECT_FALSE(a == b);
  b.Set(10);
  EXPECT_TRUE(a == b);
}

TEST(BitsetTest, WordCountForMemoryAccounting) {
  EXPECT_EQ(Bitset(1).word_count(), 1u);
  EXPECT_EQ(Bitset(64).word_count(), 1u);
  EXPECT_EQ(Bitset(65).word_count(), 2u);
}

}  // namespace
}  // namespace sgm
