#include "sgm/core/candidate_sets.h"

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(CandidateSetsTest, BasicAccessors) {
  CandidateSets sets(3);
  EXPECT_EQ(sets.query_vertex_count(), 3u);
  sets.mutable_candidates(0) = {1, 4, 9};
  sets.mutable_candidates(1) = {2};
  EXPECT_EQ(sets.Count(0), 3u);
  EXPECT_EQ(sets.Count(1), 1u);
  EXPECT_EQ(sets.Count(2), 0u);
  EXPECT_TRUE(sets.AnyEmpty());
  EXPECT_EQ(sets.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(sets.AverageCount(), 4.0 / 3.0);
}

TEST(CandidateSetsTest, ContainsAndIndexOf) {
  CandidateSets sets(1);
  sets.mutable_candidates(0) = {3, 7, 11, 20};
  EXPECT_TRUE(sets.Contains(0, 7));
  EXPECT_FALSE(sets.Contains(0, 8));
  EXPECT_EQ(sets.IndexOf(0, 3), 0u);
  EXPECT_EQ(sets.IndexOf(0, 20), 3u);
  EXPECT_EQ(sets.IndexOf(0, 8), 4u);  // absent -> size()
}

TEST(CandidateSetsTest, SortAllDeduplicates) {
  CandidateSets sets(1);
  sets.mutable_candidates(0) = {9, 3, 9, 1, 3};
  sets.SortAll();
  const auto cands = sets.candidates(0);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0], 1u);
  EXPECT_EQ(cands[1], 3u);
  EXPECT_EQ(cands[2], 9u);
}

TEST(CandidateSetsTest, MemoryBytesGrowsWithContent) {
  CandidateSets small(1);
  CandidateSets big(1);
  big.mutable_candidates(0).resize(1000);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace sgm
