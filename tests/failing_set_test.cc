#include "sgm/core/enumerate/failing_set.h"

#include <gtest/gtest.h>

#include "sgm/core/enumerate/enumerator.h"
#include "sgm/core/filter/filter.h"
#include "sgm/core/order/order.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;

TEST(QueryVertexSetTest, BitOperations) {
  EXPECT_EQ(QuerySetBit(0), 1ull);
  EXPECT_EQ(QuerySetBit(5), 32ull);
  EXPECT_TRUE(QuerySetContains(QuerySetBit(3) | QuerySetBit(7), 3));
  EXPECT_FALSE(QuerySetContains(QuerySetBit(3), 4));
}

TEST(QueryVertexSetTest, FullMask) {
  EXPECT_EQ(QuerySetFull(1), 1ull);
  EXPECT_EQ(QuerySetFull(4), 0xFull);
  EXPECT_EQ(QuerySetFull(64), ~0ull);
  for (Vertex u = 0; u < 64; ++u) {
    EXPECT_TRUE(QuerySetContains(QuerySetFull(64), u));
  }
}

// Example 3.5's structure: the subtree below an extension fails only
// because of an injectivity conflict between vertices ordered before the
// extension, so failing sets must skip the extension's siblings.
TEST(FailingSetPruningTest, PrunesSiblingsOnConflict) {
  // Query: u0(A)-u1(B), u0-u2(C), u1-u3(A). The data graph has exactly one
  // A vertex v0, so u3 always conflicts with u0 — a failure that never
  // involves u2, whose many candidate extensions are therefore prunable.
  GraphBuilder builder;
  const Vertex v0 = builder.AddVertex(0);  // the only A
  for (int i = 0; i < 3; ++i) {
    const Vertex b = builder.AddVertex(1);  // B, degree 2 to pass LDF
    builder.AddEdge(v0, b);
    builder.AddEdge(b, builder.AddVertex(3));  // inert pendant
  }
  for (int i = 0; i < 5; ++i) {
    const Vertex c = builder.AddVertex(2);  // C
    builder.AddEdge(v0, c);
  }
  const Graph data = builder.Build();

  const Graph query = MakeGraph({0, 1, 2, 0}, {{0, 1}, {0, 2}, {1, 3}});

  const FilterResult filtered = RunFilter(FilterMethod::kLDF, query, data);
  ASSERT_FALSE(filtered.candidates.AnyEmpty());
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query, data, filtered.candidates);
  // Order u0, u1, u2, u3: the u2 loop runs over five C candidates, each of
  // whose subtrees dies on the u3/u0 conflict.
  const std::vector<Vertex> order = {0, 1, 2, 3};
  ASSERT_TRUE(IsValidMatchingOrder(query, order));

  EnumerateOptions without;
  without.max_matches = 0;
  EnumerateOptions with = without;
  with.use_failing_sets = true;

  const EnumerateStats stats_without =
      Enumerate(query, data, filtered.candidates, &aux, order, without);
  const EnumerateStats stats_with =
      Enumerate(query, data, filtered.candidates, &aux, order, with);

  EXPECT_EQ(stats_with.match_count, stats_without.match_count);
  // The optimization must do strictly less work on this instance.
  EXPECT_GT(stats_with.failing_set_prunes, 0u);
  EXPECT_LT(stats_with.recursion_calls, stats_without.recursion_calls);
}

// Randomized equivalence: failing sets never change match counts, only the
// amount of work.
TEST(FailingSetPruningTest, RandomizedEquivalence) {
  Prng prng(808);
  for (int round = 0; round < 10; ++round) {
    const Graph data = GenerateErdosRenyi(40, 160, 2, &prng);
    const auto query = ExtractQuery(data, 7, QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    const FilterResult filtered =
        RunFilter(FilterMethod::kGraphQL, *query, data);
    if (filtered.candidates.AnyEmpty()) continue;
    const AuxStructure aux =
        AuxStructure::BuildAllEdges(*query, data, filtered.candidates);
    const auto order = GraphQlOrder(*query, filtered.candidates);

    EnumerateOptions without;
    without.max_matches = 0;
    EnumerateOptions with = without;
    with.use_failing_sets = true;

    const EnumerateStats a =
        Enumerate(*query, data, filtered.candidates, &aux, order, without);
    const EnumerateStats b =
        Enumerate(*query, data, filtered.candidates, &aux, order, with);
    EXPECT_EQ(a.match_count, b.match_count) << "round " << round;
    EXPECT_LE(b.recursion_calls, a.recursion_calls) << "round " << round;
  }
}

}  // namespace
}  // namespace sgm
