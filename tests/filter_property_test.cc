// Property tests of the central filter invariant: completeness
// (Definition 2.2 — no filter may prune a data vertex that participates in
// a match). Cross-validated against the brute-force enumerator on random
// graphs, parameterized over every filtering method.
#include <gtest/gtest.h>

#include "sgm/core/brute_force.h"
#include "sgm/core/filter/filter.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/graph/query_generator.h"

namespace sgm {
namespace {

class FilterCompletenessTest
    : public ::testing::TestWithParam<FilterMethod> {};

TEST_P(FilterCompletenessTest, NeverPrunesMatchedVertices) {
  Prng prng(2024);
  for (int round = 0; round < 12; ++round) {
    const Graph data = GenerateErdosRenyi(
        60, 150 + static_cast<uint32_t>(prng.NextBounded(150)),
        1 + static_cast<uint32_t>(prng.NextBounded(4)), &prng);
    const auto query =
        ExtractQuery(data, 4 + static_cast<uint32_t>(prng.NextBounded(3)),
                     QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;

    const FilterResult result = RunFilter(GetParam(), *query, data);
    const auto matches = BruteForceMatches(*query, data);
    ASSERT_FALSE(matches.empty());  // extracted queries always match
    for (const auto& mapping : matches) {
      for (Vertex u = 0; u < query->vertex_count(); ++u) {
        EXPECT_TRUE(result.candidates.Contains(u, mapping[u]))
            << FilterMethodName(GetParam()) << " pruned matched vertex "
            << mapping[u] << " from C(" << u << ") in round " << round;
      }
    }
  }
}

TEST_P(FilterCompletenessTest, EmptySetOnlyWhenNoMatch) {
  Prng prng(777);
  for (int round = 0; round < 12; ++round) {
    const Graph data = GenerateErdosRenyi(40, 120, 3, &prng);
    // Random (not extracted) queries frequently have no match; when a filter
    // empties a candidate set, the brute force must agree there is none.
    const Graph query = GenerateErdosRenyi(4, 5, 3, &prng);
    if (!IsConnected(query)) continue;
    const FilterResult result = RunFilter(GetParam(), query, data);
    if (result.candidates.AnyEmpty()) {
      EXPECT_EQ(BruteForceCount(query, data, 1), 0u)
          << FilterMethodName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterCompletenessTest,
    ::testing::Values(FilterMethod::kLDF, FilterMethod::kNLF,
                      FilterMethod::kGraphQL, FilterMethod::kCFL,
                      FilterMethod::kCECI, FilterMethod::kDPiso,
                      FilterMethod::kSteady),
    [](const auto& info) { return FilterMethodName(info.param); });

}  // namespace
}  // namespace sgm
