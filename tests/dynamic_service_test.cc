// Tests of the service-level dynamic-graph integration: ApplyUpdates
// atomicity, plan-cache epoch invalidation (no stale counts after an
// update), continuous-query deltas through the service, concurrent
// submission during updates, the sharded rejection path and the schema-v5
// dynamic section of served run reports.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/graph.h"
#include "sgm/matcher.h"
#include "sgm/obs/metrics.h"
#include "sgm/obs/run_report.h"
#include "sgm/service/service.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

service::ServiceOptions LocalOptions(obs::MetricsRegistry* metrics) {
  service::ServiceOptions options;
  options.worker_count = 2;
  options.metrics = metrics;
  return options;
}

service::MatchRequest PaperRequest() {
  service::MatchRequest request;
  request.query = PaperQuery();
  return request;
}

TEST(DynamicServiceTest, UpdatesInvalidateCachedPlans) {
  obs::MetricsRegistry metrics;
  service::MatchService service(PaperData(), LocalOptions(&metrics));

  // Warm the cache: the paper query has exactly two embeddings.
  service::MatchResponse first = service.Match(PaperRequest());
  ASSERT_EQ(first.status, service::RequestStatus::kOk);
  EXPECT_EQ(first.engine.match_count, 2u);
  EXPECT_FALSE(first.plan_cache_hit);

  service::MatchResponse warm = service.Match(PaperRequest());
  ASSERT_EQ(warm.status, service::RequestStatus::kOk);
  EXPECT_EQ(warm.engine.match_count, 2u);
  EXPECT_TRUE(warm.plan_cache_hit);

  // Deleting data edge (0, 4) kills the embedding {0, 4, 5, 12}. The epoch
  // in the cache key makes the warmed plan unreachable: the same request
  // must rebuild and report the post-update count, not the stale one.
  dynamic::UpdateBatch batch;
  batch.ops.push_back(dynamic::UpdateOp::RemoveEdge(0, 4));
  service::UpdateReport report = service.ApplyUpdates(batch);
  ASSERT_TRUE(report.applied) << report.error;
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.ops_applied, 1u);
  EXPECT_EQ(service.graph_epoch(), 1u);

  service::MatchResponse after = service.Match(PaperRequest());
  ASSERT_EQ(after.status, service::RequestStatus::kOk);
  EXPECT_EQ(after.engine.match_count, 1u);
  EXPECT_FALSE(after.plan_cache_hit);

  // Re-inserting the edge restores both embeddings under a fresh epoch.
  dynamic::UpdateBatch undo;
  undo.ops.push_back(dynamic::UpdateOp::AddEdge(0, 4));
  ASSERT_TRUE(service.ApplyUpdates(undo).applied);
  service::MatchResponse restored = service.Match(PaperRequest());
  ASSERT_EQ(restored.status, service::RequestStatus::kOk);
  EXPECT_EQ(restored.engine.match_count, 2u);
}

TEST(DynamicServiceTest, InvalidBatchesLeaveTheGraphUntouched) {
  obs::MetricsRegistry metrics;
  service::MatchService service(PaperData(), LocalOptions(&metrics));

  // Valid prefix, invalid tail: nothing may land.
  dynamic::UpdateBatch batch;
  batch.ops.push_back(dynamic::UpdateOp::RemoveEdge(0, 4));
  batch.ops.push_back(dynamic::UpdateOp::AddEdge(0, 2));  // already present
  service::UpdateReport report = service.ApplyUpdates(batch);
  EXPECT_FALSE(report.applied);
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(service.graph_epoch(), 0u);

  service::MatchResponse response = service.Match(PaperRequest());
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(response.engine.match_count, 2u);
}

TEST(DynamicServiceTest, ContinuousQueryDeltasFlowThroughTheService) {
  obs::MetricsRegistry metrics;
  service::MatchService service(PaperData(), LocalOptions(&metrics));

  std::string error;
  const uint64_t id = service.RegisterContinuousQuery(PaperQuery(), &error);
  ASSERT_NE(id, 0u) << error;

  dynamic::UpdateBatch batch;
  batch.ops.push_back(dynamic::UpdateOp::RemoveEdge(0, 4));
  service::UpdateReport report = service.ApplyUpdates(batch);
  ASSERT_TRUE(report.applied) << report.error;
  ASSERT_EQ(report.deltas.size(), 1u);
  const dynamic::MatchDelta& delta = report.deltas[0];
  EXPECT_EQ(delta.query_id, id);
  EXPECT_EQ(delta.additions, 0u);
  EXPECT_EQ(delta.retractions, 1u);
  ASSERT_EQ(delta.records.size(), 1u);
  EXPECT_FALSE(delta.records[0].addition);
  EXPECT_EQ(delta.records[0].embedding, (std::vector<Vertex>{0, 4, 5, 12}));

  // After unregistering, batches report no deltas for the query.
  EXPECT_TRUE(service.UnregisterContinuousQuery(id));
  EXPECT_FALSE(service.UnregisterContinuousQuery(id));
  dynamic::UpdateBatch undo;
  undo.ops.push_back(dynamic::UpdateOp::AddEdge(0, 4));
  service::UpdateReport second = service.ApplyUpdates(undo);
  ASSERT_TRUE(second.applied);
  EXPECT_TRUE(second.deltas.empty());

  service::ServiceDynamicStats stats = service.DynamicStats();
  EXPECT_EQ(stats.graph_epoch, 2u);
  EXPECT_EQ(stats.update_batches, 2u);
  EXPECT_EQ(stats.update_ops, 2u);
  EXPECT_EQ(stats.delta_additions, 0u);
  EXPECT_EQ(stats.delta_retractions, 1u);
  EXPECT_EQ(stats.continuous_queries, 0u);
}

TEST(DynamicServiceTest, ShardedServicesRejectUpdates) {
  obs::MetricsRegistry metrics;
  service::ServiceOptions options = LocalOptions(&metrics);
  options.shards = 2;
  service::MatchService service(PaperData(), options);
  ASSERT_EQ(service.shard_count(), 2u);

  dynamic::UpdateBatch batch;
  batch.ops.push_back(dynamic::UpdateOp::RemoveEdge(0, 4));
  service::UpdateReport report = service.ApplyUpdates(batch);
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.error.find("sharded"), std::string::npos);
  EXPECT_EQ(service.graph_epoch(), 0u);

  std::string error;
  EXPECT_EQ(service.RegisterContinuousQuery(PaperQuery(), &error), 0u);
  EXPECT_FALSE(error.empty());
}

TEST(DynamicServiceTest, ConcurrentRequestsDuringUpdatesSeeConsistentGraphs) {
  obs::MetricsRegistry metrics;
  service::ServiceOptions options = LocalOptions(&metrics);
  options.worker_count = 4;
  service::MatchService service(PaperData(), options);

  // Toggle edge (0, 4) while hammering the service with the paper query.
  // Every response must report a count consistent with SOME epoch (1 or
  // 2 matches) — a torn read or a stale plan would surface as any other
  // value, and TSan would flag an unsynchronized snapshot swap.
  std::atomic<bool> stop{false};
  std::thread updater([&service, &stop] {
    bool present = true;
    while (!stop.load()) {
      dynamic::UpdateBatch batch;
      batch.ops.push_back(present ? dynamic::UpdateOp::RemoveEdge(0, 4)
                                  : dynamic::UpdateOp::AddEdge(0, 4));
      ASSERT_TRUE(service.ApplyUpdates(batch).applied);
      present = !present;
    }
    if (!present) {
      dynamic::UpdateBatch batch;
      batch.ops.push_back(dynamic::UpdateOp::AddEdge(0, 4));
      ASSERT_TRUE(service.ApplyUpdates(batch).applied);
    }
  });

  for (int i = 0; i < 200; ++i) {
    service::MatchResponse response = service.Match(PaperRequest());
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(response.engine.match_count == 1u ||
                response.engine.match_count == 2u)
        << "got " << response.engine.match_count;
  }
  stop.store(true);
  updater.join();

  service::MatchResponse final_response = service.Match(PaperRequest());
  ASSERT_EQ(final_response.status, service::RequestStatus::kOk);
  EXPECT_EQ(final_response.engine.match_count, 2u);
}

TEST(DynamicServiceTest, ServedReportsCarryTheDynamicSection) {
  obs::MetricsRegistry metrics;
  service::MatchService service(PaperData(), LocalOptions(&metrics));

  std::string error;
  ASSERT_NE(service.RegisterContinuousQuery(PaperQuery(), &error), 0u);
  dynamic::UpdateBatch batch;
  batch.ops.push_back(dynamic::UpdateOp::RemoveEdge(0, 4));
  ASSERT_TRUE(service.ApplyUpdates(batch).applied);

  service::MatchRequest request = PaperRequest();
  service::MatchResponse response = service.Match(PaperRequest());
  ASSERT_EQ(response.status, service::RequestStatus::kOk);

  const service::ServiceDynamicStats stats = service.DynamicStats();
  obs::RunReport report = service::BuildServedRunReport(
      request.query, service.data(), request, response, service.metrics(),
      &stats);
  EXPECT_TRUE(report.dynamic_enabled);
  EXPECT_EQ(report.graph_epoch, 1u);
  EXPECT_EQ(report.update_batches, 1u);
  EXPECT_EQ(report.update_ops, 1u);
  EXPECT_EQ(report.delta_retractions, 1u);
  EXPECT_EQ(report.continuous_queries, 1u);
  // The request after the batch compacted the overlay lazily.
  EXPECT_EQ(report.graph_compactions, 1u);

  // The section survives the JSON round trip exactly.
  const obs::Json json = report.ToJson();
  const std::string dumped = json.Dump(2);
  const obs::RunReport restored = obs::RunReport::FromJson(json);
  EXPECT_EQ(restored.ToJson().Dump(2), dumped);
  EXPECT_TRUE(restored.dynamic_enabled);
  EXPECT_EQ(restored.graph_epoch, 1u);
  EXPECT_EQ(restored.delta_retractions, 1u);

  // A direct (non-served) report emits the same keys, degenerate.
  const obs::RunReport direct;
  const obs::Json direct_json = direct.ToJson();
  ASSERT_NE(direct_json.Get("dynamic"), nullptr);
  EXPECT_FALSE(obs::RunReport::FromJson(direct_json).dynamic_enabled);
}

}  // namespace
}  // namespace sgm
