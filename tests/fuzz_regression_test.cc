// Replays every reproducer in tests/corpus/reproducers/ through the
// differential oracle. The corpus holds minimized cases from fixed bugs
// plus hand-written nasty shapes (uniform labels, disconnected queries,
// degenerate 0/1-vertex graphs); each file records the verdict it must
// produce — `agree` for healthy cases, `rejected` for out-of-contract
// ones — so a regression shows up as a verdict change, with the offending
// file named in the failure message.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "sgm/fuzz/oracle.h"
#include "sgm/fuzz/reproducer.h"

#ifndef SGM_TESTS_DIR
#error "SGM_TESTS_DIR must point at the tests/ source directory"
#endif

namespace sgm::fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(SGM_TESTS_DIR) / "corpus" / "reproducers";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".case") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzRegressionTest, CorpusIsPresent) {
  EXPECT_GE(CorpusFiles().size(), 3u)
      << "tests/corpus/reproducers/ should carry the seeded nasty cases";
}

TEST(FuzzRegressionTest, EveryReproducerReplaysClean) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    std::string error;
    const auto reproducer = LoadReproducerFile(path, &error);
    ASSERT_TRUE(reproducer.has_value()) << error;
    const OracleResult result = RunOracle(reproducer->fuzz_case);
    EXPECT_FALSE(result.Failed())
        << VerdictKindName(result.kind) << " — " << result.detail;
    EXPECT_EQ(result.kind, reproducer->expected)
        << "verdict drifted from the one recorded in the file: "
        << result.detail;
  }
}

}  // namespace
}  // namespace sgm::fuzz
