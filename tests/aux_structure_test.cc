#include "sgm/core/aux_structure.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sgm/core/filter/filter.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

class AuxStructureTest : public ::testing::Test {
 protected:
  AuxStructureTest()
      : query_(PaperQuery()),
        data_(PaperData()),
        candidates_(BuildNlfCandidates(query_, data_)) {}

  Graph query_;
  Graph data_;
  CandidateSets candidates_;
};

TEST_F(AuxStructureTest, AllEdgesIndexesBothDirections) {
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, candidates_);
  for (Vertex u = 0; u < query_.vertex_count(); ++u) {
    for (const Vertex w : query_.neighbors(u)) {
      EXPECT_TRUE(aux.HasIndex(u, w));
      EXPECT_TRUE(aux.HasIndex(w, u));
    }
  }
  EXPECT_FALSE(aux.HasIndex(0, 3));  // u0-u3 is not a query edge
}

TEST_F(AuxStructureTest, ListsAreNeighborsWithinCandidates) {
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, candidates_);
  for (Vertex u = 0; u < query_.vertex_count(); ++u) {
    for (const Vertex w : query_.neighbors(u)) {
      const auto from_cands = candidates_.candidates(u);
      for (uint32_t ci = 0; ci < from_cands.size(); ++ci) {
        const Vertex v = from_cands[ci];
        const auto list = aux.NeighborsByIndex(u, ci, w);
        EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
        for (const Vertex x : list) {
          EXPECT_TRUE(data_.HasEdge(v, x));
          EXPECT_TRUE(candidates_.Contains(w, x));
        }
        // Completeness of the list: every candidate neighbor appears.
        for (const Vertex x : candidates_.candidates(w)) {
          if (data_.HasEdge(v, x)) {
            EXPECT_TRUE(std::binary_search(list.begin(), list.end(), x));
          }
        }
      }
    }
  }
}

TEST_F(AuxStructureTest, NeighborsOfVertexMatchesByIndex) {
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, candidates_);
  const auto cands = candidates_.candidates(1);
  ASSERT_FALSE(cands.empty());
  const Vertex v = cands[0];
  const auto by_vertex = aux.NeighborsOfVertex(1, v, 0);
  const auto by_index = aux.NeighborsByIndex(1, 0, 0);
  ASSERT_EQ(by_vertex.size(), by_index.size());
  EXPECT_TRUE(std::equal(by_vertex.begin(), by_vertex.end(),
                         by_index.begin()));
}

TEST_F(AuxStructureTest, TreeEdgesScope) {
  // BFS tree of the paper query rooted at u0: parents u1<-u0, u2<-u0,
  // u3<-u1.
  const std::vector<Vertex> parent = {kInvalidVertex, 0, 0, 1};
  const AuxStructure aux =
      AuxStructure::BuildTreeEdges(query_, data_, candidates_, parent);
  EXPECT_TRUE(aux.HasIndex(0, 1));
  EXPECT_TRUE(aux.HasIndex(1, 0));
  EXPECT_TRUE(aux.HasIndex(1, 3));
  EXPECT_FALSE(aux.HasIndex(1, 2));  // non-tree edge not indexed
  EXPECT_FALSE(aux.HasIndex(2, 3));
}

TEST_F(AuxStructureTest, CandidateEdgeCountAndMemory) {
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, candidates_);
  EXPECT_GT(aux.CandidateEdgeCount(), 0u);
  EXPECT_GT(aux.MemoryBytes(), 0u);
}

TEST_F(AuxStructureTest, PaperExampleAdjacency) {
  // Example 3.2: given v4 in C(u1), A_{u3}^{u1}(v4) = {v12} after NLF
  // filtering (the paper's {v10, v12} refers to the pre-refinement CFL
  // structure; with NLF candidates v4's only C(u3)-neighbor is v12).
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, candidates_);
  const auto list = aux.NeighborsOfVertex(1, 4, 3);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], 12u);
}

}  // namespace
}  // namespace sgm
