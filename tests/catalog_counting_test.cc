// Tests for the pattern catalog, automorphism-aware counting, and the
// EXPLAIN plan API.
#include <gtest/gtest.h>

#include <cmath>

#include "sgm/counting.h"
#include "sgm/explain.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/graph/pattern_catalog.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(PatternCatalogTest, ShapesAreCorrect) {
  EXPECT_EQ(PathPattern(5).edge_count(), 4u);
  EXPECT_EQ(CyclePattern(5).edge_count(), 5u);
  EXPECT_EQ(CliquePattern(5).edge_count(), 10u);
  EXPECT_EQ(StarPattern(6).vertex_count(), 7u);
  EXPECT_EQ(StarPattern(6).degree(0), 6u);
  EXPECT_EQ(DiamondPattern().edge_count(), 5u);
  EXPECT_EQ(TailedTrianglePattern().edge_count(), 4u);
  EXPECT_EQ(HousePattern().edge_count(), 6u);
  EXPECT_EQ(BiFanPattern().edge_count(), 4u);
  EXPECT_EQ(BowTiePattern().edge_count(), 6u);
  for (const Graph& pattern :
       {PathPattern(4), CyclePattern(6), CliquePattern(4), StarPattern(3),
        DiamondPattern(), TailedTrianglePattern(), HousePattern(),
        BiFanPattern(), BowTiePattern()}) {
    EXPECT_TRUE(IsConnected(pattern));
  }
}

TEST(PatternCatalogTest, LabelsApply) {
  const Label labels[] = {7, 8, 9};
  const Graph path = PathPattern(3, labels);
  EXPECT_EQ(path.label(0), 7u);
  EXPECT_EQ(path.label(2), 9u);
}

TEST(CountingTest, AutomorphismsOfClassicPatterns) {
  EXPECT_EQ(CountAutomorphisms(CliquePattern(3)), 6u);   // S_3
  EXPECT_EQ(CountAutomorphisms(CliquePattern(4)), 24u);  // S_4
  EXPECT_EQ(CountAutomorphisms(CyclePattern(5)), 10u);   // dihedral D_5
  EXPECT_EQ(CountAutomorphisms(PathPattern(4)), 2u);     // reflection
  EXPECT_EQ(CountAutomorphisms(StarPattern(4)), 24u);    // leaf permutations
  EXPECT_EQ(CountAutomorphisms(BiFanPattern()), 8u);     // swap x swap x flip
  // Labels break symmetry: the paper query has only the identity.
  EXPECT_EQ(CountAutomorphisms(PaperQuery()), 1u);
}

TEST(CountingTest, OccurrencesDividesOutSymmetry) {
  // K_4 contains C(4,3) = 4 distinct triangles but 24 embeddings.
  const Graph data = CliquePattern(4);
  MatchOptions options;
  options.max_matches = 0;
  const OccurrenceCount count =
      CountOccurrences(CliquePattern(3), data, options);
  EXPECT_EQ(count.embeddings, 24u);
  EXPECT_EQ(count.automorphisms, 6u);
  EXPECT_EQ(count.occurrences, 4u);
  EXPECT_TRUE(count.exact);
}

TEST(CountingTest, CapMakesCountInexact) {
  const Graph data = CliquePattern(6);
  MatchOptions options;
  options.max_matches = 10;
  const OccurrenceCount count =
      CountOccurrences(CliquePattern(3), data, options);
  EXPECT_FALSE(count.exact);
  EXPECT_EQ(count.embeddings, 10u);
}

TEST(ExplainTest, PlanForPaperExample) {
  const QueryPlan plan = ExplainQuery(PaperQuery(), PaperData(),
                                      MatchOptions::Recommended(4));
  ASSERT_EQ(plan.candidate_counts.size(), 4u);
  EXPECT_EQ(plan.candidate_counts[0], 1u);  // C(u0) = {v0}
  EXPECT_FALSE(plan.no_match_possible);
  EXPECT_EQ(plan.matching_order.size(), 4u);
  EXPECT_GT(plan.estimated_tree_embeddings, 0.0);
  EXPECT_GT(plan.aux_memory_bytes, 0u);
  const std::string rendered = plan.ToString(PaperQuery());
  EXPECT_NE(rendered.find("filter=GQL"), std::string::npos);
  EXPECT_NE(rendered.find("order:"), std::string::npos);
}

TEST(ExplainTest, DetectsImpossibleQueries) {
  const Graph no_d =
      ::sgm::testing::MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  const QueryPlan plan = ExplainQuery(PaperQuery(), no_d);
  EXPECT_TRUE(plan.no_match_possible);
}

TEST(ExplainTest, CartesianBoundIsLogOfProduct) {
  const QueryPlan plan = ExplainQuery(PaperQuery(), PaperData(),
                                      MatchOptions::Recommended(4));
  double expected = 0.0;
  for (const uint32_t count : plan.candidate_counts) {
    expected += std::log10(std::max(1u, count));
  }
  EXPECT_NEAR(plan.log10_cartesian_bound, expected, 1e-9);
}

}  // namespace
}  // namespace sgm
