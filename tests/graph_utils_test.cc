#include "sgm/graph/graph_utils.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(GraphUtilsTest, ConnectivityDetection) {
  EXPECT_TRUE(IsConnected(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}})));
  EXPECT_FALSE(IsConnected(MakeGraph({0, 0, 0}, {{0, 1}})));
  EXPECT_TRUE(IsConnected(PaperData()));
}

TEST(GraphUtilsTest, BfsTreeOfPaperQuery) {
  const Graph query = PaperQuery();
  const BfsTree tree = BuildBfsTree(query, 0);
  EXPECT_EQ(tree.root, 0u);
  ASSERT_EQ(tree.order.size(), 4u);
  EXPECT_EQ(tree.order[0], 0u);
  EXPECT_EQ(tree.order[1], 1u);
  EXPECT_EQ(tree.order[2], 2u);
  EXPECT_EQ(tree.order[3], 3u);
  EXPECT_EQ(tree.parent[0], kInvalidVertex);
  EXPECT_EQ(tree.parent[1], 0u);
  EXPECT_EQ(tree.parent[2], 0u);
  EXPECT_EQ(tree.parent[3], 1u);  // u3 discovered from u1
  EXPECT_EQ(tree.level[0], 0u);
  EXPECT_EQ(tree.level[3], 2u);
  EXPECT_EQ(tree.depth(), 3u);
  ASSERT_EQ(tree.children[0].size(), 2u);
}

TEST(GraphUtilsTest, BfsTreeLevelsConsistent) {
  const Graph data = PaperData();
  const BfsTree tree = BuildBfsTree(data, 0);
  for (Vertex v = 0; v < data.vertex_count(); ++v) {
    if (tree.parent[v] != kInvalidVertex) {
      EXPECT_EQ(tree.level[v], tree.level[tree.parent[v]] + 1);
      EXPECT_TRUE(data.HasEdge(v, tree.parent[v]));
    }
  }
}

TEST(GraphUtilsTest, TwoCoreOfTriangleWithTail) {
  // Triangle 0-1-2 plus a tail 2-3-4: only the triangle is in the 2-core.
  const Graph graph =
      MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto core = TwoCoreMembership(graph);
  EXPECT_TRUE(core[0]);
  EXPECT_TRUE(core[1]);
  EXPECT_TRUE(core[2]);
  EXPECT_FALSE(core[3]);
  EXPECT_FALSE(core[4]);
  EXPECT_EQ(TwoCoreSize(graph), 3u);
}

TEST(GraphUtilsTest, TwoCoreOfTreeIsEmpty) {
  const Graph tree = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {1, 3}});
  EXPECT_EQ(TwoCoreSize(tree), 0u);
}

TEST(GraphUtilsTest, TwoCoreOfCycleIsEverything) {
  const Graph cycle =
      MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(TwoCoreSize(cycle), 4u);
}

TEST(GraphUtilsTest, PaperQueryIsItsOwnTwoCore) {
  EXPECT_EQ(TwoCoreSize(PaperQuery()), 4u);
}

TEST(GraphUtilsTest, InducedSubgraph) {
  const Graph data = PaperData();
  std::vector<Vertex> mapping;
  const std::vector<Vertex> selection = {0, 4, 5, 12};
  const Graph sub = InducedSubgraph(data, selection, &mapping);
  EXPECT_EQ(sub.vertex_count(), 4u);
  // v0-v4, v0-v5, v4-v5, v4-v12, v5-v12 are induced; v0-v12 is not an edge.
  EXPECT_EQ(sub.edge_count(), 5u);
  EXPECT_EQ(sub.label(0), data.label(0));
  EXPECT_EQ(sub.label(3), data.label(12));
  EXPECT_EQ(mapping[12], 3u);
  EXPECT_EQ(mapping[1], kInvalidVertex);
  EXPECT_TRUE(sub.HasEdge(mapping[4], mapping[12]));
  EXPECT_FALSE(sub.HasEdge(mapping[0], mapping[12]));
}

TEST(GraphUtilsTest, LargestConnectedComponent) {
  // Two components: a triangle (3 vertices) and an edge (2 vertices).
  const Graph graph =
      MakeGraph({0, 0, 0, 1, 1}, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  std::vector<Vertex> mapping;
  const Graph lcc = LargestConnectedComponent(graph, &mapping);
  EXPECT_EQ(lcc.vertex_count(), 3u);
  EXPECT_EQ(lcc.edge_count(), 3u);
  EXPECT_TRUE(IsConnected(lcc));
  EXPECT_EQ(mapping[3], kInvalidVertex);
  EXPECT_NE(mapping[0], kInvalidVertex);
}

TEST(GraphUtilsTest, LargestConnectedComponentOfConnectedGraphIsIdentity) {
  const Graph data = PaperData();
  const Graph lcc = LargestConnectedComponent(data);
  EXPECT_EQ(lcc.vertex_count(), data.vertex_count());
  EXPECT_EQ(lcc.edge_count(), data.edge_count());
}

TEST(GraphUtilsTest, CompactLabels) {
  // Sparse labels 5 and 100.
  const Graph graph = MakeGraph({5, 100, 5}, {{0, 1}, {1, 2}});
  EXPECT_EQ(graph.label_count(), 101u);
  std::vector<Label> mapping;
  const Graph compact = CompactLabels(graph, &mapping);
  EXPECT_EQ(compact.label_count(), 2u);
  EXPECT_EQ(compact.label(0), 0u);
  EXPECT_EQ(compact.label(1), 1u);
  EXPECT_EQ(compact.label(2), 0u);
  EXPECT_EQ(mapping[5], 0u);
  EXPECT_EQ(mapping[100], 1u);
  EXPECT_EQ(mapping[0], kInvalidLabel);
  EXPECT_EQ(compact.edge_count(), graph.edge_count());
}

TEST(GraphUtilsTest, InducedSubgraphPreservesSelectionOrder) {
  const Graph data = PaperData();
  const std::vector<Vertex> selection = {12, 4};
  const Graph sub = InducedSubgraph(data, selection);
  EXPECT_EQ(sub.label(0), data.label(12));
  EXPECT_EQ(sub.label(1), data.label(4));
  EXPECT_TRUE(sub.HasEdge(0, 1));
}

}  // namespace
}  // namespace sgm
