#include "sgm/core/spectrum.h"

#include <gtest/gtest.h>

#include "sgm/core/order/order.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(SpectrumTest, RandomOrdersAreValid) {
  const Graph query = PaperQuery();
  Prng prng(11);
  for (int i = 0; i < 50; ++i) {
    const auto order = RandomConnectedOrder(query, &prng);
    EXPECT_TRUE(IsValidMatchingOrder(query, order));
  }
}

TEST(SpectrumTest, RandomOrdersVary) {
  const Graph query = PaperQuery();
  Prng prng(13);
  bool found_different = false;
  const auto first = RandomConnectedOrder(query, &prng);
  for (int i = 0; i < 50 && !found_different; ++i) {
    found_different = RandomConnectedOrder(query, &prng) != first;
  }
  EXPECT_TRUE(found_different);
}

TEST(SpectrumTest, RunOnPaperExample) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  SpectrumOptions options;
  options.num_orders = 20;
  Prng prng(17);
  const SpectrumResult result = RunSpectrum(query, data, options, &prng);
  EXPECT_EQ(result.attempted, 20u);
  EXPECT_EQ(result.completed, 20u);  // trivial instance: all finish
  ASSERT_EQ(result.completed_times_ms.size(), 20u);
  for (const double t : result.completed_times_ms) {
    EXPECT_GE(t, result.best_ms);
    EXPECT_LE(t, result.worst_completed_ms);
  }
}

TEST(SpectrumTest, NoCandidatesMeansInstantOrders) {
  const Graph query = PaperQuery();
  // No D label in this data graph.
  const Graph data =
      ::sgm::testing::MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  SpectrumOptions options;
  options.num_orders = 5;
  Prng prng(19);
  const SpectrumResult result = RunSpectrum(query, data, options, &prng);
  EXPECT_EQ(result.completed, 5u);
}

}  // namespace
}  // namespace sgm
