#include "sgm/util/set_intersection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sgm/util/prng.h"
#include "sgm/util/qfilter.h"

namespace sgm {
namespace {

std::vector<Vertex> Reference(const std::vector<Vertex>& a,
                              const std::vector<Vertex>& b) {
  std::vector<Vertex> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Vertex> RandomSortedSet(Prng* prng, size_t size, Vertex universe) {
  std::vector<Vertex> values;
  values.reserve(size * 2);
  while (values.size() < size) {
    const size_t missing = size - values.size();
    for (size_t i = 0; i < missing * 2; ++i) {
      values.push_back(static_cast<Vertex>(prng->NextBounded(universe)));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }
  values.resize(size);
  return values;
}

TEST(SetIntersectionTest, EmptyInputs) {
  std::vector<Vertex> out;
  EXPECT_EQ(IntersectMerge({}, {}, &out), 0u);
  EXPECT_EQ(IntersectGalloping({}, std::vector<Vertex>{1, 2}, &out), 0u);
  EXPECT_EQ(IntersectHybrid(std::vector<Vertex>{1}, {}, &out), 0u);
  EXPECT_EQ(IntersectQFilter({}, {}, &out), 0u);
}

TEST(SetIntersectionTest, DisjointAndIdentical) {
  const std::vector<Vertex> a = {1, 3, 5, 7};
  const std::vector<Vertex> b = {2, 4, 6, 8};
  std::vector<Vertex> out;
  EXPECT_EQ(IntersectMerge(a, b, &out), 0u);
  EXPECT_EQ(IntersectMerge(a, a, &out), 4u);
  EXPECT_EQ(out, a);
}

TEST(SetIntersectionTest, GallopLowerBound) {
  const std::vector<Vertex> sorted = {2, 4, 6, 8, 10, 12};
  EXPECT_EQ(internal::GallopLowerBound(sorted, 0, 1), 0u);
  EXPECT_EQ(internal::GallopLowerBound(sorted, 0, 6), 2u);
  EXPECT_EQ(internal::GallopLowerBound(sorted, 0, 7), 3u);
  EXPECT_EQ(internal::GallopLowerBound(sorted, 0, 13), 6u);
  EXPECT_EQ(internal::GallopLowerBound(sorted, 3, 10), 4u);
}

TEST(SetIntersectionTest, SortedContains) {
  const std::vector<Vertex> sorted = {1, 5, 9};
  EXPECT_TRUE(SortedContains(sorted, 5));
  EXPECT_FALSE(SortedContains(sorted, 4));
  EXPECT_FALSE(SortedContains({}, 4));
}

TEST(SetIntersectionTest, MethodNames) {
  EXPECT_STREQ(IntersectionMethodName(IntersectionMethod::kMerge), "merge");
  EXPECT_STREQ(IntersectionMethodName(IntersectionMethod::kGalloping),
               "galloping");
  EXPECT_STREQ(IntersectionMethodName(IntersectionMethod::kHybrid), "hybrid");
  EXPECT_STREQ(IntersectionMethodName(IntersectionMethod::kQFilter),
               "qfilter");
}

// Property sweep: every kernel agrees with std::set_intersection across
// random skews and densities.
class IntersectionPropertyTest
    : public ::testing::TestWithParam<IntersectionMethod> {};

TEST_P(IntersectionPropertyTest, MatchesReferenceOnRandomSets) {
  Prng prng(99);
  std::vector<Vertex> out;
  for (int round = 0; round < 200; ++round) {
    const size_t size_a = 1 + prng.NextBounded(200);
    const size_t size_b = 1 + prng.NextBounded(200);
    const Vertex universe = static_cast<Vertex>(16 + prng.NextBounded(4000));
    const auto a = RandomSortedSet(&prng, std::min<size_t>(size_a, universe / 2),
                                   universe);
    const auto b = RandomSortedSet(&prng, std::min<size_t>(size_b, universe / 2),
                                   universe);
    const auto expected = Reference(a, b);
    Intersect(GetParam(), a, b, &out);
    EXPECT_EQ(out, expected) << "round " << round;
    EXPECT_EQ(IntersectionCount(a, b), expected.size());
  }
}

TEST_P(IntersectionPropertyTest, HandlesExtremeSkew) {
  Prng prng(123);
  std::vector<Vertex> out;
  const auto large = RandomSortedSet(&prng, 5000, 100000);
  for (const size_t small_size : {1u, 2u, 3u, 5u}) {
    const auto small = RandomSortedSet(&prng, small_size, 100000);
    const auto expected = Reference(small, large);
    Intersect(GetParam(), small, large, &out);
    EXPECT_EQ(out, expected);
    Intersect(GetParam(), large, small, &out);
    EXPECT_EQ(out, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, IntersectionPropertyTest,
    ::testing::Values(IntersectionMethod::kMerge,
                      IntersectionMethod::kGalloping,
                      IntersectionMethod::kHybrid,
                      IntersectionMethod::kQFilter),
    [](const auto& info) { return IntersectionMethodName(info.param); });

TEST(QFilterTest, BlockBoundaryCases) {
  // Exercise the 4-element block logic: sizes straddling block boundaries.
  std::vector<Vertex> out;
  for (size_t na = 0; na <= 9; ++na) {
    for (size_t nb = 0; nb <= 9; ++nb) {
      std::vector<Vertex> a, b;
      for (size_t i = 0; i < na; ++i) a.push_back(static_cast<Vertex>(2 * i));
      for (size_t i = 0; i < nb; ++i) b.push_back(static_cast<Vertex>(3 * i));
      const auto expected = Reference(a, b);
      IntersectQFilter(a, b, &out);
      EXPECT_EQ(out, expected) << "na=" << na << " nb=" << nb;
    }
  }
}

TEST(QFilterTest, ValuesDifferingOnlyInHighBytes) {
  // The byte-check prefilter compares low bytes; values with equal low bytes
  // but different high bytes must survive the filter and be rejected by the
  // full comparison.
  const std::vector<Vertex> a = {0x100, 0x200, 0x300, 0x400};
  const std::vector<Vertex> b = {0x500, 0x600, 0x700, 0x800};
  std::vector<Vertex> out;
  EXPECT_EQ(IntersectQFilter(a, b, &out), 0u);
  const std::vector<Vertex> c = {0x100, 0x600, 0x700, 0x900};
  EXPECT_EQ(IntersectQFilter(a, c, &out), 1u);
  EXPECT_EQ(out[0], 0x100u);
}

}  // namespace
}  // namespace sgm
