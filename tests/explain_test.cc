// Tests of the EXPLAIN facility (sgm/explain.h): plan construction on the
// paper's Figure 1 example, the human-readable rendering, the
// no-match-possible early exit, and the preprocessing spans it shares with
// the matcher through the observability layer.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sgm/explain.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/phase_timer.h"
#include "test_support.h"

namespace sgm {
namespace {

using sgm::testing::kLabelD;
using sgm::testing::MakeGraph;
using sgm::testing::PaperData;
using sgm::testing::PaperQuery;

TEST(ExplainTest, PaperExamplePlanIsComplete) {
  const Graph query = PaperQuery();
  const QueryPlan plan = ExplainQuery(query, PaperData());

  EXPECT_FALSE(plan.no_match_possible);
  // Figure 1: C(u0) is exactly {v0}; every set is non-empty and no larger
  // than the label frequency allows (3 B's, 4 C's, 4 D's).
  ASSERT_EQ(plan.candidate_counts.size(), 4u);
  EXPECT_EQ(plan.candidate_counts[0], 1u);
  EXPECT_GE(plan.candidate_counts[1], 2u);
  EXPECT_LE(plan.candidate_counts[1], 3u);
  EXPECT_GE(plan.candidate_counts[2], 2u);
  EXPECT_LE(plan.candidate_counts[2], 4u);
  EXPECT_EQ(plan.candidate_counts[3], 2u);

  // The order is a permutation of the query vertices.
  std::vector<Vertex> sorted = plan.matching_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Vertex>{0, 1, 2, 3}));

  // The Cartesian bound is the product of the reported counts, and the
  // tree estimate is at least the true match count (2): the spanning tree
  // relaxes the query's edge constraints.
  double expected_log10 = 0.0;
  for (const uint32_t count : plan.candidate_counts) {
    expected_log10 += std::log10(static_cast<double>(count));
  }
  EXPECT_DOUBLE_EQ(plan.log10_cartesian_bound, expected_log10);
  EXPECT_GE(plan.estimated_tree_embeddings, 2.0);

  EXPECT_GT(plan.candidate_memory_bytes, 0u);
  EXPECT_GT(plan.aux_memory_bytes, 0u);
  EXPECT_GE(plan.filter_ms, 0.0);
  EXPECT_GE(plan.aux_build_ms, 0.0);
  EXPECT_GE(plan.order_ms, 0.0);
}

TEST(ExplainTest, ToStringRendersEverySection) {
  const Graph query = PaperQuery();
  MatchOptions options;
  options.use_failing_sets = true;
  const QueryPlan plan = ExplainQuery(query, PaperData(), options);
  const std::string text = plan.ToString(query);

  EXPECT_NE(text.find(std::string("filter=") + FilterMethodName(plan.filter)),
            std::string::npos);
  EXPECT_NE(text.find(std::string("order=") + OrderMethodName(plan.order)),
            std::string::npos);
  EXPECT_NE(text.find("failing-sets"), std::string::npos);
  EXPECT_NE(text.find("C(u0)=1"), std::string::npos);
  EXPECT_NE(text.find("order:"), std::string::npos);
  EXPECT_NE(text.find("est. tree embeddings"), std::string::npos);
  EXPECT_NE(text.find("memory:"), std::string::npos);
  EXPECT_NE(text.find("preprocessing:"), std::string::npos);
  EXPECT_EQ(text.find("no match possible"), std::string::npos);
}

TEST(ExplainTest, ReportsNoMatchPossible) {
  // A triangle of D-labeled vertices: the data graph has no D-D edge, so
  // every candidate set empties and the plan stops after filtering.
  const Graph query = MakeGraph({kLabelD, kLabelD, kLabelD},
                                {{0, 1}, {1, 2}, {0, 2}});
  const QueryPlan plan = ExplainQuery(query, PaperData());
  EXPECT_TRUE(plan.no_match_possible);
  EXPECT_TRUE(plan.matching_order.empty());
  const std::string text = plan.ToString(query);
  EXPECT_NE(text.find("no match possible"), std::string::npos);
}

TEST(ExplainTest, EmitsPreprocessingSpansIntoCollector) {
  obs::Collector collector;
  collector.EnableTrace();
  MatchOptions options;
  options.collector = &collector;
  const QueryPlan plan = ExplainQuery(PaperQuery(), PaperData(), options);
  EXPECT_FALSE(plan.no_match_possible);

  std::vector<std::string> names;
  for (const obs::TraceEvent& event : collector.trace_buffer().events()) {
    names.push_back(event.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       obs::kPhaseFilter, obs::kPhaseAuxBuild,
                       obs::kPhaseOrder}));
}

TEST(ExplainTest, PostponeDegreeOneMovesLeavesLast) {
  // u3 has degree... every PaperQuery vertex has degree >= 2; use a path
  // query where the endpoints are degree-one.
  const Graph query = sgm::testing::PathQuery();
  MatchOptions options;
  options.postpone_degree_one = true;
  const QueryPlan plan = ExplainQuery(query, PaperData(), options);
  if (!plan.no_match_possible) {
    ASSERT_EQ(plan.matching_order.size(), 3u);
    // The middle vertex u1 (degree 2) must come before both endpoints.
    EXPECT_EQ(plan.matching_order.front(), 1u);
  }
}

}  // namespace
}  // namespace sgm
