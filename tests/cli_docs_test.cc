// Drift test between the command-line tools and docs/CLI.md.
//
// Each tool is executed with --help; the flags it advertises (lines of the
// form "  --flag ...") are compared against the flag table of the tool's
// section in docs/CLI.md (rows of the form "| `--flag ...` | ... |").
// Both directions are asserted: a flag added to a tool without documenting
// it fails, and a documented flag the tool no longer accepts fails too.
//
// SGM_TOOLS_DIR (the build's tool binary directory) and SGM_DOCS_DIR (the
// source tree's docs/ directory) are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr const char* kTools[] = {"sgm_match", "sgm_generate", "sgm_fuzz",
                                  "sgm_serve"};

bool IsFlagChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

// Extracts "--flag" from `text` starting at `pos` (which must point at the
// leading dashes); empty if the token is not a well-formed long flag.
std::string FlagAt(const std::string& text, size_t pos) {
  if (text.compare(pos, 2, "--") != 0) return "";
  size_t end = pos + 2;
  while (end < text.size() && IsFlagChar(text[end])) ++end;
  if (end == pos + 2) return "";  // bare "--"
  return text.substr(pos, end - pos);
}

// Runs `<tools dir>/<tool> --help` and returns its combined output.
// Fails the current test if the tool cannot be executed or exits nonzero.
std::string RunHelp(const std::string& tool) {
  const std::string command =
      std::string(SGM_TOOLS_DIR) + "/" + tool + " --help 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return "";
  }
  std::string output;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << tool << " --help exited with status " << status
                       << "\noutput:\n"
                       << output;
  return output;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

// Flags a tool advertises: the first token of every help line that starts
// (after indentation) with "--". Prose mentions of other flags inside
// descriptions are deliberately not counted.
std::set<std::string> HelpFlags(const std::string& help_text) {
  std::set<std::string> flags;
  for (const std::string& line : SplitLines(help_text)) {
    const size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    const std::string flag = FlagAt(line, start);
    if (!flag.empty()) flags.insert(flag);
  }
  return flags;
}

// Splits docs/CLI.md into per-tool sections keyed by the "## <tool>"
// heading text.
std::map<std::string, std::string> DocsSections(const std::string& text) {
  std::map<std::string, std::string> sections;
  std::string current;
  for (const std::string& line : SplitLines(text)) {
    if (line.rfind("## ", 0) == 0) {
      current = line.substr(3);
      while (!current.empty() && current.back() == ' ') current.pop_back();
      continue;
    }
    if (!current.empty()) {
      sections[current] += line;
      sections[current] += '\n';
    }
  }
  return sections;
}

// Flags a docs section documents: table rows whose first backticked cell
// starts with "--". Exit-code tables and prose cross-references don't
// match this shape, so they never leak into the set.
std::set<std::string> DocsFlags(const std::string& section) {
  std::set<std::string> flags;
  for (const std::string& line : SplitLines(section)) {
    const size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos || line[start] != '|') continue;
    const size_t tick = line.find('`', start);
    if (tick == std::string::npos) continue;
    const std::string flag = FlagAt(line, tick + 1);
    if (!flag.empty()) flags.insert(flag);
  }
  return flags;
}

std::string ReadCliDocs() {
  const std::string path = std::string(SGM_DOCS_DIR) + "/CLI.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Join(const std::set<std::string>& flags) {
  std::string joined;
  for (const std::string& flag : flags) {
    if (!joined.empty()) joined += ", ";
    joined += flag;
  }
  return joined.empty() ? "(none)" : joined;
}

TEST(CliDocsTest, EveryToolHasADocsSection) {
  const auto sections = DocsSections(ReadCliDocs());
  for (const char* tool : kTools) {
    EXPECT_TRUE(sections.count(tool))
        << "docs/CLI.md has no '## " << tool << "' section";
  }
}

TEST(CliDocsTest, HelpAndDocsAgreeOnEveryFlag) {
  const auto sections = DocsSections(ReadCliDocs());
  for (const char* tool : kTools) {
    SCOPED_TRACE(tool);
    const auto it = sections.find(tool);
    if (it == sections.end()) {
      ADD_FAILURE() << "missing docs section";
      continue;
    }
    const std::string help = RunHelp(tool);
    const std::set<std::string> from_help = HelpFlags(help);
    const std::set<std::string> from_docs = DocsFlags(it->second);
    ASSERT_FALSE(from_help.empty()) << "no flags parsed from --help:\n"
                                    << help;
    ASSERT_FALSE(from_docs.empty()) << "no flag table parsed from docs";

    std::set<std::string> undocumented, stale;
    for (const std::string& flag : from_help) {
      if (!from_docs.count(flag)) undocumented.insert(flag);
    }
    for (const std::string& flag : from_docs) {
      if (!from_help.count(flag)) stale.insert(flag);
    }
    EXPECT_TRUE(undocumented.empty())
        << "flags in --help but missing from docs/CLI.md: "
        << Join(undocumented);
    EXPECT_TRUE(stale.empty())
        << "flags documented in docs/CLI.md but absent from --help: "
        << Join(stale);
  }
}

// The exit-code contract is part of the documented interface: each tool
// section must carry an exit-code table mentioning code 0 and code 2
// (usage error), the two codes every tool shares.
TEST(CliDocsTest, EveryToolDocumentsExitCodes) {
  const auto sections = DocsSections(ReadCliDocs());
  for (const char* tool : kTools) {
    SCOPED_TRACE(tool);
    const auto it = sections.find(tool);
    if (it == sections.end()) {
      ADD_FAILURE() << "missing docs section";
      continue;
    }
    EXPECT_NE(it->second.find("Exit codes"), std::string::npos)
        << "no 'Exit codes' table in the " << tool << " section";
  }
}

}  // namespace
