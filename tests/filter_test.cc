#include "sgm/core/filter/filter.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

std::vector<Vertex> AsVector(std::span<const Vertex> span) {
  return {span.begin(), span.end()};
}

TEST(LdfFilterTest, LabelAndDegreeSemantics) {
  // Query vertex: label 0, degree 2.
  const Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  // Data: v0 label 0 degree 2 (ok), v3 label 0 degree 1 (too small),
  // v4 label 1 (wrong label).
  const Graph data =
      MakeGraph({0, 1, 1, 0, 1}, {{0, 1}, {0, 2}, {3, 1}});
  const CandidateSets ldf = BuildLdfCandidates(query, data);
  EXPECT_EQ(AsVector(ldf.candidates(0)), (std::vector<Vertex>{0}));
}

TEST(LdfFilterTest, LabelAbsentFromDataGivesEmptySet) {
  const Graph query = MakeGraph({5, 5, 5}, {{0, 1}, {1, 2}});
  const Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  const CandidateSets ldf = BuildLdfCandidates(query, data);
  EXPECT_TRUE(ldf.AnyEmpty());
}

TEST(NlfFilterTest, NeighborLabelCountsMatter) {
  // u0 (label 0) has two label-1 neighbors.
  const Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  // v0: two label-1 neighbors (passes). v3: one label-1 and one label-2
  // neighbor (fails NLF despite matching degree).
  const Graph data = MakeGraph({0, 1, 1, 0, 1, 2},
                               {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
  const CandidateSets nlf = BuildNlfCandidates(query, data);
  EXPECT_EQ(AsVector(nlf.candidates(0)), (std::vector<Vertex>{0}));
  const CandidateSets ldf = BuildLdfCandidates(query, data);
  EXPECT_EQ(ldf.Count(0), 2u);  // LDF alone keeps both
}

TEST(FilterTest, NlfSubsetOfLdf) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const CandidateSets ldf = BuildLdfCandidates(query, data);
  const CandidateSets nlf = BuildNlfCandidates(query, data);
  for (Vertex u = 0; u < query.vertex_count(); ++u) {
    for (const Vertex v : nlf.candidates(u)) {
      EXPECT_TRUE(ldf.Contains(u, v));
    }
  }
}

TEST(FilterTest, AdvancedFiltersSubsetOfNlf) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const CandidateSets nlf = BuildNlfCandidates(query, data);
  for (const FilterMethod method :
       {FilterMethod::kCFL, FilterMethod::kCECI, FilterMethod::kDPiso,
        FilterMethod::kSteady}) {
    const FilterResult result = RunFilter(method, query, data);
    for (Vertex u = 0; u < query.vertex_count(); ++u) {
      for (const Vertex v : result.candidates.candidates(u)) {
        EXPECT_TRUE(nlf.Contains(u, v))
            << FilterMethodName(method) << " kept non-NLF candidate " << v;
      }
    }
  }
}

TEST(FilterTest, SteadyIsAtLeastAsTightAsBoundedRefinements) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  const FilterResult steady = RunFilter(FilterMethod::kSteady, query, data);
  for (const FilterMethod method :
       {FilterMethod::kCFL, FilterMethod::kCECI, FilterMethod::kDPiso}) {
    const FilterResult result = RunFilter(method, query, data);
    EXPECT_LE(steady.candidates.TotalCount(), result.candidates.TotalCount())
        << FilterMethodName(method);
  }
}

TEST(FilterTest, TreeBuildingFiltersReportTree) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  for (const FilterMethod method :
       {FilterMethod::kCFL, FilterMethod::kCECI, FilterMethod::kDPiso}) {
    const FilterResult result = RunFilter(method, query, data);
    ASSERT_TRUE(result.bfs_tree.has_value()) << FilterMethodName(method);
    EXPECT_EQ(result.bfs_tree->order.size(), query.vertex_count());
  }
  const FilterResult gql = RunFilter(FilterMethod::kGraphQL, query, data);
  EXPECT_FALSE(gql.bfs_tree.has_value());
}

TEST(FilterTest, CandidateSetsAreSorted) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  for (const FilterMethod method :
       {FilterMethod::kLDF, FilterMethod::kNLF, FilterMethod::kGraphQL,
        FilterMethod::kCFL, FilterMethod::kCECI, FilterMethod::kDPiso,
        FilterMethod::kSteady}) {
    const FilterResult result = RunFilter(method, query, data);
    for (Vertex u = 0; u < query.vertex_count(); ++u) {
      const auto cands = result.candidates.candidates(u);
      EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()))
          << FilterMethodName(method);
    }
  }
}

TEST(FilterTest, PruneByNeighborConstraint) {
  const Graph data = PaperData();
  std::vector<uint8_t> scratch(data.vertex_count(), 0);
  // Candidates {v2, v4, v6}; constraint set {v1, v3, v5}: v6 has no neighbor
  // there.
  std::vector<Vertex> candidates = {2, 4, 6};
  const std::vector<Vertex> constraint = {1, 3, 5};
  EXPECT_TRUE(
      PruneByNeighborConstraint(data, &candidates, constraint, &scratch));
  EXPECT_EQ(candidates, (std::vector<Vertex>{2, 4}));
  // Second application changes nothing.
  EXPECT_FALSE(
      PruneByNeighborConstraint(data, &candidates, constraint, &scratch));
  // Scratch is restored to all-zero.
  for (const uint8_t flag : scratch) EXPECT_EQ(flag, 0);
}

TEST(FilterTest, GraphQlRefinementRoundsAreConfigurable) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  FilterOptions one_round;
  one_round.graphql_refinement_rounds = 1;
  FilterOptions zero_rounds;
  zero_rounds.graphql_refinement_rounds = 0;
  const FilterResult local_only =
      RunFilter(FilterMethod::kGraphQL, query, data, zero_rounds);
  const FilterResult refined =
      RunFilter(FilterMethod::kGraphQL, query, data, one_round);
  EXPECT_GE(local_only.candidates.TotalCount(),
            refined.candidates.TotalCount());
}

TEST(FilterTest, MethodNames) {
  EXPECT_STREQ(FilterMethodName(FilterMethod::kLDF), "LDF");
  EXPECT_STREQ(FilterMethodName(FilterMethod::kGraphQL), "GQL");
  EXPECT_STREQ(FilterMethodName(FilterMethod::kSteady), "STEADY");
}

}  // namespace
}  // namespace sgm
