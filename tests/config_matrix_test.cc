// Configuration-matrix property test: the framework is advertised as a
// free composition of (filter × order × local-candidate method ×
// optimizations). This test sweeps the legal combinations on one fixed
// random workload and requires every one to produce the same match count.
#include <gtest/gtest.h>

#include <string>

#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "sgm/matcher.h"

namespace sgm {
namespace {

struct MatrixCase {
  FilterMethod filter;
  OrderMethod order;
  LocalCandidateMethod lc;
  bool failing_sets;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = FilterMethodName(info.param.filter);
  name += "_";
  name += OrderMethodName(info.param.order);
  name += "_";
  name += LocalCandidateMethodName(info.param.lc);
  name += info.param.failing_sets ? "_fs" : "_nofs";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrixTest, AllCombinationsAgree) {
  const MatrixCase& param = GetParam();
  Prng prng(321321);
  const Graph data = GenerateErdosRenyi(45, 160, 2, &prng);
  for (int round = 0; round < 4; ++round) {
    const auto query = ExtractQuery(data, 5 + round, QueryDensity::kAny,
                                    &prng);
    if (!query.has_value()) continue;
    MatchOptions options;
    options.filter = param.filter;
    options.order = param.order;
    options.lc_method = param.lc;
    options.use_failing_sets = param.failing_sets;
    // kPivotIndex needs indexed backward edges for the pivot; the all-edges
    // scope guarantees that for any order. kNeighborScan and kCandidateScan
    // need no index.
    options.aux_scope = param.lc == LocalCandidateMethod::kNeighborScan ||
                                param.lc == LocalCandidateMethod::kCandidateScan
                            ? AuxEdgeScope::kNone
                            : AuxEdgeScope::kAllEdges;
    options.max_matches = 0;
    options.time_limit_ms = 0;
    const uint64_t expected = BruteForceCount(*query, data);
    EXPECT_EQ(MatchQuery(*query, data, options).match_count, expected)
        << CaseName({param, 0}) << " round " << round;
  }
}

// The sweep: every filter with the GQL order, every order with the GQL
// filter, crossed with the four local-candidate methods; failing sets on
// the intersect configurations.
INSTANTIATE_TEST_SUITE_P(
    Filters, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{FilterMethod::kLDF, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kNLF, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kCFL, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kCECI, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kDPiso, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kSteady, OrderMethod::kGraphQL,
                   LocalCandidateMethod::kIntersect, false}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    Orders, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kQuickSI,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kCFL,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kCECI,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kDPiso,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kRI,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kVF2pp,
                   LocalCandidateMethod::kIntersect, false}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    LocalCandidates, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kRI,
                   LocalCandidateMethod::kNeighborScan, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kRI,
                   LocalCandidateMethod::kCandidateScan, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kRI,
                   LocalCandidateMethod::kPivotIndex, false},
        MatrixCase{FilterMethod::kGraphQL, OrderMethod::kRI,
                   LocalCandidateMethod::kIntersect, false},
        MatrixCase{FilterMethod::kCFL, OrderMethod::kQuickSI,
                   LocalCandidateMethod::kPivotIndex, true},
        MatrixCase{FilterMethod::kCECI, OrderMethod::kVF2pp,
                   LocalCandidateMethod::kIntersect, true},
        MatrixCase{FilterMethod::kSteady, OrderMethod::kRI,
                   LocalCandidateMethod::kCandidateScan, true}),
    CaseName);

}  // namespace
}  // namespace sgm
