// Shared fixtures for the test suite, most importantly a reconstruction of
// the paper's Figure 1 running example. The data graph below is built to
// satisfy every worked example of Section 3:
//
//   * Example 3.1 (GraphQL): local pruning yields C(u0)={v0},
//     C(u1)={v2,v4,v6}, C(u2)={v1,v3,v5}, C(u3)={v10,v12}; global refinement
//     removes v1 (no semi-perfect matching) and keeps v3.
//   * Example 3.2 (CFL): generation reproduces the same sets, backward
//     pruning removes v6 from C(u1), bottom-up refinement removes v1 from
//     C(u2).
//   * Example 3.3 (CECI): δ=(u0,u1,u2,u3); non-tree pruning removes v6 and
//     v1.
//   * Example 3.4 (DP-iso): the first reverse pass removes v1 from C(u2).
//   * {(u0,v0),(u1,v4),(u2,v5),(u3,v12)} is a match (Figure 1), and
//     {(u0,v0),(u1,v2),(u2,v3),(u3,v10)} is the only other one.
#ifndef SGM_TESTS_TEST_SUPPORT_H_
#define SGM_TESTS_TEST_SUPPORT_H_

#include <utility>
#include <vector>

#include "sgm/graph/graph.h"
#include "sgm/graph/graph_builder.h"

namespace sgm::testing {

inline constexpr Label kLabelA = 0;
inline constexpr Label kLabelB = 1;
inline constexpr Label kLabelC = 2;
inline constexpr Label kLabelD = 3;

/// Builds a graph from labels and an edge list.
inline Graph MakeGraph(const std::vector<Label>& labels,
                       const std::vector<std::pair<Vertex, Vertex>>& edges) {
  GraphBuilder builder;
  for (const Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

/// The query graph q of Figure 1: u0(A)-u1(B), u0-u2(C), u1-u2, u1-u3(D),
/// u2-u3.
inline Graph PaperQuery() {
  return MakeGraph({kLabelA, kLabelB, kLabelC, kLabelD},
                   {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
}

/// The data graph G of Figure 1 (13 vertices v0..v12), reconstructed as
/// described in the file comment.
inline Graph PaperData() {
  const std::vector<Label> labels = {
      kLabelA,  // v0
      kLabelC,  // v1
      kLabelB,  // v2
      kLabelC,  // v3
      kLabelB,  // v4
      kLabelC,  // v5
      kLabelB,  // v6
      kLabelC,  // v7
      kLabelD,  // v8
      kLabelA,  // v9
      kLabelD,  // v10
      kLabelD,  // v11
      kLabelD,  // v12
  };
  const std::vector<std::pair<Vertex, Vertex>> edges = {
      {0, 1}, {0, 2}, {0, 3},  {0, 4},  {0, 5}, {0, 6},  // hub v0
      {1, 2}, {1, 8},                                    // v1's B and D
      {2, 3}, {2, 10},                                   // v2's C and D
      {3, 10},                                           // v3's D
      {4, 5}, {4, 12},                                   // v4's C and D
      {5, 12},                                           // v5's D
      {6, 7}, {6, 11},                                   // v6's C and D
      {8, 9},                                            // v8-v9 filler
  };
  return MakeGraph(labels, edges);
}

/// A triangle query with one label (smallest interesting query).
inline Graph TriangleQuery(Label label = 0) {
  return MakeGraph({label, label, label}, {{0, 1}, {1, 2}, {0, 2}});
}

/// A labeled path query u0-u1-u2.
inline Graph PathQuery() {
  return MakeGraph({kLabelA, kLabelB, kLabelC}, {{0, 1}, {1, 2}});
}

}  // namespace sgm::testing

#endif  // SGM_TESTS_TEST_SUPPORT_H_
