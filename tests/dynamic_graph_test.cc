// Tests for the dynamic-graph core: update-stream IO and generation, the
// delta-overlay DynamicGraph (batch validation, sequential in-batch
// semantics, snapshots, compaction, tombstones), and incremental candidate
// maintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "sgm/dynamic/candidate_maintenance.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph.h"
#include "sgm/util/prng.h"
#include "test_support.h"

namespace sgm::dynamic {
namespace {

using sgm::testing::MakeGraph;
using sgm::testing::PaperData;
using sgm::testing::PaperQuery;

UpdateBatch Batch(std::vector<UpdateOp> ops) {
  UpdateBatch batch;
  batch.ops = std::move(ops);
  return batch;
}

// ---------------------------------------------------------------------------
// Update stream IO

TEST(UpdateStreamTest, RoundTripsThroughText) {
  UpdateStream stream;
  stream.batches.push_back(Batch({UpdateOp::AddEdge(0, 5),
                                  UpdateOp::RemoveEdge(2, 3),
                                  UpdateOp::AddVertex(1),
                                  UpdateOp::RemoveVertex(7)}));
  stream.batches.push_back(Batch({}));  // empty (epoch-only) batch
  stream.batches.push_back(Batch({UpdateOp::AddEdge(13, 1)}));

  std::ostringstream out;
  WriteUpdateStream(stream, out);
  std::istringstream in(out.str());
  std::string error;
  const auto parsed = ReadUpdateStream(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->batches.size(), stream.batches.size());
  EXPECT_EQ(parsed->op_count(), 5u);
  for (size_t i = 0; i < stream.batches.size(); ++i) {
    EXPECT_EQ(parsed->batches[i].ops, stream.batches[i].ops) << "batch " << i;
  }
}

TEST(UpdateStreamTest, ToleratesCommentsAndCrlf) {
  std::istringstream in(
      "# header comment\r\n"
      "batch\r\n"
      "ae 0 1\r\n"
      "# mid comment\n"
      "end\r\n");
  std::string error;
  const auto parsed = ReadUpdateStream(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->batches.size(), 1u);
  EXPECT_EQ(parsed->batches[0].ops,
            std::vector<UpdateOp>{UpdateOp::AddEdge(0, 1)});
}

TEST(UpdateStreamTest, RejectsMalformedInput) {
  const char* kBad[] = {
      "batch\nbatch\nend\nend\n",     // nested batch
      "end\n",                        // end outside batch
      "ae 0 1\n",                     // op outside batch
      "batch\nae 0\nend\n",           // missing field
      "batch\nae 0 1 2\nend\n",       // extra field
      "batch\nae 0 -1\nend\n",        // signed value
      "batch\nae 0 99999999999\nend\n",  // out of Vertex range
      "batch\nxx 0 1\nend\n",         // unknown record
      "batch\nae 0 1\n",              // unterminated batch
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(ReadUpdateStream(in, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(UpdateStreamTest, GeneratorIsDeterministic) {
  const Graph base = PaperData();
  StreamGenOptions options;
  options.batches = 12;
  Prng a(42), b(42);
  const UpdateStream first = GenerateUpdateStream(base, options, &a);
  const UpdateStream second = GenerateUpdateStream(base, options, &b);
  ASSERT_EQ(first.batches.size(), second.batches.size());
  for (size_t i = 0; i < first.batches.size(); ++i) {
    EXPECT_EQ(first.batches[i].ops, second.batches[i].ops);
  }
}

TEST(UpdateStreamTest, GeneratedStreamsReplayCleanly) {
  // Every generated op must validate against the evolving graph — the
  // property sgm_serve --updates and the fuzzer rely on.
  for (const uint64_t seed : {1ULL, 9ULL, 77ULL, 5000ULL}) {
    Prng prng(seed);
    Graph base = GenerateErdosRenyi(40, 80, 3, &prng);
    StreamGenOptions options;
    options.batches = 24;
    options.remove_edge_weight = 0.45;  // exercise deletes hard
    options.remove_vertex_weight = 0.10;
    const UpdateStream stream = GenerateUpdateStream(base, options, &prng);
    DynamicGraph graph(std::move(base));
    for (const UpdateBatch& batch : stream.batches) {
      std::string error;
      ASSERT_TRUE(graph.Apply(batch, &error)) << "seed " << seed << ": "
                                              << error;
    }
    EXPECT_EQ(graph.epoch(), stream.batches.size());
  }
}

// ---------------------------------------------------------------------------
// DynamicGraph semantics

TEST(DynamicGraphTest, MirrorsItsBaseWhenClean) {
  const Graph base = PaperData();
  DynamicGraph graph(PaperData());
  EXPECT_EQ(graph.vertex_count(), base.vertex_count());
  EXPECT_EQ(graph.edge_count(), base.edge_count());
  EXPECT_FALSE(graph.dirty());
  EXPECT_EQ(graph.epoch(), 0u);
  std::vector<Vertex> neighbors;
  for (Vertex v = 0; v < base.vertex_count(); ++v) {
    EXPECT_TRUE(graph.alive(v));
    EXPECT_EQ(graph.label(v), base.label(v));
    EXPECT_EQ(graph.degree(v), base.degree(v));
    graph.CopyNeighbors(v, &neighbors);
    const auto span = base.neighbors(v);
    EXPECT_TRUE(std::equal(neighbors.begin(), neighbors.end(), span.begin(),
                           span.end()));
  }
  // Clean graph: SnapshotShared is the base itself, no copy.
  EXPECT_EQ(graph.SnapshotShared().get(), &graph.base());
}

TEST(DynamicGraphTest, EdgeUpdatesAreVisibleAndEpochStamped) {
  DynamicGraph graph(PaperData());
  std::string error;
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::AddEdge(7, 8)}), &error)) << error;
  EXPECT_EQ(graph.epoch(), 1u);
  EXPECT_TRUE(graph.HasEdge(7, 8));
  EXPECT_TRUE(graph.HasEdge(8, 7));
  EXPECT_EQ(graph.degree(7), PaperData().degree(7) + 1);
  EXPECT_TRUE(graph.dirty());

  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::RemoveEdge(0, 1)}), &error));
  EXPECT_EQ(graph.epoch(), 2u);
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_EQ(graph.edge_count(), PaperData().edge_count());  // +1 then -1

  std::vector<Vertex> neighbors;
  graph.CopyNeighbors(0, &neighbors);
  EXPECT_EQ(neighbors, (std::vector<Vertex>{2, 3, 4, 5, 6}));
}

TEST(DynamicGraphTest, EmptyBatchBumpsEpochOnly) {
  DynamicGraph graph(PaperData());
  std::string error;
  ASSERT_TRUE(graph.Apply(Batch({}), &error));
  EXPECT_EQ(graph.epoch(), 1u);
  EXPECT_FALSE(graph.dirty());
  EXPECT_EQ(graph.edge_count(), PaperData().edge_count());
}

TEST(DynamicGraphTest, SequentialInBatchSemantics) {
  DynamicGraph graph(PaperData());
  std::string error;
  // Insert then delete the same edge in one batch: valid, nets to nothing.
  ASSERT_TRUE(graph.Apply(
      Batch({UpdateOp::AddEdge(7, 8), UpdateOp::RemoveEdge(7, 8)}), &error))
      << error;
  EXPECT_FALSE(graph.HasEdge(7, 8));
  EXPECT_EQ(graph.edge_count(), PaperData().edge_count());

  // Strip a vertex's edges, then delete it — all in one batch.
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::RemoveEdge(8, 1),
                                 UpdateOp::RemoveEdge(8, 9),
                                 UpdateOp::RemoveVertex(8)}),
                          &error))
      << error;
  EXPECT_FALSE(graph.alive(8));
  EXPECT_EQ(graph.label(8), graph.tombstone_label());
}

TEST(DynamicGraphTest, RejectsInvalidBatchesAtomically) {
  DynamicGraph graph(PaperData());
  const uint64_t edges_before = graph.edge_count();
  const struct {
    UpdateBatch batch;
    const char* why;
  } kCases[] = {
      {Batch({UpdateOp::AddEdge(0, 1)}), "duplicate edge"},
      {Batch({UpdateOp::AddEdge(3, 3)}), "self loop"},
      {Batch({UpdateOp::RemoveEdge(7, 8)}), "missing edge"},
      {Batch({UpdateOp::AddEdge(0, 200)}), "unknown endpoint"},
      {Batch({UpdateOp::RemoveVertex(0)}), "not isolated"},
      {Batch({UpdateOp::RemoveVertex(200)}), "unknown vertex"},
      {Batch({UpdateOp::AddVertex(99)}), "label outside vocabulary"},
      // Valid prefix, invalid tail: nothing may stick.
      {Batch({UpdateOp::AddEdge(7, 8), UpdateOp::AddEdge(7, 8)}),
       "in-batch duplicate"},
      {Batch({UpdateOp::RemoveEdge(8, 9), UpdateOp::RemoveVertex(8)}),
       "still has edge 8-1"},
  };
  for (const auto& test : kCases) {
    std::string error;
    EXPECT_FALSE(graph.Apply(test.batch, &error)) << test.why;
    EXPECT_FALSE(error.empty()) << test.why;
    EXPECT_EQ(graph.epoch(), 0u) << test.why;
    EXPECT_EQ(graph.edge_count(), edges_before) << test.why;
  }
  EXPECT_FALSE(graph.HasEdge(7, 8));
  EXPECT_TRUE(graph.HasEdge(8, 9));
}

TEST(DynamicGraphTest, DeadVertexCannotBeTouched) {
  DynamicGraph graph(MakeGraph({0, 0, 1}, {{0, 1}}));
  std::string error;
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::RemoveVertex(2)}), &error));
  EXPECT_FALSE(graph.Apply(Batch({UpdateOp::AddEdge(0, 2)}), &error));
  EXPECT_FALSE(graph.Apply(Batch({UpdateOp::RemoveVertex(2)}), &error));
}

TEST(DynamicGraphTest, AddedVerticesGetFreshIdsAndKeepLabels) {
  DynamicGraph graph(PaperData());
  std::string error;
  const uint32_t before = graph.vertex_count();
  ASSERT_TRUE(graph.Apply(
      Batch({UpdateOp::AddVertex(2), UpdateOp::AddVertex(0)}), &error));
  ASSERT_EQ(graph.vertex_count(), before + 2);
  EXPECT_EQ(graph.label(before), 2u);
  EXPECT_EQ(graph.label(before + 1), 0u);
  EXPECT_EQ(graph.degree(before), 0u);
  // The new vertex can grow edges in a later batch.
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::AddEdge(before, 0)}), &error))
      << error;
  EXPECT_TRUE(graph.HasEdge(0, before));
}

/// Reference model: re-derives the expected snapshot from scratch.
struct ReferenceGraph {
  std::vector<Label> labels;
  std::set<std::pair<Vertex, Vertex>> edges;
  Label tombstone;

  explicit ReferenceGraph(const Graph& base)
      : tombstone(std::max(base.label_count(), 1u)) {
    for (Vertex v = 0; v < base.vertex_count(); ++v) {
      labels.push_back(base.label(v));
      for (const Vertex w : base.neighbors(v)) {
        if (v < w) edges.insert({v, w});
      }
    }
  }

  void Apply(const UpdateBatch& batch) {
    for (const UpdateOp& op : batch.ops) {
      switch (op.kind) {
        case UpdateKind::kAddEdge:
          edges.insert({std::min(op.u, op.v), std::max(op.u, op.v)});
          break;
        case UpdateKind::kRemoveEdge:
          edges.erase({std::min(op.u, op.v), std::max(op.u, op.v)});
          break;
        case UpdateKind::kAddVertex:
          labels.push_back(op.label);
          break;
        case UpdateKind::kRemoveVertex:
          labels[op.u] = tombstone;
          break;
      }
    }
  }

  Graph Build() const {
    std::vector<std::pair<Vertex, Vertex>> edge_list(edges.begin(),
                                                     edges.end());
    return Graph(labels, edge_list);
  }
};

void ExpectSameGraph(const Graph& actual, const Graph& expected,
                     const std::string& context) {
  ASSERT_EQ(actual.vertex_count(), expected.vertex_count()) << context;
  ASSERT_EQ(actual.edge_count(), expected.edge_count()) << context;
  for (Vertex v = 0; v < expected.vertex_count(); ++v) {
    ASSERT_EQ(actual.label(v), expected.label(v)) << context << " v" << v;
    const auto a = actual.neighbors(v);
    const auto e = expected.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), e.begin(), e.end()))
        << context << " v" << v;
  }
}

TEST(DynamicGraphTest, SnapshotMatchesReferenceUnderRandomStreams) {
  for (const uint64_t seed : {3ULL, 21ULL, 404ULL}) {
    Prng prng(seed);
    Graph base = GenerateErdosRenyi(32, 64, 3, &prng);
    ReferenceGraph reference(base);
    StreamGenOptions options;
    options.batches = 16;
    options.remove_edge_weight = 0.45;
    options.remove_vertex_weight = 0.10;
    const UpdateStream stream = GenerateUpdateStream(base, options, &prng);

    DynamicGraph graph(std::move(base));
    uint64_t batch_index = 0;
    for (const UpdateBatch& batch : stream.batches) {
      std::string error;
      ASSERT_TRUE(graph.Apply(batch, &error)) << error;
      reference.Apply(batch);
      ExpectSameGraph(graph.Snapshot(), reference.Build(),
                      "seed " + std::to_string(seed) + " batch " +
                          std::to_string(batch_index));
      ++batch_index;
    }
  }
}

TEST(DynamicGraphTest, CompactionPreservesReadsAndResetsOverlay) {
  DynamicGraph graph(PaperData());
  std::string error;
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::AddEdge(7, 8),
                                 UpdateOp::RemoveEdge(0, 1),
                                 UpdateOp::AddVertex(1)}),
                          &error))
      << error;
  const Graph before = graph.Snapshot();
  const uint64_t epoch = graph.epoch();
  ASSERT_TRUE(graph.dirty());

  graph.Compact();
  EXPECT_FALSE(graph.dirty());
  EXPECT_EQ(graph.compactions(), 1u);
  EXPECT_EQ(graph.epoch(), epoch);  // compaction is not a version change
  ExpectSameGraph(graph.Snapshot(), before, "post-compaction");
  EXPECT_EQ(graph.SnapshotShared().get(), &graph.base());
  // Only the tombstone bitvector survives a compaction.
  EXPECT_LE(graph.OverlayMemoryBytes(), graph.vertex_count());

  // Idempotent when clean.
  graph.Compact();
  EXPECT_EQ(graph.compactions(), 1u);

  // Updates keep working on the compacted base.
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::AddEdge(0, 1)}), &error)) << error;
  EXPECT_TRUE(graph.HasEdge(0, 1));
}

TEST(DynamicGraphTest, TombstoneLabelIsStableAcrossCompaction) {
  // The tombstone must never collide with a live label, even after a
  // compaction folds dead vertices into the base (which grows the base's
  // label_count to include the tombstone label class).
  DynamicGraph graph(MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}}));
  const Label tombstone = graph.tombstone_label();
  std::string error;
  ASSERT_TRUE(graph.Apply(
      Batch({UpdateOp::RemoveEdge(0, 2), UpdateOp::RemoveVertex(2)}), &error));
  graph.Compact();
  EXPECT_EQ(graph.tombstone_label(), tombstone);
  EXPECT_EQ(graph.label_limit(), tombstone);
  // New vertices still draw from the original vocabulary only.
  EXPECT_FALSE(graph.Apply(Batch({UpdateOp::AddVertex(tombstone)}), &error));
  ASSERT_TRUE(graph.Apply(Batch({UpdateOp::AddVertex(1)}), &error));
  EXPECT_EQ(graph.label(graph.vertex_count() - 1), 1u);
}

// ---------------------------------------------------------------------------
// Incremental candidate maintenance

/// Direct statement of the LDF+NLF predicate, for cross-checking.
bool ReferenceCandidate(const Graph& query, uint32_t qu,
                        const DynamicGraph& data, Vertex v) {
  if (!data.alive(v)) return false;
  if (data.label(v) != query.label(qu)) return false;
  if (data.degree(v) < query.degree(qu)) return false;
  std::vector<Vertex> neighbors;
  data.CopyNeighbors(v, &neighbors);
  for (const auto& need : query.NeighborLabelFrequency(qu)) {
    uint32_t have = 0;
    for (const Vertex w : neighbors) {
      if (data.label(w) == need.label) ++have;
    }
    if (have < need.count) return false;
  }
  return true;
}

void ExpectCandidatesMatchReference(const Graph& query,
                                    const DynamicCandidates& candidates,
                                    const DynamicGraph& data,
                                    const std::string& context) {
  for (uint32_t qu = 0; qu < query.vertex_count(); ++qu) {
    for (Vertex v = 0; v < data.vertex_count(); ++v) {
      EXPECT_EQ(candidates.IsCandidate(qu, v),
                ReferenceCandidate(query, qu, data, v))
          << context << " u" << qu << " v" << v;
    }
  }
}

TEST(DynamicCandidatesTest, InitialBuildMatchesPredicate) {
  const Graph query = PaperQuery();
  DynamicGraph data(PaperData());
  DynamicCandidates candidates(query, data);
  ExpectCandidatesMatchReference(query, candidates, data, "initial");
  // Figure 1: LDF/NLF leaves {v0} for u0.
  EXPECT_EQ(candidates.CandidateCount(0), 1u);
  EXPECT_TRUE(candidates.IsCandidate(0, 0));
}

TEST(DynamicCandidatesTest, TwoVertexRepairTracksEdgeUpdates) {
  const Graph query = PaperQuery();
  DynamicGraph data(PaperData());
  DynamicCandidates candidates(query, data);
  Prng prng(99);
  StreamGenOptions options;
  options.batches = 20;
  options.max_ops_per_batch = 4;
  options.remove_edge_weight = 0.45;
  const UpdateStream stream =
      GenerateUpdateStream(data.Snapshot(), options, &prng);
  for (const UpdateBatch& batch : stream.batches) {
    for (const UpdateOp& op : batch.ops) {
      data.ApplyOp(op);
      // The repair set of an edge op is exactly its endpoints; vertex ops
      // repair the vertex itself.
      candidates.RepairVertex(data, op.u);
      if (op.kind == UpdateKind::kAddEdge ||
          op.kind == UpdateKind::kRemoveEdge) {
        candidates.RepairVertex(data, op.v);
      } else if (op.kind == UpdateKind::kAddVertex) {
        candidates.RepairVertex(data, data.vertex_count() - 1);
      }
    }
    data.BumpEpoch();
    ExpectCandidatesMatchReference(query, candidates, data,
                                   "epoch " + std::to_string(data.epoch()));
  }
}

}  // namespace
}  // namespace sgm::dynamic
